"""Hardened multi-seed fault-injection campaigns.

The campaign layer turns HOME's single-run check into a robust sweep: a
seed × fault-plan matrix with per-run crash isolation, step/wall-clock
budgets with retry backoff, partial-trace salvage, JSON checkpoints for
resume, merged deduplicated findings, and graceful degradation to a
clearly-flagged static-only report when every dynamic run fails.

On top of that sits the **durable service layer**: an append-only
CRC-checked journal (:mod:`.journal`), a crash-safe work queue with
time-bounded leases and poison-cell quarantine (:mod:`.queue`), a
supervisor that restarts killed workers (:mod:`.supervisor`), and a
spool-directory server streaming partial reports (:mod:`.serve`).
"""

from .checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_SCHEMA_VERSION,
    CHECKPOINT_VERSION,
    CORRUPT_SUFFIX,
    load_checkpoint,
    quarantine_corrupt,
    save_checkpoint,
)
from .journal import (
    JOURNAL_FORMAT,
    JOURNAL_SCHEMA_VERSION,
    Journal,
    JournalReplay,
    replay_journal,
)
from .outcome import (
    RUN_STATUSES,
    STATUS_BUDGET,
    STATUS_ERROR,
    STATUS_FORCED,
    STATUS_OK,
    STATUS_QUARANTINED,
    RunOutcome,
    violation_from_dict,
    violation_to_dict,
)
from .parallel import CellTask, resolve_jobs
from .queue import DurableWorkQueue, Lease, cell_key
from .runner import (
    CampaignConfig,
    CampaignResult,
    CampaignRunner,
    CellExecutor,
    default_plan_matrix,
    merge_outcomes,
    run_campaign,
)
from .serve import CampaignService, ServeConfig, SPOOL_DIRS, serve
from .supervisor import Supervisor, SupervisorConfig

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_SCHEMA_VERSION",
    "CHECKPOINT_VERSION",
    "CORRUPT_SUFFIX",
    "CampaignConfig",
    "CampaignResult",
    "CampaignRunner",
    "CampaignService",
    "CellExecutor",
    "CellTask",
    "DurableWorkQueue",
    "JOURNAL_FORMAT",
    "JOURNAL_SCHEMA_VERSION",
    "Journal",
    "JournalReplay",
    "Lease",
    "RUN_STATUSES",
    "RunOutcome",
    "STATUS_BUDGET",
    "STATUS_ERROR",
    "STATUS_FORCED",
    "STATUS_OK",
    "STATUS_QUARANTINED",
    "ServeConfig",
    "Supervisor",
    "SupervisorConfig",
    "cell_key",
    "default_plan_matrix",
    "load_checkpoint",
    "merge_outcomes",
    "quarantine_corrupt",
    "replay_journal",
    "resolve_jobs",
    "run_campaign",
    "save_checkpoint",
    "SPOOL_DIRS",
    "serve",
    "violation_from_dict",
    "violation_to_dict",
]
