"""Hardened multi-seed fault-injection campaigns.

The campaign layer turns HOME's single-run check into a robust sweep: a
seed × fault-plan matrix with per-run crash isolation, step/wall-clock
budgets with retry backoff, partial-trace salvage, JSON checkpoints for
resume, merged deduplicated findings, and graceful degradation to a
clearly-flagged static-only report when every dynamic run fails.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_SCHEMA_VERSION,
    CHECKPOINT_VERSION,
    load_checkpoint,
    save_checkpoint,
)
from .outcome import (
    RUN_STATUSES,
    STATUS_BUDGET,
    STATUS_ERROR,
    STATUS_FORCED,
    STATUS_OK,
    RunOutcome,
    violation_from_dict,
    violation_to_dict,
)
from .parallel import CellTask, resolve_jobs
from .runner import (
    CampaignConfig,
    CampaignResult,
    CampaignRunner,
    CellExecutor,
    default_plan_matrix,
    run_campaign,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_SCHEMA_VERSION",
    "CHECKPOINT_VERSION",
    "CampaignConfig",
    "CampaignResult",
    "CampaignRunner",
    "CellExecutor",
    "CellTask",
    "RUN_STATUSES",
    "RunOutcome",
    "STATUS_BUDGET",
    "STATUS_ERROR",
    "STATUS_FORCED",
    "STATUS_OK",
    "default_plan_matrix",
    "load_checkpoint",
    "resolve_jobs",
    "run_campaign",
    "save_checkpoint",
    "violation_from_dict",
    "violation_to_dict",
]
