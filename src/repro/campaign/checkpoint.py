"""Campaign checkpoints: atomic JSON save, validated load.

The checkpoint is written after *every* completed cell, so a campaign
killed at any point resumes with at most one run's work lost.  Writes
go through a temp file + ``os.replace`` so a crash mid-write can never
corrupt an existing checkpoint — the loader therefore only ever sees a
whole file or the previous one.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List

from ..errors import AnalysisError
from .outcome import RunOutcome

CHECKPOINT_FORMAT = "repro-campaign"
#: Bump whenever the payload layout changes.  A resume against a
#: checkpoint written with a different schema warns and restarts cold
#: (see CampaignRunner._load_resume) instead of misreading old fields.
CHECKPOINT_SCHEMA_VERSION = 2
#: Backward-compat alias for the pre-schema_version name.
CHECKPOINT_VERSION = CHECKPOINT_SCHEMA_VERSION


def save_checkpoint(path: str, meta: Dict, outcomes: List[RunOutcome]) -> None:
    """Atomically write the campaign state to *path*."""
    payload = {
        "format": CHECKPOINT_FORMAT,
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "meta": dict(meta),
        "outcomes": [o.as_dict() for o in outcomes],
    }
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(prefix=".campaign-", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_checkpoint(path: str) -> Dict:
    """Load and validate a checkpoint; returns ``{"meta", "outcomes"}``
    with outcomes rebuilt as :class:`RunOutcome` objects."""
    try:
        with open(path, "r") as fh:
            payload = json.load(fh)
    except OSError as err:
        raise AnalysisError(f"cannot read campaign checkpoint {path!r}: {err}")
    except json.JSONDecodeError as err:
        raise AnalysisError(f"corrupt campaign checkpoint {path!r}: {err}")
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise AnalysisError(f"{path!r} is not a campaign checkpoint")
    found = payload.get("schema_version", payload.get("version"))
    if found != CHECKPOINT_SCHEMA_VERSION:
        raise AnalysisError(
            f"unsupported campaign checkpoint schema_version {found!r} "
            f"(expected {CHECKPOINT_SCHEMA_VERSION})"
        )
    outcomes = [RunOutcome.from_dict(o) for o in payload.get("outcomes", [])]
    return {"meta": payload.get("meta", {}), "outcomes": outcomes}
