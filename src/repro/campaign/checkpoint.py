"""Campaign checkpoints: atomic, fsync'd, CRC-checked JSON save.

The checkpoint is written after *every* completed cell, so a campaign
killed at any point resumes with at most one run's work lost.  Writes
go through a temp file that is flushed and ``fsync``'d *before* the
atomic ``os.replace`` — a crash mid-write can never corrupt an existing
checkpoint, and a power loss right after the rename cannot surface a
hole where the data should be.  The payload carries a CRC-32 of its
canonical encoding, so a damaged file (torn write on a dying disk, a
flipped bit) is *detected* rather than half-parsed.

A corrupt checkpoint must never kill a campaign: callers that pass
``quarantine=True`` to :func:`load_checkpoint` get the bad file moved
aside to ``<path>.corrupt`` (preserving the evidence, freeing the path
for a fresh checkpoint) and a clear error they can downgrade to a
warn-and-cold-start.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from typing import Dict, List

from ..errors import AnalysisError
from .outcome import RunOutcome

CHECKPOINT_FORMAT = "repro-campaign"
#: Bump whenever the payload layout changes.  A resume against a
#: checkpoint written with a different schema warns and restarts cold
#: (see CampaignRunner._load_resume) instead of misreading old fields.
#: v3: payload carries a crc field (CRC-32 of the canonical core).
CHECKPOINT_SCHEMA_VERSION = 3
#: Backward-compat alias for the pre-schema_version name.
CHECKPOINT_VERSION = CHECKPOINT_SCHEMA_VERSION

#: suffix a corrupt checkpoint is quarantined under
CORRUPT_SUFFIX = ".corrupt"


def _payload_crc(core: Dict) -> int:
    return zlib.crc32(
        json.dumps(core, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )


def save_checkpoint(path: str, meta: Dict, outcomes: List[RunOutcome]) -> None:
    """Atomically and durably write the campaign state to *path*."""
    core = {
        "format": CHECKPOINT_FORMAT,
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "meta": dict(meta),
        "outcomes": [o.as_dict() for o in outcomes],
    }
    payload = dict(core)
    payload["crc"] = _payload_crc(core)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(prefix=".campaign-", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:
        # make the rename itself durable; best-effort (some filesystems
        # refuse directory fsync)
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass


def quarantine_corrupt(path: str) -> str:
    """Move a damaged checkpoint aside, returning its new path."""
    target = path + CORRUPT_SUFFIX
    os.replace(path, target)
    return target


def load_checkpoint(path: str, quarantine: bool = False) -> Dict:
    """Load and validate a checkpoint; returns ``{"meta", "outcomes"}``
    with outcomes rebuilt as :class:`RunOutcome` objects.

    With ``quarantine=True`` a corrupt or truncated file (undecodable
    JSON, failed CRC) is moved aside to ``<path>.corrupt`` before the
    error is raised, so the next save starts clean and the evidence
    survives.  Structurally valid files of the wrong format or schema
    are *not* quarantined — they are somebody's good data.
    """

    def corrupt(message: str) -> AnalysisError:
        if quarantine:
            target = quarantine_corrupt(path)
            return AnalysisError(f"{message} (quarantined to {target!r})")
        return AnalysisError(message)

    try:
        with open(path, "r") as fh:
            payload = json.load(fh)
    except OSError as err:
        raise AnalysisError(f"cannot read campaign checkpoint {path!r}: {err}")
    except json.JSONDecodeError as err:
        raise corrupt(f"corrupt campaign checkpoint {path!r}: {err}")
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise AnalysisError(f"{path!r} is not a campaign checkpoint")
    found = payload.get("schema_version", payload.get("version"))
    if found != CHECKPOINT_SCHEMA_VERSION:
        raise AnalysisError(
            f"unsupported campaign checkpoint schema_version {found!r} "
            f"(expected {CHECKPOINT_SCHEMA_VERSION})"
        )
    core = {
        key: payload.get(key)
        for key in ("format", "schema_version", "meta", "outcomes")
    }
    if payload.get("crc") != _payload_crc(core):
        raise corrupt(
            f"corrupt campaign checkpoint {path!r}: payload CRC mismatch "
            "(truncated or damaged write)"
        )
    outcomes = [RunOutcome.from_dict(o) for o in payload.get("outcomes", [])]
    return {"meta": payload.get("meta", {}), "outcomes": outcomes}
