"""The campaign journal: append-only, fsync'd, CRC-checked.

The durable work queue's only persistent state is this journal.  Every
state transition — a cell leased to a worker, a finished outcome, a
reclaimed lease after a worker death, a poison-cell quarantine — is one
record appended, flushed and ``fsync``'d before the coordinator acts on
it, so a ``kill -9`` at *any* instant loses at most the record being
written, and replay resumes exactly where the campaign stopped.

Format: JSON lines.  Each line is an envelope ``{"crc": C, "rec": R}``
where ``C`` is the CRC-32 of the canonical (sorted-key, no-whitespace)
JSON encoding of ``R`` — a torn write or a flipped bit makes the line
undecodable rather than silently wrong.  The first record is a header
carrying the format name, schema version and the campaign's matrix
metadata.  A damaged tail is handled by the same salvage policy as
event traces (:func:`repro.jsonlines.read_json_lines`): the valid
prefix is trusted, the bad line and everything after it are dropped.

Record types written by the queue (see :mod:`.queue`):

``lease``
    ``{cell, worker, attempt}`` — the cell was handed to a worker.
``done``
    ``{cell, outcome}`` — the cell completed; *outcome* is the
    round-trippable :meth:`RunOutcome.as_dict` form.
``release``
    ``{cell}`` — a lease was given back cleanly (graceful shutdown);
    does **not** count toward the poison tally.
``reclaim``
    ``{cell, crashes}`` — the leased worker died or its lease expired.
``quarantine``
    ``{cell, crashes, outcome}`` — the cell exceeded the poison retry
    cap and is excluded from further scheduling.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import AnalysisError
from ..jsonlines import read_json_lines

JOURNAL_FORMAT = "repro-campaign-journal"
JOURNAL_SCHEMA_VERSION = 1

#: record type of the mandatory first line
HEADER_TYPE = "header"


def _canonical(rec: Dict) -> str:
    return json.dumps(rec, sort_keys=True, separators=(",", ":"))


def encode_journal_line(rec: Dict) -> str:
    """One CRC-enveloped journal line (without the trailing newline).

    The CRC is computed over the *canonical* (sorted-key) encoding, but
    the stored record keeps its insertion order: nested payloads such
    as outcome dicts must round-trip byte-identically into resumed
    reports and checkpoints.
    """
    body = _canonical(rec)
    return json.dumps(
        {"crc": zlib.crc32(body.encode("utf-8")), "rec": rec},
        separators=(",", ":"),
    )


def decode_journal_line(line: str) -> Dict:
    """Inverse of :func:`encode_journal_line`.

    Raises :class:`ValueError` on bad JSON, a malformed envelope, or a
    CRC mismatch — exactly the failures the shared tail-salvage policy
    treats as a truncation point.
    """
    data = json.loads(line)
    if not isinstance(data, dict) or "rec" not in data or "crc" not in data:
        raise ValueError("malformed journal line (missing crc/rec envelope)")
    rec = data["rec"]
    if not isinstance(rec, dict):
        raise ValueError("malformed journal record (not an object)")
    if zlib.crc32(_canonical(rec).encode("utf-8")) != data["crc"]:
        raise ValueError("journal record CRC mismatch (damaged file)")
    return rec


class Journal:
    """Append-only writer.  Every append is flushed and fsync'd before
    returning, so the caller may treat a returned append as durable."""

    def __init__(
        self,
        path: str,
        meta: Optional[Dict] = None,
        *,
        fresh: bool = False,
        sync: bool = True,
    ) -> None:
        self.path = path
        self.sync = sync
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        self._fh = open(path, "w" if (fresh or not exists) else "a")
        if fresh or not exists:
            self.append(
                HEADER_TYPE,
                format=JOURNAL_FORMAT,
                schema_version=JOURNAL_SCHEMA_VERSION,
                meta=dict(meta or {}),
            )

    def append(self, rtype: str, **fields) -> None:
        rec = {"type": rtype}
        rec.update(fields)
        self._fh.write(encode_journal_line(rec) + "\n")
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalReplay:
    """Everything a replay salvaged from a journal file."""

    meta: Dict
    #: post-header records, in append order
    records: List[Dict] = field(default_factory=list)
    #: lines dropped from a damaged tail (0 for a clean journal)
    dropped: int = 0
    #: byte offset where the damaged tail starts (-1 for a clean journal)
    corrupt_byte_offset: int = -1

    @property
    def truncated(self) -> bool:
        return self.dropped > 0


def replay_journal(path: str) -> JournalReplay:
    """Read a journal back, salvaging a damaged tail.

    Tail truncation (a record cut mid-write by ``kill -9``, a flipped
    bit failing its CRC) is expected and tolerated: replay keeps the
    valid prefix and reports how many lines were dropped.  A missing or
    damaged *header* is not salvageable and raises
    :class:`~repro.errors.AnalysisError` — there is no campaign to
    resume.
    """
    try:
        with open(path, "r") as fh:
            records, truncation = read_json_lines(fh, decode_journal_line)
    except OSError as err:
        raise AnalysisError(f"cannot read campaign journal {path!r}: {err}")
    if not records:
        raise AnalysisError(
            f"campaign journal {path!r} has no readable header"
            + (f" ({truncation.error})" if truncation else "")
        )
    header = records[0]
    if header.get("type") != HEADER_TYPE or header.get("format") != JOURNAL_FORMAT:
        raise AnalysisError(f"{path!r} is not a campaign journal")
    found = header.get("schema_version")
    if found != JOURNAL_SCHEMA_VERSION:
        raise AnalysisError(
            f"unsupported campaign journal schema_version {found!r} "
            f"(expected {JOURNAL_SCHEMA_VERSION})"
        )
    return JournalReplay(
        meta=dict(header.get("meta", {})),
        records=records[1:],
        dropped=truncation.dropped if truncation else 0,
        corrupt_byte_offset=truncation.byte_offset if truncation else -1,
    )
