"""The hardened multi-seed campaign runner.

A campaign sweeps one program over a seed × fault-plan matrix, treating
every cell as expendable: a run may crash, deadlock, blow its step or
wall-clock budget, or produce a trace the analyzers choke on, and the
campaign still completes and reports whatever evidence survived.

Lifecycle per cell::

    run under budget ──ok──▶ analyze full trace
        │ budget exhausted / error
        ▼
    retry (up to ``retries`` times) with a derived seed and a reduced
    step budget — the simulator is deterministic, so retrying the same
    seed would reproduce the same failure
        │ still failing
        ▼
    salvage: analyze the best partial trace captured so far
        │ nothing salvageable
        ▼
    record the error; the cell contributes no findings

Findings from all analyzable cells are merged and deduplicated.  When
*no* cell is analyzable the campaign degrades to a clearly-flagged
static-only report built from the compile-time candidates — reduced
evidence, never silence.

Cells are independent deterministic simulations, so the matrix can run
on ``config.jobs`` worker processes (see :mod:`.parallel`): the static
phase runs once, a picklable :class:`CellExecutor` ships the prepared
program to each worker, cells complete out-of-order, and outcomes are
reassembled in canonical matrix order — the merged report, checkpoint
and exit code are identical to a serial run (wall-clock timing fields
aside; ``record_timing=False`` makes even those bit-exact).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..baselines.base import CheckingTool
from ..errors import AnalysisError
from ..faults import FaultPlan, builtin_plans
from ..home.pipeline import Home, static_only_violations
from ..minilang import ast_nodes as A
from ..runtime import make_interpreter
from ..runtime.scheduler import DEFAULT_MAX_STEPS
from ..violations.matcher import ViolationReport
from .checkpoint import load_checkpoint, save_checkpoint
from .journal import Journal, replay_journal
from .outcome import (
    STATUS_BUDGET,
    STATUS_ERROR,
    STATUS_FORCED,
    STATUS_OK,
    STATUS_QUARANTINED,
    RunOutcome,
    report_violation_dicts,
)
from .parallel import CellTask, resolve_jobs, run_cells_parallel
from .queue import DurableWorkQueue, cell_key
from .supervisor import Supervisor, SupervisorConfig

#: large odd prime so derived retry seeds never collide with the seed
#: grid itself (campaign seeds are small consecutive integers)
_RETRY_SEED_STRIDE = 100003


@dataclass
class CampaignConfig:
    """Everything that parameterizes one campaign."""

    seeds: Sequence[int] = (0, 1, 2, 3)
    #: plan name -> plan; ``None``/empty plan means a healthy library
    plans: Optional[Mapping[str, Optional[FaultPlan]]] = None
    nprocs: int = 2
    num_threads: int = 2
    #: per-run scheduler step budget
    budget_steps: int = DEFAULT_MAX_STEPS
    #: per-run host wall-clock budget in seconds; 0 = unlimited
    budget_seconds: float = 0.0
    #: extra attempts after a failed run (derived seed, reduced budget)
    retries: int = 1
    #: step-budget multiplier per retry (< 1: fail *faster*, so a retry
    #: yields a shorter but complete-enough partial trace)
    retry_budget_factor: float = 0.5
    thread_level_mode: str = "permissive"
    checkpoint: Optional[str] = None
    resume: bool = False
    #: degradation drill: pretend every dynamic run failed
    force_fail: bool = False
    #: parallel cell workers: an int, or ``"auto"`` for one per CPU
    #: core.  1 (the default) runs strictly serially in-process.  Every
    #: cell is deterministic and independent, so any worker count
    #: produces the same merged report, checkpoint and exit code — only
    #: wall-clock timing fields differ (see ``record_timing``).
    jobs: "int | str" = 1
    #: stamp host wall-clock seconds on outcomes; switch off for
    #: bit-exact artifacts across repeated or differently-parallel runs
    record_timing: bool = True
    #: path of the append-only campaign journal.  Setting this turns on
    #: the durable service path: every cell transition is journaled
    #: before it happens, ``kill -9`` at any instant resumes exactly,
    #: and (with ``jobs > 1``) cells run on supervised disposable
    #: workers instead of a fragile process pool.
    journal: Optional[str] = None
    #: durable path only: seconds a cell may run without a heartbeat
    #: before its worker is presumed dead and the cell is reclaimed
    lease_seconds: float = 60.0
    #: durable path only: crash-reclaims a cell may survive before it
    #: is quarantined as a poison cell (quarantined on crash
    #: ``poison_retries + 1``)
    poison_retries: int = 2
    #: chaos drill: SIGKILL one busy supervised worker right after the
    #: Nth fresh completion — exercises lease reclaim end-to-end
    drill_kill_worker_after: Optional[int] = None
    #: chaos drill: hard-kill the *coordinator* (``os._exit``) right
    #: after the Nth fresh completion — exercises journal resume
    drill_abort_after: Optional[int] = None

    def resolved_plans(self) -> Dict[str, Optional[FaultPlan]]:
        if self.plans is not None:
            return dict(self.plans)
        return {"none": None}


@dataclass
class CampaignResult:
    """Aggregated outcome of a whole campaign."""

    program: str
    outcomes: List[RunOutcome]
    report: ViolationReport
    static: Optional[object] = None
    #: True when no dynamic run was analyzable and the report was built
    #: from the static phase alone
    degraded: bool = False
    #: True when the campaign stopped early (SIGTERM/SIGINT): the
    #: report covers only the cells resolved so far
    interrupted: bool = False
    #: full matrix size; equals ``len(outcomes)`` unless interrupted
    planned_runs: Optional[int] = None

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    @property
    def analyzable_runs(self) -> int:
        return sum(1 for o in self.outcomes if o.analyzable)

    def faults_fired(self) -> int:
        return sum(o.faults_fired for o in self.outcomes)

    def divergence_triage(self) -> Optional[Dict]:
        """Campaign-level confirmed/refuted triage of the static
        collective-divergence candidates against the *merged* report —
        a candidate any cell confirmed is confirmed.  None when the
        static phase ran without the collectives pass (or found no
        candidates), or when the report is static-only (degraded: no
        execution ever monitored the sites, so refuted would be a lie).
        """
        collectives = getattr(self.static, "collectives", None)
        if collectives is None or not collectives.candidates or self.degraded:
            return None
        from ..home.pipeline import triage_divergence_candidates

        return triage_divergence_candidates(collectives, self.report)

    def summary(self) -> str:
        counts = ", ".join(
            f"{status}={n}" for status, n in sorted(self.status_counts().items())
        )
        lines = [
            f"=== campaign on {self.program}: {len(self.outcomes)} run(s) "
            f"({counts or 'none'}) ===",
            f"analyzable runs: {self.analyzable_runs}/{len(self.outcomes)}; "
            f"faults fired: {self.faults_fired()}",
        ]
        if self.interrupted:
            planned = self.planned_runs or len(self.outcomes)
            lines.append(
                f"!!! INTERRUPTED: partial campaign — {len(self.outcomes)}/"
                f"{planned} cell(s) resolved before the stop !!!"
            )
        quarantined = self.status_counts().get(STATUS_QUARANTINED, 0)
        if quarantined:
            lines.append(
                f"!!! {quarantined} poison cell(s) QUARANTINED after "
                "repeatedly killing their workers; those cells contribute "
                "no findings (see outcomes for which) !!!"
            )
        if self.degraded:
            lines.append(
                "!!! DEGRADED REPORT: every dynamic run failed; findings "
                "below are STATIC-ONLY candidates, unconfirmed by any "
                "execution !!!"
            )
        triage = self.divergence_triage()
        if triage is not None:
            lines.append(
                "collective-divergence triage: "
                f"{len(triage['confirmed'])} confirmed, "
                f"{len(triage['refuted'])} refuted"
            )
        lines.append(self.report.summary())
        return "\n".join(lines)

    def as_dict(self) -> Dict:
        triage = self.divergence_triage()
        out = {
            "program": self.program,
            "runs": len(self.outcomes),
            "planned_runs": self.planned_runs
            if self.planned_runs is not None else len(self.outcomes),
            "interrupted": self.interrupted,
            "quarantined": self.status_counts().get(STATUS_QUARANTINED, 0),
            "status_counts": self.status_counts(),
            "analyzable_runs": self.analyzable_runs,
            "faults_fired": self.faults_fired(),
            "degraded": self.degraded,
            "classes": self.report.classes(),
            "violations": report_violation_dicts(self.report),
            "outcomes": [o.as_dict() for o in self.outcomes],
        }
        if triage is not None:
            out["divergence_triage"] = triage
        return out


def merge_outcomes(
    outcomes: Sequence[RunOutcome], static: Optional[object]
) -> Tuple[ViolationReport, bool]:
    """Merge the analyzable outcomes into one deduplicated report.

    Returns ``(report, degraded)``; when *no* outcome is analyzable the
    report degrades to the clearly-flagged static-only candidates
    (reduced evidence, never silence).  Shared by the campaign runner
    and the streaming service so partial and final reports are built by
    the exact same code.
    """
    merged = ViolationReport()
    for outcome in outcomes:
        if outcome.analyzable:
            merged.merge(outcome.report())
    degraded = not any(o.analyzable for o in outcomes)
    if degraded and static is not None:
        merged = static_only_violations(static)
    return merged, degraded


class CellExecutor:
    """Runs single campaign cells from pre-computed static state.

    Picklable: a parallel campaign ships one executor to every worker
    process (program prepared and static analysis done exactly once, in
    the parent), and the serial path runs the very same object
    in-process — both paths execute identical per-cell code.
    """

    def __init__(
        self,
        tool: CheckingTool,
        config: CampaignConfig,
        to_run: A.Program,
        static: Optional[object],
    ) -> None:
        self.tool = tool
        self.config = config
        self.to_run = to_run
        self.static = static

    def run_cell(self, seed: int, plan_name: str, plan: Optional[FaultPlan]) -> RunOutcome:
        """One (seed, plan) cell: budgeted attempts, then salvage."""
        cfg = self.config
        started = time.perf_counter()
        if cfg.force_fail:
            return RunOutcome(
                seed=seed, plan=plan_name, status=STATUS_FORCED,
                error="forced failure (--force-fail)",
            )
        partial = None
        partial_attempt = 0
        last_error: Optional[str] = None
        result = None
        attempt = 0
        for attempt in range(cfg.retries + 1):
            sim_seed = seed + _RETRY_SEED_STRIDE * attempt
            budget = max(1, int(cfg.budget_steps * cfg.retry_budget_factor**attempt))
            try:
                run_config = self.tool.run_config(
                    cfg.nprocs, cfg.num_threads, sim_seed,
                    static=self.static,
                    thread_level_mode=cfg.thread_level_mode,
                    fault_plan=plan if plan else None,
                    max_steps=budget,
                    max_wall_seconds=cfg.budget_seconds,
                    capture_partial=True,
                )
                result = make_interpreter(self.to_run, run_config).run()
            except Exception as err:  # noqa: BLE001 - cell isolation:
                # one diseased run must never take down the campaign
                last_error = f"{type(err).__name__}: {err}"
                result = None
                continue
            if result.completed:
                break
            # budget exhausted: keep the longest partial trace seen
            if partial is None or len(result.log) > len(partial.log):
                partial = result
                partial_attempt = attempt
            result = None
        if result is None and partial is not None:
            result = partial
            attempt = partial_attempt
        wall = time.perf_counter() - started
        if result is None:
            return RunOutcome(
                seed=seed, plan=plan_name, attempt=attempt,
                sim_seed=seed + _RETRY_SEED_STRIDE * attempt,
                status=STATUS_ERROR,
                error=last_error or "run produced no trace",
                wall_seconds=wall if cfg.record_timing else 0.0,
            )
        outcome = RunOutcome(
            seed=seed, plan=plan_name, attempt=attempt,
            sim_seed=result.config.seed,
            status=STATUS_OK if result.completed else STATUS_BUDGET,
            deadlocked=result.deadlocked,
            failure=result.failure,
            events=len(result.log),
            faults_fired=len(result.stats.get("faults_injected", ())),
            crashed_ranks=list(
                result.stats.get("faults", {}).get("crashed_ranks", ())
            ),
        )
        try:
            violations = self.tool.analyze(result, self.static)
        except Exception as err:  # noqa: BLE001 - partial traces may
            # violate analyzer invariants; record, don't propagate
            outcome.analysis_error = f"{type(err).__name__}: {err}"
        else:
            outcome.violations = report_violation_dicts(violations)
        if cfg.record_timing:
            outcome.wall_seconds = time.perf_counter() - started
        return outcome


class CampaignRunner:
    """Run one program through the campaign matrix with crash isolation."""

    def __init__(
        self,
        program: A.Program,
        config: CampaignConfig = CampaignConfig(),
        tool: Optional[CheckingTool] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.program = program
        self.config = config
        self.tool = tool if tool is not None else Home()
        self._progress = progress
        #: prepared once: instrumentation is deterministic and the
        #: interpreter never mutates the AST, so all cells (and all
        #: worker processes) share it
        self._to_run, self._static = self.tool.prepare(program)
        self._executor = CellExecutor(
            self.tool, self.config, self._to_run, self._static
        )

    @property
    def static(self) -> Optional[object]:
        """The once-computed static report (shared by every cell)."""
        return self._static

    # -- helpers -------------------------------------------------------------

    def _say(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)

    def _warn(self, message: str) -> None:
        """One-line warning that must reach the user even without a
        progress callback (e.g. a quiet ``--resume`` that found an
        unusable checkpoint)."""
        if self._progress is not None:
            self._progress(f"warning: {message}")
        else:
            print(f"warning: {message}", file=sys.stderr)

    def _matrix(self) -> List[Tuple[int, str, Optional[FaultPlan]]]:
        cells = []
        for plan_name, plan in self.config.resolved_plans().items():
            for seed in self.config.seeds:
                cells.append((int(seed), plan_name, plan))
        return cells

    def _checkpoint_meta(self) -> Dict:
        cfg = self.config
        return {
            "program": self.program.name,
            "tool": self.tool.name,
            "nprocs": cfg.nprocs,
            "num_threads": cfg.num_threads,
            "seeds": [int(s) for s in cfg.seeds],
            "plans": {
                name: (plan.as_dict() if plan else None)
                for name, plan in cfg.resolved_plans().items()
            },
            "budget_steps": cfg.budget_steps,
            "budget_seconds": cfg.budget_seconds,
            "retries": cfg.retries,
        }

    def _load_resume(self) -> Dict[str, RunOutcome]:
        """Outcomes already banked in the checkpoint, keyed by cell."""
        cfg = self.config
        if not (cfg.resume and cfg.checkpoint):
            return {}
        import os

        if not os.path.exists(cfg.checkpoint):
            return {}  # nothing to resume: a normal first run
        try:
            # quarantine=True: a corrupt file is moved to <path>.corrupt
            # so the evidence survives and the next save starts clean
            state = load_checkpoint(cfg.checkpoint, quarantine=True)
        except Exception as err:  # noqa: BLE001 - a bad checkpoint must
            # never kill the campaign; it just means a cold start
            self._warn(f"ignoring unusable checkpoint: {err}; starting cold")
            return {}
        if state["meta"].get("program") not in (None, self.program.name):
            self._warn(
                "checkpoint is for program "
                f"{state['meta'].get('program')!r}; starting cold"
            )
            return {}
        return {o.key: o for o in state["outcomes"]}

    # -- one cell ------------------------------------------------------------

    def run_cell(self, seed: int, plan_name: str, plan: Optional[FaultPlan]) -> RunOutcome:
        """One (seed, plan) cell: budgeted attempts, then salvage."""
        return self._executor.run_cell(seed, plan_name, plan)

    # -- the campaign --------------------------------------------------------

    def run(
        self,
        stop: Optional[threading.Event] = None,
        on_cell: Optional[Callable[[List[RunOutcome]], None]] = None,
    ) -> CampaignResult:
        """Run the matrix to completion (or until *stop* is set).

        *stop* makes the campaign interruptible: set it (e.g. from a
        SIGTERM handler) and the runner finishes or releases in-flight
        cells, checkpoints what it has, and returns a partial result
        flagged ``interrupted``.  *on_cell*, when given, receives the
        canonical-order outcome list after every banked cell — the hook
        the streaming service uses to publish partial reports.

        With ``config.journal`` set the campaign takes the durable
        service path (journaled work queue + supervised workers);
        otherwise the legacy pool path runs unchanged.
        """
        if self.config.journal:
            return self._run_durable(stop, on_cell)
        return self._run_pool(stop, on_cell)

    def _finish(
        self, outcomes: List[RunOutcome], total: int, interrupted: bool
    ) -> CampaignResult:
        merged, degraded = merge_outcomes(outcomes, self._static)
        return CampaignResult(
            program=self.program.name,
            outcomes=outcomes,
            report=merged,
            static=self._static,
            degraded=degraded,
            interrupted=interrupted,
            planned_runs=total,
        )

    def _run_pool(
        self,
        stop: Optional[threading.Event],
        on_cell: Optional[Callable[[List[RunOutcome]], None]],
    ) -> CampaignResult:
        cfg = self.config
        banked = self._load_resume()
        cells = self._matrix()
        total = len(cells)
        #: canonical matrix index -> outcome; artifacts are always
        #: assembled from this in index order, so completion order (and
        #: therefore the worker count) never changes what is written
        completed: Dict[int, RunOutcome] = {}
        pending: List[CellTask] = []
        for index, (seed, plan_name, plan) in enumerate(cells):
            cached = banked.get(f"{seed}/{plan_name}")
            if cached is not None:
                completed[index] = cached
            else:
                pending.append(CellTask(index, seed, plan_name, plan))
        announced = 0
        for index in sorted(completed):
            announced += 1
            self._say(f"[{announced}/{total}] {completed[index].describe()} (resumed)")

        def bank(task: CellTask, outcome: RunOutcome) -> None:
            nonlocal announced
            completed[task.index] = outcome
            announced += 1
            self._say(f"[{announced}/{total}] {outcome.describe()}")
            if cfg.checkpoint:
                save_checkpoint(
                    cfg.checkpoint,
                    self._checkpoint_meta(),
                    [completed[i] for i in sorted(completed)],
                )
            if on_cell is not None:
                on_cell([completed[i] for i in sorted(completed)])

        jobs = resolve_jobs(cfg.jobs, len(pending))
        if pending and jobs > 1:
            _, pool_error = run_cells_parallel(
                self._executor, pending, jobs, bank, stop=stop
            )
            if pool_error is not None:
                self._say(
                    f"worker pool failed ({pool_error}); remaining cells "
                    "were completed in-process"
                )
        else:
            for task in pending:
                if stop is not None and stop.is_set():
                    break
                bank(task, self._executor.run_cell(task.seed, task.plan_name, task.plan))
        outcomes = [completed[index] for index in sorted(completed)]
        interrupted = len(outcomes) < total
        if cfg.checkpoint:
            # final save covers the all-resumed case and guarantees the
            # on-disk state is the canonical-order (partial) matrix
            save_checkpoint(cfg.checkpoint, self._checkpoint_meta(), outcomes)
        return self._finish(outcomes, total, interrupted)

    # -- the durable service path --------------------------------------------

    def _open_journal(self, tasks: List[CellTask]) -> DurableWorkQueue:
        """Open (or resume) the journal and build the restored queue."""
        cfg = self.config
        replay = None
        fresh = True
        if cfg.resume and os.path.exists(cfg.journal):
            try:
                replay = replay_journal(cfg.journal)
            except AnalysisError as err:
                self._warn(f"ignoring unusable journal: {err}; starting cold")
            else:
                fresh = False
                if replay.truncated:
                    self._warn(
                        "journal tail was damaged (interrupted write?); "
                        f"dropped {replay.dropped} trailing line(s) and "
                        "kept the valid prefix"
                    )
        journal = Journal(cfg.journal, self._checkpoint_meta(), fresh=fresh)
        work = DurableWorkQueue(
            tasks, journal,
            lease_seconds=cfg.lease_seconds,
            poison_retries=cfg.poison_retries,
        )
        if replay is not None:
            work.restore(replay, warn=self._warn)
        return work

    def _run_durable(
        self,
        stop: Optional[threading.Event],
        on_cell: Optional[Callable[[List[RunOutcome]], None]],
    ) -> CampaignResult:
        cfg = self.config
        cells = self._matrix()
        tasks = [
            CellTask(index, seed, plan_name, plan)
            for index, (seed, plan_name, plan) in enumerate(cells)
        ]
        total = len(tasks)
        work = self._open_journal(tasks)
        # fold in a checkpoint resumed without (or beyond) the journal;
        # complete() journals each, so the journal converges to the
        # union of both artifacts
        banked = self._load_resume()
        for task in tasks:
            cached = banked.get(cell_key(task))
            if cached is not None and not work.resolved(task.index):
                work.complete(task.index, cached)
        announced = 0
        for outcome in work.outcome_list():
            announced += 1
            self._say(f"[{announced}/{total}] {outcome.describe()} (resumed)")
        fresh_done = 0

        def bank(task: CellTask, outcome: RunOutcome) -> None:
            nonlocal announced, fresh_done
            announced += 1
            self._say(f"[{announced}/{total}] {outcome.describe()}")
            if cfg.checkpoint:
                save_checkpoint(
                    cfg.checkpoint, self._checkpoint_meta(), work.outcome_list()
                )
            if on_cell is not None:
                on_cell(work.outcome_list())
            fresh_done += 1
            if cfg.drill_abort_after is not None \
                    and fresh_done >= cfg.drill_abort_after \
                    and not work.all_resolved():
                self._say(
                    "drill: hard-killing the coordinator mid-campaign "
                    "(journal + checkpoint must carry the resume)"
                )
                sys.stdout.flush()
                sys.stderr.flush()
                os._exit(137)

        try:
            jobs = resolve_jobs(cfg.jobs, work.unresolved_count)
            if jobs > 1:
                supervisor = Supervisor(
                    self._executor, work,
                    SupervisorConfig(
                        jobs=jobs,
                        lease_seconds=cfg.lease_seconds,
                        drill_kill_worker_after=cfg.drill_kill_worker_after,
                    ),
                    on_complete=bank, say=self._say, stop=stop,
                )
                supervisor.run()
            else:
                while not work.all_resolved():
                    if stop is not None and stop.is_set():
                        break
                    lease = work.acquire("serial", time.monotonic())
                    if lease is None:
                        break
                    outcome = self._executor.run_cell(
                        lease.task.seed, lease.task.plan_name, lease.task.plan
                    )
                    if work.complete(lease.task.index, outcome):
                        bank(lease.task, outcome)
        finally:
            work.journal.close()
        outcomes = work.outcome_list()
        interrupted = not work.all_resolved()
        if cfg.checkpoint:
            save_checkpoint(cfg.checkpoint, self._checkpoint_meta(), outcomes)
        return self._finish(outcomes, total, interrupted)


def run_campaign(
    program: A.Program,
    config: CampaignConfig = CampaignConfig(),
    tool: Optional[CheckingTool] = None,
    progress: Optional[Callable[[str], None]] = None,
    stop: Optional[threading.Event] = None,
    on_cell: Optional[Callable[[List[RunOutcome]], None]] = None,
) -> CampaignResult:
    """One-call convenience wrapper."""
    return CampaignRunner(program, config, tool, progress).run(
        stop=stop, on_cell=on_cell
    )


def default_plan_matrix(nprocs: int, names: Optional[Sequence[str]] = None):
    """Resolve plan names against the builtin set (CLI helper)."""
    available = builtin_plans(nprocs)
    if names is None:
        return available
    out: Dict[str, Optional[FaultPlan]] = {}
    for name in names:
        if name not in available:
            raise KeyError(
                f"unknown fault plan {name!r} "
                f"(available: {', '.join(sorted(available))})"
            )
        out[name] = available[name]
    return out
