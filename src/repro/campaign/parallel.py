"""Parallel cell dispatch for campaigns.

Every campaign cell is a deterministic, independent simulation, so the
matrix is embarrassingly parallel.  The dispatcher here runs cells
out-of-order on a :class:`~concurrent.futures.ProcessPoolExecutor`
while preserving the campaign's contract:

* the static phase runs **once** in the parent; the prepared program
  and :class:`StaticReport` are shipped to each worker exactly once via
  the pool initializer (a picklable :class:`CellExecutor`), not once
  per cell;
* each cell is crash-isolated twice over — ``run_cell`` already
  converts in-cell exceptions into error outcomes, and
  :func:`_run_cell` catches anything that escapes so a diseased cell
  returns an outcome instead of poisoning the pool;
* if the pool itself dies (a worker process is killed outright), the
  dispatcher finishes the unfinished cells in-process — parallelism is
  an optimization, never a new failure mode;
* callers reassemble outcomes in canonical matrix order, so reports,
  checkpoints and exit codes are independent of completion order.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..faults import FaultPlan
from .outcome import STATUS_ERROR, RunOutcome


@dataclass(frozen=True)
class CellTask:
    """One (seed, plan) cell of the campaign matrix, picklable for
    dispatch to a worker process."""

    #: canonical position in the matrix — outcomes are merged by this
    #: index so parallel completion order never leaks into artifacts
    index: int
    seed: int
    plan_name: str
    plan: Optional[FaultPlan]


def resolve_jobs(jobs, cells: int) -> int:
    """Resolve a ``--jobs`` value to a concrete worker count.

    ``"auto"``/``None``/``0`` mean one worker per CPU core; the result
    is always capped by the number of runnable cells and floored at 1.
    """
    if jobs in (None, 0, "auto", ""):
        resolved = os.cpu_count() or 1
    else:
        resolved = int(jobs)
        if resolved < 1:
            raise ValueError(f"--jobs must be >= 1 or 'auto', got {jobs!r}")
    return max(1, min(resolved, max(cells, 1)))


#: per-worker cell executor, installed once by the pool initializer
_WORKER = None


def _init_worker(executor) -> None:
    global _WORKER
    _WORKER = executor


def _run_cell(task: CellTask) -> RunOutcome:
    """Worker entry point: run one cell with total crash isolation."""
    try:
        return _WORKER.run_cell(task.seed, task.plan_name, task.plan)
    except BaseException as err:  # noqa: BLE001 - a worker must always
        # hand back *an* outcome; anything escaping run_cell's own
        # isolation becomes an error record for this cell alone
        return RunOutcome(
            seed=task.seed,
            plan=task.plan_name,
            status=STATUS_ERROR,
            error=f"worker: {type(err).__name__}: {err}",
        )


def run_cells_parallel(
    executor,
    tasks: Sequence[CellTask],
    jobs: int,
    on_complete: Callable[[CellTask, RunOutcome], None],
    stop=None,
) -> Tuple[Dict[int, RunOutcome], Optional[str]]:
    """Run *tasks* on a pool of *jobs* workers, out-of-order.

    *executor* is the parent's :class:`CellExecutor`; it is shipped to
    each worker once and reused in-process if the pool breaks.
    *on_complete* fires after every finished cell (progress +
    checkpointing), in completion order.  A set *stop* event (e.g. from
    a SIGTERM handler) cancels unstarted cells and returns what
    finished — already-banked outcomes are never discarded.

    Returns ``(outcomes_by_index, pool_error)`` where *pool_error* is a
    description of a pool-level failure that forced the in-process
    fallback, or ``None`` on a clean parallel run.
    """
    results: Dict[int, RunOutcome] = {}
    pool_error: Optional[str] = None
    interrupted = False
    try:
        with ProcessPoolExecutor(
            max_workers=jobs, initializer=_init_worker, initargs=(executor,)
        ) as pool:
            futures = {pool.submit(_run_cell, task): task for task in tasks}
            for future in as_completed(futures):
                if stop is not None and stop.is_set():
                    interrupted = True
                    pool.shutdown(wait=False, cancel_futures=True)
                    break
                task = futures[future]
                try:
                    outcome = future.result()
                except Exception as err:  # noqa: BLE001 - a broken pool
                    # invalidates every pending future; stop draining and
                    # let the fallback below finish the remaining cells
                    pool_error = f"{type(err).__name__}: {err}"
                    break
                results[task.index] = outcome
                on_complete(task, outcome)
    except Exception as err:  # noqa: BLE001 - pool construction/teardown
        pool_error = f"{type(err).__name__}: {err}"
    if pool_error is not None and not interrupted:
        for task in tasks:
            if task.index in results:
                continue
            if stop is not None and stop.is_set():
                break
            outcome = _run_cell_inprocess(executor, task)
            results[task.index] = outcome
            on_complete(task, outcome)
    return results, pool_error


def _run_cell_inprocess(executor, task: CellTask) -> RunOutcome:
    try:
        return executor.run_cell(task.seed, task.plan_name, task.plan)
    except BaseException as err:  # noqa: BLE001 - same contract as workers
        return RunOutcome(
            seed=task.seed,
            plan=task.plan_name,
            status=STATUS_ERROR,
            error=f"worker: {type(err).__name__}: {err}",
        )
