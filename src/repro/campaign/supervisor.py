"""Supervised worker pool for durable campaigns.

The legacy parallel dispatcher (:mod:`.parallel`) treats the process
pool as fragile: one killed worker breaks the whole pool and the
dispatcher falls back to in-process execution.  The supervisor inverts
that: workers are **disposable** and the pool is self-healing.

* Each worker is a separate ``multiprocessing.Process`` with its own
  task queue; the supervisor hands it one cell at a time under a
  time-bounded **lease** and the worker heartbeats while it runs, so a
  hung cell cannot stall the campaign past its lease.
* A dead worker (SIGKILLed, segfaulted, OOM-killed) or an expired
  lease **reclaims** the cell through the durable queue — the journal
  records the crash — and the worker is restarted with capped
  exponential backoff.
* A cell that keeps killing its workers is a **poison cell**: past the
  queue's retry cap it is quarantined with a deterministic placeholder
  outcome and the rest of the matrix proceeds.

Workers set :data:`~repro.faults.DISPOSABLE_WORKER_ENV` so the
``worker-kill`` drill fault really SIGKILLs them (the service's
self-test), and they watch their parent pid so a hard-killed
coordinator cannot leave orphans holding pipes open.

Determinism: cells are deterministic simulations, and the queue banks
the first result per cell, so worker count, kill timing, lease
reclaims and restarts can change *when* outcomes arrive but never what
is recorded.  Artifacts are always assembled in canonical matrix
order.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as _queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..faults.injector import DISPOSABLE_WORKER_ENV
from .outcome import STATUS_ERROR, RunOutcome
from .parallel import CellTask
from .queue import DurableWorkQueue, Lease


@dataclass
class SupervisorConfig:
    """Knobs of the supervised pool (all host-time, never sim-time)."""

    jobs: int = 2
    #: a cell whose worker neither heartbeats nor completes for this
    #: long is presumed hung; its worker is killed and the cell reclaimed
    lease_seconds: float = 60.0
    #: worker heartbeat period (well under the lease)
    heartbeat_seconds: float = 0.5
    #: supervisor event-loop pacing
    poll_seconds: float = 0.05
    #: capped exponential backoff for restarting crashed workers
    backoff_base_seconds: float = 0.05
    backoff_cap_seconds: float = 2.0
    #: chaos drill: SIGKILL one busy worker right after the Nth fresh
    #: completion (exactly once) — self-test for lease reclaim
    drill_kill_worker_after: Optional[int] = None


def _worker_main(executor, worker_id: str, task_q, result_q,
                 heartbeat_seconds: float, parent_pid: int) -> None:
    """Worker process body: pull cells, heartbeat, return outcomes."""
    os.environ[DISPOSABLE_WORKER_ENV] = "1"
    current = {"index": None}
    stop_hb = threading.Event()

    def _heartbeats() -> None:
        while not stop_hb.wait(heartbeat_seconds):
            if os.getppid() != parent_pid:
                # coordinator hard-killed: die rather than linger as an
                # orphan holding the result pipe open
                os._exit(0)
            index = current["index"]
            if index is not None:
                try:
                    result_q.put(("hb", worker_id, index))
                except Exception:
                    return

    threading.Thread(target=_heartbeats, daemon=True).start()
    while True:
        try:
            task = task_q.get(timeout=1.0)
        except _queue.Empty:
            if os.getppid() != parent_pid:
                os._exit(0)
            continue
        if task is None:
            stop_hb.set()
            return
        current["index"] = task.index
        try:
            outcome = executor.run_cell(task.seed, task.plan_name, task.plan)
        except BaseException as err:  # noqa: BLE001 - same contract as
            # the pool workers: always hand back *an* outcome
            outcome = RunOutcome(
                seed=task.seed, plan=task.plan_name, status=STATUS_ERROR,
                error=f"worker: {type(err).__name__}: {err}",
            )
        current["index"] = None
        result_q.put(("done", worker_id, (task.index, outcome)))


@dataclass
class _Slot:
    """One supervised worker position."""

    worker_id: str
    proc: Optional[multiprocessing.Process] = None
    task_q: Optional[object] = None
    busy: Optional[Lease] = None
    restarts: int = 0
    respawn_at: float = 0.0
    kills: int = field(default=0)  # workers this slot lost (stats)


class Supervisor:
    """Runs a :class:`DurableWorkQueue` to completion on supervised
    disposable workers."""

    def __init__(
        self,
        executor,
        work: DurableWorkQueue,
        config: SupervisorConfig,
        *,
        on_complete: Optional[Callable[[CellTask, RunOutcome], None]] = None,
        say: Optional[Callable[[str], None]] = None,
        stop: Optional[threading.Event] = None,
    ) -> None:
        self.executor = executor
        self.work = work
        self.config = config
        self.on_complete = on_complete
        self._say = say or (lambda message: None)
        self._stop = stop
        self._mp = multiprocessing.get_context()
        self._result_q = self._mp.Queue()
        self._slots: List[_Slot] = [
            _Slot(worker_id=f"w{i}") for i in range(max(1, config.jobs))
        ]
        self._completed = 0
        self._drill_fired = False
        #: (worker_id, cell index) whose in-flight result the drill
        #: invalidated — see _maybe_drill_kill
        self._drill_dropped = None

    # -- lifecycle -----------------------------------------------------------

    def run(self) -> None:
        """Block until every cell is resolved (or *stop* is set)."""
        try:
            while not self.work.all_resolved():
                if self._stop is not None and self._stop.is_set():
                    self._drain_results(block=False)
                    self._release_leases()
                    return
                now = time.monotonic()
                self._reap(now)
                self._spawn_and_assign(now)
                self._drain_results(block=True)
        finally:
            self._shutdown()

    # -- event handling ------------------------------------------------------

    def _drain_results(self, block: bool) -> None:
        first = True
        while True:
            try:
                message = self._result_q.get(
                    timeout=self.config.poll_seconds if (block and first) else 0
                )
            except _queue.Empty:
                return
            except Exception:
                # a SIGKILLed worker can leave a torn pickle in the
                # pipe; drop it — the lease machinery re-runs the cell
                first = False
                continue
            first = False
            kind, worker_id, payload = message
            if kind == "hb":
                self.work.heartbeat(payload, time.monotonic())
            elif kind == "done":
                if (worker_id, payload[0]) == self._drill_dropped:
                    self._drill_dropped = None
                    continue
                self._on_done(worker_id, *payload)

    def _on_done(self, worker_id: str, index: int, outcome: RunOutcome) -> None:
        for slot in self._slots:
            if slot.worker_id == worker_id and slot.busy is not None \
                    and slot.busy.task.index == index:
                slot.busy = None
                slot.restarts = 0  # a healthy completion resets backoff
                break
        task = self.work.task_for(index)
        if self.work.complete(index, outcome):
            self._completed += 1
            if self.on_complete is not None:
                self.on_complete(task, outcome)
            self._maybe_drill_kill()

    def _maybe_drill_kill(self) -> None:
        cfg = self.config
        if (cfg.drill_kill_worker_after is None or self._drill_fired
                or self._completed < cfg.drill_kill_worker_after):
            return
        busy = [s for s in self._slots
                if s.busy is not None and s.proc is not None and s.proc.is_alive()]
        if not busy:
            return  # stay armed until a worker is mid-cell
        victim = min(busy, key=lambda s: s.busy.task.index)
        self._drill_fired = True
        self._say(
            f"drill: SIGKILL worker {victim.worker_id} mid-cell "
            f"(cell {victim.busy.task.seed}/{victim.busy.task.plan_name})"
        )
        # the victim may have finished the cell and queued its result in
        # the instant before the SIGKILL lands; drop that in-flight
        # result so the drill deterministically exercises the crash ->
        # reclaim -> re-run path it exists to self-test
        self._drill_dropped = (victim.worker_id, victim.busy.task.index)
        victim.proc.kill()

    # -- worker supervision --------------------------------------------------

    def _reap(self, now: float) -> None:
        for slot in self._slots:
            if slot.proc is None:
                continue
            if not slot.proc.is_alive():
                exitcode = slot.proc.exitcode
                self._worker_lost(slot, now, f"died (exit {exitcode})")
            elif slot.busy is not None and slot.busy.expires_at <= now:
                slot.proc.kill()
                slot.proc.join()
                self._worker_lost(
                    slot, now,
                    f"lease expired after {self.work.lease_seconds:g}s "
                    "without a heartbeat; killed",
                )

    def _worker_lost(self, slot: _Slot, now: float, why: str) -> None:
        if self._drill_dropped is not None \
                and self._drill_dropped[0] == slot.worker_id:
            # the drill victim is confirmed dead and its lease is being
            # reclaimed below; disarm the drop so a *respawned* worker's
            # completion of the same cell is not swallowed (a stale
            # pre-kill result racing in after this point is identical to
            # a re-run, so accepting it is harmless)
            self._drill_dropped = None
        lease = slot.busy
        if lease is not None:
            key = f"{lease.task.seed}/{lease.task.plan_name}"
            quarantined = self.work.record_crash(lease.task.index)
            if quarantined:
                self._say(
                    f"worker {slot.worker_id} {why} running cell {key}; "
                    "cell QUARANTINED as poison"
                )
                outcome = self.work.quarantined[lease.task.index]
                self._completed += 1
                if self.on_complete is not None:
                    self.on_complete(lease.task, outcome)
            else:
                self._say(
                    f"worker {slot.worker_id} {why} running cell {key}; "
                    "lease reclaimed"
                )
            slot.busy = None
        if slot.proc is not None:
            slot.proc.join()
        slot.proc = None
        slot.task_q = None
        slot.kills += 1
        slot.restarts += 1
        backoff = min(
            self.config.backoff_cap_seconds,
            self.config.backoff_base_seconds * (2 ** min(slot.restarts - 1, 16)),
        )
        slot.respawn_at = now + backoff

    def _spawn_and_assign(self, now: float) -> None:
        for slot in self._slots:
            if slot.proc is None and now >= slot.respawn_at and self.work.has_pending():
                self._spawn(slot)
            if slot.proc is None or slot.busy is not None:
                continue
            lease = self.work.acquire(slot.worker_id, now)
            if lease is None:
                continue
            slot.busy = lease
            slot.task_q.put(lease.task)

    def _spawn(self, slot: _Slot) -> None:
        slot.task_q = self._mp.Queue()
        slot.proc = self._mp.Process(
            target=_worker_main,
            args=(self.executor, slot.worker_id, slot.task_q, self._result_q,
                  self.config.heartbeat_seconds, os.getpid()),
            daemon=True,
        )
        slot.proc.start()

    # -- shutdown ------------------------------------------------------------

    def _release_leases(self) -> None:
        """Graceful stop: hand open leases back (not crashes)."""
        for slot in self._slots:
            if slot.busy is not None:
                self.work.release(slot.busy.task.index)
                slot.busy = None

    def _shutdown(self) -> None:
        for slot in self._slots:
            if slot.proc is None:
                continue
            if slot.proc.is_alive() and slot.task_q is not None:
                try:
                    slot.task_q.put(None)
                except Exception:
                    pass
        for slot in self._slots:
            if slot.proc is None:
                continue
            slot.proc.join(timeout=0.5)
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join()
            slot.proc = None
        self._result_q.close()
