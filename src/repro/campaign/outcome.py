"""Per-run campaign outcomes.

A :class:`RunOutcome` is the crash-isolated record of one (seed, fault
plan) cell of the campaign matrix: what happened, which faults fired,
and the violations the analyzers salvaged from the (possibly partial)
trace.  Outcomes are plain JSON-serializable data so the campaign can
checkpoint after every run and resume exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..violations.matcher import ViolationReport
from ..violations.spec import Violation

#: run completed (deadlock included: the schedule terminated and the
#: trace is whole)
STATUS_OK = "ok"
#: step/wall budget exhausted; a partial trace was salvaged
STATUS_BUDGET = "budget"
#: the run (or its analysis) raised; nothing usable came out
STATUS_ERROR = "error"
#: --force-fail: the run was never attempted (degradation drill)
STATUS_FORCED = "forced-fail"
#: poison cell: killed its worker more times than the retry cap allows;
#: excluded from further scheduling so it cannot stall the campaign
STATUS_QUARANTINED = "quarantined"

RUN_STATUSES = (
    STATUS_OK, STATUS_BUDGET, STATUS_ERROR, STATUS_FORCED, STATUS_QUARANTINED,
)


def violation_to_dict(violation: Violation, procs: List[int]) -> Dict:
    """Round-trippable form (unlike the render module's lossy export)."""
    return {
        "class": violation.vclass,
        "proc": violation.proc,
        "message": violation.message,
        "callsites": list(violation.callsites),
        "locs": list(violation.locs),
        "threads": list(violation.threads),
        "ops": list(violation.ops),
        "procs": sorted(procs),
    }


def violation_from_dict(data: Dict) -> Tuple[Violation, List[int]]:
    violation = Violation(
        vclass=data["class"],
        proc=data["proc"],
        message=data["message"],
        callsites=tuple(data.get("callsites", ())),
        locs=tuple(data.get("locs", ())),
        threads=tuple(data.get("threads", ())),
        ops=tuple(data.get("ops", ())),
    )
    return violation, list(data.get("procs", [violation.proc]))


def report_violation_dicts(report: ViolationReport) -> List[Dict]:
    return [
        violation_to_dict(v, report.procs_by_finding.get(v.dedup_key(), []))
        for v in report
    ]


@dataclass
class RunOutcome:
    """Crash-isolated result of one campaign cell (its final attempt)."""

    seed: int
    plan: str
    attempt: int = 0
    #: simulation seed of the recorded attempt (retries derive new ones)
    sim_seed: int = 0
    status: str = STATUS_OK
    deadlocked: bool = False
    #: interpreter failure string for budget-exhausted runs
    failure: Optional[str] = None
    #: why the run (or its analysis) was unusable
    error: Optional[str] = None
    analysis_error: Optional[str] = None
    events: int = 0
    faults_fired: int = 0
    crashed_ranks: List[int] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: violations found in this run (:func:`violation_to_dict` form)
    violations: List[Dict] = field(default_factory=list)

    @property
    def analyzable(self) -> bool:
        """Did this run contribute a trace the analyzers processed?"""
        return (
            self.status in (STATUS_OK, STATUS_BUDGET)
            and self.analysis_error is None
        )

    @property
    def key(self) -> str:
        return f"{self.seed}/{self.plan}"

    def report(self) -> ViolationReport:
        """Rebuild this run's findings as a mergeable report."""
        out = ViolationReport()
        for data in self.violations:
            violation, procs = violation_from_dict(data)
            out.add(violation)
            mine = out.procs_by_finding[violation.dedup_key()]
            for proc in procs:
                if proc not in mine:
                    mine.append(proc)
        return out

    def describe(self) -> str:
        bits = [f"seed={self.seed} plan={self.plan} status={self.status}"]
        if self.attempt:
            bits.append(f"attempt={self.attempt}")
        if self.deadlocked:
            bits.append("deadlocked")
        if self.faults_fired:
            bits.append(f"faults={self.faults_fired}")
        if self.violations:
            bits.append(f"violations={len(self.violations)}")
        if self.error:
            bits.append(f"error={self.error!r}")
        return " ".join(bits)

    def as_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "plan": self.plan,
            "attempt": self.attempt,
            "sim_seed": self.sim_seed,
            "status": self.status,
            "deadlocked": self.deadlocked,
            "failure": self.failure,
            "error": self.error,
            "analysis_error": self.analysis_error,
            "events": self.events,
            "faults_fired": self.faults_fired,
            "crashed_ranks": list(self.crashed_ranks),
            "wall_seconds": self.wall_seconds,
            "violations": list(self.violations),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunOutcome":
        known = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in data.items() if k in known})
