"""``repro serve`` — a durable, incremental campaign service.

The service watches a **spool directory** for submissions and streams
partial reports as cells complete.  The protocol is plain files, so any
client that can write JSON and rename it can drive the service, and
every piece of state survives a hard kill of the server:

.. code-block:: text

    <spool>/
      incoming/   drop submissions here: one JSON file per campaign
      active/     claimed submissions + their journal and checkpoint
      reports/    <name>.report.json, atomically replaced per cell
                  ("partial": true) and on completion ("partial": false)
      done/       finished submissions and their durability artifacts
      failed/     rejected submissions, with <name>.error.txt

A submission is a JSON object: ``{"program": "<minilang source>"}``
plus optional campaign knobs (``seeds``, ``plans``, ``nprocs``,
``num_threads``, ``jobs``, ``budget_steps``, ``retries``,
``poison_retries``, ``lease_seconds``, ``record_timing``).  Submitting
is atomic by construction: write the file elsewhere and ``rename`` it
into ``incoming/``.

Every campaign runs on the durable path (journal in ``active/``), so a
server killed — ``kill -9`` included — and restarted on the same spool
resumes each active submission exactly where it stopped and produces
the same final report a never-interrupted server would.  A graceful
stop (SIGTERM/SIGINT) leaves the in-flight submission in ``active/``
with its partial report current.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import AnalysisError
from ..minilang import parse, renumber_nids
from .outcome import RunOutcome, report_violation_dicts
from .runner import (
    CampaignConfig,
    CampaignRunner,
    default_plan_matrix,
    merge_outcomes,
)

#: spool subdirectories, in lifecycle order
SPOOL_DIRS = ("incoming", "active", "reports", "done", "failed")


@dataclass
class ServeConfig:
    """Parameters of one service instance."""

    spool: str
    #: default worker count for submissions that don't set ``jobs``
    jobs: "int | str" = 1
    #: incoming/ scan period
    poll_seconds: float = 0.5
    #: drain the spool once and exit instead of watching forever
    once: bool = False


def _atomic_write_json(path: str, payload: dict) -> None:
    tmp = f"{path}.tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


class CampaignService:
    """Single-process spool-directory campaign server."""

    def __init__(
        self,
        config: ServeConfig,
        progress: Optional[Callable[[str], None]] = None,
        stop: Optional[threading.Event] = None,
    ) -> None:
        self.config = config
        self._progress = progress
        self._stop = stop if stop is not None else threading.Event()
        self.processed = 0
        self.failed = 0
        for sub in SPOOL_DIRS:
            os.makedirs(os.path.join(config.spool, sub), exist_ok=True)

    # -- helpers -------------------------------------------------------------

    def _say(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)

    def _dir(self, sub: str) -> str:
        return os.path.join(self.config.spool, sub)

    def _stopping(self) -> bool:
        return self._stop.is_set()

    # -- the service loop ----------------------------------------------------

    def run(self) -> bool:
        """Serve until stopped (or, with ``once``, until the spool is
        drained).  Returns ``True`` when interrupted mid-work."""
        while True:
            # resume interrupted work first: it holds journal state
            for name in self._claimed():
                if self._stopping():
                    return True
                self._process(name)
            claimed = self._claim_incoming()
            if self._stopping():
                return True
            if claimed:
                continue
            if self.config.once:
                return False
            if self._stop.wait(self.config.poll_seconds):
                return True

    def _claimed(self) -> List[str]:
        active = self._dir("active")
        return sorted(
            name for name in os.listdir(active)
            if name.endswith(".json") and not name.endswith(".checkpoint.json")
        )

    def _claim_incoming(self) -> int:
        incoming, active = self._dir("incoming"), self._dir("active")
        claimed = 0
        for name in sorted(os.listdir(incoming)):
            if not name.endswith(".json"):
                continue
            os.replace(os.path.join(incoming, name), os.path.join(active, name))
            self._say(f"claimed submission {name}")
            claimed += 1
        return claimed

    # -- one submission ------------------------------------------------------

    def _process(self, name: str) -> None:
        stem = name[: -len(".json")]
        path = os.path.join(self._dir("active"), name)
        try:
            self._run_submission(stem, path)
        except Exception as err:  # noqa: BLE001 - one bad submission
            # must never take the service down
            self._reject(stem, path, f"{type(err).__name__}: {err}")

    def _run_submission(self, stem: str, path: str) -> None:
        with open(path, "r") as fh:
            spec = json.load(fh)
        if not isinstance(spec, dict) or not isinstance(spec.get("program"), str):
            raise AnalysisError('submission must be a JSON object with a '
                                '"program" source string')
        # renumber: node ids must be a pure function of the program
        # text so a server restart resumes byte-identically (global ids
        # depend on everything parsed before in the process)
        program = renumber_nids(parse(spec["program"]))
        nprocs = int(spec.get("nprocs", 2))
        config = CampaignConfig(
            seeds=[int(s) for s in spec.get("seeds", (0, 1, 2, 3))],
            plans=default_plan_matrix(nprocs, spec.get("plans")),
            nprocs=nprocs,
            num_threads=int(spec.get("num_threads", 2)),
            retries=int(spec.get("retries", 1)),
            jobs=spec.get("jobs", self.config.jobs),
            # deterministic artifacts by default: a resumed submission
            # must finish byte-identical to an uninterrupted one
            record_timing=bool(spec.get("record_timing", False)),
            journal=os.path.join(self._dir("active"), f"{stem}.journal.jsonl"),
            checkpoint=os.path.join(
                self._dir("active"), f"{stem}.checkpoint.json"
            ),
            resume=True,
            lease_seconds=float(spec.get("lease_seconds", 60.0)),
            poison_retries=int(spec.get("poison_retries", 2)),
        )
        if "budget_steps" in spec:
            config.budget_steps = int(spec["budget_steps"])
        runner = CampaignRunner(
            program, config,
            progress=lambda m: self._say(f"[{stem}] {m}"),
        )
        report_path = os.path.join(self._dir("reports"), f"{stem}.report.json")
        total = len(config.seeds) * len(config.resolved_plans())

        def publish(outcomes: List[RunOutcome]) -> None:
            _atomic_write_json(
                report_path,
                self._report_payload(stem, runner, outcomes, total, True),
            )

        result = runner.run(stop=self._stop, on_cell=publish)
        if result.interrupted:
            # leave the submission in active/: journal + checkpoint
            # resume it on the next start
            publish(result.outcomes)
            self._say(f"[{stem}] interrupted with "
                      f"{len(result.outcomes)}/{total} cell(s) resolved")
            return
        _atomic_write_json(
            report_path,
            self._report_payload(stem, runner, result.outcomes, total, False),
        )
        self._retire(stem, path, "done")
        self.processed += 1
        self._say(f"[{stem}] completed: report at {report_path}")

    def _report_payload(
        self,
        stem: str,
        runner: CampaignRunner,
        outcomes: List[RunOutcome],
        total: int,
        partial: bool,
    ) -> dict:
        merged, degraded = merge_outcomes(outcomes, runner.static)
        return {
            "submission": stem,
            "partial": partial,
            "resolved_cells": len(outcomes),
            "planned_cells": total,
            "degraded": degraded,
            "classes": merged.classes(),
            "violations": report_violation_dicts(merged),
            "outcomes": [o.as_dict() for o in outcomes],
        }

    def _reject(self, stem: str, path: str, why: str) -> None:
        self.failed += 1
        self._say(f"[{stem}] rejected: {why}")
        with open(os.path.join(self._dir("failed"), f"{stem}.error.txt"),
                  "w") as fh:
            fh.write(why + "\n")
        self._retire(stem, path, "failed")

    def _retire(self, stem: str, path: str, target: str) -> None:
        """Move a submission and its durability artifacts out of active/."""
        dest = self._dir(target)
        os.replace(path, os.path.join(dest, os.path.basename(path)))
        for suffix in (".journal.jsonl", ".checkpoint.json"):
            artifact = os.path.join(self._dir("active"), stem + suffix)
            if os.path.exists(artifact):
                os.replace(
                    artifact, os.path.join(dest, os.path.basename(artifact))
                )


def serve(
    config: ServeConfig,
    progress: Optional[Callable[[str], None]] = None,
    stop: Optional[threading.Event] = None,
) -> bool:
    """Run a :class:`CampaignService`; returns ``True`` if interrupted."""
    return CampaignService(config, progress=progress, stop=stop).run()
