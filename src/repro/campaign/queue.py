"""Crash-safe work queue for campaign cells.

One :class:`DurableWorkQueue` owns the full canonical matrix of
:class:`~.parallel.CellTask`\\ s and tracks each cell through
``pending → leased → done`` (or ``quarantined``).  Every transition is
journaled (:mod:`.journal`) *before* the in-memory state changes, so a
coordinator killed at any instant — ``kill -9`` included — restores
exactly by replaying the journal:

* a ``done`` record banks the outcome;
* a ``lease`` with no matching ``done``/``release`` means the holder
  (worker *or* coordinator) died mid-cell: the attempt counts toward
  the cell's poison tally and the cell returns to ``pending``;
* a cell whose tally exceeds the retry cap is **quarantined**: it gets
  a deterministic placeholder outcome, is excluded from scheduling,
  and is flagged in the report instead of stalling the campaign.

Dedup is deterministic: cells are deterministic simulations, so when a
reclaimed-then-completed cell delivers twice, the first recorded result
wins and the duplicate is counted and dropped — both results are
byte-identical, so arrival order cannot leak into artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .journal import Journal, JournalReplay
from .outcome import STATUS_QUARANTINED, RunOutcome
from .parallel import CellTask


def cell_key(task: CellTask) -> str:
    """Stable journal identity of a cell (matches :attr:`RunOutcome.key`)."""
    return f"{task.seed}/{task.plan_name}"


@dataclass
class Lease:
    """One time-bounded grant of a cell to a worker."""

    task: CellTask
    worker: str
    expires_at: float
    #: 1-based count of leases ever granted for this cell
    attempt: int


class DurableWorkQueue:
    """Single-coordinator work queue with journaled state transitions."""

    def __init__(
        self,
        cells: Sequence[CellTask],
        journal: Optional[Journal] = None,
        *,
        lease_seconds: float = 60.0,
        poison_retries: int = 2,
    ) -> None:
        if poison_retries < 0:
            raise ValueError("poison_retries must be >= 0")
        self.cells = sorted(cells, key=lambda t: t.index)
        self.journal = journal
        self.lease_seconds = lease_seconds
        #: crash-reclaims a cell may survive before quarantine: the
        #: cell is quarantined on crash number ``poison_retries + 1``
        self.poison_retries = poison_retries
        self.outcomes: Dict[int, RunOutcome] = {}
        self.quarantined: Dict[int, RunOutcome] = {}
        self.crashes: Dict[int, int] = {}
        self._leases: Dict[int, Lease] = {}
        self._by_key = {cell_key(t): t for t in self.cells}

    # -- journal helpers -----------------------------------------------------

    def _log(self, rtype: str, **fields) -> None:
        if self.journal is not None:
            self.journal.append(rtype, **fields)

    def restore(self, replay: JournalReplay,
                warn: Optional[Callable[[str], None]] = None) -> None:
        """Rebuild queue state from a journal replay.

        Records for cells outside the current matrix are skipped with a
        warning (the submission changed under the journal); an open
        lease with no resolution means its holder died mid-cell and
        counts as one crash.  Cells already over the poison cap are
        quarantined immediately (journaling the quarantine) so a
        coordinator that is itself killed by a poison cell makes
        progress across restarts instead of looping forever.
        """
        attempts: Dict[int, int] = {}
        done: Dict[int, RunOutcome] = {}
        quarantined: Dict[int, RunOutcome] = {}
        unknown = 0
        for rec in replay.records:
            task = self._by_key.get(rec.get("cell"))
            if task is None:
                unknown += 1
                continue
            index = task.index
            rtype = rec.get("type")
            if rtype == "lease":
                attempts[index] = attempts.get(index, 0) + 1
            elif rtype == "done":
                if index not in done:
                    done[index] = RunOutcome.from_dict(rec["outcome"])
            elif rtype == "release":
                # clean hand-back: not a crash
                attempts[index] = max(0, attempts.get(index, 0) - 1)
            elif rtype == "reclaim":
                pass  # the crash is already counted by its lease record
            elif rtype == "quarantine":
                quarantined[index] = RunOutcome.from_dict(rec["outcome"])
        if unknown and warn is not None:
            warn(f"journal has {unknown} record(s) for cells outside the "
                 "current matrix; ignoring them")
        self.outcomes = done
        self.quarantined = quarantined
        self.crashes = {
            index: count - (1 if index in done else 0)
            for index, count in attempts.items()
            if count - (1 if index in done else 0) > 0
        }
        for index, crashes in list(self.crashes.items()):
            if index in done or index in quarantined:
                continue
            if crashes > self.poison_retries:
                self._quarantine(index)

    # -- state queries -------------------------------------------------------

    def resolved(self, index: int) -> bool:
        return index in self.outcomes or index in self.quarantined

    def all_resolved(self) -> bool:
        return all(self.resolved(t.index) for t in self.cells)

    @property
    def unresolved_count(self) -> int:
        return sum(1 for t in self.cells if not self.resolved(t.index))

    def has_pending(self) -> bool:
        """Any cell neither resolved nor currently leased?"""
        return any(
            not self.resolved(t.index) and t.index not in self._leases
            for t in self.cells
        )

    def task_for(self, index: int) -> CellTask:
        """The cell with canonical matrix index *index*."""
        return self._task(index)

    def outcome_list(self) -> List[RunOutcome]:
        """Resolved outcomes (completed + quarantined) in canonical
        matrix order — the artifact-assembly order."""
        out = []
        for task in self.cells:
            outcome = self.outcomes.get(task.index)
            if outcome is None:
                outcome = self.quarantined.get(task.index)
            if outcome is not None:
                out.append(outcome)
        return out

    # -- transitions ---------------------------------------------------------

    def acquire(self, worker: str, now: float) -> Optional[Lease]:
        """Lease the lowest-index available cell, or ``None``."""
        for task in self.cells:
            index = task.index
            if self.resolved(index) or index in self._leases:
                continue
            attempt = self.crashes.get(index, 0) + 1
            self._log("lease", cell=cell_key(task), worker=worker,
                      attempt=attempt)
            lease = Lease(
                task=task, worker=worker,
                expires_at=now + self.lease_seconds, attempt=attempt,
            )
            self._leases[index] = lease
            return lease
        return None

    def heartbeat(self, index: int, now: float) -> None:
        """Extend a live lease (no-op for resolved/reclaimed cells)."""
        lease = self._leases.get(index)
        if lease is not None:
            lease.expires_at = now + self.lease_seconds

    def complete(self, index: int, outcome: RunOutcome) -> bool:
        """Bank a finished cell.  Returns ``False`` for a duplicate
        delivery (the cell was reclaimed and finished elsewhere first):
        the first recorded result wins, deterministically."""
        self._leases.pop(index, None)
        if self.resolved(index):
            return False
        self._log("done", cell=cell_key(self._task(index)),
                  outcome=outcome.as_dict())
        self.outcomes[index] = outcome
        return True

    def release(self, index: int) -> None:
        """Give a lease back cleanly (graceful shutdown) — the attempt
        does not count toward the poison tally."""
        lease = self._leases.pop(index, None)
        if lease is not None and not self.resolved(index):
            self._log("release", cell=cell_key(lease.task))

    def record_crash(self, index: int) -> bool:
        """The lease holder died (or its lease expired).  Reclaims the
        cell — each crash is reclaimed exactly once, a second call for
        the same death is a no-op — and quarantines it past the retry
        cap.  Returns ``True`` when this crash quarantined the cell."""
        if index not in self._leases:
            return False
        self._leases.pop(index)
        if self.resolved(index):
            return False
        crashes = self.crashes.get(index, 0) + 1
        self.crashes[index] = crashes
        self._log("reclaim", cell=cell_key(self._task(index)), crashes=crashes)
        if crashes > self.poison_retries:
            self._quarantine(index)
            return True
        return False

    def reclaim_expired(self, now: float) -> List[Tuple[Lease, bool]]:
        """Reclaim every expired lease; returns ``(lease, quarantined)``
        pairs, in canonical cell order."""
        expired = sorted(
            (lease for lease in self._leases.values() if lease.expires_at <= now),
            key=lambda lease: lease.task.index,
        )
        return [(lease, self.record_crash(lease.task.index)) for lease in expired]

    # -- internals -----------------------------------------------------------

    def _task(self, index: int) -> CellTask:
        for task in self.cells:
            if task.index == index:
                return task
        raise KeyError(f"no cell with index {index}")

    def _quarantine(self, index: int) -> None:
        task = self._task(index)
        crashes = self.crashes.get(index, 0)
        # deterministic fields only: the quarantine record must be
        # byte-identical however (and whenever) the crashes happened
        outcome = RunOutcome(
            seed=task.seed, plan=task.plan_name, status=STATUS_QUARANTINED,
            error=(
                f"poison cell: killed its worker {crashes} time(s) "
                f"(retry cap {self.poison_retries}); quarantined"
            ),
        )
        self._log("quarantine", cell=cell_key(task), crashes=crashes,
                  outcome=outcome.as_dict())
        self.quarantined[index] = outcome
        self._leases.pop(index, None)
