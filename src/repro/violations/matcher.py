"""Violation matching: merge concurrency reports with the thread-safety
specification argument list into final reports (paper Fig. 3, bottom).

The matcher is oracle-agnostic: HOME feeds it hybrid lockset+HB
concurrency reports; the Marmot model feeds it observed-overlap reports;
the ITC model feeds it weakened-HB reports.  Sharing the matcher keeps
the tool comparison apples-to-apples — the tools differ only in *which
pairs they believe are concurrent* and what they charge for finding out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.dynamic_.hybrid import ConcurrencyReport
from ..events import (
    CollectiveArrive,
    ErrorHandlerEvent,
    EventLog,
    MPICall,
    ThreadEnd,
    ThreadFork,
    ThreadJoin,
)
from .spec import ALL_RULES, CollectiveTrace, HandlerSpan, ProcessView, Violation


@dataclass
class ViolationReport:
    """Deduplicated violations across all processes of one run."""

    violations: List[Violation] = field(default_factory=list)
    #: dedup key -> list of processes the finding occurred in
    procs_by_finding: Dict[tuple, List[int]] = field(default_factory=dict)

    def add(self, violation: Violation) -> None:
        key = violation.dedup_key()
        procs = self.procs_by_finding.get(key)
        if procs is None:
            self.procs_by_finding[key] = [violation.proc]
            self.violations.append(violation)
        elif violation.proc not in procs:
            procs.append(violation.proc)

    def merge(self, other: "ViolationReport") -> None:
        """Fold another run's findings into this report (campaign
        aggregation).  Dedup follows the same key as :meth:`add`; rank
        attributions are unioned."""
        for violation in other.violations:
            key = violation.dedup_key()
            self.add(violation)
            for proc in other.procs_by_finding.get(key, ()):
                mine = self.procs_by_finding[key]
                if proc not in mine:
                    mine.append(proc)

    def classes(self) -> List[str]:
        return sorted({v.vclass for v in self.violations})

    def by_class(self) -> Dict[str, List[Violation]]:
        out: Dict[str, List[Violation]] = {}
        for v in self.violations:
            out.setdefault(v.vclass, []).append(v)
        return out

    def count(self, vclass: Optional[str] = None) -> int:
        if vclass is None:
            return len(self.violations)
        return sum(1 for v in self.violations if v.vclass == vclass)

    def __len__(self) -> int:
        return len(self.violations)

    def __iter__(self):
        return iter(self.violations)

    def summary(self) -> str:
        if not self.violations:
            return "no thread-safety violations detected"
        lines = [f"{len(self.violations)} thread-safety violation(s) detected:"]
        for v in self.violations:
            procs = self.procs_by_finding[v.dedup_key()]
            ranks = ",".join(str(p) for p in sorted(procs))
            lines.append(f"  {v} (ranks {ranks})")
        return "\n".join(lines)


def extract_thread_level(log: EventLog, proc: int) -> Optional[int]:
    """Provided thread level from the process's init call event."""
    for event in log.mpi_calls(proc):
        if event.op in ("mpi_init", "mpi_init_thread"):
            provided = event.args.get("provided")
            if isinstance(provided, int):
                return provided
    return None


def extract_handler_spans(log: EventLog, proc: int) -> List[HandlerSpan]:
    """Pair ErrorHandlerEvent enter/exit brackets into spans, per thread.

    A handler that never exits (its rank aborted inside it) yields an
    open span reaching to the end of the trace.
    """
    open_stacks: Dict[int, List[ErrorHandlerEvent]] = {}
    spans: List[HandlerSpan] = []
    for event in log:
        if type(event) is not ErrorHandlerEvent or event.proc != proc:
            continue
        if event.phase == "enter":
            open_stacks.setdefault(event.thread, []).append(event)
        else:
            stack = open_stacks.get(event.thread)
            if not stack:
                continue
            enter = stack.pop()
            spans.append(HandlerSpan(
                thread=enter.thread, comm=enter.comm, handler=enter.handler,
                t0=enter.time, t1=event.time, seq0=enter.seq, seq1=event.seq,
            ))
    for stack in open_stacks.values():
        for enter in stack:
            spans.append(HandlerSpan(
                thread=enter.thread, comm=enter.comm, handler=enter.handler,
                t0=enter.time, t1=float("inf"),
                seq0=enter.seq, seq1=2 ** 63,
            ))
    spans.sort(key=lambda s: s.seq0)
    return spans


def extract_collective_traces(log: EventLog, proc: int) -> List[CollectiveTrace]:
    """Rebuild each team's per-member collective arrival sequences.

    Membership comes from the team's ThreadFork (master tid + children,
    in team-index order).  A worker is *closed* when its ThreadEnd was
    recorded; the master when the team's ThreadJoin was (the master
    only joins after finishing its own region body).  Members still
    blocked or aborted when the trace ends stay open, so the matching
    rule only compares their recorded prefix.  Teams that recorded no
    arrivals (monitoring off, or size-1 teams) yield no trace.
    """
    members_of: Dict[int, Tuple[int, ...]] = {}
    arrivals: Dict[int, Dict[int, List[Tuple[int, Tuple[str, str, str, int]]]]] = {}
    closed_tids: Dict[int, set] = {}
    for event in log:
        if event.proc != proc:
            continue
        etype = type(event)
        if etype is CollectiveArrive:
            arrivals.setdefault(event.team, {}).setdefault(
                event.thread, []
            ).append((event.index, (event.kind, event.loc, event.op, event.callsite)))
        elif etype is ThreadFork:
            members_of[event.team] = (event.thread,) + tuple(event.children)
        elif etype is ThreadEnd:
            closed_tids.setdefault(event.team, set()).add(event.thread)
        elif etype is ThreadJoin:
            closed_tids.setdefault(event.team, set()).add(event.thread)
    traces: List[CollectiveTrace] = []
    for team in sorted(arrivals):
        members = members_of.get(team)
        if members is None:
            continue
        by_thread = arrivals[team]
        team_closed = closed_tids.get(team, set())
        sequences = tuple(
            tuple(entry for _idx, entry in sorted(by_thread.get(tid, [])))
            for tid in members
        )
        traces.append(CollectiveTrace(
            team=team,
            members=members,
            sequences=sequences,
            closed=tuple(tid in team_closed for tid in members),
        ))
    return traces


def build_view(log: EventLog, proc: int, report: ConcurrencyReport) -> ProcessView:
    """Assemble the per-process rule input."""
    calls = log.mpi_calls(proc)
    had_parallel = any(
        type(e) is ThreadFork and e.proc == proc and len(e.children) > 0
        for e in log
    )
    return ProcessView(
        proc=proc,
        thread_level=extract_thread_level(log, proc),
        main_thread=0,
        had_parallel=had_parallel,
        report=report,
        calls=calls,
        handler_spans=extract_handler_spans(log, proc),
        collective_traces=extract_collective_traces(log, proc),
    )


def match_violations(
    log: EventLog,
    reports: Dict[int, ConcurrencyReport],
    rules: Sequence[Callable[[ProcessView], List[Violation]]] = ALL_RULES,
) -> ViolationReport:
    """Run every rule over every process and deduplicate findings."""
    final = ViolationReport()
    for proc in log.processes():
        report = reports.get(proc) or ConcurrencyReport(proc)
        view = build_view(log, proc, report)
        for rule in rules:
            for violation in rule(view):
                final.add(violation)
    return final
