"""Fix suggestions and an automatic repair transformation.

For every violation class this module produces the remediation the MPI
standard (and the paper's discussion) prescribes — e.g. "use thread ID
as tag" for concurrent receives, funnel through the main thread for
initialization-level problems.

It also implements one *sound automatic repair*: wrapping the racing
MPI statements of a finding in a shared ``omp critical`` section.  That
is the MPI_THREAD_SERIALIZED discipline — it removes the thread-level
concurrency (the violation, by definition) without reordering the
process-level communication, and the result can be re-verified by
running HOME again (see :func:`repair_and_verify`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ToolError
from ..minilang import Program, ast_nodes as A
from ..minilang.builder import clone
from .spec import (
    COLLECTIVE,
    CONCURRENT_RECV,
    CONCURRENT_REQUEST,
    FINALIZATION,
    INITIALIZATION,
    PROBE,
    Violation,
)

#: Name of the serializing critical section the repair inserts.
REPAIR_LOCK = "home_repair"


@dataclass(frozen=True)
class FixSuggestion:
    """A human-actionable remediation for one violation class."""

    vclass: str
    title: str
    detail: str
    auto_fixable: bool

    def __str__(self) -> str:
        auto = " [auto-fixable]" if self.auto_fixable else ""
        return f"{self.vclass}: {self.title}{auto}\n  {self.detail}"


_SUGGESTIONS: Dict[str, FixSuggestion] = {
    INITIALIZATION: FixSuggestion(
        INITIALIZATION,
        "request a sufficient thread level, or funnel MPI through one thread",
        "Initialize with mpi_init_thread(MPI_THREAD_MULTIPLE) if threads must "
        "call MPI concurrently; otherwise guard every MPI call with "
        "omp master (FUNNELED) or mutual exclusion (SERIALIZED).",
        auto_fixable=False,
    ),
    FINALIZATION: FixSuggestion(
        FINALIZATION,
        "finalize once, from the main thread, after all communication",
        "Move mpi_finalize outside every omp parallel region (or guard it "
        "with omp master preceded by omp barrier) and complete or cancel "
        "all pending requests first.",
        auto_fixable=False,
    ),
    CONCURRENT_RECV: FixSuggestion(
        CONCURRENT_RECV,
        "disambiguate per-thread traffic with distinct tags or communicators",
        "The rank of a receive addresses a process, not a thread: give each "
        "thread its own tag (e.g. tag + omp_get_thread_num(), mirrored on "
        "the send side) or a duplicated communicator (mpi_comm_dup per "
        "thread). Serializing the receives (omp critical) also removes the "
        "race at the cost of concurrency.",
        auto_fixable=True,
    ),
    CONCURRENT_REQUEST: FixSuggestion(
        CONCURRENT_REQUEST,
        "give each request exactly one completing thread",
        "Let the thread that posted a nonblocking operation be the one that "
        "waits/tests it, or serialize completion (omp critical / omp single).",
        auto_fixable=True,
    ),
    PROBE: FixSuggestion(
        PROBE,
        "make probe+receive atomic per thread, or split the traffic",
        "A message observed by mpi_probe can be stolen by another thread's "
        "receive: perform the probe and the matching receive under one "
        "critical section, or separate threads by tag/communicator.",
        auto_fixable=True,
    ),
    COLLECTIVE: FixSuggestion(
        COLLECTIVE,
        "issue collectives from one thread per process, in one order",
        "Guard collective calls with omp master or omp single so every "
        "process contributes exactly once per collective, in the same order; "
        "concurrent collectives on one communicator have undefined pairing.",
        auto_fixable=True,
    ),
    "DataRace": FixSuggestion(
        "DataRace",
        "synchronize the conflicting accesses",
        "Protect the shared variable with omp critical/omp atomic, or "
        "privatize it per thread and reduce at the end.",
        auto_fixable=False,
    ),
}


def suggest_fix(violation: Violation) -> FixSuggestion:
    """The remediation recipe for *violation*'s class."""
    suggestion = _SUGGESTIONS.get(violation.vclass)
    if suggestion is None:
        raise ToolError(f"no fix recipe for violation class {violation.vclass!r}")
    return suggestion


def suggest_fixes(violations) -> List[FixSuggestion]:
    """Deduplicated suggestions for a whole report."""
    seen: Set[str] = set()
    out: List[FixSuggestion] = []
    for violation in violations:
        if violation.vclass not in seen and violation.vclass in _SUGGESTIONS:
            seen.add(violation.vclass)
            out.append(_SUGGESTIONS[violation.vclass])
    return out


# ---------------------------------------------------------------------------
# Automatic repair
# ---------------------------------------------------------------------------

_REPAIRABLE = {CONCURRENT_RECV, CONCURRENT_REQUEST, PROBE, COLLECTIVE}


def _loc_key(loc: str) -> Optional[Tuple[int, int]]:
    try:
        line, col = loc.split(":")
        return (int(line), int(col))
    except (ValueError, AttributeError):
        return None


def _collect_target_locs(violations) -> Set[Tuple[int, int]]:
    locs: Set[Tuple[int, int]] = set()
    for violation in violations:
        if violation.vclass in _REPAIRABLE:
            for loc in violation.locs:
                key = _loc_key(loc)
                if key is not None:
                    locs.add(key)
    return locs


def _wrap_targets(fn: A.FuncDef, targets: Set[Tuple[int, int]]) -> int:
    """Wrap statements whose MPI call sits at a target location.

    Every block is visited once; the fresh block created inside each
    inserted ``omp critical`` is not in the snapshot, so a statement can
    never be double-wrapped.
    """
    wrapped = 0
    blocks = [node for node in fn.walk() if isinstance(node, A.Block)]
    for block in blocks:
        for i, stmt in enumerate(block.stmts):
            if not (isinstance(stmt, A.ExprStmt) and isinstance(stmt.expr, A.CallExpr)):
                continue
            key = (stmt.expr.loc.line, stmt.expr.loc.col)
            if key in targets:
                block.stmts[i] = A.OmpCritical(
                    A.Block([stmt]), name=REPAIR_LOCK, loc=stmt.loc
                )
                wrapped += 1
    return wrapped


@dataclass
class RepairResult:
    """Outcome of :func:`apply_serializing_fix`."""

    program: Program
    wrapped_statements: int = 0
    targeted_classes: List[str] = field(default_factory=list)


def apply_serializing_fix(program: Program, violations) -> RepairResult:
    """Wrap every repairable finding's MPI statements in one shared
    ``omp critical (home_repair)`` section of a cloned program.

    Only classes whose hazard *is* the thread-level concurrency are
    repairable this way (recv/request/probe/collective); initialization
    and finalization problems need structural changes a tool should not
    guess.
    """
    targets = _collect_target_locs(violations)
    new_program = clone(program)
    assert isinstance(new_program, Program)
    wrapped = 0
    for fn in new_program.functions:
        wrapped += _wrap_targets(fn, targets)
    classes = sorted({
        v.vclass for v in violations if v.vclass in _REPAIRABLE
    })
    return RepairResult(new_program, wrapped, classes)


def repair_and_verify(program: Program, nprocs: int = 2, num_threads: int = 2,
                      seed: int = 0):
    """Check → repair → re-check.

    Returns (original report, repair result, post-repair report).  The
    caller decides what "fixed" means; the common assertion is that the
    repairable classes vanish from the second report.
    """
    from ..home import check_program  # local import: avoid cycle

    before = check_program(program, nprocs=nprocs, num_threads=num_threads,
                           seed=seed)
    repair = apply_serializing_fix(program, before.violations)
    after = check_program(repair.program, nprocs=nprocs,
                          num_threads=num_threads, seed=seed)
    return before, repair, after
