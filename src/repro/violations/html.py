"""Self-contained HTML report generation.

The paper's future work includes presenting "more refined and precise
static analysis results in GUI"; this module renders a check result as
a single dependency-free HTML file: findings grouped by class, source
excerpts with highlighted lines, fix recipes, static-phase statistics
and the run configuration.
"""

from __future__ import annotations

import html as _html
from typing import Dict, List, Optional

from .fixes import _SUGGESTIONS
from .matcher import ViolationReport
from .render import excerpt_at
from .spec import Violation

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem auto;
       max-width: 60rem; color: #1a202c; line-height: 1.5; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #e2e8f0; padding-bottom: .5rem; }
h2 { font-size: 1.15rem; margin-top: 2rem; }
.meta { color: #4a5568; font-size: .9rem; }
.clean { background: #f0fff4; border: 1px solid #9ae6b4; padding: 1rem;
         border-radius: .5rem; }
.finding { border: 1px solid #feb2b2; border-left: 4px solid #e53e3e;
           border-radius: .5rem; padding: .8rem 1rem; margin: 1rem 0;
           background: #fffafa; }
.finding h3 { margin: 0 0 .4rem 0; font-size: 1rem; color: #c53030; }
.finding .msg { margin: .2rem 0 .6rem 0; }
.badge { display: inline-block; background: #edf2f7; border-radius: .3rem;
         padding: 0 .4rem; font-size: .8rem; color: #4a5568;
         margin-right: .4rem; }
pre.code { background: #f7fafc; border: 1px solid #e2e8f0; padding: .6rem;
           border-radius: .4rem; overflow-x: auto; font-size: .85rem; }
pre.code .hit { background: #fed7d7; display: inline-block; width: 100%; }
.fix { background: #ebf8ff; border-left: 3px solid #3182ce; padding: .4rem .8rem;
       font-size: .9rem; margin-top: .5rem; }
table.stats { border-collapse: collapse; font-size: .9rem; }
table.stats td, table.stats th { border: 1px solid #e2e8f0; padding: .3rem .7rem;
                                 text-align: left; }
"""


def _esc(text: object) -> str:
    return _html.escape(str(text))


def _excerpt_html(source: str, loc: str, context: int = 2) -> str:
    excerpt = excerpt_at(source, loc, context)
    if excerpt is None:
        return ""
    lines = []
    for number, text in excerpt.lines:
        content = f"{number:>4} | {_esc(text)}"
        if number == excerpt.marker_line:
            lines.append(f'<span class="hit">{content}</span>')
        else:
            lines.append(content)
    return f'<pre class="code">{chr(10).join(lines)}</pre>'


def _finding_html(violation: Violation, ranks: List[int],
                  source: Optional[str]) -> str:
    parts = [f'<div class="finding">']
    parts.append(f"<h3>{_esc(violation.vclass)}</h3>")
    badges = [f'<span class="badge">rank(s) {",".join(map(str, sorted(ranks)))}</span>']
    if violation.threads:
        badges.append(
            f'<span class="badge">threads {",".join(map(str, violation.threads))}</span>'
        )
    if violation.ops:
        badges.append(f'<span class="badge">{_esc(", ".join(violation.ops))}</span>')
    for loc in dict.fromkeys(violation.locs):
        badges.append(f'<span class="badge">line {_esc(loc)}</span>')
    parts.append("<div>" + "".join(badges) + "</div>")
    parts.append(f'<p class="msg">{_esc(violation.message)}</p>')
    if source is not None:
        for loc in dict.fromkeys(violation.locs):
            snippet = _excerpt_html(source, loc)
            if snippet:
                parts.append(snippet)
                break  # one representative excerpt per finding
    suggestion = _SUGGESTIONS.get(violation.vclass)
    if suggestion is not None:
        parts.append(
            f'<div class="fix"><b>fix:</b> {_esc(suggestion.title)} — '
            f"{_esc(suggestion.detail)}</div>"
        )
    parts.append("</div>")
    return "".join(parts)


def report_to_html(
    report: ViolationReport,
    program_name: str = "program",
    tool_name: str = "HOME",
    source: Optional[str] = None,
    run_info: Optional[Dict[str, object]] = None,
    static_info: Optional[Dict[str, object]] = None,
) -> str:
    """Render a full check result as one standalone HTML page."""
    body: List[str] = []
    body.append(f"<h1>{_esc(tool_name)} report — {_esc(program_name)}</h1>")
    if run_info:
        meta = " · ".join(f"{_esc(k)}={_esc(v)}" for k, v in run_info.items())
        body.append(f'<p class="meta">{meta}</p>')

    if not len(report):
        body.append('<div class="clean">No thread-safety violations '
                    "detected.</div>")
    else:
        body.append(f"<h2>{len(report)} finding(s)</h2>")
        for violation in report:
            ranks = report.procs_by_finding.get(violation.dedup_key(), [])
            body.append(_finding_html(violation, ranks, source))

    if static_info:
        body.append("<h2>Compile-time phase</h2>")
        rows = "".join(
            f"<tr><th>{_esc(k)}</th><td>{_esc(v)}</td></tr>"
            for k, v in static_info.items()
        )
        body.append(f'<table class="stats">{rows}</table>')

    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{_esc(tool_name)}: {_esc(program_name)}</title>"
        f"<style>{_CSS}</style></head><body>"
        + "".join(body)
        + "</body></html>\n"
    )
