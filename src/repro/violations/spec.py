"""The six thread-safety violation classes (paper §III-A) as rules.

Each rule consumes a :class:`ProcessView` — one process's thread level,
MPI call events and a concurrency oracle (a
:class:`~repro.analysis.dynamic_.hybrid.ConcurrencyReport`, however it
was produced) — and yields :class:`Violation` findings.  The rules are
direct transcriptions of the paper's predicates:

* ``isInitializationViolation``
* ``isMPIFinalizationViolation``
* ``isConcurrentRecvViolation``
* ``isConcurrentRequestViolation``
* ``isProbeViolation``
* ``isCollectiveCallViolation``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.dynamic_.hybrid import ConcurrencyReport, MPICallRecord, RacingPair
from ..events.event import COLLECTIVE_OPS, MonitoredKind
from ..mpi.constants import (
    MPI_ANY_SOURCE,
    MPI_ANY_TAG,
    MPI_THREAD_FUNNELED,
    MPI_THREAD_MULTIPLE,
    MPI_THREAD_SERIALIZED,
    MPI_THREAD_SINGLE,
    THREAD_LEVEL_NAMES,
)

#: Canonical violation class names.
INITIALIZATION = "InitializationViolation"
FINALIZATION = "MPIFinalizationViolation"
CONCURRENT_RECV = "ConcurrentRecvViolation"
CONCURRENT_REQUEST = "ConcurrentRequestViolation"
PROBE = "ProbeViolation"
COLLECTIVE = "CollectiveCallViolation"
#: Error-path classes (fault-tolerance extension, not in the paper's six).
HANDLER_REENTRANCY = "ErrorHandlerReentrancyViolation"
RECOVERY_RACE = "RecoveryRaceViolation"
#: Collective-matching classes (PARCOACH-family extension): threads of
#: one team encountering different collective sequences.
BARRIER_DIVERGENCE = "BarrierDivergenceViolation"
COLLECTIVE_ORDER_MISMATCH = "CollectiveOrderMismatchViolation"

ALL_VIOLATION_CLASSES = (
    INITIALIZATION,
    FINALIZATION,
    CONCURRENT_RECV,
    CONCURRENT_REQUEST,
    PROBE,
    COLLECTIVE,
    HANDLER_REENTRANCY,
    RECOVERY_RACE,
    BARRIER_DIVERGENCE,
    COLLECTIVE_ORDER_MISMATCH,
)

RECV_OPS = frozenset({"mpi_recv", "mpi_irecv", "mpi_sendrecv"})
PROBE_OPS = frozenset({"mpi_probe", "mpi_iprobe"})
WAIT_OPS = frozenset({"mpi_wait", "mpi_test", "mpi_waitall"})


@dataclass(frozen=True)
class Violation:
    """One reported thread-safety violation."""

    vclass: str
    proc: int
    message: str
    callsites: Tuple[int, ...] = ()
    locs: Tuple[str, ...] = ()
    threads: Tuple[int, ...] = ()
    ops: Tuple[str, ...] = ()

    def dedup_key(self) -> Tuple[str, Tuple[int, ...]]:
        """Reports of the same class at the same site set are one finding."""
        return (self.vclass, tuple(sorted(self.callsites)))

    def __str__(self) -> str:
        where = ", ".join(self.locs) if self.locs else "<unknown>"
        return f"[{self.vclass}] rank {self.proc} at {where}: {self.message}"


@dataclass(frozen=True)
class HandlerSpan:
    """One user error-handler invocation (enter..exit bracket)."""

    thread: int
    comm: int
    handler: str
    t0: float
    t1: float
    seq0: int
    seq1: int


@dataclass(frozen=True)
class CollectiveTrace:
    """One team's per-member collective arrival sequences.

    Built from ``CollectiveArrive`` events (emitted at construct
    *encounter*, so present even when the run deadlocked).  ``members``
    are process-local thread ids in team-index order; ``sequences[i]``
    is member *i*'s ordered arrivals as ``(kind, loc, op, callsite)``
    tuples; ``closed[i]`` is True when member *i* completed its region
    body (its sequence is definitively complete, not cut short by a
    deadlock or abort).
    """

    team: int
    members: Tuple[int, ...]
    sequences: Tuple[Tuple[Tuple[str, str, str, int], ...], ...]
    closed: Tuple[bool, ...]


@dataclass
class ProcessView:
    """Everything the rules need to know about one process's execution."""

    proc: int
    thread_level: Optional[int]
    main_thread: int
    had_parallel: bool
    report: ConcurrencyReport
    #: MPICall 'begin' events of this process, in emission order
    calls: List = field(default_factory=list)
    #: user error-handler invocations (fault-tolerance extension)
    handler_spans: List[HandlerSpan] = field(default_factory=list)
    #: per-team collective arrival traces (collective monitoring only)
    collective_traces: List[CollectiveTrace] = field(default_factory=list)

    def non_main_calls(self) -> List:
        return [
            c for c in self.calls
            if not c.is_main_thread and c.op not in ("mpi_init", "mpi_init_thread")
        ]

    def finalize_calls(self) -> List:
        return [c for c in self.calls if c.op == "mpi_finalize"]


def _tags_match(a, b) -> bool:
    return a == b or a == MPI_ANY_TAG or b == MPI_ANY_TAG


def _srcs_match(a, b) -> bool:
    return a == b or a == MPI_ANY_SOURCE or b == MPI_ANY_SOURCE


def _same_comm(pair: RacingPair) -> bool:
    return pair.a.arg(MonitoredKind.COMM) == pair.b.arg(MonitoredKind.COMM)


def _envelopes_overlap(pair: RacingPair) -> bool:
    return (
        _same_comm(pair)
        and _tags_match(pair.a.arg(MonitoredKind.TAG), pair.b.arg(MonitoredKind.TAG))
        and _srcs_match(pair.a.arg(MonitoredKind.SRC), pair.b.arg(MonitoredKind.SRC))
    )


def _pair_violation(vclass: str, proc: int, pair: RacingPair, message: str) -> Violation:
    return Violation(
        vclass=vclass,
        proc=proc,
        message=message,
        callsites=pair.callsites(),
        locs=pair.locs(),
        threads=tuple(sorted(pair.threads)),
        ops=tuple(sorted(pair.ops())),
    )


def probed_recv_call_ids(view: ProcessView) -> Set[int]:
    """Receive call instances guarded by an immediately preceding probe
    on the same thread with the same envelope.

    Such receives are attributed to the Probe rule (the probe *is* the
    racing access) instead of being double-reported as concurrent
    receives.
    """
    by_thread: Dict[int, List[MPICallRecord]] = {}
    for rec in sorted(view.report.records.values(), key=lambda r: r.call_id):
        by_thread.setdefault(rec.thread, []).append(rec)
    probed: Set[int] = set()
    for recs in by_thread.values():
        prev: Optional[MPICallRecord] = None
        for rec in recs:
            if rec.op in RECV_OPS and prev is not None and prev.op in PROBE_OPS:
                same = (
                    prev.arg(MonitoredKind.COMM) == rec.arg(MonitoredKind.COMM)
                    and _tags_match(prev.arg(MonitoredKind.TAG), rec.arg(MonitoredKind.TAG))
                    and _srcs_match(prev.arg(MonitoredKind.SRC), rec.arg(MonitoredKind.SRC))
                )
                if same:
                    probed.add(rec.call_id)
            prev = rec
    return probed


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def check_initialization(view: ProcessView) -> List[Violation]:
    """isInitializationViolation (paper §III-A, first predicate)."""
    out: List[Violation] = []
    level = view.thread_level
    if level is None or level >= MPI_THREAD_MULTIPLE:
        return out
    level_name = THREAD_LEVEL_NAMES.get(level, str(level))

    if level in (MPI_THREAD_SINGLE, MPI_THREAD_FUNNELED):
        offenders = view.non_main_calls()
        if offenders:
            sites = tuple(sorted({c.callsite for c in offenders}))
            locs = tuple(sorted({c.loc for c in offenders}))
            threads = tuple(sorted({c.thread for c in offenders}))
            out.append(
                Violation(
                    INITIALIZATION,
                    view.proc,
                    f"{len(offenders)} MPI call(s) issued from non-main "
                    f"thread(s) {threads} under {level_name}",
                    callsites=sites,
                    locs=locs,
                    threads=threads,
                    ops=tuple(sorted({c.op for c in offenders})),
                )
            )
        elif level == MPI_THREAD_SINGLE and view.had_parallel:
            out.append(
                Violation(
                    INITIALIZATION,
                    view.proc,
                    f"program forks OpenMP teams while initialized at {level_name}",
                )
            )
    elif level == MPI_THREAD_SERIALIZED:
        racing = [
            k for k in MonitoredKind if view.report.concurrent(k)
        ]
        if racing:
            pairs = view.report.pairs
            sites: Set[int] = set()
            locs: Set[str] = set()
            for p in pairs:
                sites.update(p.callsites())
                locs.update(p.locs())
            out.append(
                Violation(
                    INITIALIZATION,
                    view.proc,
                    f"concurrent MPI calls detected under {level_name} "
                    f"(racing monitored variables: "
                    f"{', '.join(str(k) for k in racing)})",
                    callsites=tuple(sorted(sites)),
                    locs=tuple(sorted(locs)),
                )
            )
    return out


def check_finalization(view: ProcessView) -> List[Violation]:
    """isMPIFinalizationViolation."""
    out: List[Violation] = []
    finals = view.finalize_calls()
    for call in finals:
        if not call.is_main_thread:
            out.append(
                Violation(
                    FINALIZATION,
                    view.proc,
                    f"mpi_finalize called from non-main thread {call.thread}",
                    callsites=(call.callsite,),
                    locs=(call.loc,),
                    threads=(call.thread,),
                    ops=("mpi_finalize",),
                )
            )
    if view.report.concurrent(MonitoredKind.FINALIZE):
        for pair in view.report.pairs:
            if MonitoredKind.FINALIZE in pair.kinds:
                out.append(
                    _pair_violation(
                        FINALIZATION, view.proc, pair,
                        "mpi_finalize races another MPI call",
                    )
                )
    # timestamp(MPI_Finalize) < timestamp(other MPI calls): a call that
    # began after finalize began on another thread.
    for fin in finals:
        laggards = [
            c for c in view.calls
            if c.op != "mpi_finalize" and c.thread != fin.thread and c.time > fin.time
        ]
        if laggards:
            sites = tuple(sorted({c.callsite for c in laggards} | {fin.callsite}))
            locs = tuple(sorted({c.loc for c in laggards} | {fin.loc}))
            out.append(
                Violation(
                    FINALIZATION,
                    view.proc,
                    f"{len(laggards)} MPI call(s) on other threads began after "
                    "mpi_finalize",
                    callsites=sites,
                    locs=locs,
                )
            )
    return out


def check_concurrent_recv(view: ProcessView) -> List[Violation]:
    """isConcurrentRecvViolation."""
    out: List[Violation] = []
    probed = probed_recv_call_ids(view)
    for pair in view.report.pairs_for_ops(RECV_OPS, RECV_OPS):
        needed = {MonitoredKind.SRC, MonitoredKind.TAG, MonitoredKind.COMM}
        if not needed.issubset(set(pair.kinds)):
            continue
        if not _envelopes_overlap(pair):
            continue
        if pair.a.call_id in probed and pair.b.call_id in probed:
            continue  # attributed to the Probe rule
        out.append(
            _pair_violation(
                CONCURRENT_RECV, view.proc, pair,
                "two threads receive concurrently with overlapping "
                f"(source={pair.a.arg(MonitoredKind.SRC)}, "
                f"tag={pair.a.arg(MonitoredKind.TAG)}, "
                f"comm={pair.a.arg(MonitoredKind.COMM)}) envelopes — "
                "message matching order is undefined",
            )
        )
    return out


def check_concurrent_request(view: ProcessView) -> List[Violation]:
    """isConcurrentRequestViolation."""
    out: List[Violation] = []
    for pair in view.report.pairs_for_ops(WAIT_OPS, WAIT_OPS):
        if MonitoredKind.REQUEST not in pair.kinds:
            continue
        if pair.a.arg(MonitoredKind.REQUEST) != pair.b.arg(MonitoredKind.REQUEST):
            continue
        out.append(
            _pair_violation(
                CONCURRENT_REQUEST, view.proc, pair,
                f"two threads wait/test the same request "
                f"{pair.a.arg(MonitoredKind.REQUEST)} concurrently",
            )
        )
    return out


def check_probe(view: ProcessView) -> List[Violation]:
    """isProbeViolation."""
    out: List[Violation] = []
    partner_ops = PROBE_OPS | RECV_OPS
    for pair in view.report.pairs_for_ops(PROBE_OPS, partner_ops):
        if not (pair.a.op in PROBE_OPS or pair.b.op in PROBE_OPS):
            continue
        if not _envelopes_overlap(pair):
            continue
        out.append(
            _pair_violation(
                PROBE, view.proc, pair,
                "concurrent probe operations with the same source and tag "
                "on one communicator — a probed message may be stolen by "
                "the other thread",
            )
        )
    return out


def check_collective(view: ProcessView) -> List[Violation]:
    """isCollectiveCallViolation."""
    out: List[Violation] = []
    for pair in view.report.pairs_for_ops(COLLECTIVE_OPS, COLLECTIVE_OPS):
        if MonitoredKind.COLLECTIVE not in pair.kinds and MonitoredKind.COMM not in pair.kinds:
            continue
        if not _same_comm(pair):
            continue
        out.append(
            _pair_violation(
                COLLECTIVE, view.proc, pair,
                f"two threads issue collective operations "
                f"({pair.a.op}, {pair.b.op}) concurrently on communicator "
                f"{pair.a.arg(MonitoredKind.COMM)}",
            )
        )
    return out


def check_error_handler_reentrancy(view: ProcessView) -> List[Violation]:
    """isErrorHandlerReentrancyViolation (fault-tolerance extension).

    An MPI error handler runs *inside* the failing MPI call.  Below
    ``MPI_THREAD_MULTIPLE``, a handler body that itself calls MPI while
    another thread is inside the library nests MPI within MPI across
    threads — the provided thread level cannot have promised that.
    """
    out: List[Violation] = []
    level = view.thread_level
    if level is None or level >= MPI_THREAD_MULTIPLE:
        return out
    level_name = THREAD_LEVEL_NAMES.get(level, str(level))
    for span in view.handler_spans:
        inner = [
            c for c in view.calls
            if c.thread == span.thread and span.seq0 < c.seq < span.seq1
        ]
        if not inner:
            continue
        racing = [
            c for c in view.calls
            if c.thread != span.thread and span.t0 <= c.time <= span.t1
        ]
        if not racing:
            continue
        offenders = inner + racing
        out.append(
            Violation(
                HANDLER_REENTRANCY,
                view.proc,
                f"error handler {span.handler!r} (comm {span.comm}) makes "
                f"{len(inner)} MPI call(s) while thread(s) "
                f"{tuple(sorted({c.thread for c in racing}))} are inside MPI "
                f"under {level_name}",
                callsites=tuple(sorted({c.callsite for c in offenders})),
                locs=tuple(sorted({c.loc for c in offenders})),
                threads=tuple(sorted({c.thread for c in offenders})),
                ops=tuple(sorted({c.op for c in offenders})),
            )
        )
    return out


def check_recovery_race(view: ProcessView) -> List[Violation]:
    """isRecoveryRaceViolation (fault-tolerance extension).

    Two threads of one rank racing ``mpi_comm_shrink`` on the same
    communicator each complete their own shrink instance and obtain
    *different* replacement communicators — subsequent communication
    on "the" recovered communicator is split across two.
    """
    out: List[Violation] = []
    shrink = frozenset({"mpi_comm_shrink"})
    for pair in view.report.pairs_for_ops(shrink, shrink):
        if not _same_comm(pair):
            continue
        out.append(
            _pair_violation(
                RECOVERY_RACE, view.proc, pair,
                f"two threads race mpi_comm_shrink on communicator "
                f"{pair.a.arg(MonitoredKind.COMM)} — each obtains a "
                "different replacement communicator",
            )
        )
    return out


def _trace_mismatch(trace: CollectiveTrace, proc: int) -> Optional[Violation]:
    """First divergence of one team's arrival sequences, as a finding.

    Position *i* is comparable for a member when it recorded an arrival
    there, or is closed (so "no arrival at *i*" is definitive).  Open
    members — blocked in a deadlock or aborted — are only compared on
    their recorded prefix, which keeps fault-truncated runs from
    producing false divergence reports.
    """
    seqs = trace.sequences
    longest = max((len(s) for s in seqs), default=0)
    for i in range(longest):
        # Members are compared by collective *color* — (kind, op), the
        # PARCOACH matching criterion — not source location: two
        # barriers on different lines (balanced branch arms) match.
        # None stands for "definitively ended before position i".
        first_with: Dict[Optional[Tuple[str, str]], Tuple[int, Optional[Tuple[str, str, str, int]]]] = {}
        for member, seq in enumerate(seqs):
            if i < len(seq):
                entry: Optional[Tuple[str, str, str, int]] = seq[i]
                color: Optional[Tuple[str, str]] = (entry[0], entry[2])
            elif trace.closed[member]:
                entry = None
                color = None
            else:
                continue  # open member, prefix exhausted: unknown
            first_with.setdefault(color, (member, entry))
        if len(first_with) <= 1:
            continue
        real = [e for _m, e in first_with.values() if e is not None]
        members = sorted(m for m, _e in first_with.values())
        threads = tuple(trace.members[m] for m in members)
        callsites = tuple(sorted({e[3] for e in real}))
        locs = tuple(sorted({e[1] for e in real}))
        ops = tuple(sorted({e[2] for e in real if e[2]}))

        def _desc(entry: Optional[Tuple[str, str, str, int]]) -> str:
            if entry is None:
                return "region end (no further collectives)"
            kind, loc, op, _callsite = entry
            return f"{op or kind}@{loc}"

        described = "; ".join(
            f"member {m} (thread {trace.members[m]}): {_desc(e)}"
            for m, e in sorted(first_with.values())
        )
        if None in first_with:
            return Violation(
                BARRIER_DIVERGENCE,
                proc,
                f"team {trace.team}: members diverge at collective "
                f"#{i} — {described}",
                callsites=callsites,
                locs=locs,
                threads=threads,
                ops=ops,
            )
        return Violation(
            COLLECTIVE_ORDER_MISMATCH,
            proc,
            f"team {trace.team}: members arrive at different collectives "
            f"at position {i} — {described}",
            callsites=callsites,
            locs=locs,
            threads=threads,
            ops=ops,
        )
    return None


def check_collective_matching(view: ProcessView) -> List[Violation]:
    """PARCOACH dynamic collective check (collective-matching family).

    Every thread of a team must encounter the same ordered sequence of
    collective constructs; the first position where two comparable
    members disagree is reported — as a
    :data:`BARRIER_DIVERGENCE` when a member's region body *ended*
    while another member kept arriving (it skipped collectives under a
    divergent branch), or a :data:`COLLECTIVE_ORDER_MISMATCH` when both
    arrived but at differently-colored sites.
    """
    out: List[Violation] = []
    for trace in view.collective_traces:
        finding = _trace_mismatch(trace, view.proc)
        if finding is not None:
            out.append(finding)
    return out


ALL_RULES = (
    check_initialization,
    check_finalization,
    check_concurrent_recv,
    check_concurrent_request,
    check_probe,
    check_collective,
    check_error_handler_reentrancy,
    check_recovery_race,
    check_collective_matching,
)
