"""Report rendering: findings with source excerpts, text or JSON.

The paper motivates HOME as a tool that can "report violations and
locate the issues in programs"; this module turns a
:class:`~repro.violations.ViolationReport` into developer-facing output
that points at the offending source lines, optionally with the fix
recipe attached.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .fixes import _SUGGESTIONS
from .matcher import ViolationReport
from .spec import Violation


def _parse_loc(loc: str) -> Optional[Tuple[int, int]]:
    try:
        line, col = loc.split(":")
        return int(line), int(col)
    except (ValueError, AttributeError):
        return None


@dataclass
class Excerpt:
    """A source snippet anchored at one finding location."""

    loc: str
    lines: List[Tuple[int, str]]  # (1-based line number, text)
    marker_line: int

    def render(self) -> str:
        width = len(str(max(n for n, _ in self.lines))) if self.lines else 1
        out = []
        for number, text in self.lines:
            marker = ">" if number == self.marker_line else " "
            out.append(f"  {marker} {number:>{width}} | {text}")
        return "\n".join(out)


def excerpt_at(source: str, loc: str, context: int = 1) -> Optional[Excerpt]:
    """A ±*context*-line snippet of *source* around *loc*."""
    parsed = _parse_loc(loc)
    if parsed is None:
        return None
    line, _col = parsed
    all_lines = source.splitlines()
    if not 1 <= line <= len(all_lines):
        return None
    first = max(1, line - context)
    last = min(len(all_lines), line + context)
    return Excerpt(
        loc=loc,
        lines=[(n, all_lines[n - 1]) for n in range(first, last + 1)],
        marker_line=line,
    )


def render_violation(
    violation: Violation,
    source: Optional[str] = None,
    context: int = 1,
    with_fix: bool = False,
) -> str:
    """One finding as a multi-line, human-oriented block."""
    lines = [str(violation)]
    if source is not None:
        seen = set()
        for loc in violation.locs:
            if loc in seen:
                continue
            seen.add(loc)
            excerpt = excerpt_at(source, loc, context)
            if excerpt is not None:
                lines.append(excerpt.render())
    if with_fix:
        suggestion = _SUGGESTIONS.get(violation.vclass)
        if suggestion is not None:
            lines.append(f"  fix: {suggestion.title}")
    return "\n".join(lines)


def render_report(
    report: ViolationReport,
    source: Optional[str] = None,
    context: int = 1,
    with_fixes: bool = False,
) -> str:
    """A whole report as readable text."""
    if not len(report):
        return "no thread-safety violations detected"
    blocks = [f"{len(report)} thread-safety violation(s) detected:"]
    for violation in report:
        procs = report.procs_by_finding.get(violation.dedup_key(), [])
        block = render_violation(violation, source, context, with_fixes)
        ranks = ",".join(str(p) for p in sorted(procs))
        blocks.append(f"{block}\n  (observed on rank(s) {ranks})")
    return "\n\n".join(blocks)


def render_race_candidates(
    candidates: Sequence,
    source: Optional[str] = None,
    context: int = 1,
) -> str:
    """Static race candidates as readable text, with source excerpts.

    *candidates* is duck-typed (``StaticRaceCandidate`` objects from the
    static race pass) so the violations package does not need to import
    the analysis package.
    """
    if not candidates:
        return "no static race candidates"
    blocks = [f"{len(candidates)} static race candidate(s):"]
    for cand in candidates:
        lines = [str(cand)]
        if source is not None:
            seen = set()
            for loc in cand.locs():
                if loc in seen:
                    continue
                seen.add(loc)
                excerpt = excerpt_at(source, loc, context)
                if excerpt is not None:
                    lines.append(excerpt.render())
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_divergence_candidates(
    candidates: Sequence,
    source: Optional[str] = None,
    context: int = 1,
) -> str:
    """Static collective-divergence candidates as readable text.

    *candidates* is duck-typed (``CollectiveDivergenceCandidate``
    objects from the static collectives pass), mirroring
    :func:`render_race_candidates`.
    """
    if not candidates:
        return "no collective-divergence candidates"
    blocks = [f"{len(candidates)} collective-divergence candidate(s):"]
    for cand in candidates:
        lines = [str(cand)]
        if source is not None:
            seen = set()
            for loc in cand.locs():
                if loc in seen:
                    continue
                seen.add(loc)
                excerpt = excerpt_at(source, loc, context)
                if excerpt is not None:
                    lines.append(excerpt.render())
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_divergence_triage(triage: Dict) -> str:
    """Static-vs-dynamic collective-divergence triage as text.

    Binary: every static candidate is either *confirmed* by a dynamic
    barrier-divergence / collective-order finding at one of its sites,
    or *refuted* (monitored, no mismatch observed) — never silently
    dropped.
    """
    labels = {
        "confirmed": "confirmed by dynamic phase",
        "refuted": "refuted (monitored, no divergence observed)",
    }
    lines = ["collective-divergence triage:"]
    for key in ("confirmed", "refuted"):
        entries = triage.get(key, [])
        lines.append(f"  {labels[key]}: {len(entries)}")
        for entry in entries:
            locs = ", ".join(entry.get("locs", []))
            detail = f"    {entry['kind']} in {entry['func']}"
            detail += f" (branch at {entry['branch_loc']}"
            detail += f"; sites {locs})" if locs else ")"
            lines.append(detail)
            for vclass in entry.get("violation_classes", []):
                lines.append(f"      dynamic finding: {vclass}")
    return "\n".join(lines)


def render_race_triage(triage: Dict) -> str:
    """The HOME pipeline's static-vs-dynamic race triage as text."""
    order = ("confirmed", "refuted", "missed_by_dynamic")
    labels = {
        "confirmed": "confirmed by dynamic phase",
        "refuted": "refuted (multi-threaded, no race observed)",
        "missed_by_dynamic": "missed by dynamic phase (never multi-threaded)",
    }
    lines = ["static race triage:"]
    for key in order:
        entries = triage.get(key, [])
        lines.append(f"  {labels[key]}: {len(entries)}")
        for entry in entries:
            locs = ", ".join(entry.get("locs", []))
            detail = f"    {entry['var']} ({entry['candidates']} candidate(s)"
            detail += f" at {locs})" if locs else ")"
            lines.append(detail)
            for race in entry.get("races", []):
                threads = "/".join(str(t) for t in race["threads"])
                lines.append(
                    f"      observed on rank {race['proc']} "
                    f"threads {threads}"
                )
    return "\n".join(lines)


def report_to_dict(report: ViolationReport) -> Dict:
    """Machine-readable form of a report (for --format json)."""
    findings = []
    for violation in report:
        findings.append({
            "class": violation.vclass,
            "message": violation.message,
            "locations": list(violation.locs),
            "threads": list(violation.threads),
            "ops": list(violation.ops),
            "ranks": sorted(report.procs_by_finding.get(violation.dedup_key(), [])),
        })
    return {
        "violations": findings,
        "count": len(report),
        "classes": report.classes(),
    }


def report_to_json(report: ViolationReport, indent: int = 2) -> str:
    return json.dumps(report_to_dict(report), indent=indent)
