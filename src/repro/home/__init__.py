"""HOME: the integrated static/dynamic thread-safety checker."""

from .pipeline import (  # noqa: F401
    Home,
    HomeOptions,
    check_program,
    triage_divergence_candidates,
    triage_race_candidates,
)

__all__ = [
    "Home",
    "HomeOptions",
    "check_program",
    "triage_divergence_candidates",
    "triage_race_candidates",
]
