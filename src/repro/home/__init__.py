"""HOME: the integrated static/dynamic thread-safety checker."""

from .pipeline import Home, HomeOptions, check_program  # noqa: F401

__all__ = ["Home", "HomeOptions", "check_program"]
