"""HOME — the paper's tool.

Pipeline (paper Fig. 3):

1. **Compile-time checking** — CFG construction, hybrid-site discovery,
   static thread-level warnings, selective instrumentation (MPI calls in
   ``omp parallel`` regions become ``hmpi_*`` wrappers), the
   monitored-variable checklist, and the static data-race pass whose
   candidate variables seed the *memory* monitoring set.
2. **Runtime checking** — execute the instrumented program; wrappers
   write the monitored variables and log call arguments.  When the
   static race pass produced candidates, memory monitoring is switched
   on for exactly those variables (race-directed narrowing — the ITC
   model monitors everything instead).
3. **Hybrid dynamic analysis** — lockset + happens-before concurrency
   detection on the monitored variables.
4. **Report matching** — merge concurrency reports with the
   thread-safety specification argument list into final violations;
   static race candidates are triaged against the dynamic phase's
   :class:`~repro.analysis.dynamic_.memraces.MemRace` findings as
   confirmed / refuted / missed-by-dynamic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from ..analysis.dynamic_.hybrid import DetectorConfig, analyze
from ..analysis.dynamic_.memraces import MemRace, find_memory_races
from ..analysis.static_ import (
    InstrumentPolicy,
    StaticRaceReport,
    StaticReport,
    run_static_analysis,
)
from ..baselines.base import CheckingTool, ToolReport
from ..events import MemAccess
from ..minilang import ast_nodes as A
from ..runtime import ExecutionResult
from ..runtime.costmodel import HOME_CHARGE, ITC_CHARGE
from ..violations import ViolationReport, match_violations
from ..violations.spec import (
    BARRIER_DIVERGENCE,
    COLLECTIVE_ORDER_MISMATCH,
    Violation,
)


@dataclass(frozen=True)
class HomeOptions:
    """Tuning knobs for the HOME pipeline (defaults match the paper)."""

    instrument_policy: InstrumentPolicy = "hybrid-only"
    interprocedural: bool = True
    #: run the worklist dataflow analyses (envelope intervals,
    #: lock-state, May-Happen-in-Parallel) to prune static candidates
    dataflow: bool = True
    #: run the static data-race pass and narrow memory monitoring to
    #: its candidate variables
    races: bool = True
    #: run the static collective-divergence pass and narrow collective
    #: monitoring to its candidate sites (divergence-directed narrowing,
    #: the PARCOACH collective-matching family)
    collectives: bool = True
    #: compute context-sensitive interprocedural function summaries and
    #: share them with every static pass (races, MHP, locks, collectives)
    summaries: bool = True
    #: per-access charge while race-directed memory monitoring is on;
    #: the ITC model's unit cost, so overhead comparisons are per-event
    #: fair — HOME just monitors far fewer events
    race_memory_cost: float = ITC_CHARGE.mem_event_cost
    #: report dynamically confirmed race candidates as DataRace findings
    report_memory_races: bool = True
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    #: include static thread-level warnings in the report extras
    report_static_warnings: bool = True


def triage_race_candidates(
    result: ExecutionResult, races: StaticRaceReport
) -> Dict[str, Any]:
    """Judge each static race candidate against the dynamic phase.

    * **confirmed** — the lockset/happens-before analysis found an
      unordered conflicting access pair on the candidate variable;
    * **refuted** — the variable was observed from several threads but
      every conflicting pair was ordered or lock-protected;
    * **missed-by-dynamic** — the monitored run never exercised the
      variable from more than one thread, so the schedule says nothing
      (the candidate stands untested, the classic dynamic-tool gap).
    """
    log = result.log
    dynamic_races: Dict[str, List[MemRace]] = {}
    if result.config.monitor_memory:
        for proc in log.processes():
            for race in find_memory_races(log, proc):
                dynamic_races.setdefault(race.var, []).append(race)
    threads_by_var: Dict[str, Dict[int, set]] = {}
    for event in log:
        if type(event) is MemAccess:
            threads_by_var.setdefault(event.var, {}).setdefault(
                event.proc, set()
            ).add(event.thread)

    locs_by_var: Dict[str, set] = {}
    for cand in races.candidates:
        locs_by_var.setdefault(cand.var, set()).update(cand.locs())

    triage: Dict[str, Any] = {
        "confirmed": [], "refuted": [], "missed_by_dynamic": [],
    }
    for var in sorted(races.monitored_vars):
        entry: Dict[str, Any] = {
            "var": var,
            "locs": sorted(locs_by_var.get(var, ())),
            "candidates": sum(1 for c in races.candidates if c.var == var),
        }
        if var in dynamic_races:
            entry["races"] = [
                {
                    "proc": r.proc,
                    "threads": sorted((r.thread_a, r.thread_b)),
                    "callsites": sorted((r.callsite_a, r.callsite_b)),
                }
                for r in dynamic_races[var]
            ]
            triage["confirmed"].append(entry)
        elif any(
            len(threads) > 1 for threads in threads_by_var.get(var, {}).values()
        ):
            triage["refuted"].append(entry)
        else:
            triage["missed_by_dynamic"].append(entry)
    return triage


def triage_divergence_candidates(
    collectives, violations: ViolationReport
) -> Dict[str, Any]:
    """Judge each static collective-divergence candidate against the
    dynamic collective-matching findings.

    Binary and exhaustive — every candidate lands in exactly one bin:

    * **confirmed** — a dynamic barrier-divergence / collective-order
      finding involves one of the candidate's collective sites;
    * **refuted** — the sites were monitored but no mismatch was
      observed under this schedule.

    Unlike race triage there is no missed-by-dynamic bin: collective
    arrivals are recorded at *encounter* (before any blocking), so a
    monitored multi-thread team always produces comparable sequences.
    """
    dynamic_locs: Dict[str, set] = {}
    for violation in violations:
        if violation.vclass in (BARRIER_DIVERGENCE, COLLECTIVE_ORDER_MISMATCH):
            for loc in violation.locs:
                dynamic_locs.setdefault(loc, set()).add(violation.vclass)
    triage: Dict[str, Any] = {"confirmed": [], "refuted": []}
    for cand in collectives.candidates:
        locs = sorted(cand.monitored_locs)
        hit_classes = sorted(
            {vc for loc in locs for vc in dynamic_locs.get(loc, ())}
        )
        entry: Dict[str, Any] = {
            "kind": cand.kind,
            "func": cand.func,
            "branch_loc": cand.branch_loc,
            "locs": locs,
            "violation_classes": hit_classes,
        }
        triage["confirmed" if hit_classes else "refuted"].append(entry)
    return triage


class Home(CheckingTool):
    """The integrated static+dynamic thread-safety checker."""

    name = "HOME"
    charge = HOME_CHARGE
    monitor_memory = False

    def __init__(self, options: HomeOptions = HomeOptions()) -> None:
        self.options = options

    def prepare(self, program: A.Program):
        static = run_static_analysis(
            program,
            policy=self.options.instrument_policy,
            interprocedural=self.options.interprocedural,
            dataflow=self.options.dataflow,
            races=self.options.races,
            collectives=self.options.collectives,
            summaries=self.options.summaries,
        )
        return static.instrumented_program, static

    def run_config(self, nprocs, num_threads, seed, static=None, **overrides):
        """Race-directed narrowing: monitor memory only when the static
        race pass produced candidates, and then only their variables."""
        if (
            self.options.races
            and isinstance(static, StaticReport)
            and static.races is not None
            and static.races.monitored_vars
        ):
            overrides.setdefault("monitor_memory", True)
            overrides.setdefault("monitored_vars", static.races.monitored_vars)
            overrides.setdefault(
                "charge",
                replace(self.charge, mem_event_cost=self.options.race_memory_cost),
            )
        if (
            self.options.collectives
            and isinstance(static, StaticReport)
            and static.collectives is not None
            and static.collectives.candidates
        ):
            # Divergence-directed narrowing: record collective arrivals
            # only at the static pass's candidate sites.
            overrides.setdefault("monitor_collectives", True)
            overrides.setdefault(
                "collective_sites", static.collectives.monitored_locs
            )
        return super().run_config(nprocs, num_threads, seed, static=static, **overrides)

    def analyze(
        self, result: ExecutionResult, static: Optional[StaticReport]
    ) -> ViolationReport:
        reports = analyze(result.log, self.options.detector)
        violations = match_violations(result.log, reports)
        if (
            self.options.report_memory_races
            and static is not None
            and static.races is not None
            and result.config.monitor_memory
        ):
            locs_by_var: Dict[str, set] = {}
            for cand in static.races.candidates:
                locs_by_var.setdefault(cand.var, set()).update(cand.locs())
            for proc in result.log.processes():
                for race in find_memory_races(result.log, proc):
                    violations.add(
                        Violation(
                            vclass="DataRace",
                            proc=proc,
                            message=(
                                f"static race candidate confirmed: conflicting "
                                f"unsynchronized accesses to shared variable "
                                f"{race.var!r} from threads {race.thread_a} "
                                f"and {race.thread_b}"
                            ),
                            callsites=tuple(
                                sorted((race.callsite_a, race.callsite_b))
                            ),
                            locs=tuple(sorted(locs_by_var.get(race.var, ()))),
                            threads=tuple(sorted((race.thread_a, race.thread_b))),
                        )
                    )
        return violations

    def check(self, program, nprocs=2, num_threads=2, seed=0, **overrides) -> ToolReport:
        report = super().check(program, nprocs, num_threads, seed, **overrides)
        if self.options.report_static_warnings and report.static is not None:
            report.extras["static_warnings"] = list(report.static.warnings)
            report.extras["instrumented_sites"] = report.static.instrumentation.n_instrumented
            report.extras["filtered_sites"] = report.static.instrumentation.n_filtered
            report.extras["static_candidates"] = len(report.static.candidates)
            facts = report.static.dataflow_facts
            if facts is not None:
                report.extras["dataflow_pruned"] = dict(facts.pruned)
        if report.static is not None and report.static.races is not None:
            races = report.static.races
            report.extras["race_pruned"] = dict(races.pruned)
            report.extras["static_race_candidates"] = len(races.candidates)
            report.extras["monitored_vars"] = sorted(races.monitored_vars)
            report.extras["race_triage"] = triage_race_candidates(
                report.execution, races
            )
        if report.static is not None and report.static.collectives is not None:
            collectives = report.static.collectives
            report.extras["divergence_pruned"] = dict(collectives.pruned)
            report.extras["divergence_candidates"] = len(collectives.candidates)
            if collectives.candidates:
                report.extras["divergence_triage"] = triage_divergence_candidates(
                    collectives, report.violations
                )
        return report


def static_only_violations(static: StaticReport) -> ViolationReport:
    """Degrade gracefully: a report built from the static phase alone.

    Used by the campaign runner when every dynamic run failed — the
    static candidates are all the evidence left.  Each candidate becomes
    a clearly-marked unconfirmed finding (``proc=-1``: no execution
    observed it), so downstream rendering can flag the report as
    static-only rather than silently presenting candidates as confirmed
    violations.
    """
    report = ViolationReport()
    for cand in static.candidates:
        report.add(
            Violation(
                vclass=cand.vclass,
                proc=-1,
                message=(
                    f"STATIC-ONLY (unconfirmed by any execution): "
                    f"{cand.site_a.op}@{cand.site_a.loc} vs "
                    f"{cand.site_b.op}@{cand.site_b.loc}: {cand.reason}"
                ),
                callsites=tuple(sorted({cand.site_a.nid, cand.site_b.nid})),
                locs=cand.locs(),
                ops=tuple(sorted({cand.site_a.op, cand.site_b.op})),
            )
        )
    if static.collectives is not None:
        for dcand in static.collectives.candidates:
            vclass = (
                COLLECTIVE_ORDER_MISMATCH
                if dcand.kind == "collective-order"
                else BARRIER_DIVERGENCE
            )
            report.add(
                Violation(
                    vclass=vclass,
                    proc=-1,
                    message=(
                        f"STATIC-ONLY (unconfirmed by any execution): "
                        f"{dcand.kind} in {dcand.func} at "
                        f"{dcand.branch_loc}: {dcand.reason}"
                    ),
                    callsites=tuple(sorted({s.nid for s in dcand.sites})),
                    locs=tuple(dcand.locs()),
                    ops=tuple(sorted({s.op for s in dcand.sites if s.op})),
                )
            )
    return report


def check_program(
    program: A.Program,
    nprocs: int = 2,
    num_threads: int = 2,
    seed: int = 0,
    options: HomeOptions = HomeOptions(),
    **overrides,
) -> ToolReport:
    """One-call convenience wrapper: run HOME on *program*."""
    return Home(options).check(
        program, nprocs=nprocs, num_threads=num_threads, seed=seed, **overrides
    )
