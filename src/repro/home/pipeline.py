"""HOME — the paper's tool.

Pipeline (paper Fig. 3):

1. **Compile-time checking** — CFG construction, hybrid-site discovery,
   static thread-level warnings, selective instrumentation (MPI calls in
   ``omp parallel`` regions become ``hmpi_*`` wrappers), and the
   monitored-variable checklist.
2. **Runtime checking** — execute the instrumented program; wrappers
   write the monitored variables and log call arguments.
3. **Hybrid dynamic analysis** — lockset + happens-before concurrency
   detection on the monitored variables.
4. **Report matching** — merge concurrency reports with the
   thread-safety specification argument list into final violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis.dynamic_.hybrid import DetectorConfig, analyze
from ..analysis.static_ import InstrumentPolicy, StaticReport, run_static_analysis
from ..baselines.base import CheckingTool, ToolReport
from ..minilang import ast_nodes as A
from ..runtime import ExecutionResult
from ..runtime.costmodel import HOME_CHARGE
from ..violations import ViolationReport, match_violations


@dataclass(frozen=True)
class HomeOptions:
    """Tuning knobs for the HOME pipeline (defaults match the paper)."""

    instrument_policy: InstrumentPolicy = "hybrid-only"
    interprocedural: bool = True
    #: run the worklist dataflow analyses (envelope intervals,
    #: lock-state, May-Happen-in-Parallel) to prune static candidates
    dataflow: bool = True
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    #: include static thread-level warnings in the report extras
    report_static_warnings: bool = True


class Home(CheckingTool):
    """The integrated static+dynamic thread-safety checker."""

    name = "HOME"
    charge = HOME_CHARGE
    monitor_memory = False

    def __init__(self, options: HomeOptions = HomeOptions()) -> None:
        self.options = options

    def prepare(self, program: A.Program):
        static = run_static_analysis(
            program,
            policy=self.options.instrument_policy,
            interprocedural=self.options.interprocedural,
            dataflow=self.options.dataflow,
        )
        return static.instrumented_program, static

    def analyze(
        self, result: ExecutionResult, static: Optional[StaticReport]
    ) -> ViolationReport:
        reports = analyze(result.log, self.options.detector)
        return match_violations(result.log, reports)

    def check(self, program, nprocs=2, num_threads=2, seed=0, **overrides) -> ToolReport:
        report = super().check(program, nprocs, num_threads, seed, **overrides)
        if self.options.report_static_warnings and report.static is not None:
            report.extras["static_warnings"] = list(report.static.warnings)
            report.extras["instrumented_sites"] = report.static.instrumentation.n_instrumented
            report.extras["filtered_sites"] = report.static.instrumentation.n_filtered
            report.extras["static_candidates"] = len(report.static.candidates)
            facts = report.static.dataflow_facts
            if facts is not None:
                report.extras["dataflow_pruned"] = dict(facts.pruned)
        return report


def check_program(
    program: A.Program,
    nprocs: int = 2,
    num_threads: int = 2,
    seed: int = 0,
    options: HomeOptions = HomeOptions(),
    **overrides,
) -> ToolReport:
    """One-call convenience wrapper: run HOME on *program*."""
    return Home(options).check(
        program, nprocs=nprocs, num_threads=num_threads, seed=seed, **overrides
    )
