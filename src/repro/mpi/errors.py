"""MPI error classes and error-handler constants.

The fault-tolerance layer surfaces faults as MPI error codes instead of
killing the simulation.  Error classes are negative integers well below
the sentinel argument values (``MPI_ANY_SOURCE``/``MPI_ANY_TAG`` are
``-1``), so a builtin's return value is unambiguous: ``>= 0`` success
(possibly a payload such as a communicator id), ``<= MPI_ERR_OTHER``
an error class.

This module has no intra-package imports so :mod:`repro.mpi.constants`
and :mod:`repro.mpi.ftmpi` can both use it without cycles.
"""

from __future__ import annotations

#: Success — what every MPI call returns when nothing went wrong.
MPI_SUCCESS = 0

#: Generic error class (catch-all for usage errors surfaced as codes).
MPI_ERR_OTHER = -100
#: A peer rank involved in the operation has failed (ULFM semantics).
MPI_ERR_PROC_FAILED = -101
#: The operation's retry budget expired without completing.
MPI_ERR_TIMEOUT = -102
#: The communicator was revoked by some rank (ULFM ``comm_revoke``).
MPI_ERR_REVOKED = -103

#: Predefined error handlers.
MPI_ERRORS_ARE_FATAL = 0
MPI_ERRORS_RETURN = 1

ERROR_CLASS_NAMES = {
    MPI_SUCCESS: "MPI_SUCCESS",
    MPI_ERR_OTHER: "MPI_ERR_OTHER",
    MPI_ERR_PROC_FAILED: "MPI_ERR_PROC_FAILED",
    MPI_ERR_TIMEOUT: "MPI_ERR_TIMEOUT",
    MPI_ERR_REVOKED: "MPI_ERR_REVOKED",
}

#: Constants exposed to mini-language programs (merged into
#: :data:`repro.mpi.constants.LANGUAGE_CONSTANTS`).
ERROR_LANGUAGE_CONSTANTS = {
    "MPI_SUCCESS": MPI_SUCCESS,
    "MPI_ERR_OTHER": MPI_ERR_OTHER,
    "MPI_ERR_PROC_FAILED": MPI_ERR_PROC_FAILED,
    "MPI_ERR_TIMEOUT": MPI_ERR_TIMEOUT,
    "MPI_ERR_REVOKED": MPI_ERR_REVOKED,
    "MPI_ERRORS_ARE_FATAL": MPI_ERRORS_ARE_FATAL,
    "MPI_ERRORS_RETURN": MPI_ERRORS_RETURN,
}


def error_string(code: int) -> str:
    """Human-readable name for an error class (``mpi_error_string``)."""
    return ERROR_CLASS_NAMES.get(code, f"MPI_ERR_UNKNOWN({code})")
