"""Nonblocking-communication request objects.

``mpi_isend``/``mpi_irecv`` return integer request handles; the handles
index into a *process-wide* table — shared between the process's
threads, which is exactly why two threads concurrently waiting/testing
the same request is a violation class (isConcurrentRequestViolation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..errors import MPIUsageError


@dataclass
class Request:
    """One nonblocking operation in flight.

    Handles are allocated by the owning process's :class:`RequestTable`
    (MPI request handles are process-scoped), which keeps the values a
    program observes deterministic run-to-run.
    """

    kind: str                      # 'send' or 'recv'
    comm: int
    src: int = -1                  # envelope source (recv) / own rank (send)
    tag: int = -1
    dst: int = -1                  # destination (send only)
    buf: Any = None                # ArrayValue destination for recv
    count: int = 0
    done: bool = False
    complete_time: float = 0.0
    #: message id satisfied by (recv) or produced (send); 0 if pending.
    msg_id: int = 0
    payload: Optional[np.ndarray] = None
    handle: int = 0                # assigned by RequestTable.allocate()
    #: thread that created the request (diagnostics)
    owner_thread: int = 0
    #: set once a wait/test retired the request
    freed: bool = False


class RequestTable:
    """Per-process table of live requests (shared across threads)."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.requests: Dict[int, Request] = {}
        self._next_handle = 1

    def allocate(self, req: Request) -> int:
        """Assign the next process-local handle to *req*."""
        req.handle = self._next_handle
        self._next_handle += 1
        return req.handle

    def register(self, req: Request) -> int:
        if req.handle == 0:
            self.allocate(req)
        self.requests[req.handle] = req
        return req.handle

    def get(self, handle: int) -> Request:
        req = self.requests.get(handle)
        if req is None:
            raise MPIUsageError(
                f"rank {self.rank}: invalid or already-freed request handle {handle}"
            )
        return req

    def free(self, handle: int) -> None:
        req = self.requests.pop(handle, None)
        if req is not None:
            req.freed = True

    def pending(self) -> list:
        return [r for r in self.requests.values() if not r.done]

    def __len__(self) -> int:
        return len(self.requests)
