"""Job-wide MPI state: processes, mailboxes, collectives, the works.

:class:`MPIWorld` owns everything shared between simulated processes.
The interpreter's MPI builtins operate on it; no state here is aware of
the AST or the scheduler, keeping the MPI model independently testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import MPIUsageError
from .collectives import CollectiveEngine
from .communicator import CommRegistry, Communicator
from .constants import (
    MPI_THREAD_SINGLE,
    THREAD_LEVEL_NAMES,
)
from .ftmpi import FTState
from .message import Mailbox, Message
from .requests import Request, RequestTable


@dataclass
class ProcState:
    """Per-process MPI runtime state."""

    rank: int
    initialized: bool = False
    finalized: bool = False
    thread_level: int = MPI_THREAD_SINGLE
    #: process-local thread id considered "the MPI main thread"
    main_thread: int = 0
    requests: RequestTable = None  # type: ignore[assignment]
    #: count of MPI calls currently executing (begin seen, end not yet)
    calls_in_flight: int = 0
    #: per-communicator dup/split instance counters
    dup_counter: Dict[int, int] = field(default_factory=dict)
    split_counter: Dict[int, int] = field(default_factory=dict)
    shrink_counter: Dict[int, int] = field(default_factory=dict)
    #: rank died mid-run (injected MPI_Abort); its threads unwound
    crashed: bool = False

    def __post_init__(self) -> None:
        if self.requests is None:
            self.requests = RequestTable(self.rank)

    @property
    def thread_level_name(self) -> str:
        return THREAD_LEVEL_NAMES.get(self.thread_level, f"level {self.thread_level}")


class MPIWorld:
    """All communication state for one simulated MPI job."""

    def __init__(self, nprocs: int) -> None:
        if nprocs < 1:
            raise MPIUsageError(f"world size must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.comms = CommRegistry(nprocs)
        self.collectives = CollectiveEngine()
        self.ft = FTState(self.comms)
        self.procs: List[ProcState] = [ProcState(rank) for rank in range(nprocs)]
        self._mailboxes: Dict[tuple, Mailbox] = {}
        #: virtual time at which the (Marmot-style) central manager frees up
        self.manager_free_at: float = 0.0
        #: messages ever sent (diagnostics / tests)
        self.messages_sent: int = 0

    # -- accessors -----------------------------------------------------------

    def proc(self, rank: int) -> ProcState:
        if not 0 <= rank < self.nprocs:
            raise MPIUsageError(f"rank {rank} out of range (world size {self.nprocs})")
        return self.procs[rank]

    def comm(self, cid: int) -> Communicator:
        return self.comms.get(cid)

    def mailbox(self, rank: int, comm: int) -> Mailbox:
        key = (rank, comm)
        box = self._mailboxes.get(key)
        if box is None:
            box = self._mailboxes[key] = Mailbox(rank, comm)
        return box

    # -- point to point -----------------------------------------------------

    def post_send(
        self,
        src_world: int,
        dst_local: int,
        tag: int,
        comm_id: int,
        payload: np.ndarray,
        sent_time: float,
        latency: float,
        per_elem: float,
        sync: bool = False,
        sender_thread: int = 0,
    ) -> Message:
        """Deliver a message envelope to the destination mailbox."""
        comm = self.comm(comm_id)
        dst_world = comm.world_rank(dst_local)
        src_local = comm.local_rank(src_world)
        msg = Message(
            src=src_local,
            dst=dst_local,
            tag=tag,
            comm=comm_id,
            payload=payload,
            sent_time=sent_time,
            avail_time=sent_time + latency + per_elem * len(payload),
            sync=sync,
            sender_thread=sender_thread,
        )
        self.mailbox(dst_world, comm_id).deliver(msg)
        self.messages_sent += 1
        return msg

    def perturb_mailbox(self, dst_world: int, comm_id: int, rng) -> bool:
        """Shuffle the destination's unexpected-message queue (queue-reorder
        fault injection).  Returns True when the order changed."""
        return self.mailbox(dst_world, comm_id).reorder(rng)

    def match_recv(
        self, dst_world: int, comm_id: int, src: int, tag: int
    ) -> Optional[Message]:
        """Consume the first matching message for a receive, if present."""
        return self.mailbox(dst_world, comm_id).take(src, tag)

    def peek_recv(
        self, dst_world: int, comm_id: int, src: int, tag: int
    ) -> Optional[Message]:
        """Probe: first matching message without consuming it."""
        return self.mailbox(dst_world, comm_id).find(src, tag)

    # -- diagnostics ------------------------------------------------------------

    def undelivered_messages(self) -> List[Message]:
        out: List[Message] = []
        for box in self._mailboxes.values():
            out.extend(box.queue)
        return out

    def pending_requests(self, rank: int) -> List[Request]:
        return self.proc(rank).requests.pending()

    def all_finalized(self) -> bool:
        return all(p.finalized for p in self.procs if p.initialized)
