"""Deterministic MPI simulator substrate.

Implements the slice of MPI the CLUSTER 2015 paper's analyses reason
about: thread support levels, point-to-point matching with wildcards,
nonblocking requests, probe, collectives matched by per-process call
order, communicator management, and finalize semantics.
"""

from .collectives import CollectiveEngine, apply_reduce  # noqa: F401
from .communicator import CommRegistry, Communicator  # noqa: F401
from .constants import (  # noqa: F401
    LANGUAGE_CONSTANTS,
    MPI_ANY_SOURCE,
    MPI_ANY_TAG,
    MPI_COMM_WORLD,
    MPI_MAX,
    MPI_MIN,
    MPI_PROD,
    MPI_SUM,
    MPI_THREAD_FUNNELED,
    MPI_THREAD_MULTIPLE,
    MPI_THREAD_SERIALIZED,
    MPI_THREAD_SINGLE,
    THREAD_LEVEL_NAMES,
)
from .deadlock import DeadlockDiagnosis, diagnose  # noqa: F401
from .errors import (  # noqa: F401
    ERROR_CLASS_NAMES,
    MPI_ERR_OTHER,
    MPI_ERR_PROC_FAILED,
    MPI_ERR_REVOKED,
    MPI_ERR_TIMEOUT,
    MPI_ERRORS_ARE_FATAL,
    MPI_ERRORS_RETURN,
    MPI_SUCCESS,
    error_string,
)
from .ftmpi import FTState, RetryPolicy, TimeoutWaiter  # noqa: F401
from .message import Mailbox, Message, envelope_matches  # noqa: F401
from .requests import Request, RequestTable  # noqa: F401
from .world import MPIWorld, ProcState  # noqa: F401

__all__ = [
    "MPIWorld",
    "ProcState",
    "Mailbox",
    "Message",
    "envelope_matches",
    "Request",
    "RequestTable",
    "CommRegistry",
    "Communicator",
    "CollectiveEngine",
    "apply_reduce",
    "DeadlockDiagnosis",
    "diagnose",
    "LANGUAGE_CONSTANTS",
    "MPI_ANY_SOURCE",
    "MPI_ANY_TAG",
    "MPI_COMM_WORLD",
    "MPI_SUM",
    "MPI_MAX",
    "MPI_MIN",
    "MPI_PROD",
    "MPI_THREAD_SINGLE",
    "MPI_THREAD_FUNNELED",
    "MPI_THREAD_SERIALIZED",
    "MPI_THREAD_MULTIPLE",
    "THREAD_LEVEL_NAMES",
    "FTState",
    "RetryPolicy",
    "TimeoutWaiter",
    "ERROR_CLASS_NAMES",
    "MPI_SUCCESS",
    "MPI_ERR_OTHER",
    "MPI_ERR_PROC_FAILED",
    "MPI_ERR_TIMEOUT",
    "MPI_ERR_REVOKED",
    "MPI_ERRORS_ARE_FATAL",
    "MPI_ERRORS_RETURN",
    "error_string",
]
