"""MPI constants exposed to mini-language programs.

These are injected into every process's global scope, so program text
can say ``mpi_init_thread(MPI_THREAD_MULTIPLE)`` or
``mpi_recv(buf, 1, MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_COMM_WORLD)``
exactly like the paper's examples.
"""

from __future__ import annotations

from .errors import ERROR_LANGUAGE_CONSTANTS

# Thread support levels (MPI-2 §12.4).
MPI_THREAD_SINGLE = 0
MPI_THREAD_FUNNELED = 1
MPI_THREAD_SERIALIZED = 2
MPI_THREAD_MULTIPLE = 3

THREAD_LEVEL_NAMES = {
    MPI_THREAD_SINGLE: "MPI_THREAD_SINGLE",
    MPI_THREAD_FUNNELED: "MPI_THREAD_FUNNELED",
    MPI_THREAD_SERIALIZED: "MPI_THREAD_SERIALIZED",
    MPI_THREAD_MULTIPLE: "MPI_THREAD_MULTIPLE",
}

# Wildcards.
MPI_ANY_SOURCE = -1
MPI_ANY_TAG = -1

# Predefined communicator handle.
MPI_COMM_WORLD = 0

# Reduction operations (handles).
MPI_SUM = 0
MPI_MAX = 1
MPI_MIN = 2
MPI_PROD = 3

REDUCE_OP_NAMES = {MPI_SUM: "MPI_SUM", MPI_MAX: "MPI_MAX", MPI_MIN: "MPI_MIN", MPI_PROD: "MPI_PROD"}

#: Name -> value map injected into program scopes.
LANGUAGE_CONSTANTS = {
    "MPI_THREAD_SINGLE": MPI_THREAD_SINGLE,
    "MPI_THREAD_FUNNELED": MPI_THREAD_FUNNELED,
    "MPI_THREAD_SERIALIZED": MPI_THREAD_SERIALIZED,
    "MPI_THREAD_MULTIPLE": MPI_THREAD_MULTIPLE,
    "MPI_ANY_SOURCE": MPI_ANY_SOURCE,
    "MPI_ANY_TAG": MPI_ANY_TAG,
    "MPI_COMM_WORLD": MPI_COMM_WORLD,
    "MPI_SUM": MPI_SUM,
    "MPI_MAX": MPI_MAX,
    "MPI_MIN": MPI_MIN,
    "MPI_PROD": MPI_PROD,
    **ERROR_LANGUAGE_CONSTANTS,
}
