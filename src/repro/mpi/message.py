"""Point-to-point message matching.

One :class:`Mailbox` exists per (destination rank, communicator).  The
matching rules implement the MPI standard's semantics:

* a receive with ``(src, tag)`` matches the *earliest* queued message
  whose source and tag agree, where ``MPI_ANY_SOURCE`` / ``MPI_ANY_TAG``
  match anything;
* non-overtaking: two messages from the same sender with the same tag
  on the same communicator are matched in send order (guaranteed by the
  earliest-first scan);
* the rank in an envelope identifies a *process*, never a thread — the
  root cause of the Concurrent-Recv violation class the paper checks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .constants import MPI_ANY_SOURCE, MPI_ANY_TAG

_MSG_COUNTER = itertools.count(1)


@dataclass
class Message:
    """An in-flight point-to-point message."""

    src: int
    dst: int
    tag: int
    comm: int
    payload: np.ndarray
    sent_time: float
    avail_time: float
    sync: bool = False           # sender blocks until consumed (rendezvous)
    consumed: bool = False
    consumed_time: float = 0.0
    msg_id: int = field(default_factory=lambda: next(_MSG_COUNTER))
    sender_thread: int = 0

    @property
    def count(self) -> int:
        return len(self.payload)


def envelope_matches(msg: Message, src: int, tag: int) -> bool:
    """Does *msg* match a receive/probe envelope (src, tag)?"""
    if src != MPI_ANY_SOURCE and msg.src != src:
        return False
    if tag != MPI_ANY_TAG and msg.tag != tag:
        return False
    return True


class Mailbox:
    """Ordered queue of unconsumed messages for one (rank, comm)."""

    def __init__(self, rank: int, comm: int) -> None:
        self.rank = rank
        self.comm = comm
        self.queue: List[Message] = []
        #: Total messages ever delivered here (diagnostics).
        self.delivered = 0

    def deliver(self, msg: Message) -> None:
        self.queue.append(msg)
        self.delivered += 1

    def find(self, src: int, tag: int) -> Optional[Message]:
        """First matching message without consuming it (probe semantics)."""
        for msg in self.queue:
            if envelope_matches(msg, src, tag):
                return msg
        return None

    def take(self, src: int, tag: int) -> Optional[Message]:
        """Consume and return the first matching message, if any."""
        for i, msg in enumerate(self.queue):
            if envelope_matches(msg, src, tag):
                del self.queue[i]
                msg.consumed = True
                return msg
        return None

    def reorder(self, rng) -> bool:
        """Permute the pending queue (fault injection only — this
        deliberately breaks the non-overtaking guarantee to model an
        adversarial unexpected-message queue).  Returns True when the
        order actually changed."""
        if len(self.queue) < 2:
            return False
        before = [m.msg_id for m in self.queue]
        rng.shuffle(self.queue)
        return [m.msg_id for m in self.queue] != before

    def __len__(self) -> int:
        return len(self.queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Mailbox rank={self.rank} comm={self.comm} pending={len(self.queue)}>"
