"""Collective operation engine.

MPI matches collectives by *call order per process per communicator*:
the k-th collective a process issues on communicator C pairs with every
other member's k-th collective on C.  The engine models exactly that —
which is also what makes the Collective-Call violation observable: when
two threads of one process race on the same communicator, the order in
which they grab slot indices is nondeterministic, so the process's
contributions can pair with the wrong remote calls (and the op check
can fail across ranks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import MPIUsageError
from .constants import MPI_MAX, MPI_MIN, MPI_PROD, MPI_SUM
from .communicator import Communicator


def apply_reduce(op: int, values: List[Any]) -> Any:
    """Combine *values* with the given reduction op."""
    if not values:
        raise MPIUsageError("reduction over empty contribution set")
    if isinstance(values[0], np.ndarray):
        stack = np.stack(values)
        if op == MPI_SUM:
            return stack.sum(axis=0)
        if op == MPI_MAX:
            return stack.max(axis=0)
        if op == MPI_MIN:
            return stack.min(axis=0)
        if op == MPI_PROD:
            return stack.prod(axis=0)
    else:
        if op == MPI_SUM:
            return sum(values)
        if op == MPI_MAX:
            return max(values)
        if op == MPI_MIN:
            return min(values)
        if op == MPI_PROD:
            out = values[0]
            for v in values[1:]:
                out = out * v
            return out
    raise MPIUsageError(f"unknown reduction op handle {op}")


@dataclass
class CollectiveSlot:
    """State of one in-progress collective instance on a communicator."""

    comm_id: int
    index: int
    op_name: Optional[str] = None
    root: Optional[int] = None
    reduce_op: Optional[int] = None
    #: world rank -> contributed value (payload snapshot or scalar)
    contributions: Dict[int, Any] = field(default_factory=dict)
    #: world rank -> arrival virtual time
    arrivals: Dict[int, float] = field(default_factory=dict)
    #: ranks that have completed (picked up results)
    completed: set = field(default_factory=set)
    mismatch: Optional[str] = None

    def arrived(self, rank: int) -> bool:
        return rank in self.arrivals


class CollectiveEngine:
    """Tracks collective slots for every communicator."""

    def __init__(self) -> None:
        # (comm_id, slot_index) -> CollectiveSlot
        self.slots: Dict[tuple, CollectiveSlot] = {}
        # (comm_id, world_rank) -> next slot index for that process
        self.counters: Dict[tuple, int] = {}
        #: Recorded op-mismatch diagnostics (comm, index, detail).
        self.mismatches: List[str] = []

    def next_index(self, comm_id: int, world_rank: int) -> int:
        """Allocate this process's next collective slot index on *comm*.

        NOTE: this counter is per *process*, not per thread — two threads
        of the same process calling collectives concurrently will race
        for indices, faithfully modelling the violation.
        """
        key = (comm_id, world_rank)
        idx = self.counters.get(key, 0)
        self.counters[key] = idx + 1
        return idx

    def arrive(
        self,
        comm: Communicator,
        index: int,
        world_rank: int,
        op_name: str,
        time: float,
        value: Any = None,
        root: Optional[int] = None,
        reduce_op: Optional[int] = None,
    ) -> CollectiveSlot:
        slot = self.slots.setdefault(
            (comm.cid, index), CollectiveSlot(comm.cid, index)
        )
        if slot.op_name is None:
            slot.op_name = op_name
            slot.root = root
            slot.reduce_op = reduce_op
        elif slot.op_name != op_name or slot.root != root:
            detail = (
                f"collective mismatch on {comm.name} slot {index}: "
                f"rank {world_rank} called {op_name}(root={root}) but slot is "
                f"{slot.op_name}(root={slot.root})"
            )
            slot.mismatch = detail
            self.mismatches.append(detail)
        if world_rank in slot.arrivals:
            raise MPIUsageError(
                f"rank {world_rank} arrived twice at collective slot {index} "
                f"on {comm.name} — concurrent collective calls from threads"
            )
        slot.arrivals[world_rank] = time
        slot.contributions[world_rank] = value
        return slot

    def complete(self, comm: Communicator, index: int) -> bool:
        slot = self.slots.get((comm.cid, index))
        if slot is None:
            return False
        return all(rank in slot.arrivals for rank in comm.members)

    def completion_time(self, comm: Communicator, index: int) -> float:
        slot = self.slots[(comm.cid, index)]
        return max(slot.arrivals[rank] for rank in comm.members)

    def slot(self, comm_id: int, index: int) -> CollectiveSlot:
        return self.slots[(comm_id, index)]
