"""ULFM-style fault tolerance state for the simulated MPI job.

:class:`FTState` hangs off :class:`~repro.mpi.world.MPIWorld` and owns
everything the error-handling layer needs:

* per-communicator **error handlers** — ``MPI_ERRORS_ARE_FATAL``
  (default: a surfaced error aborts the rank exactly like the legacy
  behavior), ``MPI_ERRORS_RETURN`` (the builtin returns a negative
  error class), or the name of a mini-language function called as
  ``handler(comm, code)``;
* the set of **failed ranks** (rank-crash faults mark their victim
  here) and per-rank failure acknowledgement (``comm_failure_ack``);
* **revocation** state (``comm_revoke``) — once revoked, every pending
  and future operation on the communicator surfaces
  ``MPI_ERR_REVOKED``;
* per-communicator **retry policies** (timeout + bounded retry with
  deterministic exponential backoff) and the timeout *waiters* the
  scheduler escapes when the whole job stalls;
* **shrink** coordination — ``comm_shrink`` is collective among the
  *surviving* members of the parent communicator and produces a fresh
  communicator excluding every failed rank.

Nothing here touches the scheduler or interpreter directly; the MPI
builtins drive it, and the scheduler only sees the opaque
:meth:`FTState.escape_earliest` stall hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Union

from .communicator import Communicator
from .errors import MPI_ERRORS_ARE_FATAL, MPI_ERRORS_RETURN


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + bounded-retry configuration for one communicator."""

    timeout: float
    max_retries: int = 3
    backoff_base: float = 120.0
    backoff_factor: float = 2.0


class TimeoutWaiter:
    """One blocked operation that has armed a timeout.

    The scheduler cannot know which blocked task should time out first;
    waiters record their virtual-time deadline and an arm order so the
    stall hook can escape exactly one — the earliest — deterministically.
    """

    __slots__ = ("deadline", "order", "escaped")

    def __init__(self, deadline: float, order: int) -> None:
        self.deadline = deadline
        self.order = order
        self.escaped = False


class FTState:
    """Fault-tolerance bookkeeping shared by all ranks of one job."""

    def __init__(self, comms) -> None:
        self.comms = comms
        #: cid -> handler (int constant or mini-language function name)
        self.handlers: Dict[int, Union[int, str]] = {}
        #: world ranks that have crashed
        self.failed: Set[int] = set()
        #: revoked communicator ids
        self.revoked: Set[int] = set()
        #: cid -> retry policy
        self.policies: Dict[int, RetryPolicy] = {}
        #: world rank -> failed ranks it has acknowledged
        self.acked: Dict[int, Set[int]] = {}
        self._waiters: List[TimeoutWaiter] = []
        self._arm_order = 0
        # Shrink coordination, modeled on CommRegistry dup slots:
        # (parent_cid, instance) -> arrived world ranks / result cid.
        self._shrink_slots: Dict[tuple, Set[int]] = {}
        self._shrink_results: Dict[tuple, int] = {}

    # -- error handlers ------------------------------------------------------

    def handler(self, cid: int) -> Union[int, str]:
        return self.handlers.get(cid, MPI_ERRORS_ARE_FATAL)

    def set_handler(self, cid: int, handler: Union[int, str]) -> None:
        self.handlers[cid] = handler

    def active(self, cid: int) -> bool:
        """Whether fault-tolerant semantics apply on this communicator.

        With the default FATAL handler, no revocation and no retry
        policy the FT layer is inert and every operation behaves
        byte-identically to the pre-FT simulator.
        """
        return (
            self.handler(cid) != MPI_ERRORS_ARE_FATAL
            or cid in self.revoked
            or cid in self.policies
        )

    # -- failure notification -----------------------------------------------

    def mark_failed(self, world_rank: int) -> None:
        self.failed.add(world_rank)

    def is_failed(self, world_rank: int) -> bool:
        return world_rank in self.failed

    def ack_failures(self, world_rank: int) -> int:
        """``comm_failure_ack``: acknowledge all currently known failures;
        returns how many failed ranks are now acknowledged."""
        acked = self.acked.setdefault(world_rank, set())
        acked.update(self.failed)
        return len(acked)

    def peer_failed(self, comm: Communicator, src_local: int) -> bool:
        """Has the peer a receive-ish op waits on failed?

        ``src_local < 0`` is a wildcard (``MPI_ANY_SOURCE``): the peer
        set is every *other* member, and the op can only fail over to
        ``MPI_ERR_PROC_FAILED`` once no live peer could ever send.
        """
        if src_local >= 0:
            return comm.world_rank(src_local) in self.failed
        return all(w in self.failed for w in comm.members) or (
            len([w for w in comm.members if w not in self.failed]) <= 1
        )

    # -- revocation ----------------------------------------------------------

    def revoke(self, cid: int) -> None:
        self.revoked.add(cid)

    def is_revoked(self, cid: int) -> bool:
        return cid in self.revoked

    # -- retry policies ------------------------------------------------------

    def policy(self, cid: int) -> Optional[RetryPolicy]:
        return self.policies.get(cid)

    def set_policy(self, cid: int, policy: RetryPolicy) -> None:
        self.policies[cid] = policy

    # -- timeout waiters -----------------------------------------------------

    def arm(self, deadline: float) -> TimeoutWaiter:
        waiter = TimeoutWaiter(deadline, self._arm_order)
        self._arm_order += 1
        self._waiters.append(waiter)
        return waiter

    def disarm(self, waiter: TimeoutWaiter) -> None:
        try:
            self._waiters.remove(waiter)
        except ValueError:  # pragma: no cover - double disarm is harmless
            pass

    def escape_earliest(self) -> bool:
        """Scheduler stall hook: when no task is runnable, time out the
        armed waiter with the earliest ``(deadline, order)``.

        Deterministic by construction — virtual deadlines and arm order
        depend only on the simulated schedule, never on wall time.
        Returns True when a waiter was escaped (the scheduler then
        re-evaluates runnability instead of declaring deadlock).
        """
        if not self._waiters:
            return False
        waiter = min(self._waiters, key=lambda w: (w.deadline, w.order))
        self._waiters.remove(waiter)
        waiter.escaped = True
        return True

    # -- shrink ---------------------------------------------------------------
    #
    # Collective among *survivors*: each rank's n-th shrink of C joins
    # slot (C, n); the slot completes when every live member arrived.

    def shrink_arrive(self, cid: int, instance: int, world_rank: int) -> None:
        self._shrink_slots.setdefault((cid, instance), set()).add(world_rank)

    def shrink_complete(self, cid: int, instance: int) -> bool:
        parent = self.comms.get(cid)
        slot = self._shrink_slots.get((cid, instance), set())
        return all(w in slot or w in self.failed for w in parent.members)

    def shrink_result(self, cid: int, instance: int) -> int:
        key = (cid, instance)
        if key not in self._shrink_results:
            parent = self.comms.get(cid)
            members = [w for w in parent.members if w not in self.failed]
            self._shrink_results[key] = self.comms.derive(
                f"shrink{instance}({parent.name})", members
            )
        return self._shrink_results[key]
