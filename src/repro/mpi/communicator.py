"""Communicators.

A communicator is a communication context: point-to-point matching and
collective synchronization are both scoped by communicator id.  The
standard fix for the Concurrent-Recv and Probe violations is "use a
distinct communicator (or tag) per thread", so the simulator supports
``mpi_comm_dup`` and ``mpi_comm_split`` in addition to
``MPI_COMM_WORLD``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import MPIUsageError
from .constants import MPI_COMM_WORLD

_COMM_COUNTER = itertools.count(1)  # 0 is MPI_COMM_WORLD


@dataclass
class Communicator:
    """A communicator shared by a group of ranks.

    ``members`` maps a rank *in this communicator* to the world rank.
    For MPI_COMM_WORLD and duplicates this is the identity.
    """

    cid: int
    name: str
    members: List[int]

    @property
    def size(self) -> int:
        return len(self.members)

    def world_rank(self, rank: int) -> int:
        if not 0 <= rank < self.size:
            raise MPIUsageError(
                f"rank {rank} out of range for communicator {self.name} (size {self.size})"
            )
        return self.members[rank]

    def local_rank(self, world_rank: int) -> int:
        try:
            return self.members.index(world_rank)
        except ValueError:
            raise MPIUsageError(
                f"world rank {world_rank} is not a member of communicator {self.name}"
            ) from None


class CommRegistry:
    """All communicators of one simulated job."""

    def __init__(self, world_size: int) -> None:
        self.world_size = world_size
        world = Communicator(MPI_COMM_WORLD, "MPI_COMM_WORLD", list(range(world_size)))
        self.comms: Dict[int, Communicator] = {MPI_COMM_WORLD: world}
        # Pending split/dup coordination: (parent_cid, instance) -> per-rank info.
        self._dup_slots: Dict[tuple, Dict[int, bool]] = {}
        self._dup_results: Dict[tuple, int] = {}
        self._split_slots: Dict[tuple, Dict[int, tuple]] = {}
        self._split_results: Dict[tuple, Dict[int, int]] = {}

    def get(self, cid: int) -> Communicator:
        comm = self.comms.get(cid)
        if comm is None:
            raise MPIUsageError(f"invalid communicator handle {cid}")
        return comm

    @property
    def world(self) -> Communicator:
        return self.comms[MPI_COMM_WORLD]

    def derive(self, name: str, members: List[int]) -> int:
        """Allocate and register a fresh communicator (dup/split/shrink
        results all funnel through the same id counter)."""
        new_cid = next(_COMM_COUNTER)
        self.comms[new_cid] = Communicator(new_cid, name, list(members))
        return new_cid

    # -- dup ------------------------------------------------------------------
    #
    # Comm creation is collective.  Each rank's n-th dup of communicator C
    # joins slot (C, n); the slot completes when every member has arrived,
    # producing one fresh communicator id shared by all members.

    def dup_arrive(self, cid: int, instance: int, world_rank: int) -> None:
        key = (cid, instance)
        slot = self._dup_slots.setdefault(key, {})
        slot[world_rank] = True

    def dup_complete(self, cid: int, instance: int) -> bool:
        key = (cid, instance)
        parent = self.get(cid)
        slot = self._dup_slots.get(key, {})
        return all(rank in slot for rank in parent.members)

    def dup_result(self, cid: int, instance: int) -> int:
        key = (cid, instance)
        if key not in self._dup_results:
            parent = self.get(cid)
            new_cid = next(_COMM_COUNTER)
            self.comms[new_cid] = Communicator(
                new_cid, f"dup{instance}({parent.name})", list(parent.members)
            )
            self._dup_results[key] = new_cid
        return self._dup_results[key]

    # -- split ------------------------------------------------------------------

    def split_arrive(
        self, cid: int, instance: int, world_rank: int, color: int, key: int
    ) -> None:
        skey = (cid, instance)
        slot = self._split_slots.setdefault(skey, {})
        slot[world_rank] = (color, key)

    def split_complete(self, cid: int, instance: int) -> bool:
        parent = self.get(cid)
        slot = self._split_slots.get((cid, instance), {})
        return all(rank in slot for rank in parent.members)

    def split_result(self, cid: int, instance: int, world_rank: int) -> int:
        skey = (cid, instance)
        if skey not in self._split_results:
            parent = self.get(cid)
            slot = self._split_slots[skey]
            by_color: Dict[int, List[tuple]] = {}
            for wrank, (color, key) in slot.items():
                by_color.setdefault(color, []).append((key, wrank))
            results: Dict[int, int] = {}
            for color, entries in sorted(by_color.items()):
                entries.sort()
                members = [wrank for _key, wrank in entries]
                new_cid = next(_COMM_COUNTER)
                self.comms[new_cid] = Communicator(
                    new_cid, f"split{instance}({parent.name}, color={color})", members
                )
                for wrank in members:
                    results[wrank] = new_cid
            self._split_results[skey] = results
        return self._split_results[skey][world_rank]
