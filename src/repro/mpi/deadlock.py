"""Wait-for graph diagnostics for deadlocks.

The scheduler already *detects* deadlock (no runnable task); this module
turns the blocked-task snapshot into a structured explanation — which
rank/thread waits for what — in the spirit of the graph-based deadlock
detectors (Umpire's dependency graphs) the paper surveys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..runtime.scheduler import BlockedInfo


@dataclass(frozen=True)
class WaitEdge:
    """(proc, thread) waits on a resource description."""

    proc: int
    thread: int
    resource: str


class DeadlockDiagnosis:
    """Structured view of a deadlock built from scheduler block reasons."""

    def __init__(self, blocked: List["BlockedInfo"]) -> None:
        self.blocked = list(blocked)
        self.graph = nx.DiGraph()
        for info in self.blocked:
            waiter = f"rank{info.proc}.t{info.thread}"
            self.graph.add_node(waiter, kind="thread")
            resource = info.reason
            self.graph.add_node(resource, kind="resource")
            self.graph.add_edge(waiter, resource)

    @property
    def nblocked(self) -> int:
        return len(self.blocked)

    def involves_mpi(self) -> bool:
        return any("mpi" in info.reason.lower() for info in self.blocked)

    def ranks(self) -> List[int]:
        return sorted({info.proc for info in self.blocked})

    def summary(self) -> str:
        lines = [f"DEADLOCK involving {self.nblocked} blocked thread(s):"]
        for info in self.blocked:
            lines.append(f"  {info}")
        return "\n".join(lines)


def diagnose(blocked: List["BlockedInfo"]) -> DeadlockDiagnosis:
    """Build a :class:`DeadlockDiagnosis` from scheduler blocked info."""
    return DeadlockDiagnosis(blocked)
