"""Grammar-directed mini-language program generator.

Programs are grown from weighted production rules over the constructs
the checker cares about — parallel regions, worksharing loops, locks
(critical/atomic), MPI point-to-point, collectives and fault-tolerance
ops — seeded from the same structural skeletons as the NPB workload
templates (rank/peer setup, exchange-then-region phases, reduction
folds).  Two hard guarantees:

* **Reproducibility** — every program is a pure function of
  ``(GRAMMAR_VERSION, seed, GeneratorConfig)``; the RNG is a private
  :class:`random.Random` derived from those and nothing else.
* **Well-formedness** — generated programs always pass
  :func:`repro.minilang.validate` (worksharing nesting is tracked while
  growing, loop headers are always complete) and always terminate under
  a modest step budget on a healthy library: loop bounds are small
  literals and every ``mpi_recv`` is matched by construction.

The canonical artifact is *source text*: the AST built through
:mod:`repro.minilang.builder` is printed and re-parsed, so corpus files
carry real source locations and the printer round-trip is exercised on
every generated program.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from ..minilang import ast_nodes as A
from ..minilang import builder as B
from ..minilang import parse, print_program, validate

#: Bump whenever a grammar change can alter the program produced for an
#: existing seed — reproducers record (grammar_version, seed).
GRAMMAR_VERSION = 1

#: Default production weights at main (sequential) level.
_MAIN_WEIGHTS: Dict[str, int] = {
    "assign": 5,
    "compute": 3,
    "print": 2,
    "if": 3,
    "for": 3,
    "parallel": 8,
    "exchange": 4,
    "collective": 4,
    "helper-call": 3,
    "ft-ops": 1,
}

#: Default production weights inside a parallel region.
_REGION_WEIGHTS: Dict[str, int] = {
    "omp-for": 5,
    "critical": 4,
    "atomic": 3,
    "barrier": 2,
    "single": 3,
    "master": 3,
    "shared-update": 3,
    "private-work": 4,
    "helper-call": 2,
}


@dataclass(frozen=True)
class GeneratorConfig:
    """Size/nesting budgets and production weights (the grammar knobs)."""

    #: statement budget for main's body (structured statements count 1)
    max_stmts: int = 14
    #: nesting budget for if/for/parallel bodies
    max_depth: int = 3
    #: statements per nested block
    max_block_stmts: int = 4
    #: upper bound on literal loop trip counts
    max_loop_iters: int = 4
    #: helper functions available for calls (0..n generated)
    max_helpers: int = 2
    #: shared arrays declared as globals
    array_size: int = 8
    #: thread counts a parallel region may request
    thread_choices: tuple = (2, 3)
    #: production weights at main level (missing keys fall back to the
    #: defaults; weight 0 disables a production)
    main_weights: Mapping[str, int] = field(default_factory=dict)
    #: production weights inside parallel regions
    region_weights: Mapping[str, int] = field(default_factory=dict)
    #: include MPI fault-tolerance ops (errhandlers, failure ack)
    ft_ops: bool = True


def _merged(defaults: Mapping[str, int], overrides: Mapping[str, int]) -> Dict[str, int]:
    out = dict(defaults)
    out.update(overrides)
    return {k: v for k, v in out.items() if v > 0}


class _Grower:
    """One program growth; all randomness flows through ``self.rng``."""

    def __init__(self, seed: int, config: GeneratorConfig) -> None:
        self.cfg = config
        self.rng = random.Random((GRAMMAR_VERSION << 32) ^ (seed & 0xFFFFFFFF))
        self.fresh = 0
        self.helpers: List[A.FuncDef] = []
        self.main_weights = _merged(_MAIN_WEIGHTS, config.main_weights)
        self.region_weights = _merged(_REGION_WEIGHTS, config.region_weights)
        if not config.ft_ops:
            self.main_weights.pop("ft-ops", None)
        #: scalars known to exist at main scope (after the prologue)
        self.scalars = ["rank", "size", "peer", "acc"]

    # -- small helpers -------------------------------------------------------

    def _name(self, stem: str) -> str:
        self.fresh += 1
        return f"{stem}{self.fresh}"

    def _pick(self, weights: Dict[str, int]) -> str:
        total = sum(weights.values())
        roll = self.rng.randrange(total)
        for key, weight in weights.items():
            roll -= weight
            if roll < 0:
                return key
        return next(iter(weights))  # pragma: no cover - unreachable

    def _scalar(self) -> A.Expr:
        return B.name(self.rng.choice(self.scalars))

    def _small(self) -> int:
        return self.rng.randrange(1, self.cfg.max_loop_iters + 1)

    def _arith(self, depth: int = 0) -> A.Expr:
        """A small side-effect-free integer expression."""
        roll = self.rng.random()
        if depth >= 2 or roll < 0.35:
            return B.lit(self.rng.randrange(0, 8))
        if roll < 0.7:
            return self._scalar()
        op = self.rng.choice(["+", "-", "*", "%"])
        left = self._arith(depth + 1)
        right = self._arith(depth + 1)
        if op == "%":
            # keep the divisor a positive literal: no div-by-zero aborts
            right = B.lit(self.rng.randrange(1, 8))
        return B.binop(op, left, right)

    def _index(self, var: A.Expr) -> A.Expr:
        """An always-in-bounds index into a global array."""
        return B.mod(var, self.cfg.array_size)

    # -- main-level productions ----------------------------------------------

    def _stmt_assign(self, depth: int) -> List[A.Stmt]:
        if self.rng.random() < 0.4:
            array = self.rng.choice(["data", "buf"])
            tgt = B.idx(array, self._index(self._arith()))
            return [B.assign(tgt, self._arith())]
        name = self._name("v")
        self.scalars.append(name)
        return [B.decl(name, self._arith())]

    def _stmt_compute(self, depth: int) -> List[A.Stmt]:
        return [B.callstmt("compute", self.rng.randrange(1, 4))]

    def _stmt_print(self, depth: int) -> List[A.Stmt]:
        return [A.Print([B.lit("v"), self._scalar()])]

    def _stmt_if(self, depth: int) -> List[A.Stmt]:
        cond = B.binop(
            self.rng.choice(["==", "<", "!="]),
            self.rng.choice([B.name("rank"), self._scalar()]),
            B.lit(self.rng.randrange(0, 3)),
        )
        then = self._block(depth + 1, region=False)
        els = self._block(depth + 1, region=False) if self.rng.random() < 0.4 else None
        return [B.if_(cond, then, els)]

    def _stmt_for(self, depth: int) -> List[A.Stmt]:
        var = self._name("i")
        body = self._block(depth + 1, region=False)
        return [B.for_range(var, 0, self._small(), body)]

    def _stmt_parallel(self, depth: int) -> List[A.Stmt]:
        nthreads = self.rng.choice(self.cfg.thread_choices)
        body: List[A.Stmt] = []
        if self.rng.random() < 0.7:
            tid = self._name("t")
            body.append(B.decl(tid, B.call("omp_get_thread_num")))
        else:
            tid = None
        count = self.rng.randrange(1, self.cfg.max_block_stmts + 1)
        for _ in range(count):
            body.extend(self._region_stmt(depth + 1, tid))
        return [B.parallel(body, num_threads=nthreads)]

    def _stmt_exchange(self, depth: int) -> List[A.Stmt]:
        """A matched send/recv phase: every receive has a sender.

        Shapes (picked per call):

        * eager ring — send to ``peer`` then receive from ``peer``;
        * nonblocking — irecv + send + wait;
        * threaded recv — sends up front, receives inside a 2-thread
          region, envelopes disambiguated by thread-id tags (safe) or
          deliberately shared (a detection opportunity, still matched).
        """
        tag = self.rng.randrange(5, 12)
        shape = self.rng.choice(["ring", "nonblocking", "threaded"])
        if shape == "ring":
            return [
                B.callstmt("mpi_send", "buf", 1, "peer", tag, "MPI_COMM_WORLD"),
                B.callstmt("mpi_recv", "buf", 1, "peer", tag, "MPI_COMM_WORLD"),
            ]
        if shape == "nonblocking":
            req = self._name("req")
            src = "peer" if self.rng.random() < 0.7 else "MPI_ANY_SOURCE"
            return [
                B.decl(req, B.call("mpi_irecv", "buf", 1, src, tag,
                                   "MPI_COMM_WORLD")),
                B.callstmt("mpi_send", "buf", 1, "peer", tag, "MPI_COMM_WORLD"),
                B.callstmt("mpi_wait", B.name(req)),
            ]
        # threaded: two sends per rank, two threaded receives
        safe = self.rng.random() < 0.5
        if safe:
            recv_tag: A.Expr = B.add(tag, B.call("omp_get_thread_num"))
            send_tags = [B.add(tag, 0), B.add(tag, 1)]
        else:
            recv_tag = B.lit(tag)
            send_tags = [B.lit(tag), B.lit(tag)]
        return [
            B.callstmt("mpi_send", "buf", 1, "peer", send_tags[0],
                       "MPI_COMM_WORLD"),
            B.callstmt("mpi_send", "buf", 1, "peer", send_tags[1],
                       "MPI_COMM_WORLD"),
            B.parallel(
                [B.callstmt("mpi_recv", "buf", 1, "peer", recv_tag,
                            "MPI_COMM_WORLD")],
                num_threads=2,
            ),
        ]

    def _stmt_collective(self, depth: int) -> List[A.Stmt]:
        kind = self.rng.choice(["barrier", "allreduce", "bcast"])
        if kind == "barrier":
            return [B.callstmt("mpi_barrier", "MPI_COMM_WORLD")]
        out = self._name("v")
        self.scalars.append(out)
        if kind == "allreduce":
            op = self.rng.choice(["MPI_SUM", "MPI_MAX", "MPI_MIN"])
            return [B.decl(out, B.call("mpi_allreduce", self._scalar(), op,
                                       "MPI_COMM_WORLD"))]
        return [B.decl(out, B.call("mpi_bcast", self._scalar(), 0,
                                   "MPI_COMM_WORLD"))]

    def _stmt_helper_call(self, depth: int) -> List[A.Stmt]:
        helper = self._ensure_helper()
        if self.rng.random() < 0.5:
            out = self._name("v")
            self.scalars.append(out)
            return [B.decl(out, B.call(helper, self._arith()))]
        return [B.callstmt(helper, self._arith())]

    def _stmt_ft_ops(self, depth: int) -> List[A.Stmt]:
        handler = self.rng.choice(["MPI_ERRORS_RETURN", "MPI_ERRORS_ARE_FATAL"])
        stmts: List[A.Stmt] = [
            B.callstmt("mpi_comm_set_errhandler", "MPI_COMM_WORLD", handler),
        ]
        if self.rng.random() < 0.5:
            stmts.append(B.callstmt("mpi_comm_failure_ack", "MPI_COMM_WORLD"))
        return stmts

    # -- parallel-region productions -----------------------------------------

    def _region_stmt(self, depth: int, tid) -> List[A.Stmt]:
        key = self._pick(self.region_weights)
        if key == "omp-for":
            return self._region_omp_for(depth)
        if key == "critical":
            name = "" if self.rng.random() < 0.6 else "guard"
            body = [B.assign("acc", B.add("acc", 1))]
            if self.rng.random() < 0.4:
                body.append(B.callstmt("compute", 1))
            return [B.critical(body, name=name)]
        if key == "atomic":
            return [A.OmpAtomic(B.assign("acc", B.add("acc", 1)))]
        if key == "barrier":
            return [B.barrier()]
        if key == "single":
            return [B.single([B.assign(B.idx("data", 0), self._arith())],
                             nowait=self.rng.random() < 0.3)]
        if key == "master":
            return [B.master([B.callstmt("compute", 1)])]
        if key == "shared-update":
            # unsynchronized shared write: a race for the checker to find
            value = B.add("acc", tid) if tid else self._arith()
            return [B.assign("acc", value)]
        if key == "helper-call":
            helper = self._ensure_helper()
            return [B.callstmt(helper, B.name(tid) if tid else self._arith())]
        # private-work
        local = self._name("p")
        return [
            B.decl(local, self._arith()),
            B.callstmt("compute", 1),
        ]

    def _region_omp_for(self, depth: int) -> List[A.Stmt]:
        var = self._name("i")
        schedule = "static" if self.rng.random() < 0.7 else "dynamic"
        chunk = self.rng.choice([None, 1, 2])
        body: List[A.Stmt] = [
            B.assign(
                B.idx("data", self._index(B.name(var))),
                B.add(B.idx("data", self._index(B.name(var))), 1),
            )
        ]
        reductions = []
        if self.rng.random() < 0.3:
            reductions = [("+", "acc")]
            body.append(B.assign("acc", B.add("acc", B.name(var))))
        loop = B.for_range(var, 0, self._small() * 2, body)
        return [A.OmpFor(
            loop,
            schedule=schedule,
            chunk=B.lit(chunk) if chunk is not None else None,
            nowait=self.rng.random() < 0.2,
            reductions=reductions,
        )]

    # -- assembly ------------------------------------------------------------

    def _block(self, depth: int, region: bool) -> List[A.Stmt]:
        if depth >= self.cfg.max_depth:
            return [B.callstmt("compute", 1)]
        weights = dict(self.main_weights)
        # nested blocks stay sequential: no new regions or comms phases
        for key in ("parallel", "exchange", "collective", "ft-ops"):
            weights.pop(key, None)
        out: List[A.Stmt] = []
        for _ in range(self.rng.randrange(1, self.cfg.max_block_stmts + 1)):
            out.extend(self._dispatch_main(self._pick(weights), depth))
        return out

    def _dispatch_main(self, key: str, depth: int) -> List[A.Stmt]:
        return {
            "assign": self._stmt_assign,
            "compute": self._stmt_compute,
            "print": self._stmt_print,
            "if": self._stmt_if,
            "for": self._stmt_for,
            "parallel": self._stmt_parallel,
            "exchange": self._stmt_exchange,
            "collective": self._stmt_collective,
            "helper-call": self._stmt_helper_call,
            "ft-ops": self._stmt_ft_ops,
        }[key](depth)

    def _ensure_helper(self) -> str:
        if self.helpers and (
            len(self.helpers) >= self.cfg.max_helpers or self.rng.random() < 0.6
        ):
            return self.rng.choice(self.helpers).name
        name = f"helper{len(self.helpers) + 1}"
        body: List[A.Stmt] = [B.callstmt("compute", 1)]
        roll = self.rng.random()
        if roll < 0.4:
            body.append(B.critical([B.assign("acc", B.add("acc", "x"))]))
        elif roll < 0.7:
            body.append(B.assign(B.idx("data", B.mod("x", self.cfg.array_size)),
                                 B.name("x")))
        body.append(A.Return(B.add("x", 1)))
        self.helpers.append(B.func(name, ["x"], body))
        return name

    def grow(self) -> A.Program:
        level = self.rng.choice(
            ["MPI_THREAD_MULTIPLE", "MPI_THREAD_MULTIPLE",
             "MPI_THREAD_MULTIPLE", "MPI_THREAD_SERIALIZED",
             "MPI_THREAD_FUNNELED"]
        )
        main_body: List[A.Stmt] = [
            B.decl("provided", B.call("mpi_init_thread", level)),
            B.decl("rank", B.call("mpi_comm_rank", "MPI_COMM_WORLD")),
            B.decl("size", B.call("mpi_comm_size", "MPI_COMM_WORLD")),
            B.decl("peer", B.mod(B.add("rank", 1), "size")),
        ]
        budget = self.rng.randrange(max(2, self.cfg.max_stmts // 2),
                                    self.cfg.max_stmts + 1)
        for _ in range(budget):
            main_body.extend(self._dispatch_main(self._pick(self.main_weights), 0))
        main_body.append(B.callstmt("mpi_finalize"))
        functions = list(self.helpers) + [B.func("main", [], main_body)]
        globals_ = [
            B.decl("acc", 0),
            A.VarDecl("data", size=B.lit(self.cfg.array_size)),
            A.VarDecl("buf", size=B.lit(4)),
        ]
        return B.program("fuzzed", functions, globals_)


def generate_source(seed: int, config: GeneratorConfig = GeneratorConfig()) -> str:
    """The canonical artifact for *(GRAMMAR_VERSION, seed, config)*."""
    raw = _Grower(seed, config).grow()
    source = print_program(raw)
    header = (
        f"// repro-fuzz grammar={GRAMMAR_VERSION} seed={seed}\n"
    )
    return header + source


def generate_program(seed: int, config: GeneratorConfig = GeneratorConfig()) -> A.Program:
    """Parse-validated program for *seed* (locs are real source locations)."""
    program = parse(generate_source(seed, config))
    validate(program)
    return program


def program_stmt_count(program: A.Program) -> int:
    """Number of statement nodes — the reducer's minimality metric."""
    return sum(1 for node in program.walk() if isinstance(node, A.Stmt))
