"""Crash and divergence triage: dedup everything into signatures.

A fuzzing campaign produces three kinds of bad news — unhandled
exceptions, budget blowouts surfacing as exceptions, and oracle
divergences.  Raw occurrences are useless at corpus scale (one bug
fires on hundreds of seeds), so everything is folded into a
:class:`Signature`:

* crashes dedup on *exception type + top in-repo stack frames*, the
  classic fuzzer bucketing — two seeds dying on the same line are one
  bug;
* oracle findings dedup on *(oracle kind, coarse divergence class)* —
  the detail string the oracle chose as its dedup axis.

Each :class:`TriageBank` entry keeps the first-seen reproducer
``(grammar_version, seed, config)``; re-generating the program from it
is bit-exact, so a signature is always actionable without storing the
program text.  The reducer (:mod:`repro.fuzz.reduce`) later attaches a
minimal program to each entry.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .oracles import OracleFinding

#: stack frames kept in a crash signature (innermost last)
_SIGNATURE_FRAMES = 3
#: seeds remembered per signature (the rest only counts)
_SEEDS_KEPT = 10


@dataclass(frozen=True)
class Signature:
    """Deduplication key for one distinct failure."""

    kind: str  #: "crash", "budget" or "oracle"
    key: str  #: the dedup string, e.g. "KeyError@repro.omp.team:static_chunks"

    def __str__(self) -> str:
        return f"{self.kind}:{self.key}"


def _frame_id(frame: traceback.FrameSummary) -> str:
    """``module:function`` for one frame, path-independent."""
    name = frame.filename.replace("\\", "/")
    # strip everything up to the package root so signatures are stable
    # across checkouts and workers
    for marker in ("/repro/", "/tests/"):
        if marker in name:
            name = marker.strip("/").split("/")[0] + "/" + name.split(marker, 1)[1]
            break
    else:
        name = name.rsplit("/", 1)[-1]
    return f"{name.removesuffix('.py').replace('/', '.')}:{frame.name}"


def crash_signature(exc: BaseException) -> Signature:
    """Bucket an exception by type + innermost in-repo frames."""
    frames = traceback.extract_tb(exc.__traceback__)
    tail = frames[-_SIGNATURE_FRAMES:] if frames else []
    where = ">".join(_frame_id(f) for f in tail) or "<no traceback>"
    return Signature(kind="crash", key=f"{type(exc).__name__}@{where}")


def oracle_signature(finding: OracleFinding) -> Signature:
    """Bucket a divergence by (oracle, coarse detail class)."""
    return Signature(kind="oracle", key=f"{finding.oracle}:{finding.detail}")


@dataclass
class TriageEntry:
    """Everything known about one deduplicated failure."""

    signature: Signature
    count: int = 0
    first_seed: int = -1
    seeds: List[int] = field(default_factory=list)
    #: traceback text (crash) or oracle evidence (divergence)
    example: str = ""
    #: ``(grammar_version, seed, config)`` — regenerates the program
    reproducer: Dict[str, Any] = field(default_factory=dict)
    #: minimal program source attached by the reducer, if run
    reduced_source: Optional[str] = None
    reduced_stmts: Optional[int] = None
    original_stmts: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.signature.kind,
            "signature": self.signature.key,
            "count": self.count,
            "first_seed": self.first_seed,
            "seeds": list(self.seeds),
            "example": self.example,
            "reproducer": dict(self.reproducer),
        }
        if self.reduced_source is not None:
            out["reduced"] = {
                "source": self.reduced_source,
                "stmts": self.reduced_stmts,
                "original_stmts": self.original_stmts,
            }
        return out


class TriageBank:
    """Deduplicating store of crash/oracle signatures for one session."""

    def __init__(self) -> None:
        self.entries: Dict[str, TriageEntry] = {}

    def __len__(self) -> int:
        return len(self.entries)

    def record(
        self,
        signature: Signature,
        seed: int,
        example: str,
        reproducer: Dict[str, Any],
    ) -> TriageEntry:
        """Fold one occurrence of *signature* into the bank."""
        entry = self.entries.get(str(signature))
        if entry is None:
            entry = TriageEntry(
                signature=signature,
                first_seed=seed,
                example=example,
                reproducer=dict(reproducer),
            )
            self.entries[str(signature)] = entry
        entry.count += 1
        if len(entry.seeds) < _SEEDS_KEPT and seed not in entry.seeds:
            entry.seeds.append(seed)
        return entry

    def record_crash(
        self, seed: int, exc: BaseException, reproducer: Dict[str, Any]
    ) -> TriageEntry:
        """Fold one unhandled exception into the bank."""
        text = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        return self.record(crash_signature(exc), seed, text, reproducer)

    def record_finding(
        self, finding: OracleFinding, reproducer: Dict[str, Any]
    ) -> TriageEntry:
        """Fold one oracle divergence into the bank."""
        example = finding.evidence or finding.detail
        return self.record(
            oracle_signature(finding), finding.seed, example, reproducer
        )

    def new_signatures(self) -> List[TriageEntry]:
        return list(self.entries.values())

    def as_dict(self) -> Dict[str, Any]:
        return {
            "distinct": len(self.entries),
            "total": sum(e.count for e in self.entries.values()),
            "entries": [e.as_dict() for e in self.entries.values()],
        }
