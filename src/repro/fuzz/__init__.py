"""Corpus-scale differential fuzzing for the whole checker stack.

The fuzzer closes the loop the roadmap calls "campaign-as-a-service +
corpus-scale differential fuzzing": instead of exercising HOME only on
the hand-built NPB workloads, a grammar-directed generator
(:mod:`.generator`) produces arbitrary hybrid MPI/OpenMP mini-language
programs, a differential oracle harness (:mod:`.oracles`) runs each one
under paired configurations that must agree (ast vs bytecode engine,
``--jobs 1`` vs ``--jobs N``, HOME narrowing vs monitor-everything,
static-candidate vs dynamic-confirmation coherence), crash triage
(:mod:`.triage`) dedups anything that goes wrong into signatures with
``(grammar_version, seed)`` reproducers, and an automatic reducer
(:mod:`.reduce`) delta-debugs a failing program down to a minimal one
that still reproduces the signature.

Fuzz cells ride the durable campaign service: with a journal they are
queue items with leases, supervised workers and poison-program
quarantine, exactly like campaign cells (see ``docs/FUZZING.md``).
"""

from .generator import (  # noqa: F401
    GRAMMAR_VERSION,
    GeneratorConfig,
    generate_program,
    generate_source,
    program_stmt_count,
)
from .oracles import (  # noqa: F401
    ORACLES,
    OracleFinding,
    run_oracles,
)
from .reduce import reduce_source  # noqa: F401
from .runner import (  # noqa: F401
    FuzzConfig,
    FuzzReport,
    run_fuzz,
)
from .triage import (  # noqa: F401
    Signature,
    TriageBank,
    crash_signature,
    oracle_signature,
)

__all__ = [
    "GRAMMAR_VERSION",
    "GeneratorConfig",
    "generate_program",
    "generate_source",
    "program_stmt_count",
    "ORACLES",
    "OracleFinding",
    "run_oracles",
    "reduce_source",
    "FuzzConfig",
    "FuzzReport",
    "run_fuzz",
    "Signature",
    "TriageBank",
    "crash_signature",
    "oracle_signature",
]
