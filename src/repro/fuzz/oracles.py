"""Differential oracles over generated programs.

Each oracle runs one generated program under a *pair* of configurations
that the stack guarantees must agree, and reports an
:class:`OracleFinding` for every disagreement:

``engine``
    ast vs bytecode engine under the same :class:`RunConfig` — the VM
    contract is *byte-identical traces*, so the serialized event logs,
    program outputs, deadlock diagnoses and budget failures must all
    match exactly.
``jobs``
    a small campaign run with ``jobs=1`` vs ``jobs=2`` (timing
    recording off) — the parallel dispatcher's contract is
    byte-identical artifacts for any worker count.
``narrowing``
    HOME's race-directed narrowing vs an ITC-style monitor-everything
    run — restricted to the statically monitored variables, both runs
    must observe the *same* dynamic race set (narrowing drops events,
    never findings).
``coherence``
    static-candidate vs dynamic-confirmation bookkeeping inside one
    HOME report — triage bins must partition the monitored variables,
    confirmed entries must trace back to static candidates, and
    ``DataRace`` findings must appear iff the triage confirmed one.

Oracles never swallow exceptions: anything a paired run raises
propagates to the fuzz runner, which converts it into a crash
signature (:mod:`repro.fuzz.triage`).  The ``inject`` hook exists for
the end-to-end drill: ``engine-divergence`` corrupts the bytecode-side
trace of any program containing an ``omp critical`` region, so the
triage/reduction pipeline can be exercised without a real engine bug.
"""

from __future__ import annotations

import io
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..campaign import CampaignConfig, run_campaign
from ..events.serialize import dump_log
from ..home import Home
from ..minilang import ast_nodes as A
from ..runtime import RunConfig, reset_sim_counters, run_program

#: Injection modes understood by :func:`run_oracles` (drill hooks).
INJECT_KINDS = ("engine-divergence",)

_EVIDENCE_LIMIT = 800


@dataclass(frozen=True)
class OracleFinding:
    """One divergence between a pair of runs that must agree."""

    oracle: str  #: which oracle fired ("engine", "jobs", ...)
    seed: int  #: generator seed of the program under test
    detail: str  #: coarse divergence class — the dedup axis
    evidence: str = ""  #: short human-readable diff excerpt

    def as_dict(self) -> Dict[str, Any]:
        return {
            "oracle": self.oracle,
            "seed": self.seed,
            "detail": self.detail,
            "evidence": self.evidence,
        }


@dataclass
class OracleContext:
    """Shared knobs + counters for one fuzzing session."""

    nprocs: int = 2
    num_threads: int = 2
    sim_seed: int = 0
    max_steps: int = 200_000
    max_wall_seconds: Optional[float] = 20.0
    #: drill hook; one of :data:`INJECT_KINDS` or ``None``
    inject: Optional[str] = None
    #: run the (expensive) jobs oracle on every Nth program only;
    #: the skipped count is reported, never silently dropped
    jobs_every: int = 25
    #: per-oracle program coverage: oracle -> {"ran": n, "skipped": n}
    coverage: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: per-engine accumulated wall seconds / scheduler steps
    engine_wall: Dict[str, float] = field(default_factory=dict)
    engine_steps: Dict[str, int] = field(default_factory=dict)
    #: budget blowouts observed by the engine oracle ("<engine>: <why>")
    budget_failures: List[str] = field(default_factory=list)
    #: HOME detection tally from the coherence oracle: violation class
    #: -> number of programs it fired on (LLOV-style detection table)
    detections: Dict[str, int] = field(default_factory=dict)

    def count(self, oracle: str, ran: bool) -> None:
        slot = self.coverage.setdefault(oracle, {"ran": 0, "skipped": 0})
        slot["ran" if ran else "skipped"] += 1


def _clip(text: str) -> str:
    if len(text) <= _EVIDENCE_LIMIT:
        return text
    return text[:_EVIDENCE_LIMIT] + f"... [{len(text) - _EVIDENCE_LIMIT} more]"


def _first_diff(a: str, b: str) -> Tuple[int, str, str]:
    """(line_no, line_a, line_b) of the first differing trace line."""
    lines_a = a.splitlines()
    lines_b = b.splitlines()
    for i, (la, lb) in enumerate(zip(lines_a, lines_b)):
        if la != lb:
            return i, la, lb
    i = min(len(lines_a), len(lines_b))
    la = lines_a[i] if i < len(lines_a) else "<end of trace>"
    lb = lines_b[i] if i < len(lines_b) else "<end of trace>"
    return i, la, lb


def _diff_kind(line_a: str, line_b: str) -> str:
    """Coarse class of a trace divergence, for signature dedup."""
    import json

    kinds = []
    for line in (line_a, line_b):
        try:
            kinds.append(json.loads(line).get("type", "?"))
        except (ValueError, AttributeError):
            kinds.append("eof" if line == "<end of trace>" else "garbage")
    if kinds[0] == kinds[1]:
        return kinds[0]
    return f"{kinds[0]}/{kinds[1]}"


def _run_one(program: A.Program, engine: str, ctx: OracleContext) -> Dict[str, Any]:
    """One measured run; counters reset so traces are comparable."""
    reset_sim_counters()
    config = RunConfig(
        nprocs=ctx.nprocs,
        num_threads=ctx.num_threads,
        seed=ctx.sim_seed,
        engine=engine,
        max_steps=ctx.max_steps,
        max_wall_seconds=ctx.max_wall_seconds,
        capture_partial=True,
        thread_level_mode="permissive",
    )
    started = time.perf_counter()
    result = run_program(program, config)
    elapsed = time.perf_counter() - started
    buf = io.StringIO()
    dump_log(result.log, buf)
    ctx.engine_wall[engine] = ctx.engine_wall.get(engine, 0.0) + elapsed
    ctx.engine_steps[engine] = ctx.engine_steps.get(engine, 0) + int(
        result.stats.get("scheduler_steps", 0)
    )
    if result.failure is not None:
        ctx.budget_failures.append(f"{engine}: {result.failure}")
    return {
        "trace": buf.getvalue(),
        "outputs": list(result.outputs),
        "deadlocked": result.deadlocked,
        "failure": result.failure,
        "notes": list(result.notes),
    }


def _contains(program: A.Program, node_type: type) -> bool:
    return any(isinstance(node, node_type) for node in program.walk())


def oracle_engine(
    program: A.Program, seed: int, ctx: OracleContext
) -> List[OracleFinding]:
    """ast vs bytecode: byte-identical traces and observable behaviour."""
    ast_run = _run_one(program, "ast", ctx)
    vm_run = _run_one(program, "bytecode", ctx)

    if ctx.inject == "engine-divergence" and _contains(program, A.OmpCritical):
        # Drill: pretend the VM serialized one extra trace event.  The
        # detail string is deliberately coarse so every drill hit dedups
        # to a single signature.
        vm_run["trace"] += '{"type": "InjectedDivergence"}\n'

    findings: List[OracleFinding] = []
    if ast_run["trace"] != vm_run["trace"]:
        line_no, la, lb = _first_diff(ast_run["trace"], vm_run["trace"])
        findings.append(
            OracleFinding(
                oracle="engine",
                seed=seed,
                detail=f"trace-mismatch:{_diff_kind(la, lb)}",
                evidence=_clip(
                    f"first divergence at trace line {line_no}:\n"
                    f"  ast:      {la}\n  bytecode: {lb}"
                ),
            )
        )
    for key, detail in (
        ("outputs", "output-mismatch"),
        ("deadlocked", "deadlock-mismatch"),
        ("failure", "failure-mismatch"),
        ("notes", "notes-mismatch"),
    ):
        if ast_run[key] != vm_run[key]:
            findings.append(
                OracleFinding(
                    oracle="engine",
                    seed=seed,
                    detail=detail,
                    evidence=_clip(
                        f"ast: {ast_run[key]!r}\nbytecode: {vm_run[key]!r}"
                    ),
                )
            )
    return findings


def oracle_jobs(
    program: A.Program, seed: int, ctx: OracleContext
) -> List[OracleFinding]:
    """jobs=1 vs jobs=2 mini-campaign: byte-identical artifacts.

    Campaigns are the costliest pairing, so the runner samples this
    oracle every ``ctx.jobs_every`` programs; skipped programs are
    counted in the coverage report.
    """
    findings: List[OracleFinding] = []
    artifacts = []
    for jobs in (1, 2):
        config = CampaignConfig(
            seeds=(ctx.sim_seed, ctx.sim_seed + 1),
            plans={"none": None},
            nprocs=ctx.nprocs,
            num_threads=ctx.num_threads,
            budget_steps=ctx.max_steps,
            budget_seconds=ctx.max_wall_seconds or 0.0,
            retries=0,
            jobs=jobs,
            record_timing=False,
            thread_level_mode="permissive",
        )
        result = run_campaign(program, config)
        artifacts.append(result.as_dict())
    if artifacts[0] != artifacts[1]:
        import json

        a = json.dumps(artifacts[0], indent=1, sort_keys=True, default=str)
        b = json.dumps(artifacts[1], indent=1, sort_keys=True, default=str)
        _, la, lb = _first_diff(a, b)
        findings.append(
            OracleFinding(
                oracle="jobs",
                seed=seed,
                detail="campaign-artifact-mismatch",
                evidence=_clip(f"jobs=1: {la}\njobs=2: {lb}"),
            )
        )
    return findings


def _race_set(result, monitored) -> set:
    """Canonical dynamic race findings restricted to *monitored* vars."""
    from ..analysis.dynamic_.memraces import find_memory_races

    races = set()
    for proc in result.log.processes():
        for race in find_memory_races(result.log, proc):
            if race.var in monitored:
                races.add(
                    (
                        race.var,
                        proc,
                        tuple(sorted((race.thread_a, race.thread_b))),
                        tuple(sorted((race.callsite_a, race.callsite_b))),
                    )
                )
    return races


def oracle_narrowing(
    program: A.Program, seed: int, ctx: OracleContext
) -> List[OracleFinding]:
    """HOME narrowed monitoring vs monitor-everything: same race set.

    Race-directed narrowing monitors only the static candidates'
    variables; an ITC-style run monitors every shared access.  Memory
    monitoring adds trace events without scheduler yields, so both runs
    see the same schedule — restricted to the monitored variables, the
    dynamic race sets must be identical.
    """
    tool = Home()
    to_run, static = tool.prepare(program)
    monitored = (
        set(static.races.monitored_vars)
        if static is not None and static.races is not None
        else set()
    )
    if not monitored:
        # Narrowed run would not monitor at all; nothing to compare.
        return []

    runs = []
    for overrides in (
        {},  # narrowed (pipeline default)
        {"monitor_memory": True, "monitored_vars": None},  # everything
    ):
        reset_sim_counters()
        config = tool.run_config(
            ctx.nprocs,
            ctx.num_threads,
            ctx.sim_seed,
            static=static,
            max_steps=ctx.max_steps,
            max_wall_seconds=ctx.max_wall_seconds,
            capture_partial=True,
            thread_level_mode="permissive",
            **overrides,
        )
        runs.append(run_program(to_run, config))

    findings: List[OracleFinding] = []
    narrowed, everything = runs
    if narrowed.deadlocked != everything.deadlocked or (
        narrowed.failure is None
    ) != (everything.failure is None):
        findings.append(
            OracleFinding(
                oracle="narrowing",
                seed=seed,
                detail="outcome-mismatch",
                evidence=_clip(
                    f"narrowed: deadlocked={narrowed.deadlocked} "
                    f"failure={narrowed.failure!r}\n"
                    f"everything: deadlocked={everything.deadlocked} "
                    f"failure={everything.failure!r}"
                ),
            )
        )
        return findings
    races_narrowed = _race_set(narrowed, monitored)
    races_everything = _race_set(everything, monitored)
    if races_narrowed != races_everything:
        findings.append(
            OracleFinding(
                oracle="narrowing",
                seed=seed,
                detail="race-set-mismatch",
                evidence=_clip(
                    f"narrowed only: {sorted(races_narrowed - races_everything)}\n"
                    f"everything only: {sorted(races_everything - races_narrowed)}"
                ),
            )
        )
    return findings


def oracle_coherence(
    program: A.Program, seed: int, ctx: OracleContext
) -> List[OracleFinding]:
    """Static candidates vs dynamic confirmation inside one HOME report."""
    report = Home().check(
        program,
        nprocs=ctx.nprocs,
        num_threads=ctx.num_threads,
        seed=ctx.sim_seed,
        max_steps=ctx.max_steps,
        max_wall_seconds=ctx.max_wall_seconds,
        capture_partial=True,
        thread_level_mode="permissive",
    )
    findings: List[OracleFinding] = []
    if report.violations.violations:
        ctx.detections["programs-with-findings"] = (
            ctx.detections.get("programs-with-findings", 0) + 1
        )
    for vclass in report.violations.classes():
        ctx.detections[vclass] = ctx.detections.get(vclass, 0) + 1

    def flag(detail: str, evidence: str) -> None:
        findings.append(
            OracleFinding(
                oracle="coherence", seed=seed, detail=detail, evidence=_clip(evidence)
            )
        )

    triage = report.extras.get("race_triage")
    monitored = report.extras.get("monitored_vars")
    if triage is not None and monitored is not None:
        binned = [
            entry["var"]
            for bin_ in ("confirmed", "refuted", "missed_by_dynamic")
            for entry in triage[bin_]
        ]
        if sorted(binned) != sorted(monitored) or len(binned) != len(set(binned)):
            flag(
                "triage-partition",
                f"monitored={sorted(monitored)} binned={sorted(binned)}",
            )
        for entry in triage["confirmed"]:
            if entry.get("candidates", 0) < 1:
                flag(
                    "confirmed-without-candidate",
                    f"confirmed var {entry['var']!r} has no static candidate",
                )
        confirmed = bool(triage["confirmed"])
        dataraces = [v for v in report.violations if v.vclass == "DataRace"]
        if bool(dataraces) != confirmed:
            flag(
                "datarace-triage-incoherence",
                f"DataRace findings={len(dataraces)} but triage "
                f"confirmed={len(triage['confirmed'])}",
            )

    div_triage = report.extras.get("divergence_triage")
    div_candidates = report.extras.get("divergence_candidates", 0)
    if div_triage is not None:
        n_binned = len(div_triage["confirmed"]) + len(div_triage["refuted"])
        if n_binned != div_candidates:
            flag(
                "divergence-triage-incoherence",
                f"{div_candidates} candidates but {n_binned} triaged",
            )
        for entry in div_triage["confirmed"]:
            if not entry.get("violation_classes"):
                flag(
                    "divergence-triage-incoherence",
                    f"confirmed candidate without violations: {entry}",
                )
    collective_classes = {
        "BarrierDivergenceViolation",
        "CollectiveOrderMismatchViolation",
    }
    dynamic_div = [
        v for v in report.violations if v.vclass in collective_classes
    ]
    if dynamic_div and not div_candidates:
        flag(
            "divergence-without-candidate",
            f"{len(dynamic_div)} collective findings but 0 static candidates",
        )
    return findings


#: Oracle registry, in execution order.  The key is both the CLI name
#: (``--oracles engine,jobs``) and the signature prefix in triage.
ORACLES: Dict[str, Callable[[A.Program, int, OracleContext], List[OracleFinding]]] = {
    "engine": oracle_engine,
    "jobs": oracle_jobs,
    "narrowing": oracle_narrowing,
    "coherence": oracle_coherence,
}


def run_oracles(
    program: A.Program,
    seed: int,
    ctx: OracleContext,
    oracles: Optional[Tuple[str, ...]] = None,
) -> List[OracleFinding]:
    """Run the selected *oracles* over one generated program.

    Exceptions propagate: the fuzz runner owns crash triage and needs
    the original traceback for the signature.  Coverage counters on
    *ctx* record which oracles actually ran (the jobs oracle samples).
    """
    names = tuple(oracles) if oracles is not None else tuple(ORACLES)
    unknown = [n for n in names if n not in ORACLES]
    if unknown:
        raise ValueError(f"unknown oracle(s): {', '.join(unknown)}")
    findings: List[OracleFinding] = []
    for name in names:
        if name == "jobs" and ctx.jobs_every > 1 and seed % ctx.jobs_every:
            ctx.count(name, ran=False)
            continue
        ctx.count(name, ran=True)
        findings.extend(ORACLES[name](program, seed, ctx))
    return findings
