"""The fuzzing session driver: cells, triage, reduction, report.

One fuzz *cell* = generate program ``seed`` from the grammar, run the
selected oracles, and fold what happened into a
:class:`~repro.campaign.outcome.RunOutcome` — the same crash-isolated,
JSON-round-trippable record campaign cells use.  That lets the whole
campaign execution machinery carry fuzzing unchanged:

* ``jobs > 1`` dispatches cells on the campaign worker pool
  (:func:`~repro.campaign.parallel.run_cells_parallel`);
* a journal turns the session durable: cells become leased queue items
  (:class:`~repro.campaign.queue.DurableWorkQueue`) run by supervised
  disposable workers, and a generated program that kills its worker
  repeatedly is quarantined as a poison cell instead of stalling the
  session.

The coordinator then triages outcomes (:mod:`.triage`), optionally
reduces one reproducer per signature (:mod:`.reduce`), and emits an
LLOV-style report: programs run, divergences, per-oracle coverage,
HOME detection tallies, and per-engine throughput.
"""

from __future__ import annotations

import json
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..campaign.outcome import (
    STATUS_BUDGET,
    STATUS_ERROR,
    STATUS_OK,
    RunOutcome,
)
from ..campaign.parallel import CellTask, resolve_jobs, run_cells_parallel
from ..errors import MiniLangError
from ..minilang import parse, validate
from .generator import (
    GRAMMAR_VERSION,
    GeneratorConfig,
    generate_program,
    generate_source,
    program_stmt_count,
)
from .oracles import ORACLES, OracleContext, OracleFinding, run_oracles
from .reduce import reduce_source
from .triage import Signature, TriageBank, crash_signature, oracle_signature

#: plan name shared by all fuzz cells (they have no fault plan)
FUZZ_PLAN = "fuzz"
#: synthetic violation class carrying per-cell counters
_META_CLASS = "fuzz:meta"


@dataclass(frozen=True)
class FuzzConfig:
    """Everything that parameterizes one fuzzing session (picklable)."""

    #: number of programs; generator seeds are ``seed_base .. +seeds-1``
    seeds: int = 100
    seed_base: int = 0
    oracles: Tuple[str, ...] = tuple(ORACLES)
    generator: GeneratorConfig = GeneratorConfig()
    nprocs: int = 2
    num_threads: int = 2
    max_steps: int = 200_000
    max_wall_seconds: float = 20.0
    #: run the jobs oracle on every Nth program (it is a full
    #: mini-campaign pair); skips are counted in the report
    jobs_every: int = 25
    #: drill hook forwarded to the oracles (``engine-divergence``)
    inject: Optional[str] = None
    #: delta-debug one reproducer per signature after the sweep
    reduce: bool = True
    #: parallel cell workers, as in campaigns (int or ``"auto"``)
    jobs: "int | str" = 1
    #: journal path; set -> durable queue + supervised workers
    journal: Optional[str] = None
    resume: bool = False
    lease_seconds: float = 60.0
    poison_retries: int = 2

    def cell_context(self, seed: int) -> OracleContext:
        """Fresh per-cell oracle context (counters start at zero)."""
        return OracleContext(
            nprocs=self.nprocs,
            num_threads=self.num_threads,
            sim_seed=seed,
            max_steps=self.max_steps,
            max_wall_seconds=self.max_wall_seconds,
            inject=self.inject,
            jobs_every=self.jobs_every,
        )

    def reproducer(self, seed: int) -> Dict[str, Any]:
        """The ``(grammar_version, seed, config)`` triple that
        regenerates a failing cell bit-exactly."""
        return {
            "grammar_version": GRAMMAR_VERSION,
            "seed": seed,
            "config": {
                "oracles": list(self.oracles),
                "generator": dict(self.generator.__dict__),
                "nprocs": self.nprocs,
                "num_threads": self.num_threads,
                "max_steps": self.max_steps,
                "max_wall_seconds": self.max_wall_seconds,
                "inject": self.inject,
            },
        }


def _budget_signature(failure_line: str) -> Signature:
    """Coarse budget-blowout bucket: the failure class, not the counts."""
    why = failure_line.split(": ", 1)[-1]
    kind = why.split(":", 1)[0].split(" after ", 1)[0].strip()
    return Signature(kind="budget", key=kind or "budget-exhausted")


def _finding_to_violation(finding: OracleFinding) -> Dict[str, Any]:
    """Encode an oracle finding in violation-dict form so it rides the
    campaign checkpoint/journal round trip unchanged."""
    return {
        "class": f"fuzz:{finding.oracle}",
        "proc": -1,
        "message": f"{finding.detail}\n{finding.evidence}",
        "callsites": [],
        "locs": [],
        "threads": [],
        "ops": [],
        "procs": [],
    }


def _violation_to_finding(seed: int, data: Dict[str, Any]) -> OracleFinding:
    detail, _, evidence = data.get("message", "").partition("\n")
    return OracleFinding(
        oracle=data["class"].split(":", 1)[1],
        seed=seed,
        detail=detail,
        evidence=evidence,
    )


class FuzzCellExecutor:
    """Picklable per-cell executor with the campaign ``run_cell``
    contract — pool workers and supervised durable workers both drive
    fuzz cells through this."""

    def __init__(self, config: FuzzConfig) -> None:
        self.config = config

    def run_cell(self, seed: int, plan_name: str, plan) -> RunOutcome:
        cfg = self.config
        ctx = cfg.cell_context(seed)
        started = time.perf_counter()
        try:
            program = generate_program(seed, cfg.generator)
            findings = run_oracles(program, seed, ctx, oracles=cfg.oracles)
        except Exception as err:
            signature = crash_signature(err)
            text = "".join(
                traceback.format_exception(type(err), err, err.__traceback__)
            )
            return RunOutcome(
                seed=seed,
                plan=plan_name,
                sim_seed=seed,
                status=STATUS_ERROR,
                error=f"{signature.key}\n{text}",
                wall_seconds=time.perf_counter() - started,
            )
        violations = [_finding_to_violation(f) for f in findings]
        meta = {
            "coverage": ctx.coverage,
            "engine_wall": ctx.engine_wall,
            "engine_steps": ctx.engine_steps,
            "detections": ctx.detections,
            "budget_failures": ctx.budget_failures,
        }
        violations.append(
            {
                "class": _META_CLASS,
                "proc": -1,
                "message": json.dumps(meta, sort_keys=True),
                "callsites": [],
                "locs": [],
                "threads": [],
                "ops": [],
                "procs": [],
            }
        )
        return RunOutcome(
            seed=seed,
            plan=plan_name,
            sim_seed=seed,
            status=STATUS_BUDGET if ctx.budget_failures else STATUS_OK,
            failure=ctx.budget_failures[0] if ctx.budget_failures else None,
            wall_seconds=time.perf_counter() - started,
            violations=violations,
        )


@dataclass
class FuzzReport:
    """Aggregated result of one fuzzing session."""

    config: FuzzConfig
    outcomes: List[RunOutcome]
    bank: TriageBank
    wall_seconds: float = 0.0
    interrupted: bool = False

    @property
    def divergences(self) -> int:
        return sum(
            e.count for e in self.bank.entries.values()
            if e.signature.kind == "oracle"
        )

    @property
    def crashes(self) -> int:
        return sum(
            e.count for e in self.bank.entries.values()
            if e.signature.kind == "crash"
        )

    @property
    def clean(self) -> bool:
        return not self.bank.entries and not self.interrupted

    def _aggregate_meta(self) -> Dict[str, Any]:
        coverage: Dict[str, Dict[str, int]] = {}
        engine_wall: Dict[str, float] = {}
        engine_steps: Dict[str, int] = {}
        detections: Dict[str, int] = {}
        for outcome in self.outcomes:
            for data in outcome.violations:
                if data.get("class") != _META_CLASS:
                    continue
                meta = json.loads(data["message"])
                for oracle, slot in meta.get("coverage", {}).items():
                    agg = coverage.setdefault(oracle, {"ran": 0, "skipped": 0})
                    agg["ran"] += slot.get("ran", 0)
                    agg["skipped"] += slot.get("skipped", 0)
                for engine, wall in meta.get("engine_wall", {}).items():
                    engine_wall[engine] = engine_wall.get(engine, 0.0) + wall
                for engine, steps in meta.get("engine_steps", {}).items():
                    engine_steps[engine] = engine_steps.get(engine, 0) + steps
                for vclass, count in meta.get("detections", {}).items():
                    detections[vclass] = detections.get(vclass, 0) + count
        return {
            "coverage": coverage,
            "engine_wall": engine_wall,
            "engine_steps": engine_steps,
            "detections": detections,
        }

    def summary(self) -> str:
        data = self.as_dict()
        by_status = data["programs"]["by_status"]
        status = ", ".join(f"{v} {k}" for k, v in sorted(by_status.items()))
        lines = [
            f"fuzz: {len(self.outcomes)}/{self.config.seeds} program(s) "
            f"(grammar v{GRAMMAR_VERSION}): {status or 'none run'}",
            f"oracles: "
            + (
                ", ".join(
                    f"{name} ran {slot['ran']}"
                    + (f" (skipped {slot['skipped']})" if slot["skipped"] else "")
                    for name, slot in sorted(data["oracles"].items())
                )
                or "none"
            ),
            f"divergences: {self.divergences}  crashes: {self.crashes}  "
            f"distinct signatures: {len(self.bank)}",
            f"throughput: {data['throughput']['programs_per_second']} "
            f"program(s)/s",
        ]
        for entry in self.bank.entries.values():
            line = f"  {entry.signature} x{entry.count} (first seed {entry.first_seed})"
            if entry.reduced_stmts is not None:
                line += (
                    f", reduced {entry.original_stmts} -> "
                    f"{entry.reduced_stmts} stmts"
                )
            lines.append(line)
        if self.interrupted:
            lines.append("fuzz session interrupted: partial results above")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        meta = self._aggregate_meta()
        by_status: Dict[str, int] = {}
        for outcome in self.outcomes:
            by_status[outcome.status] = by_status.get(outcome.status, 0) + 1
        engines = {
            engine: {
                "wall_seconds": round(meta["engine_wall"].get(engine, 0.0), 6),
                "steps": steps,
                "steps_per_second": round(
                    steps / wall if (wall := meta["engine_wall"].get(engine, 0.0))
                    else 0.0,
                    1,
                ),
            }
            for engine, steps in sorted(meta["engine_steps"].items())
        }
        wall = self.wall_seconds
        return {
            "fuzz_report_version": 1,
            "grammar_version": GRAMMAR_VERSION,
            "programs": {
                "requested": self.config.seeds,
                "run": len(self.outcomes),
                "by_status": by_status,
            },
            "oracles": {
                oracle: {
                    **slot,
                    "divergences": sum(
                        e.count
                        for e in self.bank.entries.values()
                        if e.signature.kind == "oracle"
                        and e.signature.key.startswith(f"{oracle}:")
                    ),
                }
                for oracle, slot in sorted(meta["coverage"].items())
            },
            "divergences": self.divergences,
            "crashes": self.crashes,
            "interrupted": self.interrupted,
            "triage": self.bank.as_dict(),
            "detection": {"HOME": meta["detections"]},
            "throughput": {
                "wall_seconds": round(wall, 6),
                "programs_per_second": round(
                    len(self.outcomes) / wall if wall else 0.0, 2
                ),
                "engines": engines,
            },
        }


def signature_keys_for_source(
    source: str, seed: int, config: FuzzConfig
) -> Set[str]:
    """Every failure signature *source* currently produces.

    This is the reducer's predicate core: a candidate program
    reproduces iff the original signature is still in this set.  The
    jobs-oracle sampling is disabled (``jobs_every=1``) so reduction of
    a jobs divergence cannot silently stop reproducing.
    """
    try:
        program = parse(source)
        validate(program)
    except MiniLangError:
        return set()
    ctx = config.cell_context(seed)
    ctx.jobs_every = 1
    try:
        findings = run_oracles(program, seed, ctx, oracles=config.oracles)
    except Exception as err:
        return {str(crash_signature(err))}
    keys = {str(oracle_signature(f)) for f in findings}
    for line in ctx.budget_failures:
        keys.add(str(_budget_signature(line)))
    return keys


def _reduce_bank(
    bank: TriageBank,
    config: FuzzConfig,
    progress: Callable[[str], None],
    stop=None,
) -> None:
    """Attach a minimal reproducer program to every triage entry."""
    for entry in bank.entries.values():
        if stop is not None and stop.is_set():
            return
        seed = entry.first_seed
        try:
            source = generate_source(seed, config.generator)
        except Exception as err:  # pragma: no cover - generator bug
            progress(f"reduce {entry.signature}: regeneration failed: {err}")
            continue
        target = str(entry.signature)

        def predicate(candidate: str) -> bool:
            return target in signature_keys_for_source(candidate, seed, config)

        try:
            reduced = reduce_source(source, predicate)
        except ValueError as err:
            progress(f"reduce {entry.signature}: {err}")
            continue
        entry.original_stmts = program_stmt_count(parse(source))
        entry.reduced_stmts = program_stmt_count(parse(reduced))
        entry.reduced_source = reduced
        progress(
            f"reduced {entry.signature}: "
            f"{entry.original_stmts} -> {entry.reduced_stmts} stmts"
        )


def _triage_outcomes(
    outcomes: List[RunOutcome], config: FuzzConfig
) -> TriageBank:
    bank = TriageBank()
    for outcome in outcomes:
        reproducer = config.reproducer(outcome.seed)
        if outcome.status == STATUS_ERROR and outcome.error:
            key, _, text = outcome.error.partition("\n")
            bank.record(
                Signature(kind="crash", key=key),
                outcome.seed,
                text or key,
                reproducer,
            )
            continue
        if outcome.status not in (STATUS_OK, STATUS_BUDGET):
            # quarantined / forced cells: the worker never reported
            bank.record(
                Signature(kind="crash", key=f"cell-{outcome.status}"),
                outcome.seed,
                outcome.error or outcome.status,
                reproducer,
            )
            continue
        if outcome.status == STATUS_BUDGET and outcome.failure:
            bank.record(
                _budget_signature(outcome.failure),
                outcome.seed,
                outcome.failure,
                reproducer,
            )
        for data in outcome.violations:
            if not str(data.get("class", "")).startswith("fuzz:"):
                continue
            if data["class"] == _META_CLASS:
                continue
            finding = _violation_to_finding(outcome.seed, data)
            bank.record_finding(finding, reproducer)
    return bank


def run_fuzz(
    config: FuzzConfig,
    progress: Optional[Callable[[str], None]] = None,
    stop=None,
) -> FuzzReport:
    """Run one fuzzing session end-to-end and return its report."""
    say = progress or (lambda _line: None)
    started = time.perf_counter()
    executor = FuzzCellExecutor(config)
    tasks = [
        CellTask(index=i, seed=config.seed_base + i, plan_name=FUZZ_PLAN, plan=None)
        for i in range(config.seeds)
    ]
    total = len(tasks)
    completed: Dict[int, RunOutcome] = {}
    announced = 0

    def bank_cell(task: CellTask, outcome: RunOutcome) -> None:
        nonlocal announced
        completed[task.index] = outcome
        announced += 1
        # describe() counts the piggybacked fuzz:meta record as a
        # violation; report oracle findings only
        findings = sum(
            1
            for v in outcome.violations
            if v.get("class", "").startswith("fuzz:")
            and v.get("class") != _META_CLASS
        )
        line = f"seed={outcome.seed} status={outcome.status}"
        if findings:
            line += f" findings={findings}"
        if outcome.failure:
            line += f" failure={outcome.failure!r}"
        if outcome.error:
            line += " error=" + repr(outcome.error.splitlines()[0])
        say(f"[{announced}/{total}] {line}")

    if config.journal:
        outcomes = _run_durable(executor, tasks, config, bank_cell, say, stop)
    else:
        jobs = resolve_jobs(config.jobs, total)
        if jobs > 1:
            _, pool_error = run_cells_parallel(
                executor, tasks, jobs, bank_cell, stop=stop
            )
            if pool_error is not None:
                say(
                    f"worker pool failed ({pool_error}); remaining cells "
                    "were completed in-process"
                )
        else:
            for task in tasks:
                if stop is not None and stop.is_set():
                    break
                bank_cell(
                    task, executor.run_cell(task.seed, task.plan_name, task.plan)
                )
    if not config.journal:
        outcomes = [completed[i] for i in sorted(completed)]
    bank = _triage_outcomes(outcomes, config)
    if config.reduce and bank.entries:
        _reduce_bank(bank, config, say, stop=stop)
    return FuzzReport(
        config=config,
        outcomes=outcomes,
        bank=bank,
        wall_seconds=time.perf_counter() - started,
        interrupted=len(outcomes) < total,
    )


def _run_durable(
    executor: FuzzCellExecutor,
    tasks: List[CellTask],
    config: FuzzConfig,
    bank_cell: Callable[[CellTask, RunOutcome], None],
    say: Callable[[str], None],
    stop=None,
) -> List[RunOutcome]:
    """Durable path: journaled queue + supervised workers, exactly the
    campaign service's machinery (poison programs end up quarantined)."""
    import os

    from ..campaign.journal import Journal, replay_journal
    from ..campaign.queue import DurableWorkQueue
    from ..campaign.supervisor import Supervisor, SupervisorConfig
    from ..errors import AnalysisError

    replay = None
    fresh = True
    if config.resume and os.path.exists(config.journal):
        try:
            replay = replay_journal(config.journal)
        except AnalysisError as err:
            say(f"ignoring unusable journal: {err}; starting cold")
        else:
            fresh = False
            if replay.truncated:
                say(
                    "journal tail was damaged (interrupted write?); "
                    f"dropped {replay.dropped} trailing line(s)"
                )
    meta = {
        "kind": "fuzz",
        "grammar_version": GRAMMAR_VERSION,
        "seeds": config.seeds,
        "seed_base": config.seed_base,
        "oracles": list(config.oracles),
    }
    journal = Journal(config.journal, meta, fresh=fresh)
    work = DurableWorkQueue(
        tasks,
        journal,
        lease_seconds=config.lease_seconds,
        poison_retries=config.poison_retries,
    )
    if replay is not None:
        work.restore(replay, warn=say)
    for task in tasks:
        if work.resolved(task.index):
            resumed = work.outcomes.get(task.index)
            if resumed is None:
                resumed = work.quarantined.get(task.index)
            bank_cell(task, resumed)
    try:
        jobs = resolve_jobs(config.jobs, work.unresolved_count)
        if jobs > 1:
            supervisor = Supervisor(
                executor,
                work,
                SupervisorConfig(
                    jobs=jobs, lease_seconds=config.lease_seconds
                ),
                on_complete=bank_cell,
                say=say,
                stop=stop,
            )
            supervisor.run()
        else:
            while not work.all_resolved():
                if stop is not None and stop.is_set():
                    break
                lease = work.acquire("serial", time.monotonic())
                if lease is None:
                    break
                outcome = executor.run_cell(
                    lease.task.seed, lease.task.plan_name, lease.task.plan
                )
                if work.complete(lease.task.index, outcome):
                    bank_cell(lease.task, outcome)
    finally:
        work.journal.close()
    # canonical order, quarantined cells included — the supervisor's
    # completion callbacks are an announcement stream, not the artifact
    return work.outcome_list()


# keep the public name list tidy for ``from repro.fuzz import *`` users
__all__ = [
    "FUZZ_PLAN",
    "FuzzCellExecutor",
    "FuzzConfig",
    "FuzzReport",
    "run_fuzz",
    "signature_keys_for_source",
]
