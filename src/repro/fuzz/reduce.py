"""Automatic test-case reduction: delta debugging over the program AST.

Given a failing program and a *predicate* ("does this source still
reproduce the original failure signature?"), :func:`reduce_source`
shrinks the program through a fixed pass list:

* **drop-stmts** — remove statement chunks from every block
  (ddmin-style: halves first, then singles);
* **unwrap-regions** — replace an OpenMP construct / ``if`` / loop with
  its body, peeling structure that is not load-bearing;
* **shrink-loops** — clamp literal loop bounds to one iteration and
  parallel team sizes to two threads;
* **simplify-exprs** — replace binary expressions with one operand and
  assignment right-hand sides with a literal;
* **drop-toplevel** — remove unused helper functions and globals.

Every candidate is re-parsed and re-validated before the predicate
runs, so the reducer can never hand back an ill-formed program.  Passes
run greedily to a global fixpoint: the result is 1-minimal with respect
to the pass list — no single remaining pass application still
reproduces the signature.

The predicate sees source *text*, not ASTs: callers rebuild whatever
pipeline they need (engines, oracles, campaign cells) from the text,
which keeps the reducer decoupled from what "failure" means.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import MiniLangError
from ..minilang import ast_nodes as A
from ..minilang import parse, print_program, validate

#: hard cap on full pass-list sweeps; generated programs converge in a
#: handful, the cap only guards against a pathological predicate
_MAX_ROUNDS = 25


def _all_slots(node: A.Node):
    for klass in type(node).__mro__:
        yield from getattr(klass, "__slots__", ())


def _reparse(source: str) -> Optional[A.Program]:
    """Parse + validate a candidate; ``None`` when ill-formed."""
    try:
        program = parse(source)
        validate(program)
    except MiniLangError:
        return None
    return program


def _emit(program: A.Program) -> str:
    return print_program(program)


def _nodes(program: A.Program) -> List[A.Node]:
    return list(program.walk())


class _Session:
    """One reduction run: memoized predicate + candidate bookkeeping."""

    def __init__(self, predicate: Callable[[str], bool]) -> None:
        self.predicate = predicate
        self.memo: Dict[str, bool] = {}
        self.evaluated = 0

    def reproduces(self, source: str) -> bool:
        cached = self.memo.get(source)
        if cached is not None:
            return cached
        self.evaluated += 1
        verdict = bool(self.predicate(source))
        self.memo[source] = verdict
        return verdict

    def accept(self, program: A.Program) -> Optional[str]:
        """Print a mutated candidate; return its source if it is
        well-formed and still reproduces."""
        source = _emit(program)
        if _reparse(source) is None:
            return None
        if self.reproduces(source):
            return source
        return None


# ---------------------------------------------------------------------------
# Passes.  Each takes (current_source, session) and returns the improved
# source for the FIRST accepted mutation, or None when no mutation of
# this kind helps.  The driver re-invokes a pass until it returns None.
# ---------------------------------------------------------------------------


def _pass_drop_stmts(source: str, session: _Session) -> Optional[str]:
    ref = parse(source)
    block_idx = [
        i for i, n in enumerate(_nodes(ref)) if isinstance(n, A.Block) and n.stmts
    ]
    for bi in block_idx:
        n = len(_nodes(ref)[bi].stmts)
        chunk = n
        while chunk >= 1:
            for start in range(0, n, chunk):
                candidate = parse(source)
                block = _nodes(candidate)[bi]
                del block.stmts[start : start + chunk]
                accepted = session.accept(candidate)
                if accepted is not None:
                    return accepted
            chunk //= 2
    return None


#: constructs whose body-block statements can replace the construct
_SPLICE_BODIES = {
    A.OmpParallel: lambda n: n.body.stmts,
    A.OmpCritical: lambda n: n.body.stmts,
    A.OmpSingle: lambda n: n.body.stmts,
    A.OmpMaster: lambda n: n.body.stmts,
    A.OmpSections: lambda n: [s for sec in n.sections for s in sec.stmts],
    A.While: lambda n: n.body.stmts,
    A.For: lambda n: n.body.stmts,
    A.If: lambda n: n.then.stmts + (n.els.stmts if n.els else []),
}


def _pass_unwrap_regions(source: str, session: _Session) -> Optional[str]:
    ref = parse(source)
    nodes = _nodes(ref)
    block_idx = [i for i, n in enumerate(nodes) if isinstance(n, A.Block)]
    for bi in block_idx:
        for si, stmt in enumerate(nodes[bi].stmts):
            replacement = None
            if isinstance(stmt, A.OmpFor):
                replacement = [stmt.loop]
            elif isinstance(stmt, A.OmpAtomic):
                replacement = [stmt.stmt]
            else:
                for klass, splice in _SPLICE_BODIES.items():
                    if type(stmt) is klass:
                        replacement = splice(stmt)
                        break
            if replacement is None:
                continue
            candidate = parse(source)
            block = _nodes(candidate)[bi]
            # rebuild the replacement from the candidate's own tree so
            # node identity stays consistent
            stmt_c = block.stmts[si]
            if isinstance(stmt_c, A.OmpFor):
                new_stmts = [stmt_c.loop]
            elif isinstance(stmt_c, A.OmpAtomic):
                new_stmts = [stmt_c.stmt]
            else:
                new_stmts = _SPLICE_BODIES[type(stmt_c)](stmt_c)
            block.stmts[si : si + 1] = new_stmts
            accepted = session.accept(candidate)
            if accepted is not None:
                return accepted
    return None


def _pass_shrink_loops(source: str, session: _Session) -> Optional[str]:
    ref = parse(source)
    for i, node in enumerate(_nodes(ref)):
        mutation = None
        if isinstance(node, A.For):
            cond = node.cond
            if (
                isinstance(cond, A.Binary)
                and cond.op in ("<", "<=")
                and isinstance(cond.right, A.IntLit)
                and cond.right.value > 1
            ):
                mutation = ("bound", 1)
        elif isinstance(node, A.OmpParallel):
            if isinstance(node.num_threads, A.IntLit) and node.num_threads.value > 2:
                mutation = ("threads", 2)
        if mutation is None:
            continue
        candidate = parse(source)
        target = _nodes(candidate)[i]
        kind, value = mutation
        if kind == "bound":
            target.cond.right.value = value
        else:
            target.num_threads.value = value
        accepted = session.accept(candidate)
        if accepted is not None:
            return accepted
    return None


def _pass_simplify_exprs(source: str, session: _Session) -> Optional[str]:
    ref = parse(source)
    for i, node in enumerate(_nodes(ref)):
        for slot in _all_slots(node):
            if slot in ("nid", "loc"):
                continue
            value = getattr(node, slot, None)
            mutations = []
            if isinstance(value, A.Binary):
                mutations = [("left",), ("right",)]
            elif isinstance(node, A.Assign) and slot == "value" and not isinstance(
                value, A.IntLit
            ):
                mutations = [("literal",)]
            for mutation in mutations:
                candidate = parse(source)
                target = _nodes(candidate)[i]
                old = getattr(target, slot)
                if mutation[0] == "left":
                    setattr(target, slot, old.left)
                elif mutation[0] == "right":
                    setattr(target, slot, old.right)
                else:
                    setattr(target, slot, A.IntLit(0, loc=old.loc))
                accepted = session.accept(candidate)
                if accepted is not None:
                    return accepted
    return None


def _pass_drop_toplevel(source: str, session: _Session) -> Optional[str]:
    ref = parse(source)
    for fi, func in enumerate(ref.functions):
        if func.name == "main":
            continue
        candidate = parse(source)
        del candidate.functions[fi]
        accepted = session.accept(candidate)
        if accepted is not None:
            return accepted
    for gi in range(len(ref.globals)):
        candidate = parse(source)
        del candidate.globals[gi]
        accepted = session.accept(candidate)
        if accepted is not None:
            return accepted
    return None


#: the reducer's pass list; minimality is relative to exactly these
PASSES = (
    ("drop-stmts", _pass_drop_stmts),
    ("unwrap-regions", _pass_unwrap_regions),
    ("shrink-loops", _pass_shrink_loops),
    ("simplify-exprs", _pass_simplify_exprs),
    ("drop-toplevel", _pass_drop_toplevel),
)


def reduce_source(
    source: str,
    predicate: Callable[[str], bool],
    max_rounds: int = _MAX_ROUNDS,
) -> str:
    """Shrink *source* while ``predicate(source)`` stays true.

    Raises :class:`ValueError` when the original program does not
    satisfy the predicate (nothing to reduce — the caller's reproducer
    is broken, better to fail loudly than to "reduce" noise).
    """
    session = _Session(predicate)
    if _reparse(source) is None:
        raise ValueError("original program does not parse/validate")
    if not session.reproduces(source):
        raise ValueError("original program does not reproduce the failure")

    current = source
    for _ in range(max_rounds):
        progress = False
        for _name, pass_fn in PASSES:
            while True:
                improved = pass_fn(current, session)
                if improved is None:
                    break
                current = improved
                progress = True
        if not progress:
            break
    return current
