"""Experiment harness: regenerates every table and figure of the paper."""

from .figures import (  # noqa: F401
    DEFAULT_PROCS,
    DEFAULT_THREADS,
    execution_time_figure,
    measure_execution_times,
    overhead_band,
    overhead_figure,
)
from .schedules import (  # noqa: F401
    DetectionRates,
    detection_rates,
    schedule_study,
    study_table,
)
from .series import FigureData, Series, TableData  # noqa: F401
from .threads import (  # noqa: F401
    DEFAULT_THREAD_SWEEP,
    build_thread_sweep_program,
    thread_overhead_figure,
)
from .table1 import (  # noqa: F401
    PAPER_TABLE1,
    Table1Cell,
    run_table1,
    table1_data,
)

__all__ = [
    "Series",
    "FigureData",
    "TableData",
    "DEFAULT_PROCS",
    "DEFAULT_THREADS",
    "measure_execution_times",
    "execution_time_figure",
    "overhead_figure",
    "overhead_band",
    "run_table1",
    "table1_data",
    "Table1Cell",
    "PAPER_TABLE1",
    "DetectionRates",
    "detection_rates",
    "schedule_study",
    "study_table",
    "thread_overhead_figure",
    "build_thread_sweep_program",
    "DEFAULT_THREAD_SWEEP",
]
