"""Schedule-sensitivity study.

The paper's central qualitative claim is that observation-only checking
(Marmot) "would not find the errors which is a possible violation but
not happen during checking runtime", while HOME's lockset +
happens-before analysis finds potential violations on *any* schedule.
This module quantifies that: run the same program under many scheduler
seeds with both tools and measure, per violation class, the fraction of
schedules in which each tool reports it.

Expected shape: HOME's rate is 1.0 for every injected class on every
seed; Marmot's rate is 1.0 only for violations that always manifest,
strictly between 0 and 1 for schedule-dependent ones, and 0.0 for
pairs that can never overlap (compute-skewed injections).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines import CheckingTool, Marmot
from ..home import Home
from ..minilang import Program
from .series import TableData


@dataclass
class DetectionRates:
    """Per-class detection frequency over a seed sweep for one tool."""

    tool: str
    seeds: List[int] = field(default_factory=list)
    #: vclass -> number of seeds in which it was reported
    hits: Dict[str, int] = field(default_factory=dict)

    @property
    def nruns(self) -> int:
        return len(self.seeds)

    def rate(self, vclass: str) -> float:
        if not self.seeds:
            return 0.0
        return self.hits.get(vclass, 0) / len(self.seeds)

    def classes(self) -> List[str]:
        return sorted(self.hits)


def detection_rates(
    program: Program,
    tool: CheckingTool,
    seeds: Sequence[int],
    nprocs: int = 2,
    num_threads: int = 2,
) -> DetectionRates:
    """Check *program* once per seed; count per-class detections."""
    rates = DetectionRates(tool.name)
    for seed in seeds:
        report = tool.check(
            program, nprocs=nprocs, num_threads=num_threads, seed=seed
        )
        rates.seeds.append(seed)
        for vclass in set(report.violations.classes()):
            rates.hits[vclass] = rates.hits.get(vclass, 0) + 1
    return rates


def schedule_study(
    program: Program,
    seeds: Sequence[int] = tuple(range(10)),
    nprocs: int = 2,
    num_threads: int = 2,
    tools: Optional[List[CheckingTool]] = None,
) -> Dict[str, DetectionRates]:
    """Seed sweep with HOME and Marmot (by default)."""
    tools = tools if tools is not None else [Home(), Marmot()]
    return {
        tool.name: detection_rates(program, tool, seeds, nprocs, num_threads)
        for tool in tools
    }


def study_table(study: Dict[str, DetectionRates]) -> TableData:
    """Render a study as a per-class rate table."""
    all_classes: List[str] = []
    for rates in study.values():
        for vclass in rates.classes():
            if vclass not in all_classes:
                all_classes.append(vclass)
    nruns = next(iter(study.values())).nruns if study else 0
    table = TableData(
        title=f"detection rate over {nruns} schedules",
        columns=["violation class"] + list(study),
    )
    for vclass in sorted(all_classes):
        row: List[object] = [vclass]
        for rates in study.values():
            row.append(f"{rates.rate(vclass):.0%}")
        table.rows.append(row)
    return table
