"""Thread-count overhead study.

The paper pins its experiments at 2 OpenMP threads per process because
"the overhead of Intel Thread Checker would be very high with number
increasing of threads in processes".  This study sweeps the team size
at a fixed process count and measures each tool's overhead, confirming
the claim: ITC's per-access monitoring grows with every extra thread's
instruction stream, while HOME's monitored-variable filtering keeps its
cost nearly flat.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..baselines import BaseRunner, CheckingTool, IntelThreadChecker, Marmot
from ..home import Home
from ..minilang import Program, parse
from .series import FigureData, Series

DEFAULT_THREAD_SWEEP: Sequence[int] = (1, 2, 4, 8)

#: A thread-safe hybrid workload whose team size comes from the run
#: configuration (no ``num_threads`` clause): each thread exchanges with
#: the partner rank under its own per-thread tag, so any team size is
#: legal and violation-free.
THREAD_SWEEP_SOURCE = """
program thread_sweep;

var field[256];

func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var size = mpi_comm_size(MPI_COMM_WORLD);
    var partner = rank + 1 - 2 * (rank % 2);
    for (var step = 0; step < 3; step = step + 1) {
        compute(40);
        omp parallel {
            omp for for (var i = 0; i < 128; i = i + 1) {
                field[i] = field[i] + 1.0;
                compute(2);
            }
            var t = omp_get_thread_num();
            var sbuf[2];
            var rbuf[2];
            if (size >= 2) {
                mpi_sendrecv(sbuf, 1, partner, 500 + step * 32 + t,
                             rbuf, partner, 500 + step * 32 + t,
                             MPI_COMM_WORLD);
            }
        }
        var res = mpi_allreduce(field[0], MPI_SUM, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
"""


def build_thread_sweep_program() -> Program:
    return parse(THREAD_SWEEP_SOURCE)


def thread_overhead_figure(
    program_builder: Callable[[], Program],
    threads: Sequence[int] = DEFAULT_THREAD_SWEEP,
    nprocs: int = 4,
    seed: int = 0,
    tools: Optional[List[CheckingTool]] = None,
) -> FigureData:
    """Overhead (%) of each tool as the OpenMP team size grows."""
    tools = tools if tools is not None else [Home(), Marmot(), IntelThreadChecker()]
    base_runner = BaseRunner()
    fig = FigureData(
        title=f"checking overhead vs OpenMP threads ({nprocs} processes)",
        xlabel="threads",
        ylabel="overhead (%)",
    )
    series = {tool.name: Series(tool.name) for tool in tools}
    for nthreads in threads:
        program = program_builder()
        base = base_runner.check(
            program, nprocs=nprocs, num_threads=nthreads, seed=seed
        ).makespan
        for tool in tools:
            t = tool.check(
                program, nprocs=nprocs, num_threads=nthreads, seed=seed
            ).makespan
            series[tool.name].points[nthreads] = 100.0 * (t / base - 1.0)
    fig.series.extend(series.values())
    return fig
