"""Regeneration of the paper's figures 4-7.

* Figures 4/5/6 — execution time vs. number of MPI processes for
  LU-MZ / BT-MZ / SP-MZ, four series each (Base, HOME, MARMOT, ITC),
  with the injected violations present (the paper times the modified
  benchmarks).
* Figure 7 — average instrumentation overhead (%) vs. processes,
  averaged over the three benchmarks, one series per tool.

Absolute values are virtual-time units, not EC2 seconds — the *shape*
(Base < HOME < MARMOT < ITC; overhead rising with process count; HOME
in the paper's 16-45% band) is the reproduction target.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..baselines import BaseRunner, CheckingTool, IntelThreadChecker, Marmot
from ..home import Home
from ..minilang import Program
from ..workloads.npb import BENCHMARKS
from .series import FigureData, Series

#: The process counts of the paper's figures.
DEFAULT_PROCS: Sequence[int] = (2, 4, 8, 16, 32, 64)

#: Paper experiment setup: 2 OpenMP threads per process.
DEFAULT_THREADS = 2


def default_tools() -> List[CheckingTool]:
    return [BaseRunner(), Home(), Marmot(), IntelThreadChecker()]


def measure_execution_times(
    program_builder: Callable[[], Program],
    procs: Sequence[int] = DEFAULT_PROCS,
    threads: int = DEFAULT_THREADS,
    seed: int = 0,
    tools: Optional[List[CheckingTool]] = None,
) -> Dict[str, Dict[int, float]]:
    """makespan[tool][nprocs] for each tool/process-count combination."""
    tools = tools if tools is not None else default_tools()
    out: Dict[str, Dict[int, float]] = {t.name: {} for t in tools}
    for nprocs in procs:
        program = program_builder()
        for tool in tools:
            report = tool.check(
                program, nprocs=nprocs, num_threads=threads, seed=seed
            )
            out[tool.name][nprocs] = report.makespan
    return out


def execution_time_figure(
    benchmark: str,
    procs: Sequence[int] = DEFAULT_PROCS,
    threads: int = DEFAULT_THREADS,
    seed: int = 0,
) -> FigureData:
    """Figures 4 (lu), 5 (bt), 6 (sp): execution time vs processes."""
    builder = BENCHMARKS[benchmark]
    times = measure_execution_times(
        lambda: builder(inject=True), procs, threads, seed
    )
    fig_no = {"lu": 4, "bt": 5, "sp": 6}[benchmark]
    fig = FigureData(
        title=f"Figure {fig_no}: {benchmark.upper()}-MZ hybrid MPI/OpenMP testing",
        xlabel="processes",
        ylabel="execution time (virtual units)",
    )
    for name, points in times.items():
        fig.series.append(Series(name, dict(points)))
    return fig


def overhead_figure(
    benchmarks: Iterable[str] = ("lu", "bt", "sp"),
    procs: Sequence[int] = DEFAULT_PROCS,
    threads: int = DEFAULT_THREADS,
    seed: int = 0,
) -> FigureData:
    """Figure 7: average overhead (%) of each tool vs processes."""
    acc: Dict[str, Dict[int, List[float]]] = {}
    for benchmark in benchmarks:
        builder = BENCHMARKS[benchmark]
        times = measure_execution_times(
            lambda: builder(inject=True), procs, threads, seed
        )
        base = times["Base"]
        for tool_name, points in times.items():
            if tool_name == "Base":
                continue
            slot = acc.setdefault(tool_name, {})
            for nprocs, t in points.items():
                slot.setdefault(nprocs, []).append(100.0 * (t / base[nprocs] - 1.0))
    fig = FigureData(
        title="Figure 7: overhead measurement (average over LU/BT/SP)",
        xlabel="processes",
        ylabel="average overhead (%)",
    )
    for tool_name, per_p in acc.items():
        fig.series.append(
            Series(tool_name, {p: sum(vals) / len(vals) for p, vals in per_p.items()})
        )
    return fig


def overhead_band(figure: FigureData, tool: str) -> tuple:
    """(min, max) overhead of *tool* across process counts — compared in
    tests/EXPERIMENTS.md against the paper's reported bands."""
    series = figure.get(tool)
    return (min(series.ys()), max(series.ys()))
