"""Regeneration of the paper's detection-count table (§V-B).

Paper values::

    Benchmarks      HOME  ITC  Marmot
    NPB-MZ LU (6)   6     5    5
    NPB-MZ BT (6)   6     7    6
    NPB-MZ SP (6)   6     6    5

Scoring: each benchmark carries six injected violations (one per
class).  A tool's count is the number of injections it detected (a
finding of any class located in the injection's code, or an
initialization-class finding for the init-level injection) plus any
false positives (findings attributable to no injection — ITC's named
critical data race on BT is the paper's one FP).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines import CheckingTool, IntelThreadChecker, Marmot
from ..home import Home
from ..workloads.npb import BENCHMARKS, injection_registry, score_report
from .series import TableData

#: The paper's reported counts, for comparison in EXPERIMENTS.md/tests.
PAPER_TABLE1 = {
    ("lu", "HOME"): 6, ("lu", "ITC"): 5, ("lu", "MARMOT"): 5,
    ("bt", "HOME"): 6, ("bt", "ITC"): 7, ("bt", "MARMOT"): 6,
    ("sp", "HOME"): 6, ("sp", "ITC"): 6, ("sp", "MARMOT"): 5,
}


@dataclass
class Table1Cell:
    """Full scoring detail for one (benchmark, tool) cell."""

    benchmark: str
    tool: str
    score: int
    detected: int
    false_positives: int
    missed: List[str] = field(default_factory=list)

    @property
    def paper_value(self) -> Optional[int]:
        return PAPER_TABLE1.get((self.benchmark, self.tool))

    @property
    def matches_paper(self) -> bool:
        return self.paper_value is None or self.score == self.paper_value


def default_table_tools() -> List[CheckingTool]:
    return [Home(), IntelThreadChecker(), Marmot()]


def run_table1(
    benchmarks: Sequence[str] = ("lu", "bt", "sp"),
    nprocs: int = 2,
    threads: int = 2,
    seed: int = 0,
    tools: Optional[List[CheckingTool]] = None,
) -> Dict[tuple, Table1Cell]:
    """Run every tool on every injected benchmark; return scored cells."""
    tools = tools if tools is not None else default_table_tools()
    cells: Dict[tuple, Table1Cell] = {}
    for benchmark in benchmarks:
        program = BENCHMARKS[benchmark](inject=True)
        registry = injection_registry(program)
        for tool in tools:
            report = tool.check(
                program, nprocs=nprocs, num_threads=threads, seed=seed
            )
            score = score_report(report.violations, registry)
            cells[(benchmark, tool.name)] = Table1Cell(
                benchmark=benchmark,
                tool=tool.name,
                score=score["score"],
                detected=score["detected"],
                false_positives=score["false_positives"],
                missed=list(score["missed"]),
            )
    return cells


def table1_data(cells: Dict[tuple, Table1Cell]) -> TableData:
    """Format cells as the paper's table."""
    tool_names: List[str] = []
    for (_b, t) in cells:
        if t not in tool_names:
            tool_names.append(t)
    table = TableData(
        title="Table 1: detected violations (6 injected per benchmark)",
        columns=["Benchmark"] + [f"{t} (paper)" for t in tool_names],
    )
    for benchmark in ("lu", "bt", "sp"):
        row: List[object] = [f"NPB-MZ {benchmark.upper()} (6)"]
        present = False
        for tool in tool_names:
            cell = cells.get((benchmark, tool))
            if cell is None:
                row.append("-")
                continue
            present = True
            paper = cell.paper_value
            row.append(f"{cell.score} ({paper})" if paper is not None else str(cell.score))
        if present:
            table.rows.append(row)
    return table
