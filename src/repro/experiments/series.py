"""Data containers and text rendering for reproduced figures/tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class Series:
    """One line of a figure: name -> {x: y}."""

    name: str
    points: Dict[int, float] = field(default_factory=dict)

    def xs(self) -> List[int]:
        return sorted(self.points)

    def ys(self) -> List[float]:
        return [self.points[x] for x in self.xs()]

    def at(self, x: int) -> float:
        return self.points[x]


@dataclass
class FigureData:
    """A reproduced figure: several series over a shared x axis."""

    title: str
    xlabel: str
    ylabel: str
    series: List[Series] = field(default_factory=list)

    def get(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"no series named {name!r} in {self.title!r}")

    def xs(self) -> List[int]:
        out: set = set()
        for s in self.series:
            out.update(s.points)
        return sorted(out)

    def render(self, fmt: str = "{:.0f}") -> str:
        """Render as an aligned text table (one row per x)."""
        xs = self.xs()
        names = [s.name for s in self.series]
        header = [self.xlabel] + names
        rows: List[List[str]] = [header]
        for x in xs:
            row = [str(x)]
            for s in self.series:
                val = s.points.get(x)
                row.append(fmt.format(val) if val is not None else "-")
            rows.append(row)
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = [self.title, f"({self.ylabel})"]
        for i, row in enumerate(rows):
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
            if i == 0:
                lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        return "\n".join(lines)


@dataclass
class TableData:
    """A reproduced table: named columns, list of rows."""

    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def render(self) -> str:
        cells = [self.columns] + [[str(c) for c in row] for row in self.rows]
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.columns))]
        lines = [self.title]
        for i, row in enumerate(cells):
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
            if i == 0:
                lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        return "\n".join(lines)

    def row_for(self, key: object) -> List[object]:
        for row in self.rows:
            if row and row[0] == key:
                return row
        raise KeyError(f"no row keyed {key!r} in {self.title!r}")
