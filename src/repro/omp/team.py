"""OpenMP team state: barriers, worksharing bookkeeping.

A :class:`Team` is created each time a thread encounters ``omp
parallel``.  The encountering thread becomes member 0 (the team
master); workers get fresh process-local thread ids.  All mutable team
state here is *pure data* — the interpreter drives it and owns all
scheduling and event emission, so this module is independently
unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SimAbort, StepLimitError


def check_iteration_budget(count: int, max_steps: int, loc) -> None:
    """Refuse an ``omp for`` whose iteration count exceeds the step
    budget.

    Both engines evaluate worksharing-loop headers into an iteration
    space before running a single body statement, and an *empty* body
    consumes no scheduler steps at all — so a generated
    ``for (i = 0; i < 1000000000; ...)`` would spin (or allocate) for
    minutes without the step or wall budget ever firing.  Each of those
    iterations could never complete within ``max_steps`` anyway, so
    refuse up front with the same :class:`StepLimitError` the scheduler
    itself would raise.  Shared by both engines so the failure string
    is byte-identical.
    """
    if count > max_steps > 0:
        raise StepLimitError(
            f"omp for at {loc} spans {count} iterations, beyond the "
            f"{max_steps}-step budget; refusing the loop up front"
        )


@dataclass
class BarrierState:
    """Classic counter/epoch barrier."""

    size: int
    epoch: int = 0
    arrived: int = 0
    release_time: float = 0.0
    _max_clock: float = 0.0

    def arrive(self, clock: float) -> int:
        """Register arrival; returns the epoch this arrival belongs to.

        The caller must then wait until :meth:`passed` for that epoch.
        """
        my_epoch = self.epoch
        self.arrived += 1
        self._max_clock = max(self._max_clock, clock)
        if self.arrived == self.size:
            self.release_time = self._max_clock
            self.arrived = 0
            self._max_clock = 0.0
            self.epoch += 1
        return my_epoch

    def passed(self, my_epoch: int) -> bool:
        return self.epoch > my_epoch


@dataclass
class ForState:
    """Shared state of one ``omp for`` instance (dynamic scheduling).

    *iterations* may be any indexable sequence — engines pass lazy
    ``range`` objects so huge iteration spaces are never materialized;
    :meth:`grab` only ever allocates one chunk.
    """

    iterations: Sequence[int]
    next_index: int = 0

    def grab(self, chunk: int) -> List[int]:
        """Dynamically claim up to *chunk* iterations; empty when drained."""
        if self.next_index >= len(self.iterations):
            return []
        end = min(self.next_index + chunk, len(self.iterations))
        out = list(self.iterations[self.next_index : end])
        self.next_index = end
        return out


@dataclass
class SectionsState:
    """Shared state of one ``omp sections`` instance."""

    nsections: int
    next_section: int = 0

    def grab(self) -> Optional[int]:
        if self.next_section >= self.nsections:
            return None
        idx = self.next_section
        self.next_section += 1
        return idx


@dataclass
class SingleState:
    """Shared state of one ``omp single`` instance."""

    executed: bool = False

    def try_claim(self) -> bool:
        if self.executed:
            return False
        self.executed = True
        return True


@dataclass
class CollectiveLedger:
    """Per-member ordered collective arrivals (PARCOACH dynamic check).

    Each member records the ``(kind, loc, op)`` of every collective
    construct it *encounters*, in order; a member that completes its
    region body is *closed*.  Two closed members with different
    sequences — different length (one skipped a collective under a
    divergent branch) or a different color at some index — witness a
    collective-matching violation.  Open members (blocked in a deadlock
    or aborted) are only comparable on their recorded prefix.

    Pure data, like the rest of the team state: the interpreter drives
    it and owns event emission.
    """

    size: int
    sequences: List[List[Tuple[str, str, str]]] = field(default_factory=list)
    closed: List[bool] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.sequences:
            self.sequences = [[] for _ in range(self.size)]
        if not self.closed:
            self.closed = [False] * self.size

    def record(self, team_index: int, kind: str, loc: str, op: str = "") -> int:
        """Record an arrival; returns its index in the member sequence."""
        seq = self.sequences[team_index]
        seq.append((kind, loc, op))
        return len(seq) - 1

    def close(self, team_index: int) -> None:
        self.closed[team_index] = True

    def first_mismatch(self) -> Optional[Tuple[int, int, int]]:
        """``(index, member_a, member_b)`` of the first divergence
        between two comparable members, or None when matched.

        A position is comparable for a member if it has an arrival
        there, or is closed (its sequence is complete, so "no arrival"
        is definitive).  Open members are skipped past their recorded
        prefix.
        """
        longest = max((len(s) for s in self.sequences), default=0)
        for i in range(longest):
            witness: Optional[Tuple[int, Optional[Tuple[str, str]]]] = None
            for member, seq in enumerate(self.sequences):
                if i < len(seq):
                    # compare by collective *color* (kind, op), not
                    # source location: balanced branch arms match
                    kind, _loc, op = seq[i]
                    color: Optional[Tuple[str, str]] = (kind, op)
                elif self.closed[member]:
                    color = None  # definitively no arrival at i
                else:
                    continue  # open member, prefix exhausted: unknown
                if witness is None:
                    witness = (member, color)
                elif witness[1] != color:
                    return (i, witness[0], member)
        return None


class Team:
    """One OpenMP team (a parallel region instance)."""

    def __init__(self, proc: int, size: int, master_tid: int,
                 parent: Optional["Team"], team_id: int = 0) -> None:
        if size < 1:
            raise SimAbort(f"team size must be >= 1, got {size}")
        #: run-deterministic id assigned by the interpreter
        self.team_id = team_id
        self.proc = proc
        self.size = size
        self.master_tid = master_tid
        self.parent = parent
        #: process-local thread ids of members, indexed by team index.
        self.member_tids: List[int] = [master_tid] + [-1] * (size - 1)
        self.barrier = BarrierState(size)
        #: workers still running (master joins when this hits zero).
        self.workers_live = size - 1
        #: shared worksharing-instance state, keyed by (node id, visit count)
        self._constructs: Dict[Tuple[int, int], object] = {}
        #: latest member clocks, updated at region end for the join.
        self.final_clocks: List[float] = [0.0] * size
        #: per-member collective arrivals (populated only when the run
        #: config enables collective monitoring)
        self.collectives = CollectiveLedger(size)

    def register_worker(self, team_index: int, tid: int) -> None:
        self.member_tids[team_index] = tid

    def construct_state(self, key: Tuple[int, int], factory) -> object:
        """Get-or-create the shared state of a worksharing instance."""
        state = self._constructs.get(key)
        if state is None:
            state = self._constructs[key] = factory()
        return state

    def worker_done(self, team_index: int, clock: float) -> None:
        self.final_clocks[team_index] = clock
        self.workers_live -= 1

    @property
    def all_workers_done(self) -> bool:
        return self.workers_live == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Team {self.team_id} proc={self.proc} size={self.size}>"


def static_chunks(iterations: List[int], nthreads: int, team_index: int,
                  chunk: Optional[int] = None) -> List[int]:
    """Iterations assigned to *team_index* under static scheduling.

    Without an explicit chunk size the iteration space is split into
    ``nthreads`` contiguous blocks (the usual ``schedule(static)``);
    with a chunk, blocks of that size are dealt round-robin.
    """
    n = len(iterations)
    if n == 0:
        return []
    if chunk is None:
        base = n // nthreads
        extra = n % nthreads
        start = team_index * base + min(team_index, extra)
        size = base + (1 if team_index < extra else 0)
        return iterations[start : start + size]
    out: List[int] = []
    for block_start in range(team_index * chunk, n, nthreads * chunk):
        out.extend(iterations[block_start : block_start + chunk])
    return out
