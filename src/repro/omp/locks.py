"""Process-level locks backing ``omp critical``, ``omp atomic`` and the
``omp_*_lock`` runtime routines.

Each simulated process owns one :class:`LockTable`.  Named criticals map
to ``critical:<name>`` locks (anonymous criticals share
``critical:<anonymous>``, as in OpenMP); user locks map to
``omplock:<name>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import SimAbort

ANON_CRITICAL = "<anonymous>"
ATOMIC_LOCK = "atomic:<global>"


@dataclass
class SimLock:
    """A simple owner-tracked mutex with a release timestamp."""

    name: str
    owner: Optional[int] = None  # process-local thread id
    free_at: float = 0.0
    acquisitions: int = 0

    @property
    def held(self) -> bool:
        return self.owner is not None

    def acquire(self, tid: int, now: float) -> float:
        """Take the lock; returns the clock value after the acquire."""
        if self.owner is not None:
            raise SimAbort(
                f"lock {self.name!r} acquired by thread {tid} while held by {self.owner}"
            )
        self.owner = tid
        self.acquisitions += 1
        return max(now, self.free_at)

    def release(self, tid: int, now: float) -> None:
        if self.owner != tid:
            raise SimAbort(
                f"thread {tid} released lock {self.name!r} held by {self.owner}"
            )
        self.owner = None
        self.free_at = now


class LockTable:
    """All locks of one simulated process."""

    def __init__(self, proc: int) -> None:
        self.proc = proc
        self.locks: Dict[str, SimLock] = {}

    def get(self, name: str) -> SimLock:
        lock = self.locks.get(name)
        if lock is None:
            lock = self.locks[name] = SimLock(name)
        return lock

    def critical(self, name: str = "") -> SimLock:
        return self.get(f"critical:{name or ANON_CRITICAL}")

    def user_lock(self, name: str) -> SimLock:
        return self.get(f"omplock:{name}")

    def atomic(self) -> SimLock:
        return self.get(ATOMIC_LOCK)
