"""OpenMP semantics substrate: teams, worksharing, barriers, locks."""

from .locks import ANON_CRITICAL, ATOMIC_LOCK, LockTable, SimLock  # noqa: F401
from .team import (  # noqa: F401
    BarrierState,
    ForState,
    SectionsState,
    SingleState,
    Team,
    check_iteration_budget,
    static_chunks,
)

__all__ = [
    "Team",
    "BarrierState",
    "ForState",
    "SectionsState",
    "SingleState",
    "check_iteration_budget",
    "static_chunks",
    "LockTable",
    "SimLock",
    "ANON_CRITICAL",
    "ATOMIC_LOCK",
]
