"""repro — reproduction of *Detecting Thread-Safety Violations in Hybrid
OpenMP/MPI Programs* (Ma, Wang, Krishnamoorthy; IEEE CLUSTER 2015).

Public API tour
---------------

Front end::

    from repro import parse, print_program
    program = parse(source_text)

Run a hybrid program on the simulator::

    from repro import run_program
    result = run_program(program, nprocs=2, num_threads=2, seed=0)

Check it with HOME (the paper's tool)::

    from repro import check_program
    report = check_program(program, nprocs=2)
    print(report.summary())

Compare against the baseline models::

    from repro.baselines import Marmot, IntelThreadChecker
    Marmot().check(program, nprocs=2)

Regenerate the paper's evaluation::

    from repro.experiments import run_table1, execution_time_figure
"""

from .errors import (  # noqa: F401
    AnalysisError,
    DeadlockError,
    LexError,
    MiniLangError,
    MPIUsageError,
    ParseError,
    ReproError,
    RuntimeSimError,
    SimAbort,
    ToolError,
    ValidationError,
)
from .home import Home, HomeOptions, check_program  # noqa: F401
from .minilang import parse, print_program, validate  # noqa: F401
from .runtime import ExecutionResult, RunConfig, run_program  # noqa: F401
from .violations import Violation, ViolationReport  # noqa: F401

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "parse",
    "print_program",
    "validate",
    "run_program",
    "RunConfig",
    "ExecutionResult",
    "Home",
    "HomeOptions",
    "check_program",
    "Violation",
    "ViolationReport",
    "ReproError",
    "MiniLangError",
    "LexError",
    "ParseError",
    "ValidationError",
    "RuntimeSimError",
    "SimAbort",
    "DeadlockError",
    "MPIUsageError",
    "AnalysisError",
    "ToolError",
]
