"""Static violation-candidate detection.

The paper's second contribution bullet: the static analysis "can report
and statistically provide all possible code locations that are involved
in errors in Hybrid OpenMP/MPI programs".  This pass pairs up hybrid
MPI sites whose *statically known* arguments could satisfy a violation
predicate — before any execution:

* two hybrid receive sites (or one site in a loop) with overlapping
  constant envelopes → Concurrent-Recv candidate;
* probe sites against probe/receive sites, same envelope → Probe
  candidate;
* two hybrid collective sites on the same constant communicator →
  Collective candidate;
* hybrid wait/test sites → Concurrent-Request candidate (request
  values are rarely static; site-level pairing is the best a static
  pass can do);
* a hybrid ``mpi_finalize`` site → Finalization candidate.

A site with *unknown* (non-constant) tag/source is conservatively
assumed to overlap anything — statically safe sites are exactly those
proven disjoint.  The dynamic phase then confirms or refutes each
candidate; sites sharing an enclosing critical section are excluded
here because the lockset analysis will prove them serialized anyway.

When :func:`find_candidates` is given the :class:`DataflowFacts` of the
worklist analyses (see :mod:`.dataflow`), three further prunes apply to
every pair — symbolic-envelope disjointness (``tag = rank + 4`` versus
``rank + 9``), a shared must-held lock, and May-Happen-in-Parallel
ordering (barrier phases, distinct parallel regions, same section).
Each prune is counted on the facts object for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ...mpi.constants import MPI_ANY_SOURCE, MPI_ANY_TAG
from ...violations.spec import (
    COLLECTIVE,
    CONCURRENT_RECV,
    CONCURRENT_REQUEST,
    FINALIZATION,
    PROBE,
)
from .mpi_sites import MPISite

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dataflow.facts import DataflowFacts

#: argument positions in the mini language's MPI signatures
_ENVELOPE_POSITIONS = {
    # op: (source/dest position, tag position, comm position)
    "mpi_recv": (2, 3, 4),
    "mpi_irecv": (2, 3, 4),
    "mpi_sendrecv": (5, 6, 7),
    "mpi_probe": (0, 1, 2),
    "mpi_iprobe": (0, 1, 2),
}

_RECV_LIKE = ("mpi_recv", "mpi_irecv", "mpi_sendrecv")
_PROBE_LIKE = ("mpi_probe", "mpi_iprobe")
_WAIT_LIKE = ("mpi_wait", "mpi_test", "mpi_waitall")
_COLLECTIVE_COMM_POSITION = {
    "mpi_barrier": 0,
    "mpi_bcast": 2,
    "mpi_reduce": 3,
    "mpi_allreduce": 2,
    "mpi_gather": 3,
    "mpi_allgather": 2,
    "mpi_scatter": 2,
    "mpi_alltoall": 2,
}


@dataclass(frozen=True)
class StaticEnvelope:
    """Best-effort constant (source, tag, comm); None = unknown."""

    src: Optional[int]
    tag: Optional[int]
    comm: Optional[int]

    def may_overlap(self, other: "StaticEnvelope") -> bool:
        def comp(a, b, wildcard) -> bool:
            if a is None or b is None:
                return True  # unknown: assume overlap (conservative)
            return a == b or a == wildcard or b == wildcard

        if self.comm is not None and other.comm is not None and self.comm != other.comm:
            return False
        return comp(self.src, other.src, MPI_ANY_SOURCE) and comp(
            self.tag, other.tag, MPI_ANY_TAG
        )


@dataclass
class ViolationCandidate:
    """A statically possible violation between two hybrid sites."""

    vclass: str
    site_a: MPISite
    site_b: MPISite
    reason: str

    def locs(self) -> Tuple[str, str]:
        return tuple(sorted((self.site_a.loc, self.site_b.loc)))

    def __str__(self) -> str:
        return (
            f"[static-candidate:{self.vclass}] {self.site_a.op}@{self.site_a.loc} "
            f"vs {self.site_b.op}@{self.site_b.loc}: {self.reason}"
        )


def envelope_of(site: MPISite) -> StaticEnvelope:
    positions = _ENVELOPE_POSITIONS.get(site.op)
    if positions is None:
        return StaticEnvelope(None, None, None)
    src_i, tag_i, comm_i = positions

    def get(i):
        value = site.static_args.get(i)
        return value if isinstance(value, int) else None

    return StaticEnvelope(get(src_i), get(tag_i), get(comm_i))


def _serialized_together(a: MPISite, b: MPISite) -> bool:
    """Sharing a named critical (or both master-guarded) proves order."""
    if set(a.criticals) & set(b.criticals):
        return True
    return a.in_master and b.in_master


def _pairable(a: MPISite, b: MPISite) -> bool:
    return not _serialized_together(a, b)


def _facts_allow(
    a: MPISite,
    b: MPISite,
    facts: Optional["DataflowFacts"],
    check_envelope: bool = False,
) -> bool:
    """Dataflow-based prune checks, applied only to pairs that survived
    every lexical check — so each counted prune removes exactly one
    pair the candidate set would otherwise contain."""
    if facts is None:
        return True
    from .dataflow.facts import PRUNE_ENVELOPE, PRUNE_LOCKSTATE, PRUNE_MHP

    if facts.serialized_by_locks(a, b):
        facts.count_prune(PRUNE_LOCKSTATE)
        return False
    if not facts.may_happen_in_parallel(a, b):
        facts.count_prune(PRUNE_MHP)
        return False
    if check_envelope and facts.envelopes_disjoint(a, b):
        facts.count_prune(PRUNE_ENVELOPE)
        return False
    return True


def find_candidates(
    sites: Sequence[MPISite], facts: Optional["DataflowFacts"] = None
) -> List[ViolationCandidate]:
    """All statically possible violation pairs among hybrid sites.

    A site may pair with itself: inside a parallel region the same
    lexical call executes on every team thread.  With dataflow *facts*
    supplied, pairs proven safe by the worklist analyses are pruned
    (and counted on the facts object).
    """
    hybrid = [s for s in sites if s.in_parallel and s.instrumentable]
    out: List[ViolationCandidate] = []

    def each_pair(group_a, group_b):
        seen = set()
        for a in group_a:
            for b in group_b:
                key = tuple(sorted((a.nid, b.nid)))
                if key in seen:
                    continue
                seen.add(key)
                yield a, b

    recvs = [s for s in hybrid if s.op in _RECV_LIKE]
    probes = [s for s in hybrid if s.op in _PROBE_LIKE]
    waits = [s for s in hybrid if s.op in _WAIT_LIKE]
    collectives = [s for s in hybrid if s.op in _COLLECTIVE_COMM_POSITION]
    finalizes = [s for s in hybrid if s.op == "mpi_finalize"]

    for a, b in each_pair(recvs, recvs):
        if (
            _pairable(a, b)
            and envelope_of(a).may_overlap(envelope_of(b))
            and _facts_allow(a, b, facts, check_envelope=True)
        ):
            out.append(ViolationCandidate(
                CONCURRENT_RECV, a, b,
                "hybrid receives with potentially overlapping envelopes",
            ))
    for a, b in each_pair(probes, probes + recvs):
        if a.nid == b.nid and b.op in _RECV_LIKE:
            continue
        if (
            _pairable(a, b)
            and envelope_of(a).may_overlap(envelope_of(b))
            and _facts_allow(a, b, facts, check_envelope=True)
        ):
            out.append(ViolationCandidate(
                PROBE, a, b,
                "hybrid probe may race another probe/receive on one envelope",
            ))
    for a, b in each_pair(waits, waits):
        if _pairable(a, b) and _facts_allow(a, b, facts):
            out.append(ViolationCandidate(
                CONCURRENT_REQUEST, a, b,
                "hybrid request-completion calls may share a request",
            ))
    for a, b in each_pair(collectives, collectives):
        comm_a = a.static_args.get(_COLLECTIVE_COMM_POSITION[a.op])
        comm_b = b.static_args.get(_COLLECTIVE_COMM_POSITION[b.op])
        if comm_a is not None and comm_b is not None and comm_a != comm_b:
            continue
        if _pairable(a, b) and _facts_allow(a, b, facts):
            out.append(ViolationCandidate(
                COLLECTIVE, a, b,
                "hybrid collectives on the same communicator",
            ))
    for site in finalizes:
        out.append(ViolationCandidate(
            FINALIZATION, site, site,
            "mpi_finalize inside an omp parallel region",
        ))
    return out


def candidate_summary(candidates: Sequence[ViolationCandidate]) -> Dict[str, int]:
    """Counts per violation class (the 'statistics' of the paper's claim)."""
    out: Dict[str, int] = {}
    for c in candidates:
        out[c.vclass] = out.get(c.vclass, 0) + 1
    return out
