"""MPI call-site discovery.

Finds every MPI call in a program, records its lexical context (OpenMP
parallel nesting, enclosing criticals, enclosing function) and extracts
statically known argument values.  Optionally propagates parallel
context *interprocedurally* along the call graph: a function invoked
from inside a parallel region executes on team threads, so its MPI
sites are hybrid sites too (the paper lists this refinement as future
work; it is implemented here behind a flag that defaults on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from ...minilang import ast_nodes as A
from ...mpi.constants import LANGUAGE_CONSTANTS

#: Call names treated as MPI routines by the static pass.
MPI_PREFIXES = ("mpi_", "hmpi_")

#: MPI routines that are pure queries — never instrumented (no monitored
#: variables are associated with them).
QUERY_OPS = frozenset(
    {
        "mpi_comm_rank", "mpi_comm_size", "mpi_wtime",
        "mpi_is_thread_main", "mpi_initialized",
        "mpi_comm_get_errhandler", "mpi_error_string", "mpi_set_timeout",
    }
)


@dataclass
class MPISite:
    """One static MPI call site."""

    nid: int                      # CallExpr node id
    op: str                       # canonical op name (mpi_*)
    func: str                     # enclosing function
    loc: str                      # "line:col"
    in_parallel: bool             # lexically or interprocedurally hybrid
    lexical_parallel: bool        # lexically inside omp parallel
    criticals: Tuple[str, ...]    # enclosing critical-section names
    in_master: bool               # lexically inside omp master/single
    static_args: Dict[int, object] = field(default_factory=dict)
    call_chain: Tuple[str, ...] = ()

    @property
    def instrumentable(self) -> bool:
        return self.op not in QUERY_OPS

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ctx = "hybrid" if self.in_parallel else "serial"
        return f"{self.op} at {self.func}:{self.loc} [{ctx}]"


def fold_static_value(expr: A.Expr) -> Optional[object]:
    """Best-effort constant folding of an expression.

    The one shared folding helper of the static phase: literals,
    language constants (``MPI_ANY_TAG`` …), unary minus (nested too) and
    constant arithmetic (``+ - * / %`` with the runtime's C-like
    truncating semantics — see :meth:`repro.runtime.values._apply`).
    Division/modulo by zero never folds (the runtime aborts there), and
    booleans never participate in arithmetic.  Everything
    dataflow-dependent is the job of
    :mod:`repro.analysis.static_.dataflow`.
    """
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.FloatLit):
        return expr.value
    if isinstance(expr, A.BoolLit):
        return expr.value
    if isinstance(expr, A.StrLit):
        return expr.value
    if isinstance(expr, A.Name) and expr.ident in LANGUAGE_CONSTANTS:
        return LANGUAGE_CONSTANTS[expr.ident]
    if isinstance(expr, A.Unary) and expr.op == "-":
        inner = fold_static_value(expr.operand)
        if _is_number(inner):
            return -inner
    if isinstance(expr, A.Binary) and expr.op in ("+", "-", "*", "/", "%"):
        left = fold_static_value(expr.left)
        right = fold_static_value(expr.right)
        if _is_number(left) and _is_number(right):
            return _fold_arith(expr.op, left, right)
    return None


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _fold_arith(op: str, a, b) -> Optional[object]:
    """Constant arithmetic with the runtime's C-like semantics."""
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            return None  # the runtime aborts: not a static constant
        if isinstance(a, int) and isinstance(b, int):
            q = abs(a) // abs(b)
            return q if (a >= 0) == (b >= 0) else -q
        return a / b
    if op == "%":
        if b == 0 or not (isinstance(a, int) and isinstance(b, int)):
            return None  # runtime aborts on zero / non-int operands
        r = abs(a) % abs(b)
        return r if a >= 0 else -r
    return None


#: Backwards-compatible alias (previously a private cross-module import).
_static_value = fold_static_value


class _SiteCollector:
    """Single-function walker tracking OpenMP lexical context."""

    def __init__(self, func: A.FuncDef) -> None:
        self.func = func
        self.sites: List[MPISite] = []
        self.calls_out: List[Tuple[str, bool]] = []  # (callee, in_parallel)
        self._parallel_depth = 0
        self._criticals: List[str] = []
        self._master_depth = 0

    def collect(self) -> None:
        self._walk_stmt(self.func.body)

    # -- expression side ------------------------------------------------------

    def _walk_expr(self, expr: A.Expr) -> None:
        if isinstance(expr, A.CallExpr):
            for arg in expr.args:
                self._walk_expr(arg)
            name = expr.name
            if name.startswith(MPI_PREFIXES) and name != "mpi_monitor_setup":
                op = name[1:] if name.startswith("hmpi_") else name
                self.sites.append(
                    MPISite(
                        nid=expr.nid,
                        op=op,
                        func=self.func.name,
                        loc=f"{expr.loc.line}:{expr.loc.col}",
                        in_parallel=self._parallel_depth > 0,
                        lexical_parallel=self._parallel_depth > 0,
                        criticals=tuple(self._criticals),
                        in_master=self._master_depth > 0,
                        static_args={
                            i: v
                            for i, arg in enumerate(expr.args)
                            if (v := fold_static_value(arg)) is not None
                        },
                        call_chain=(self.func.name,),
                    )
                )
            elif name == "thread_spawn" and expr.args and isinstance(expr.args[0], A.StrLit):
                # Explicitly spawned threads run concurrently with their
                # spawner: the target function executes in hybrid context.
                self.calls_out.append((expr.args[0].value, True))
            else:
                self.calls_out.append((name, self._parallel_depth > 0))
        else:
            for child in expr.children():
                if isinstance(child, A.Expr):
                    self._walk_expr(child)

    # -- statement side -----------------------------------------------------

    def _walk_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.OmpParallel):
            self._parallel_depth += 1
            self._walk_stmt(stmt.body)
            self._parallel_depth -= 1
            return
        if isinstance(stmt, A.OmpCritical):
            self._criticals.append(stmt.name or "<anonymous>")
            self._walk_stmt(stmt.body)
            self._criticals.pop()
            return
        if isinstance(stmt, (A.OmpMaster, A.OmpSingle)):
            self._master_depth += 1
            self._walk_stmt(stmt.body)
            self._master_depth -= 1
            return
        # Generic traversal: visit expressions, then sub-statements.
        for child in stmt.children():
            if isinstance(child, A.Expr):
                self._walk_expr(child)
            elif isinstance(child, A.Stmt):
                self._walk_stmt(child)


def collect_sites(
    program: A.Program,
    interprocedural: bool = True,
    callgraph: Optional[object] = None,
) -> List[MPISite]:
    """All MPI sites in *program*, with hybrid-context classification.

    Interprocedural sites additionally inherit the master/critical
    guards that hold on *every* parallel path into their function (the
    call-graph guard meet), so the thread-level checker and the
    MPI-candidate serialization pruning see a funneled helper as
    funneled.  *callgraph* lets callers share an already-built
    :class:`..callgraph.CallGraph`.
    """
    per_func: Dict[str, _SiteCollector] = {}
    for fn in program.functions:
        collector = _SiteCollector(fn)
        collector.collect()
        per_func[fn.name] = collector

    if interprocedural:
        hybrid_funcs = _functions_reaching_parallel(program, per_func)
        for fname, collector in per_func.items():
            if fname in hybrid_funcs:
                for site in collector.sites:
                    if not site.in_parallel:
                        site.in_parallel = True
                        site.call_chain = tuple(sorted(hybrid_funcs[fname])) + (fname,)
        _inherit_guards(program, per_func, hybrid_funcs, callgraph)

    sites: List[MPISite] = []
    for collector in per_func.values():
        sites.extend(collector.sites)
    return sites


def _inherit_guards(
    program: A.Program,
    per_func: Dict[str, _SiteCollector],
    hybrid_funcs: Dict[str, Set[str]],
    callgraph: Optional[object],
) -> None:
    """Merge every-parallel-path guards into interprocedural sites."""
    if not hybrid_funcs:
        return
    from .callgraph import build_callgraph, parallel_guard_contexts

    cg = callgraph if callgraph is not None else build_callgraph(program)
    inherited = parallel_guard_contexts(cg)
    for fname, collector in per_func.items():
        guard = inherited.get(fname)
        if guard is None or (not guard.in_master and not guard.criticals):
            continue
        for site in collector.sites:
            if site.in_parallel and not site.lexical_parallel:
                if guard.in_master:
                    site.in_master = True
                if guard.criticals:
                    site.criticals = tuple(
                        sorted(set(site.criticals) | guard.criticals)
                    )


def functions_called_from_parallel(program: A.Program) -> Set[str]:
    """Names of functions transitively reachable from a parallel region.

    Such functions may run on multiple team threads (or spawned threads)
    concurrently, so analyses relying on single-team lexical structure
    must treat them conservatively.
    """
    per_func: Dict[str, _SiteCollector] = {}
    for fn in program.functions:
        collector = _SiteCollector(fn)
        collector.collect()
        per_func[fn.name] = collector
    return set(_functions_reaching_parallel(program, per_func))


def _functions_reaching_parallel(
    program: A.Program, per_func: Dict[str, _SiteCollector]
) -> Dict[str, Set[str]]:
    """Functions transitively callable from inside a parallel region.

    Returns a map callee -> set of direct hybrid callers (for reporting
    the call chain).
    """
    graph = nx.DiGraph()
    roots: Set[str] = set()
    user_funcs = {fn.name for fn in program.functions}
    for fname, collector in per_func.items():
        for callee, in_par in collector.calls_out:
            if callee not in user_funcs:
                continue
            graph.add_edge(fname, callee)
            if in_par:
                roots.add(callee)
    hybrid: Dict[str, Set[str]] = {}
    frontier = list(roots)
    for root in roots:
        hybrid.setdefault(root, set())
    while frontier:
        current = frontier.pop()
        if current not in graph:
            continue
        for nxt in graph.successors(current):
            if nxt not in hybrid:
                hybrid[nxt] = {current}
                frontier.append(nxt)
    return hybrid
