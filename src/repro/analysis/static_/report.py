"""Static-analysis report aggregation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ...minilang import ast_nodes as A
from ..cfg import CFG, build_program_cfgs
from .candidates import ViolationCandidate, candidate_summary, find_candidates
from .checklist import Checklist, build_checklist
from .instrument import InstrumentationResult, InstrumentPolicy, instrument_program
from .mpi_sites import MPISite, collect_sites
from .threadlevel import StaticWarning, ThreadLevelInfo, check_thread_level, infer_thread_level


@dataclass
class StaticReport:
    """Everything the compile-time phase learned about a program."""

    program_name: str
    thread_level: ThreadLevelInfo
    sites: List[MPISite]
    warnings: List[StaticWarning]
    checklist: Checklist
    instrumentation: InstrumentationResult
    cfgs: Dict[str, CFG] = field(default_factory=dict)
    candidates: List[ViolationCandidate] = field(default_factory=list)

    @property
    def hybrid_sites(self) -> List[MPISite]:
        return [s for s in self.sites if s.in_parallel]

    @property
    def instrumented_program(self) -> A.Program:
        return self.instrumentation.program

    def summary(self) -> str:
        lines = [
            f"static analysis of {self.program_name!r}:",
            f"  declared thread level: {self.thread_level.level_name}",
            f"  MPI call sites: {len(self.sites)} "
            f"({len(self.hybrid_sites)} in hybrid context)",
            f"  instrumented: {self.instrumentation.n_instrumented}, "
            f"filtered out: {self.instrumentation.n_filtered} "
            f"({self.instrumentation.reduction_ratio:.0%} reduction)",
            f"  checklist entries: {len(self.checklist)}",
        ]
        if self.candidates:
            counts = candidate_summary(self.candidates)
            per_class = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
            lines.append(
                f"  static violation candidates: {len(self.candidates)} "
                f"({per_class})"
            )
        for w in self.warnings:
            lines.append(f"  {w}")
        return "\n".join(lines)


def run_static_analysis(
    program: A.Program,
    policy: InstrumentPolicy = "hybrid-only",
    interprocedural: bool = True,
    with_cfgs: bool = True,
) -> StaticReport:
    """The full compile-time phase of HOME (paper Fig. 3, left column)."""
    sites = collect_sites(program, interprocedural=interprocedural)
    warnings = check_thread_level(program, sites)
    instrumentation = instrument_program(
        program, policy=policy, interprocedural=interprocedural
    )
    hybrid = [s for s in sites if s.in_parallel and s.instrumentable]
    checklist = build_checklist(hybrid)
    cfgs = build_program_cfgs(program) if with_cfgs else {}
    candidates = find_candidates(sites)
    return StaticReport(
        program_name=program.name,
        thread_level=infer_thread_level(program),
        sites=sites,
        warnings=warnings,
        checklist=checklist,
        instrumentation=instrumentation,
        cfgs=cfgs,
        candidates=candidates,
    )
