"""Static-analysis report aggregation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...minilang import ast_nodes as A
from ..cfg import CFG, build_program_cfgs
from .candidates import ViolationCandidate, candidate_summary, find_candidates
from .checklist import Checklist, build_checklist
from .dataflow import DataflowFacts, compute_dataflow
from .instrument import InstrumentationResult, InstrumentPolicy, instrument_program
from .mpi_sites import MPISite, collect_sites
from .threadlevel import StaticWarning, ThreadLevelInfo, check_thread_level, infer_thread_level


@dataclass
class StaticReport:
    """Everything the compile-time phase learned about a program."""

    program_name: str
    thread_level: ThreadLevelInfo
    sites: List[MPISite]
    warnings: List[StaticWarning]
    checklist: Checklist
    instrumentation: InstrumentationResult
    cfgs: Dict[str, CFG] = field(default_factory=dict)
    candidates: List[ViolationCandidate] = field(default_factory=list)
    #: facts of the worklist dataflow analyses (None when disabled)
    dataflow_facts: Optional[DataflowFacts] = None

    @property
    def hybrid_sites(self) -> List[MPISite]:
        return [s for s in self.sites if s.in_parallel]

    def summary(self) -> str:
        lines = [
            f"static analysis of {self.program_name!r}:",
            f"  declared thread level: {self.thread_level.level_name}",
            f"  MPI call sites: {len(self.sites)} "
            f"({len(self.hybrid_sites)} in hybrid context)",
            f"  instrumented: {self.instrumentation.n_instrumented}, "
            f"filtered out: {self.instrumentation.n_filtered} "
            f"({self.instrumentation.reduction_ratio:.0%} reduction)",
            f"  checklist entries: {len(self.checklist)}",
        ]
        if self.candidates:
            counts = candidate_summary(self.candidates)
            per_class = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
            lines.append(
                f"  static violation candidates: {len(self.candidates)} "
                f"({per_class})"
            )
        facts = self.dataflow_facts
        if facts is not None and facts.total_pruned:
            per_kind = ", ".join(
                f"{k}: {v}" for k, v in sorted(facts.pruned.items()) if v
            )
            lines.append(
                f"  dataflow-pruned candidate pairs: {facts.total_pruned} "
                f"({per_kind})"
            )
        for w in self.warnings:
            lines.append(f"  {w}")
        return "\n".join(lines)

    @property
    def instrumented_program(self) -> A.Program:
        return self.instrumentation.program

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable view of the report (for ``repro static --json``)."""
        facts = self.dataflow_facts
        return {
            "program": self.program_name,
            "thread_level": {
                "name": self.thread_level.level_name,
                "warnings": [str(w) for w in self.warnings],
            },
            "sites": [
                {
                    "op": s.op,
                    "func": s.func,
                    "loc": s.loc,
                    "hybrid": s.in_parallel,
                    "lexical_parallel": s.lexical_parallel,
                    "criticals": list(s.criticals),
                    "in_master": s.in_master,
                    "static_args": {str(i): v for i, v in sorted(s.static_args.items())},
                }
                for s in self.sites
            ],
            "instrumentation": {
                "instrumented": self.instrumentation.n_instrumented,
                "filtered": self.instrumentation.n_filtered,
                "reduction_ratio": self.instrumentation.reduction_ratio,
            },
            "checklist_entries": len(self.checklist),
            "candidates": [
                {
                    "class": c.vclass,
                    "a": {"op": c.site_a.op, "func": c.site_a.func, "loc": c.site_a.loc},
                    "b": {"op": c.site_b.op, "func": c.site_b.func, "loc": c.site_b.loc},
                    "reason": c.reason,
                }
                for c in self.candidates
            ],
            "candidate_counts": candidate_summary(self.candidates),
            "dataflow": None
            if facts is None
            else {
                "pruned": dict(facts.pruned),
                "total_pruned": facts.total_pruned,
                "iterations": facts.iterations,
                "unsafe_functions": sorted(facts.unsafe_funcs),
                "envelopes": {
                    str(nid): str(env) for nid, env in sorted(facts.envelopes.items())
                },
                "locks_held": {
                    str(nid): sorted(held)
                    for nid, held in sorted(facts.locks_held.items())
                },
            },
        }


def run_static_analysis(
    program: A.Program,
    policy: InstrumentPolicy = "hybrid-only",
    interprocedural: bool = True,
    with_cfgs: bool = True,
    dataflow: bool = True,
) -> StaticReport:
    """The full compile-time phase of HOME (paper Fig. 3, left column)."""
    sites = collect_sites(program, interprocedural=interprocedural)
    warnings = check_thread_level(program, sites)
    instrumentation = instrument_program(
        program, policy=policy, interprocedural=interprocedural
    )
    hybrid = [s for s in sites if s.in_parallel and s.instrumentable]
    checklist = build_checklist(hybrid)
    cfgs = build_program_cfgs(program) if with_cfgs or dataflow else {}
    facts = compute_dataflow(program, cfgs, sites) if dataflow else None
    candidates = find_candidates(sites, facts)
    return StaticReport(
        program_name=program.name,
        thread_level=infer_thread_level(program),
        sites=sites,
        warnings=warnings,
        checklist=checklist,
        instrumentation=instrumentation,
        cfgs=cfgs if with_cfgs else {},
        candidates=candidates,
        dataflow_facts=facts,
    )
