"""Static-analysis report aggregation."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...minilang import ast_nodes as A
from ..cfg import CFG, build_program_cfgs
from .candidates import ViolationCandidate, candidate_summary, find_candidates
from .checklist import Checklist, build_checklist
from .collectives import CollectiveDivergenceReport, find_collective_divergence
from .dataflow import DataflowFacts, compute_dataflow
from .instrument import InstrumentationResult, InstrumentPolicy, instrument_program
from .mpi_sites import MPISite, collect_sites
from .prunes import prune_summary
from .races import StaticRaceReport, find_races
from .summaries import SummaryTable, compute_summaries
from .threadlevel import StaticWarning, ThreadLevelInfo, check_thread_level, infer_thread_level

#: version of the ``repro static --json`` payload.  Bumped whenever a
#: section is added or reshaped so downstream consumers can detect
#: reports newer than themselves (mirror of the campaign checkpoint
#: ``schema_version`` pattern).  Version 2 added the ``schema_version``
#: field itself and the ``collectives`` divergence section.  Version 3
#: added the ``interproc`` summary section and reshaped ``prunes`` from
#: a flat merge into uniform per-pass sub-dicts
#: (``{"dataflow": .., "races": .., "collectives": .., "total": N}``).
STATIC_REPORT_SCHEMA_VERSION = 3

#: top-level sections a version-3 report may contain
KNOWN_REPORT_SECTIONS = frozenset({
    "schema_version", "program", "thread_level", "sites", "instrumentation",
    "checklist_entries", "candidates", "candidate_counts", "dataflow",
    "races", "collectives", "prunes", "interproc",
})

#: per-pass sub-keys of the version-3 ``prunes`` section
PRUNE_SECTIONS = ("dataflow", "races", "collectives")


def check_report_schema(payload: Dict[str, object]) -> List[str]:
    """Validate a ``repro static --json`` payload, warn-don't-crash.

    Returns human-readable warnings for a payload produced by a newer
    (or older) writer: an unexpected ``schema_version`` or unknown
    top-level sections.  Never raises — consumers are expected to keep
    reading the sections they know about.
    """
    warnings: List[str] = []
    version = payload.get("schema_version")
    if version is None:
        warnings.append(
            "static report has no schema_version (pre-v2 writer); "
            "divergence sections will be absent"
        )
    elif version != STATIC_REPORT_SCHEMA_VERSION:
        warnings.append(
            f"static report schema_version {version} != supported "
            f"{STATIC_REPORT_SCHEMA_VERSION}; unknown sections are ignored"
        )
        if isinstance(version, int) and version < 3:
            warnings.append(
                "pre-v3 'prunes' is a flat merged dict; per-pass "
                "sub-sections and the 'interproc' section will be absent"
            )
    for section in payload:
        if section not in KNOWN_REPORT_SECTIONS:
            warnings.append(f"ignoring unknown report section {section!r}")
    prunes = payload.get("prunes")
    if version == STATIC_REPORT_SCHEMA_VERSION and isinstance(prunes, dict):
        missing = [k for k in (*PRUNE_SECTIONS, "total") if k not in prunes]
        if missing:
            warnings.append(
                f"v{version} 'prunes' section lacks {missing}; "
                "treating absent passes as zero-count"
            )
    return warnings


@dataclass
class StaticReport:
    """Everything the compile-time phase learned about a program."""

    program_name: str
    thread_level: ThreadLevelInfo
    sites: List[MPISite]
    warnings: List[StaticWarning]
    checklist: Checklist
    instrumentation: InstrumentationResult
    cfgs: Dict[str, CFG] = field(default_factory=dict)
    candidates: List[ViolationCandidate] = field(default_factory=list)
    #: facts of the worklist dataflow analyses (None when disabled)
    dataflow_facts: Optional[DataflowFacts] = None
    #: static data-race pass outcome (None when disabled)
    races: Optional[StaticRaceReport] = None
    #: collective-matching / barrier-divergence pass (None when disabled)
    collectives: Optional[CollectiveDivergenceReport] = None
    #: interprocedural function-summary layer (None when disabled)
    summaries: Optional[SummaryTable] = None

    @property
    def hybrid_sites(self) -> List[MPISite]:
        return [s for s in self.sites if s.in_parallel]

    def prune_counts(self) -> Dict[str, int]:
        """Per-category prune counters with the dataflow, race and
        divergence passes merged flat — kept for the CLI text rendering
        and in-process consumers (category names never collide across
        passes).  The JSON payload nests the same counters per pass
        under ``prunes``."""
        counts: Dict[str, int] = {}
        if self.dataflow_facts is not None:
            counts.update(self.dataflow_facts.pruned)
        if self.races is not None:
            counts.update(self.races.pruned)
        if self.collectives is not None:
            counts.update(self.collectives.pruned)
        return counts

    def prune_sections(self) -> Dict[str, object]:
        """Version-3 ``prunes`` payload: uniform per-pass counter dicts
        plus the grand total."""
        sections: Dict[str, object] = {
            "dataflow": {} if self.dataflow_facts is None
            else dict(self.dataflow_facts.pruned),
            "races": {} if self.races is None else dict(self.races.pruned),
            "collectives": {} if self.collectives is None
            else dict(self.collectives.pruned),
        }
        sections["total"] = sum(
            sum(counts.values()) for counts in sections.values()
        )
        return sections

    def summary(self) -> str:
        lines = [
            f"static analysis of {self.program_name!r}:",
            f"  declared thread level: {self.thread_level.level_name}",
            f"  MPI call sites: {len(self.sites)} "
            f"({len(self.hybrid_sites)} in hybrid context)",
            f"  instrumented: {self.instrumentation.n_instrumented}, "
            f"filtered out: {self.instrumentation.n_filtered} "
            f"({self.instrumentation.reduction_ratio:.0%} reduction)",
            f"  checklist entries: {len(self.checklist)}",
        ]
        if self.candidates:
            counts = candidate_summary(self.candidates)
            per_class = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
            lines.append(
                f"  static violation candidates: {len(self.candidates)} "
                f"({per_class})"
            )
        facts = self.dataflow_facts
        if facts is not None and facts.total_pruned:
            lines.append(
                "  " + prune_summary("dataflow-pruned candidate pairs", facts.pruned)
            )
        races = self.races
        if races is not None:
            if races.candidates:
                racing = ", ".join(sorted(races.monitored_vars))
                lines.append(
                    f"  static race candidates: {len(races.candidates)} "
                    f"(vars: {racing})"
                )
            if races.unresolved:
                lines.append(
                    f"  unresolved interprocedural array accesses: "
                    f"{len(races.unresolved)} (delegated to dynamic phase)"
                )
            if races.total_pruned:
                lines.append(
                    "  " + prune_summary("race-pruned access pairs", races.pruned)
                )
        collectives = self.collectives
        if collectives is not None:
            if collectives.candidates:
                kinds: Dict[str, int] = {}
                for cand in collectives.candidates:
                    kinds[cand.kind] = kinds.get(cand.kind, 0) + 1
                per_kind = ", ".join(f"{k}: {v}" for k, v in sorted(kinds.items()))
                lines.append(
                    f"  collective-divergence candidates: "
                    f"{len(collectives.candidates)} ({per_kind})"
                )
            if collectives.total_pruned:
                lines.append(
                    "  " + prune_summary(
                        "divergence-pruned branches", collectives.pruned
                    )
                )
        for w in self.warnings:
            lines.append(f"  {w}")
        return "\n".join(lines)

    @property
    def instrumented_program(self) -> A.Program:
        return self.instrumentation.program

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable view of the report (for ``repro static --json``)."""
        facts = self.dataflow_facts
        return {
            "schema_version": STATIC_REPORT_SCHEMA_VERSION,
            "program": self.program_name,
            "thread_level": {
                "name": self.thread_level.level_name,
                "warnings": [str(w) for w in self.warnings],
            },
            "sites": [
                {
                    "op": s.op,
                    "func": s.func,
                    "loc": s.loc,
                    "hybrid": s.in_parallel,
                    "lexical_parallel": s.lexical_parallel,
                    "criticals": list(s.criticals),
                    "in_master": s.in_master,
                    "static_args": {str(i): v for i, v in sorted(s.static_args.items())},
                }
                for s in self.sites
            ],
            "instrumentation": {
                "instrumented": self.instrumentation.n_instrumented,
                "filtered": self.instrumentation.n_filtered,
                "reduction_ratio": self.instrumentation.reduction_ratio,
            },
            "checklist_entries": len(self.checklist),
            "candidates": [
                {
                    "class": c.vclass,
                    "a": {"op": c.site_a.op, "func": c.site_a.func, "loc": c.site_a.loc},
                    "b": {"op": c.site_b.op, "func": c.site_b.func, "loc": c.site_b.loc},
                    "reason": c.reason,
                }
                for c in self.candidates
            ],
            "candidate_counts": candidate_summary(self.candidates),
            "dataflow": None
            if facts is None
            else {
                "pruned": dict(facts.pruned),
                "total_pruned": facts.total_pruned,
                "iterations": facts.iterations,
                "unsafe_functions": sorted(facts.unsafe_funcs),
                "envelopes": {
                    str(nid): str(env) for nid, env in sorted(facts.envelopes.items())
                },
                "locks_held": {
                    str(nid): sorted(held)
                    for nid, held in sorted(facts.locks_held.items())
                },
            },
            "races": None if self.races is None else self.races.as_dict(),
            "collectives": None
            if self.collectives is None
            else self.collectives.as_dict(),
            "interproc": None
            if self.summaries is None
            else {
                "functions": len(self.summaries.functions),
                "opaque": sorted(
                    name
                    for name, s in self.summaries.functions.items()
                    if s.opaque
                ),
                "recursive": sorted(self.summaries.callgraph.recursive),
                "lock_transparent": sorted(self.summaries.lock_transparent),
                "escaped_accesses": len(self.summaries.escaped),
                "tainted_returns": sorted(self.summaries.ret_tainted),
            },
            #: per-pass prune counters (dataflow / races / collectives)
            #: plus the grand total, always present so JSON consumers
            #: need no per-section probing
            "prunes": self.prune_sections(),
        }


#: memoization of :func:`run_static_analysis`, keyed on the program's
#: root node id (``program.nid``) plus the analysis options.  Retry
#: loops, campaign matrices and benchmarks call ``Home.prepare``
#: repeatedly on the very same AST object; the analysis is pure and the
#: AST is treated as immutable everywhere (the interpreter never
#: mutates it), so the report can be shared.  ``nid`` comes from the
#: process-global node counter and is never reused, unlike ``id()``,
#: whose values recycle as soon as a program is garbage-collected —
#: building and dropping programs in a loop must never alias cache
#: entries.  (A weakref key is impossible: ``Node.__slots__`` carries
#: no ``__weakref__``.)  Entries still hold a strong reference to the
#: program so the report's AST back-references stay alive, and the
#: identity check below is belt-and-braces.
_STATIC_CACHE: "OrderedDict[tuple, Tuple[A.Program, StaticReport]]" = OrderedDict()
_STATIC_CACHE_CAPACITY = 8


def clear_static_analysis_cache() -> None:
    """Drop all memoized static reports (tests / long-lived sessions)."""
    _STATIC_CACHE.clear()


def run_static_analysis(
    program: A.Program,
    policy: InstrumentPolicy = "hybrid-only",
    interprocedural: bool = True,
    with_cfgs: bool = True,
    dataflow: bool = True,
    races: bool = True,
    collectives: bool = True,
    summaries: bool = True,
    cache: bool = True,
) -> StaticReport:
    """The full compile-time phase of HOME (paper Fig. 3, left column).

    With ``races`` enabled the static data-race pass runs before
    instrumentation, so its candidate variables become the monitored-
    variable set of the instrumented program (race-directed narrowing).
    ``collectives`` adds the PARCOACH-family collective-matching pass;
    its candidate sites narrow the dynamic collective confirm pass the
    same way.  ``summaries`` computes the context-sensitive
    interprocedural function-summary layer once and shares it with
    every consumer pass (races, MHP facts, lock state, collectives).

    Results are memoized on the program's root node id (pass
    ``cache=False`` to force a fresh analysis, e.g. when benchmarking
    the phase itself).
    """
    key = (
        program.nid, policy, interprocedural, with_cfgs, dataflow, races,
        collectives, summaries,
    )
    if cache:
        hit = _STATIC_CACHE.get(key)
        if hit is not None and hit[0] is program:
            _STATIC_CACHE.move_to_end(key)
            return hit[1]
    report = _run_static_analysis(
        program, policy, interprocedural, with_cfgs, dataflow, races,
        collectives, summaries,
    )
    if cache:
        _STATIC_CACHE[key] = (program, report)
        while len(_STATIC_CACHE) > _STATIC_CACHE_CAPACITY:
            _STATIC_CACHE.popitem(last=False)
    return report


def _run_static_analysis(
    program: A.Program,
    policy: InstrumentPolicy,
    interprocedural: bool,
    with_cfgs: bool,
    dataflow: bool,
    races: bool,
    collectives: bool,
    summaries: bool = True,
) -> StaticReport:
    callgraph = None
    if summaries and (dataflow or races or collectives):
        from .callgraph import build_callgraph

        callgraph = build_callgraph(program)
    sites = collect_sites(
        program, interprocedural=interprocedural, callgraph=callgraph
    )
    warnings = check_thread_level(program, sites)
    need_cfgs = with_cfgs or dataflow or races or collectives
    cfgs = build_program_cfgs(program) if need_cfgs else {}
    table = (
        compute_summaries(program, callgraph=callgraph, cfgs=cfgs)
        if callgraph is not None
        else None
    )
    facts = (
        compute_dataflow(program, cfgs, sites, summaries=table)
        if dataflow
        else None
    )
    race_report = (
        find_races(
            program,
            cfgs,
            unsafe_funcs=facts.unsafe_funcs if facts is not None else None,
            summaries=table,
            interprocedural=table is not None,
        )
        if races
        else None
    )
    collective_report = (
        find_collective_divergence(
            program,
            cfgs,
            sites=sites,
            unsafe_funcs=facts.unsafe_funcs if facts is not None else None,
            summaries=table,
        )
        if collectives
        else None
    )
    instrumentation = instrument_program(
        program,
        policy=policy,
        interprocedural=interprocedural,
        monitor_vars=race_report.monitored_vars if race_report is not None else (),
    )
    hybrid = [s for s in sites if s.in_parallel and s.instrumentable]
    checklist = build_checklist(hybrid)
    candidates = find_candidates(sites, facts)
    return StaticReport(
        program_name=program.name,
        thread_level=infer_thread_level(program),
        sites=sites,
        warnings=warnings,
        checklist=checklist,
        instrumentation=instrumentation,
        cfgs=cfgs if with_cfgs else {},
        candidates=candidates,
        dataflow_facts=facts,
        races=race_report,
        collectives=collective_report,
        summaries=table,
    )
