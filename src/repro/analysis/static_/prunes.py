"""Shared per-kind prune-counter plumbing for the static passes.

Both candidate passes that enumerate-then-prune (the data-race pass in
:mod:`.races` and the collective-divergence pass in :mod:`.collectives`)
keep a ``Dict[str, int]`` of prune tallies keyed by a fixed tuple of
kind names, sum them for report headlines, and render them as one
``label: total pruned (kind=a n, kind=b m)`` summary line.  This module
is the single implementation of that plumbing so the two reports (and
any future pass) cannot drift apart in dict shape or render format.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence


def make_prune_dict(kinds: Sequence[str]) -> Dict[str, int]:
    """A fresh zeroed tally, one slot per declared prune kind."""
    return {kind: 0 for kind in kinds}


def count_prune(pruned: Dict[str, int], kind: str) -> None:
    """Bump *kind* (tolerating kinds declared after the dict was made)."""
    pruned[kind] = pruned.get(kind, 0) + 1


def total_pruned(pruned: Mapping[str, int]) -> int:
    return sum(pruned.values())


def prune_summary(label: str, pruned: Mapping[str, int]) -> str:
    """One human-readable summary line, e.g.
    ``races pruned: 7 (race-mhp 3, race-lock 4)``.

    Zero-count kinds are elided; an all-zero tally still renders (with
    no parenthetical) so reports always show the pass ran.
    """
    total = total_pruned(pruned)
    parts = [f"{kind} {count}" for kind, count in pruned.items() if count]
    line = f"{label}: {total}"
    if parts:
        line += " (" + ", ".join(parts) + ")"
    return line
