"""Worklist dataflow framework for the static phase.

A generic forward engine (:mod:`.engine`) over the mini-language CFG
plus three client analyses:

* :mod:`.intervals` — constant / symbolic-interval propagation of
  envelope arguments;
* :mod:`.lockstate` — must-held OpenMP lock tracking;
* :mod:`.mhp` — May-Happen-in-Parallel over OpenMP region structure.

:func:`compute_dataflow` bundles everything into
:class:`DataflowFacts`, which the candidate pass uses to prune pairs it
can prove safe.
"""

from .divergence import (  # noqa: F401
    ThreadDependenceAnalysis,
    branch_taints,
    expr_thread_dependent,
    solve_thread_dependence,
)
from .engine import DataflowResult, ForwardAnalysis, solve  # noqa: F401
from .facts import (  # noqa: F401
    PRUNE_ENVELOPE,
    PRUNE_LOCKSTATE,
    PRUNE_MHP,
    DataflowFacts,
    SymEnvelope,
    compute_dataflow,
)
from .intervals import EnvelopeAnalysis, eval_expr, program_globals_env  # noqa: F401
from .lockstate import LockStateAnalysis  # noqa: F401
from .mhp import MHPInfo, compute_mhp, may_happen_in_parallel  # noqa: F401
from .values import (  # noqa: F401
    SymInterval,
    Symbol,
    TOP,
    const,
    interval,
    provably_disjoint,
    symbol,
)

__all__ = [
    "ForwardAnalysis",
    "DataflowResult",
    "solve",
    "ThreadDependenceAnalysis",
    "branch_taints",
    "expr_thread_dependent",
    "solve_thread_dependence",
    "DataflowFacts",
    "SymEnvelope",
    "compute_dataflow",
    "PRUNE_ENVELOPE",
    "PRUNE_LOCKSTATE",
    "PRUNE_MHP",
    "EnvelopeAnalysis",
    "eval_expr",
    "program_globals_env",
    "LockStateAnalysis",
    "MHPInfo",
    "compute_mhp",
    "may_happen_in_parallel",
    "SymInterval",
    "Symbol",
    "TOP",
    "const",
    "interval",
    "symbol",
    "provably_disjoint",
]
