"""Generic forward worklist dataflow engine over the mini-language CFG.

A client analysis supplies the classic ingredients — a boundary fact
for the function entry, a join, a transfer function per CFG node, and
(optionally) a widening operator — and :func:`solve` iterates the CFG
to a fixpoint.  Facts are treated as immutable values; the engine only
ever compares and stores them.

The solver is *optimistic*: a node's input is the join over the outputs
of the predecessors **computed so far**, so unreachable code simply
never receives a fact (clients read ``None`` for it and must treat that
as "no information").  Loops are handled by re-enqueuing successors of
changed nodes; clients with infinite-height domains (intervals) get
widening applied at join points after ``widen_after`` visits.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Generic, Optional, TypeVar

from ...cfg import CFG, CFGNode

F = TypeVar("F")


class ForwardAnalysis(Generic[F]):
    """Base class for client analyses.  Subclass and override."""

    #: visits to one node before widening kicks in at its join
    widen_after: int = 3

    def boundary(self, cfg: CFG) -> F:
        """Fact holding at function entry."""
        raise NotImplementedError

    def join(self, a: F, b: F) -> F:
        """Least upper bound of two facts (combine at merge points)."""
        raise NotImplementedError

    def transfer(self, node: CFGNode, fact: F) -> F:
        """Fact after executing *node* given *fact* before it."""
        raise NotImplementedError

    def widen(self, old: F, new: F) -> F:
        """Accelerate convergence; default is plain join (for finite
        domains that terminate on their own)."""
        return self.join(old, new)

    def equal(self, a: F, b: F) -> bool:
        return a == b


class DataflowResult(Generic[F]):
    """Per-node IN/OUT facts of one solved analysis."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.in_facts: Dict[int, F] = {}
        self.out_facts: Dict[int, F] = {}
        #: worklist iterations, for the benchmarks / reports
        self.iterations: int = 0

    def fact_before(self, node: CFGNode) -> Optional[F]:
        return self.in_facts.get(node.cfg_id)

    def fact_after(self, node: CFGNode) -> Optional[F]:
        return self.out_facts.get(node.cfg_id)


def solve(cfg: CFG, analysis: ForwardAnalysis[F], max_iterations: int = 100_000) -> DataflowResult[F]:
    """Run *analysis* over *cfg* to a fixpoint (forward direction)."""
    result: DataflowResult[F] = DataflowResult(cfg)
    in_facts = result.in_facts
    out_facts = result.out_facts
    visits: Dict[int, int] = {}

    entry = cfg.entry.cfg_id
    in_facts[entry] = analysis.boundary(cfg)
    worklist: deque = deque([entry])
    queued = {entry}

    while worklist:
        result.iterations += 1
        if result.iterations > max_iterations:  # pragma: no cover - safety net
            break
        nid = worklist.popleft()
        queued.discard(nid)
        node = cfg.nodes[nid]
        out = analysis.transfer(node, in_facts[nid])
        if nid in out_facts and analysis.equal(out_facts[nid], out):
            continue
        out_facts[nid] = out
        for succ in cfg.graph.successors(nid):
            incoming = [
                out_facts[p] for p in cfg.graph.predecessors(succ) if p in out_facts
            ]
            new_in = incoming[0]
            for fact in incoming[1:]:
                new_in = analysis.join(new_in, fact)
            old_in = in_facts.get(succ)
            if old_in is not None:
                visits[succ] = visits.get(succ, 0) + 1
                if analysis.equal(old_in, new_in):
                    continue
                if visits[succ] > analysis.widen_after:
                    new_in = analysis.widen(old_in, new_in)
                    if analysis.equal(old_in, new_in):
                        continue
            in_facts[succ] = new_in
            if succ not in queued:
                worklist.append(succ)
                queued.add(succ)
    return result
