"""Thread-dependence (divergence) taint analysis.

PARCOACH-style collective matching needs to know which branch
conditions can evaluate *differently on different threads of one team*:
only a thread-dependent branch can steer members of a team toward
differently-colored collective sequences.  This module provides the
forward dataflow half of that question — a may-taint analysis over the
mini-language CFG whose fact is the set of variable names holding a
thread-dependent value at a program point.

Taint sources:

* ``omp_get_thread_num()`` — the canonical source;
* ``omp for`` loop indices — each thread iterates a different chunk,
  so inside the worksharing loop the index is thread-dependent.  These
  are supplied by the caller as *always-tainted* names (the loop-init
  ``var z = 0`` would otherwise kill the taint at the loop head).

Propagation is the classic gen/kill over assignments: an assignment
whose right-hand side mentions a tainted name (or a thread-dependent
call) gens the target, an assignment from a clean expression kills it.
Writes through a tainted subscript taint the whole array (per-element
precision is not worth the machinery here — over-tainting only costs
pruning precision, never soundness of the divergence pass).  The join
is set union (may-analysis).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

from ....minilang import ast_nodes as A
from ... import cfg as C
from .engine import DataflowResult, ForwardAnalysis, solve

TaintSet = FrozenSet[str]

#: builtin calls whose result differs between threads of one team
THREAD_DEPENDENT_CALLS = frozenset({"omp_get_thread_num"})

#: builtin calls that are team-uniform even though they query the runtime
_UNIFORM_CALLS = frozenset({
    "omp_get_num_threads", "omp_get_max_threads", "mpi_comm_rank",
    "mpi_comm_size",
})


def expr_thread_dependent(
    expr: Optional[A.Expr],
    tainted: TaintSet,
    tainted_calls: FrozenSet[str] = frozenset(),
) -> bool:
    """May *expr* evaluate differently across threads of one team?

    *tainted_calls* names user functions whose return value is known
    (from interprocedural summaries) to be thread-dependent.
    """
    if expr is None:
        return False
    for sub in expr.walk():
        if isinstance(sub, A.CallExpr):
            if sub.name in THREAD_DEPENDENT_CALLS or sub.name in tainted_calls:
                return True
        elif isinstance(sub, A.Name):
            if sub.ident in tainted:
                return True
    return False


class ThreadDependenceAnalysis(ForwardAnalysis[TaintSet]):
    """Forward may-taint of thread-dependent variable names."""

    def __init__(
        self,
        always_tainted: Iterable[str] = (),
        tainted_calls: Iterable[str] = (),
    ) -> None:
        #: names that stay tainted through every kill (omp-for indices)
        self.always_tainted = frozenset(always_tainted)
        #: user functions returning thread-dependent values (summaries)
        self.tainted_calls = frozenset(tainted_calls)

    def boundary(self, cfg: C.CFG) -> TaintSet:
        return self.always_tainted

    def join(self, a: TaintSet, b: TaintSet) -> TaintSet:
        return a | b

    def transfer(self, node: C.CFGNode, tainted: TaintSet) -> TaintSet:
        if node.kind != C.STMT or node.ast is None:
            return tainted
        stmt = node.ast.stmt if isinstance(node.ast, A.OmpAtomic) else node.ast
        if isinstance(stmt, A.VarDecl):
            return self._assign(stmt.name, stmt.init, tainted)
        if isinstance(stmt, A.Assign):
            target = stmt.target
            if isinstance(target, A.Name):
                return self._assign(target.ident, stmt.value, tainted)
            if isinstance(target, A.Index) and isinstance(target.base, A.Name):
                # a[tid] = e or a[i] = tid-dep: the array as a whole may
                # now hold thread-dependent values
                if expr_thread_dependent(
                    target.index, tainted, self.tainted_calls
                ) or expr_thread_dependent(
                    stmt.value, tainted, self.tainted_calls
                ):
                    return tainted | {target.base.ident}
        return tainted

    def _assign(
        self, name: str, value: Optional[A.Expr], tainted: TaintSet
    ) -> TaintSet:
        if expr_thread_dependent(value, tainted, self.tainted_calls):
            return tainted | {name}
        if name in self.always_tainted:
            return tainted
        return tainted - {name}


def omp_for_indices(func: A.FuncDef) -> FrozenSet[str]:
    """Loop-index names of every ``omp for`` in *func* (taint seeds)."""
    names = set()
    for node in func.walk():
        if isinstance(node, A.OmpFor):
            init = node.loop.init
            if isinstance(init, A.VarDecl):
                names.add(init.name)
            elif isinstance(init, A.Assign) and isinstance(init.target, A.Name):
                names.add(init.target.ident)
    return frozenset(names)


def solve_thread_dependence(
    func: A.FuncDef, cfg: C.CFG
) -> DataflowResult[TaintSet]:
    """Thread-dependence facts for one function's CFG."""
    return solve(cfg, ThreadDependenceAnalysis(omp_for_indices(func)))


def solve_thread_dependence_with(
    cfg: C.CFG,
    always_tainted: Iterable[str],
    tainted_calls: Iterable[str] = (),
) -> DataflowResult[TaintSet]:
    """Thread-dependence facts with explicit seeds — the entry point the
    interprocedural summary fixpoint uses (tainted formal parameters as
    extra always-tainted names, taint-returning callees as sources)."""
    return solve(cfg, ThreadDependenceAnalysis(always_tainted, tainted_calls))


def branch_taints(
    func: A.FuncDef,
    cfg: C.CFG,
    extra_tainted: Iterable[str] = (),
    tainted_calls: Iterable[str] = (),
) -> Dict[int, TaintSet]:
    """Taint fact *before* each BRANCH / LOOP_HEAD node, keyed by the
    AST nid of the ``If`` / loop statement it tests.

    *extra_tainted* / *tainted_calls* inject interprocedural summary
    knowledge (tainted formals, taint-returning callees)."""
    result = solve_thread_dependence_with(
        cfg,
        omp_for_indices(func) | frozenset(extra_tainted),
        tainted_calls,
    )
    out: Dict[int, TaintSet] = {}
    for node in cfg.nodes.values():
        if node.kind not in (C.BRANCH, C.LOOP_HEAD) or node.ast is None:
            continue
        fact = result.fact_before(node)
        out[node.ast.nid] = fact if fact is not None else frozenset()
    return out
