"""Aggregated dataflow facts for the candidate-pruning pass.

:func:`compute_dataflow` runs the three client analyses over every
function CFG and condenses the results into per-MPI-site facts keyed by
the site's CallExpr nid:

* a :class:`SymEnvelope` — abstract (source, tag, comm) values;
* the must-held lock set at the call;
* the :class:`~.mhp.MHPInfo` OpenMP execution context.

:class:`DataflowFacts` then answers the three pruning questions the
candidate pass asks about a pair of sites, counting each kind of prune
for the report/CLI/benchmark surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Set

from ....minilang import ast_nodes as A
from ....mpi.constants import MPI_ANY_SOURCE, MPI_ANY_TAG
from ... import cfg as C
from ..mpi_sites import MPISite, functions_called_from_parallel
from .engine import solve
from .intervals import (
    EnvelopeAnalysis,
    _assigned_names,
    eval_expr,
    program_globals_env,
)
from .lockstate import LockStateAnalysis
from .mhp import MHPInfo, compute_mhp, may_happen_in_parallel
from .values import SymInterval, provably_disjoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..callgraph import ParallelContext
    from ..summaries import SummaryTable

#: prune categories surfaced in reports / extras
PRUNE_ENVELOPE = "envelope"
PRUNE_LOCKSTATE = "lockstate"
PRUNE_MHP = "mhp"


@dataclass(frozen=True)
class SymEnvelope:
    """Abstract (source, tag, comm); ``None`` components are unknown."""

    src: Optional[SymInterval] = None
    tag: Optional[SymInterval] = None
    comm: Optional[SymInterval] = None

    def may_overlap(self, other: "SymEnvelope") -> bool:
        if provably_disjoint(self.comm, other.comm):
            return False
        if provably_disjoint(self.src, other.src, MPI_ANY_SOURCE):
            return False
        if provably_disjoint(self.tag, other.tag, MPI_ANY_TAG):
            return False
        return True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        def fmt(v: Optional[SymInterval]) -> str:
            return "?" if v is None else str(v)

        return f"(src={fmt(self.src)}, tag={fmt(self.tag)}, comm={fmt(self.comm)})"


@dataclass
class DataflowFacts:
    """Everything the worklist analyses proved, keyed by site nid."""

    envelopes: Dict[int, SymEnvelope] = field(default_factory=dict)
    locks_held: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    mhp: Dict[int, MHPInfo] = field(default_factory=dict)
    #: functions whose parallel regions may overlap other code
    unsafe_funcs: Set[str] = field(default_factory=set)
    #: call-graph-resolved parallel contexts for regionless functions
    #: (``None`` without the interprocedural summary layer)
    contexts: Optional[Dict[str, "ParallelContext"]] = None
    #: total worklist iterations across all solved analyses
    iterations: int = 0
    #: candidate pairs removed per prune category (filled by the
    #: candidate pass)
    pruned: Dict[str, int] = field(
        default_factory=lambda: {PRUNE_ENVELOPE: 0, PRUNE_LOCKSTATE: 0, PRUNE_MHP: 0}
    )

    # -- pruning queries ----------------------------------------------------

    def envelope(self, site: MPISite) -> Optional[SymEnvelope]:
        return self.envelopes.get(site.nid)

    def envelopes_disjoint(self, a: MPISite, b: MPISite) -> bool:
        env_a, env_b = self.envelopes.get(a.nid), self.envelopes.get(b.nid)
        if env_a is None or env_b is None:
            return False
        return not env_a.may_overlap(env_b)

    def serialized_by_locks(self, a: MPISite, b: MPISite) -> bool:
        held_a = self.locks_held.get(a.nid)
        held_b = self.locks_held.get(b.nid)
        if not held_a or not held_b:
            return False
        return bool(held_a & held_b)

    def may_happen_in_parallel(self, a: MPISite, b: MPISite) -> bool:
        return may_happen_in_parallel(
            self.mhp.get(a.nid),
            self.mhp.get(b.nid),
            self.unsafe_funcs,
            contexts=self.contexts,
        )

    def count_prune(self, kind: str) -> None:
        self.pruned[kind] = self.pruned.get(kind, 0) + 1

    def reset_counts(self) -> None:
        self.pruned = {PRUNE_ENVELOPE: 0, PRUNE_LOCKSTATE: 0, PRUNE_MHP: 0}

    @property
    def total_pruned(self) -> int:
        return sum(self.pruned.values())


def _call_node_map(cfg: C.CFG) -> Dict[int, C.CFGNode]:
    """Tightest CFG node containing each CallExpr (by nid).

    Compound nodes (branch heads, region begin markers) precede their
    body statements in construction order, so iterating in linearize
    order and letting later nodes win maps every call to the node whose
    transfer actually brackets it.  End markers re-reference the whole
    construct and are skipped.
    """
    keep = (
        C.STMT, C.BRANCH, C.LOOP_HEAD,
        C.OMP_PARALLEL_BEGIN, C.OMP_WS_BEGIN, C.OMP_CRITICAL_BEGIN,
    )
    out: Dict[int, C.CFGNode] = {}
    for node in cfg.linearize():
        if node.kind not in keep or node.ast is None:
            continue
        for sub in node.ast.walk():
            if isinstance(sub, A.CallExpr):
                out[sub.nid] = node
    return out


def compute_dataflow(
    program: A.Program,
    cfgs: Dict[str, C.CFG],
    sites: Sequence[MPISite],
    summaries: Optional["SummaryTable"] = None,
) -> DataflowFacts:
    """Solve all three analyses and project the results onto *sites*.

    *summaries* (a :class:`..summaries.SummaryTable`) sharpens two of
    them: its call graph resolves parallel contexts for regionless MPI
    sites (replacing "context unknown" MHP answers), and its
    lock-transparent function set lets held user locks survive calls.
    Each MHP-consuming pass resolves contexts against its *own* phase
    map — phase numbering differs between MHP modes, so the race pass
    cannot share this resolution.
    """
    from ..candidates import _ENVELOPE_POSITIONS

    facts = DataflowFacts()
    facts.mhp = compute_mhp(program)
    facts.unsafe_funcs = functions_called_from_parallel(program)
    lock_transparent: FrozenSet[str] = frozenset()
    if summaries is not None:
        from ..callgraph import resolve_parallel_contexts

        facts.contexts = resolve_parallel_contexts(
            summaries.callgraph, facts.mhp
        )
        lock_transparent = summaries.lock_transparent

    globals_env = program_globals_env(program)
    user_funcs = frozenset(fn.name for fn in program.functions)
    calls_by_nid: Dict[int, A.CallExpr] = {
        node.nid: node for node in program.walk() if isinstance(node, A.CallExpr)
    }

    # Global scalars the program ever assigns: killed at user calls
    # (sequential callee effects); the subset assigned by concurrently
    # runnable functions is never trackable at all.
    global_scalars = {d.name for d in program.globals if not d.is_array}
    mutated_globals = frozenset(
        name
        for fn in program.functions
        for name in _assigned_names(fn.body) & global_scalars
    )
    concurrent_globals = frozenset(
        name
        for fn in program.functions
        if fn.name in facts.unsafe_funcs
        for name in _assigned_names(fn.body) & global_scalars
    )

    sites_by_func: Dict[str, List[MPISite]] = {}
    for site in sites:
        sites_by_func.setdefault(site.func, []).append(site)

    for fname, func_sites in sites_by_func.items():
        cfg = cfgs.get(fname)
        if cfg is None:
            continue
        # A function that can itself run on several threads at once races
        # with every global mutation, including its own.
        volatile = mutated_globals if fname in facts.unsafe_funcs else concurrent_globals
        env_result = solve(
            cfg,
            EnvelopeAnalysis(
                cfg,
                globals_env,
                volatile=volatile,
                call_kill=mutated_globals,
                user_functions=user_funcs,
            ),
        )
        lock_result = solve(
            cfg, LockStateAnalysis(user_funcs, lock_transparent=lock_transparent)
        )
        facts.iterations += env_result.iterations + lock_result.iterations
        node_of_call = _call_node_map(cfg)

        for site in func_sites:
            node = node_of_call.get(site.nid)
            call = calls_by_nid.get(site.nid)
            if node is None or call is None:
                continue
            env = env_result.fact_before(node)
            if env is not None:
                positions = _ENVELOPE_POSITIONS.get(site.op)
                if positions is not None:
                    src_i, tag_i, comm_i = positions

                    def arg_value(i: int) -> Optional[SymInterval]:
                        if i >= len(call.args):
                            return None
                        value = eval_expr(call.args[i], env)
                        return None if value.is_top else value

                    facts.envelopes[site.nid] = SymEnvelope(
                        src=arg_value(src_i),
                        tag=arg_value(tag_i),
                        comm=arg_value(comm_i),
                    )
            held = lock_result.fact_before(node)
            if held:
                facts.locks_held[site.nid] = frozenset(held)
    return facts
