"""Abstract value domain for the static dataflow analyses.

The envelope-propagation client reasons about integers with a *symbolic
interval* domain: an abstract value is ``base + [lo, hi]`` where
``base`` is an optional :class:`Symbol` standing for a runtime quantity
that is **constant within one process** (e.g. the result of one
``mpi_comm_rank`` call) and ``[lo, hi]`` is a possibly unbounded
integer interval of offsets.

Why symbols and not plain intervals: the thread-safety rules compare
envelope arguments of two call sites *executed by the same process* —
``tag = rank + 4`` versus ``tag = rank + 9`` are provably different for
every rank even though neither has finite bounds.  Sharing the symbolic
base makes that difference expressible; plain intervals would collapse
both to ``[4, +inf)`` / ``[9, +inf)`` which overlap.

Soundness rule of thumb: every operation may *lose* precision (return
:data:`TOP`) but must never claim a value range smaller than the
concrete one — disjointness proofs feed candidate *pruning*, so an
over-narrow range would silently drop a real violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

NEG_INF = float("-inf")
POS_INF = float("inf")


@dataclass(frozen=True)
class Symbol:
    """A process-constant runtime quantity (one creation site).

    ``lo``/``hi`` bound the symbol's own concrete range — e.g. a rank
    is known to be ``>= 0`` even though its value is unknown.  Symbols
    compare by identity of their creation site (``nid``), so two
    distinct ``mpi_comm_rank`` calls yield distinct (conservatively
    unrelated) symbols.
    """

    name: str
    nid: int
    lo: float = NEG_INF
    hi: float = POS_INF

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}#{self.nid}"


def _add(x: float, y: float) -> float:
    """Inf-safe addition (opposite infinities never meet here by
    construction, but guard anyway)."""
    if x in (NEG_INF, POS_INF):
        return x
    if y in (NEG_INF, POS_INF):
        return y
    return x + y


@dataclass(frozen=True)
class SymInterval:
    """``base + [lo, hi]``; ``base is None`` means a plain interval."""

    base: Optional[Symbol] = None
    lo: float = NEG_INF
    hi: float = POS_INF

    @property
    def is_top(self) -> bool:
        return self.base is None and self.lo == NEG_INF and self.hi == POS_INF

    @property
    def is_constant(self) -> bool:
        return self.base is None and self.lo == self.hi and self.lo not in (NEG_INF, POS_INF)

    @property
    def constant(self) -> Optional[int]:
        return int(self.lo) if self.is_constant else None

    def concrete(self) -> Tuple[float, float]:
        """The value's concrete range with the base's bounds folded in."""
        if self.base is None:
            return (self.lo, self.hi)
        return (_add(self.base.lo, self.lo), _add(self.base.hi, self.hi))

    def may_equal(self, value: int) -> bool:
        lo, hi = self.concrete()
        return lo <= value <= hi

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        def b(x: float) -> str:
            if x == NEG_INF:
                return "-inf"
            if x == POS_INF:
                return "+inf"
            return str(int(x))

        rng = b(self.lo) if self.lo == self.hi else f"[{b(self.lo)}, {b(self.hi)}]"
        if self.base is None:
            return rng
        if self.lo == self.hi == 0:
            return str(self.base)
        return f"{self.base}+{rng}"


TOP = SymInterval()


def const(value: int) -> SymInterval:
    return SymInterval(None, float(value), float(value))


def interval(lo: float, hi: float) -> SymInterval:
    return SymInterval(None, lo, hi)


def symbol(sym: Symbol) -> SymInterval:
    return SymInterval(sym, 0.0, 0.0)


# ---------------------------------------------------------------------------
# Arithmetic transfer functions
# ---------------------------------------------------------------------------


def add(a: SymInterval, b: SymInterval) -> SymInterval:
    if a.base is not None and b.base is not None:
        return TOP  # 2*sym is not representable
    base = a.base or b.base
    return SymInterval(base, _add(a.lo, b.lo), _add(a.hi, b.hi))


def neg(a: SymInterval) -> SymInterval:
    if a.base is not None:
        return TOP
    return SymInterval(None, -a.hi, -a.lo)


def sub(a: SymInterval, b: SymInterval) -> SymInterval:
    if a.base is not None and a.base == b.base:
        # (s + [a]) - (s + [b]) = [a] - [b]: the symbol cancels.
        return SymInterval(None, _add(a.lo, -b.hi), _add(a.hi, -b.lo))
    return add(a, neg(b))


def _mul_bound(x: float, y: float) -> float:
    if x == 0 or y == 0:
        return 0.0
    return x * y


def mul(a: SymInterval, b: SymInterval) -> SymInterval:
    # identity / annihilator shortcuts keep the base when possible
    if b.is_constant and b.constant == 1:
        return a
    if a.is_constant and a.constant == 1:
        return b
    if (a.is_constant and a.constant == 0) or (b.is_constant and b.constant == 0):
        return const(0)
    if a.base is not None or b.base is not None:
        return TOP
    corners = [
        _mul_bound(a.lo, b.lo), _mul_bound(a.lo, b.hi),
        _mul_bound(a.hi, b.lo), _mul_bound(a.hi, b.hi),
    ]
    return SymInterval(None, min(corners), max(corners))


def mod(a: SymInterval, b: SymInterval) -> SymInterval:
    if a.is_constant and b.is_constant and b.constant:
        return const(a.constant % b.constant)
    if b.is_constant and b.constant and b.constant > 0:
        m = b.constant
        lo, hi = a.concrete()
        if lo >= 0:
            return interval(0.0, float(m - 1))
        return interval(float(-(m - 1)), float(m - 1))
    return TOP


def div(a: SymInterval, b: SymInterval) -> SymInterval:
    if a.is_constant and b.is_constant and b.constant:
        return const(int(a.constant / b.constant))
    return TOP


def compare(op: str, a: SymInterval, b: SymInterval) -> SymInterval:
    """Comparison / logical operators produce a boolean in [0, 1]."""
    if a.is_constant and b.is_constant:
        x, y = a.constant, b.constant
        table = {
            "==": x == y, "!=": x != y, "<": x < y, "<=": x <= y,
            ">": x > y, ">=": x >= y, "&&": bool(x and y), "||": bool(x or y),
        }
        if op in table:
            return const(int(table[op]))
    return interval(0.0, 1.0)


def binary(op: str, a: SymInterval, b: SymInterval) -> SymInterval:
    if op == "+":
        return add(a, b)
    if op == "-":
        return sub(a, b)
    if op == "*":
        return mul(a, b)
    if op == "%":
        return mod(a, b)
    if op == "/":
        return div(a, b)
    return compare(op, a, b)


# ---------------------------------------------------------------------------
# Lattice operations
# ---------------------------------------------------------------------------


def join(a: SymInterval, b: SymInterval) -> SymInterval:
    """Least upper bound (may lose the base when they disagree)."""
    if a.base == b.base:
        return SymInterval(a.base, min(a.lo, b.lo), max(a.hi, b.hi))
    alo, ahi = a.concrete()
    blo, bhi = b.concrete()
    return SymInterval(None, min(alo, blo), max(ahi, bhi))


def widen(old: SymInterval, new: SymInterval) -> SymInterval:
    """Standard interval widening: unstable bounds jump to infinity."""
    if old.base != new.base:
        return TOP
    lo = old.lo if new.lo >= old.lo else NEG_INF
    hi = old.hi if new.hi <= old.hi else POS_INF
    return SymInterval(old.base, lo, hi)


def provably_disjoint(
    a: Optional[SymInterval],
    b: Optional[SymInterval],
    wildcard: Optional[int] = None,
) -> bool:
    """Can the two abstract values *never* denote a matching pair?

    ``wildcard`` is the MPI wildcard for this argument position
    (``MPI_ANY_SOURCE`` / ``MPI_ANY_TAG``): a value that may be the
    wildcard matches anything, so disjointness is unprovable.
    ``None`` abstract values mean "no information".
    """
    if a is None or b is None:
        return False
    if wildcard is not None and (a.may_equal(wildcard) or b.may_equal(wildcard)):
        return False
    if a.base == b.base:
        # same symbolic base: offsets decide (symbol cancels)
        return a.hi < b.lo or b.hi < a.lo
    alo, ahi = a.concrete()
    blo, bhi = b.concrete()
    return ahi < blo or bhi < alo
