"""Lock-state (must-hold) analysis.

Tracks, along every path, which OpenMP locks are *definitely held* at
each CFG node: named/anonymous critical sections (via the CFG's
``ompCriticalBegin``/``End`` markers) and explicit user locks
(``omp_set_lock("m")`` / ``omp_unset_lock("m")``).  Two MPI sites whose
must-held sets intersect are serialized by that common lock, exactly
like the lexical-critical exclusion the candidate pass already applies
— but path-sensitively, so a lock acquired three statements earlier
still counts.

Must-analysis conventions: the fact is a set of held-lock tokens, the
join at merge points is set *intersection* (held on every path), and
anything the analysis cannot see releases conservatively:

* ``omp_unset_lock`` with a non-literal name drops every user lock;
* a call to a user-defined function drops every user lock (the callee
  could release them) — critical tokens survive, criticals are lexical.

The interprocedural summary layer sharpens the last rule: functions the
call-graph pass proves *lock-transparent* (no ``omp_set_lock`` /
``omp_unset_lock`` anywhere in their transitive callee closure) cannot
release anything, so held user locks survive calls to them.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Optional, Set

from ....minilang import ast_nodes as A
from ... import cfg as C
from .engine import ForwardAnalysis

LockSet = FrozenSet[str]

CRITICAL_PREFIX = "critical:"
LOCK_PREFIX = "lock:"


def critical_token(name: str) -> str:
    return CRITICAL_PREFIX + (name or "<anonymous>")


def lock_token(name: str) -> str:
    return LOCK_PREFIX + name


def leaf_exprs(node: C.CFGNode) -> Iterator[A.Expr]:
    """Expressions evaluated *at* this node (never a nested statement's)."""
    ast = node.ast
    if ast is None:
        return
    if node.kind == C.STMT:
        stmt = ast.stmt if isinstance(ast, A.OmpAtomic) else ast
        if isinstance(stmt, A.ExprStmt):
            yield stmt.expr
        elif isinstance(stmt, A.Assign):
            yield stmt.value
        elif isinstance(stmt, A.VarDecl):
            if stmt.init is not None:
                yield stmt.init
        elif isinstance(stmt, (A.Print,)):
            yield from stmt.args
        elif isinstance(stmt, A.AssertStmt):
            yield stmt.cond
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                yield stmt.value
    elif node.kind == C.BRANCH and isinstance(ast, A.If):
        yield ast.cond
    elif node.kind == C.LOOP_HEAD:
        cond = getattr(ast, "cond", None)
        if cond is not None:
            yield cond


def calls_in(node: C.CFGNode) -> Iterator[A.CallExpr]:
    for expr in leaf_exprs(node):
        for sub in expr.walk():
            if isinstance(sub, A.CallExpr):
                yield sub


class LockStateAnalysis(ForwardAnalysis[Optional[LockSet]]):
    """Forward must-hold analysis; the fact is a frozenset of tokens."""

    def __init__(
        self,
        user_functions: Set[str] = frozenset(),
        lock_transparent: FrozenSet[str] = frozenset(),
    ) -> None:
        self.user_functions = set(user_functions)
        self.lock_transparent = frozenset(lock_transparent)

    def boundary(self, cfg: C.CFG) -> LockSet:
        return frozenset()

    def join(self, a: LockSet, b: LockSet) -> LockSet:
        return a & b

    def transfer(self, node: C.CFGNode, held: LockSet) -> LockSet:
        if node.kind == C.OMP_CRITICAL_BEGIN and isinstance(node.ast, A.OmpCritical):
            return held | {critical_token(node.ast.name)}
        if node.kind == C.OMP_CRITICAL_END and isinstance(node.ast, A.OmpCritical):
            return held - {critical_token(node.ast.name)}
        out = held
        for call in calls_in(node):
            out = self._apply_call(call, out)
        return out

    def _apply_call(self, call: A.CallExpr, held: LockSet) -> LockSet:
        name = call.name
        if name == "omp_set_lock":
            if call.args and isinstance(call.args[0], A.StrLit):
                return held | {lock_token(call.args[0].value)}
            return held
        if name == "omp_unset_lock":
            if call.args and isinstance(call.args[0], A.StrLit):
                return held - {lock_token(call.args[0].value)}
            return frozenset(t for t in held if not t.startswith(LOCK_PREFIX))
        if name in self.user_functions:
            if name in self.lock_transparent:
                return held  # callee provably touches no user locks
            # the callee may release user locks; criticals are lexical
            return frozenset(t for t in held if not t.startswith(LOCK_PREFIX))
        return held
