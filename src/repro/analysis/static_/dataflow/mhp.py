"""May-Happen-in-Parallel (MHP) analysis over OpenMP region structure.

Computes, for every call expression, its OpenMP execution context —
enclosing ``omp parallel`` regions, the *barrier phase* within the
innermost region, and the enclosing ``omp sections`` section — and
decides whether two MPI sites can execute concurrently **within one
process**.  Pairs that provably cannot are pruned from the candidate
set:

* sites in *different outermost parallel regions* — a team joins (with
  an implicit barrier) before the next region forks, so the regions are
  sequential on every process;
* sites in the *same region but different barrier phases* — a team
  barrier orders every thread's phase-``k`` code before any thread's
  phase-``k+1`` code;
* two sites in the *same ``omp section``* — one thread runs a section's
  body sequentially per encounter.

Everything doubtful disables pruning: barriers nested in conditionals
or loops make phases unreliable; nested parallelism (lexical, or a
function reachable from a parallel region / ``thread_spawn``) can
overlap region instances, so such functions are excluded wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ....minilang import ast_nodes as A

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..callgraph import ParallelContext


@dataclass(frozen=True)
class MHPInfo:
    """OpenMP execution context of one call expression."""

    func: str
    #: enclosing lexical ``omp parallel`` nids, outermost first
    regions: Tuple[int, ...]
    #: barrier-phase index within the innermost region
    phase: int = 0
    #: False when the innermost region contains conditional barriers
    phase_reliable: bool = True
    #: (sections-construct nid, section index) of the innermost section
    section: Optional[Tuple[int, int]] = None
    #: True when same-section statements are provably sequential
    section_serial: bool = True


class _Region:
    __slots__ = ("nid", "phase", "reliable", "entry_cond_depth")

    def __init__(self, nid: int, entry_cond_depth: int) -> None:
        self.nid = nid
        self.phase = 0
        self.reliable = True
        self.entry_cond_depth = entry_cond_depth


class _MHPWalker:
    """One function's AST walk, recording context per CallExpr nid.

    With ``record_all`` every expression node (names, index expressions,
    calls) gets an :class:`MHPInfo` — the static race pass needs the
    context of plain variable accesses, not just MPI calls.  With
    ``implicit_ws_barriers`` the implicit closing barrier of a non-
    ``nowait`` worksharing construct bumps the phase like an explicit
    ``omp barrier`` does (sound for races; the MPI-candidate pass keeps
    the coarser historical phases so its counts stay comparable).
    """

    def __init__(
        self,
        func: A.FuncDef,
        record_all: bool = False,
        implicit_ws_barriers: bool = False,
    ) -> None:
        self.func = func
        self.record_all = record_all
        self.implicit_ws_barriers = implicit_ws_barriers
        self.regions: List[_Region] = []
        self.cond_depth = 0
        self.loop_depth = 0
        self.section: Optional[Tuple[int, int]] = None
        self.section_serial = True
        #: nid -> (regions, phase, section, section_serial); reliability
        #: is resolved after the walk (a later conditional barrier can
        #: retroactively invalidate earlier phases)
        self._raw: Dict[int, Tuple[Tuple[int, ...], int, Optional[Tuple[int, int]], bool]] = {}
        self._reliable: Dict[int, bool] = {}

    def run(self) -> Dict[int, MHPInfo]:
        self._walk_stmt(self.func.body)
        infos: Dict[int, MHPInfo] = {}
        for nid, (regions, phase, section, serial) in self._raw.items():
            reliable = self._reliable.get(regions[-1], True) if regions else True
            infos[nid] = MHPInfo(
                func=self.func.name,
                regions=regions,
                phase=phase,
                phase_reliable=reliable,
                section=section,
                section_serial=serial,
            )
        return infos

    # -- recording ----------------------------------------------------------

    def _record_expr(self, expr: A.Expr) -> None:
        for node in expr.walk():
            if self.record_all or isinstance(node, A.CallExpr):
                regions = tuple(r.nid for r in self.regions)
                phase = self.regions[-1].phase if self.regions else 0
                self._raw[node.nid] = (
                    regions, phase, self.section, self.section_serial,
                )

    def _implicit_barrier(self) -> None:
        """Phase effect of a worksharing construct's closing barrier."""
        if not self.implicit_ws_barriers or not self.regions:
            return
        region = self.regions[-1]
        if self.cond_depth == region.entry_cond_depth:
            region.phase += 1
        else:
            region.reliable = False

    def _record_stmt_exprs(self, stmt: A.Stmt) -> None:
        for child in stmt.children():
            if isinstance(child, A.Expr):
                self._record_expr(child)

    # -- traversal ----------------------------------------------------------

    def _walk_block(self, block: A.Block) -> None:
        for stmt in block.stmts:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            self._walk_block(stmt)
            return
        if isinstance(stmt, A.OmpParallel):
            if stmt.num_threads is not None:
                self._record_expr(stmt.num_threads)
            self.regions.append(_Region(stmt.nid, self.cond_depth))
            self._walk_block(stmt.body)
            region = self.regions.pop()
            self._reliable[region.nid] = region.reliable
            return
        if isinstance(stmt, A.OmpBarrier):
            if self.regions:
                region = self.regions[-1]
                if self.cond_depth == region.entry_cond_depth:
                    region.phase += 1
                else:
                    region.reliable = False
            return
        if isinstance(stmt, A.If):
            self._record_expr(stmt.cond)
            self.cond_depth += 1
            self._walk_stmt(stmt.then)
            if stmt.els is not None:
                self._walk_stmt(stmt.els)
            self.cond_depth -= 1
            return
        if isinstance(stmt, A.While):
            self._record_expr(stmt.cond)
            self.cond_depth += 1
            self.loop_depth += 1
            self._walk_block(stmt.body)
            self.cond_depth -= 1
            self.loop_depth -= 1
            return
        if isinstance(stmt, A.For):
            if stmt.init is not None:
                self._walk_stmt(stmt.init)
            if stmt.cond is not None:
                self._record_expr(stmt.cond)
            self.cond_depth += 1
            self.loop_depth += 1
            if stmt.step is not None:
                self._walk_stmt(stmt.step)
            self._walk_block(stmt.body)
            self.cond_depth -= 1
            self.loop_depth -= 1
            return
        if isinstance(stmt, A.OmpSections):
            # a nowait sections inside a loop can overlap its own
            # encounters, so same-section ordering is only provable
            # outside loops or with the implicit closing barrier
            serial = (self.loop_depth == 0) or not stmt.nowait
            saved = (self.section, self.section_serial)
            for index, section in enumerate(stmt.sections):
                self.section, self.section_serial = (stmt.nid, index), serial
                self._walk_block(section)
            self.section, self.section_serial = saved
            if not stmt.nowait:
                self._implicit_barrier()
            return
        if isinstance(stmt, A.OmpFor):
            if stmt.chunk is not None:
                self._record_expr(stmt.chunk)
            self._walk_stmt(stmt.loop)
            if not stmt.nowait:
                self._implicit_barrier()
            return
        if isinstance(stmt, A.OmpSingle):
            self._walk_block(stmt.body)
            if not stmt.nowait:
                self._implicit_barrier()
            return
        if isinstance(stmt, (A.OmpMaster, A.OmpCritical)):
            self._walk_block(stmt.body)
            return
        if isinstance(stmt, A.OmpAtomic):
            self._walk_stmt(stmt.stmt)
            return
        # leaf statements: record their expressions
        self._record_stmt_exprs(stmt)


def compute_mhp(
    program: A.Program,
    record_all: bool = False,
    implicit_ws_barriers: bool = False,
) -> Dict[int, MHPInfo]:
    """MHP context for every call expression of *program*.

    ``record_all`` extends the map to every expression node;
    ``implicit_ws_barriers`` counts the closing barriers of non-nowait
    worksharing constructs as phase boundaries (see :class:`_MHPWalker`).
    """
    infos: Dict[int, MHPInfo] = {}
    for fn in program.functions:
        infos.update(
            _MHPWalker(
                fn,
                record_all=record_all,
                implicit_ws_barriers=implicit_ws_barriers,
            ).run()
        )
    return infos


def may_happen_in_parallel(
    a: Optional[MHPInfo],
    b: Optional[MHPInfo],
    unsafe_funcs: Set[str] = frozenset(),
    contexts: Optional[Dict[str, "ParallelContext"]] = None,
) -> bool:
    """Can the two sites execute concurrently within one process?

    ``True`` means "maybe" (no pruning); only provable orderings return
    ``False``.  ``unsafe_funcs`` are functions reachable from a parallel
    region or a spawned thread — their region instances can overlap, so
    nothing about them is pruned.

    *contexts* (``Dict[str, ParallelContext]`` from
    :func:`..callgraph.resolve_parallel_contexts`) upgrades the
    historical "context unknown" answers for regionless sites.  With it:

    * a regionless site in a context-resolved function is substituted by
      its unique call site's context and re-checked — the callee body is
      context-transparent, so it executes exactly as if inlined there;
    * two regionless sites reached through one *serialized*
      single-level-region call chain (``omp master`` / serial ``omp
      single`` around the root call) are executed by one thread per
      region encounter, and encounters of an outermost region are
      ordered by its join barrier — provably sequential;
    * once contexts are known, a (resolved) regionless site belongs to
      fork-join sequential code, which cannot overlap parallel-region
      code — provided neither side sits in an ``unsafe_funcs`` member
      (that set owns spawn-reachability, the only way sequential-looking
      code runs concurrently).

    Without *contexts* the legacy conservative behaviour is unchanged.
    """
    if a is None or b is None:
        return True
    if contexts is not None:
        ca = contexts.get(a.func) if not a.regions else None
        cb = contexts.get(b.func) if not b.regions else None
        if (
            ca is not None
            and cb is not None
            and ca.nid == cb.nid
            and ca.serialized
            and cb.serialized
            and len(ca.info.regions) == 1
        ):
            return False  # one thread per encounter; encounters ordered
        ra = ca.info if ca is not None else a
        rb = cb.info if cb is not None else b
        if ra.func not in unsafe_funcs and rb.func not in unsafe_funcs:
            if not ra.regions or not rb.regions:
                return False  # fork-join: sequential vs anything else
        if ca is not None or cb is not None:
            # contexts are fully resolved — one substitution suffices
            return may_happen_in_parallel(ra, rb, unsafe_funcs)
    if a.func in unsafe_funcs or b.func in unsafe_funcs:
        return True
    if not a.regions or not b.regions:
        return True  # only interprocedurally parallel: context unknown
    if a.regions[0] != b.regions[0]:
        return False  # distinct outermost regions run sequentially
    if a.regions != b.regions or len(a.regions) != 1:
        return True  # nested parallelism: instances may overlap
    if (
        a.section is not None
        and a.section == b.section
        and a.section_serial
        and b.section_serial
    ):
        return False  # one thread runs a section body sequentially
    if a.phase != b.phase and a.phase_reliable and b.phase_reliable:
        return False  # separated by a team barrier
    return True
