"""Constant / symbolic-interval envelope propagation.

The client analysis behind precise envelope pairing: an abstract
environment maps scalar variable names to :class:`SymInterval` values
and is propagated through the CFG, so an MPI site whose tag argument is
``tag`` (assigned ``rank + 4`` earlier) still gets a provable value.

OpenMP-awareness (all conservative, i.e. may only widen):

* entering an ``omp parallel`` region *poisons* every shared variable
  that is assigned anywhere inside the region — concurrent writes make
  its value unpredictable at any use in the region;
* ``private`` / ``reduction`` variables are undefined on entry;
  ``firstprivate`` keeps the incoming value;
* none of the per-thread copies (``private``/``firstprivate``/
  ``reduction``) survive past the region end;
* ``mpi_comm_rank`` / ``mpi_comm_size`` results become *symbols* —
  process-constant unknowns that support exact difference reasoning —
  while ``omp_get_thread_num()`` is only an interval (``>= 0``),
  because it differs between the very threads whose calls we compare.

Globals need two extra guards (scalars are passed by value, so locals
are immune): a call to a user-defined function kills every global the
program ever assigns (the callee may assign it sequentially), and
globals that *concurrently running* code may assign — from functions
reachable from a parallel region or ``thread_spawn`` — are never
tracked at all (``volatile``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Set

from ....minilang import ast_nodes as A
from ... import cfg as C
from ..mpi_sites import fold_static_value
from .engine import ForwardAnalysis
from .lockstate import calls_in
from .values import (
    POS_INF,
    SymInterval,
    Symbol,
    TOP,
    binary,
    const,
    interval,
    join as value_join,
    neg,
    symbol,
    widen as value_widen,
)

#: Abstract environment: variable name -> SymInterval (missing = TOP).
Env = Mapping[str, SymInterval]


def eval_expr(expr: A.Expr, env: Env) -> SymInterval:
    """Abstract evaluation of *expr* under *env*."""
    folded = fold_static_value(expr)
    if isinstance(folded, bool):
        return const(int(folded))
    if isinstance(folded, int):
        return const(folded)
    if isinstance(expr, A.Name):
        return env.get(expr.ident, TOP)
    if isinstance(expr, A.Unary):
        inner = eval_expr(expr.operand, env)
        if expr.op == "-":
            return neg(inner)
        return interval(0.0, 1.0)  # logical not
    if isinstance(expr, A.Binary):
        return binary(expr.op, eval_expr(expr.left, env), eval_expr(expr.right, env))
    if isinstance(expr, A.CallExpr):
        return _eval_call(expr)
    return TOP


def _eval_call(expr: A.CallExpr) -> SymInterval:
    name = expr.name
    if name.startswith("hmpi_"):
        name = name[1:]
    if name == "mpi_comm_rank":
        return symbol(Symbol("rank", expr.nid, 0.0, POS_INF))
    if name == "mpi_comm_size":
        return symbol(Symbol("size", expr.nid, 1.0, POS_INF))
    if name == "omp_get_thread_num":
        # thread-VARYING: must stay base-less, two threads see different
        # values so no cross-site cancellation is sound
        return interval(0.0, POS_INF)
    if name in ("omp_get_num_threads", "omp_get_max_threads"):
        return interval(1.0, POS_INF)
    return TOP


def _without(env: Env, names: Iterable[str]) -> Env:
    names = set(names)
    if not names & set(env):
        return env
    return {k: v for k, v in env.items() if k not in names}


def _assigned_names(root: A.Node) -> Set[str]:
    out: Set[str] = set()
    for node in root.walk():
        if isinstance(node, A.Assign) and isinstance(node.target, A.Name):
            out.add(node.target.ident)
    return out


def _declared_names(root: A.Node) -> Set[str]:
    return {n.name for n in root.walk() if isinstance(n, A.VarDecl)}


def _region_poison(region: A.OmpParallel) -> FrozenSet[str]:
    """Shared variables whose value is unpredictable inside *region*:
    assigned somewhere in the body, not privatized, not declared by the
    region body itself (block-local declarations are per-thread)."""
    assigned = _assigned_names(region.body)
    local = _declared_names(region.body)
    private = set(region.private) | set(region.firstprivate)
    private |= {name for _, name in region.reductions}
    return frozenset(assigned - local - private)


class EnvelopeAnalysis(ForwardAnalysis[Env]):
    """Forward propagation of the abstract environment."""

    def __init__(
        self,
        cfg: C.CFG,
        globals_env: Env = None,
        *,
        volatile: FrozenSet[str] = frozenset(),
        call_kill: FrozenSet[str] = frozenset(),
        user_functions: FrozenSet[str] = frozenset(),
    ) -> None:
        self.cfg = cfg
        self.globals_env = dict(globals_env or {})
        #: names never trackable (mutable by concurrently running code)
        self.volatile = frozenset(volatile)
        #: names killed by any user-defined call (callee may assign them)
        self.call_kill = frozenset(call_kill)
        self.user_functions = frozenset(user_functions)
        self._poison = self._compute_poison(cfg)

    @staticmethod
    def _compute_poison(cfg: C.CFG) -> Dict[int, FrozenSet[str]]:
        """Per-node union of the poison sets of enclosing parallel regions."""
        poison: Dict[int, FrozenSet[str]] = {}
        stack: list = []
        for node in cfg.linearize():
            if node.kind == C.OMP_PARALLEL_BEGIN and isinstance(node.ast, A.OmpParallel):
                stack.append(_region_poison(node.ast))
            current: FrozenSet[str] = frozenset().union(*stack) if stack else frozenset()
            poison[node.cfg_id] = current
            if node.kind == C.OMP_PARALLEL_END and stack:
                stack.pop()
        return poison

    # -- lattice ------------------------------------------------------------

    def boundary(self, cfg: C.CFG) -> Env:
        return {k: v for k, v in self.globals_env.items() if k not in self.volatile}

    def join(self, a: Env, b: Env) -> Env:
        out: Dict[str, SymInterval] = {}
        for name in set(a) & set(b):
            merged = value_join(a[name], b[name])
            if not merged.is_top:
                out[name] = merged
        return out

    def widen(self, old: Env, new: Env) -> Env:
        out: Dict[str, SymInterval] = {}
        for name in set(old) & set(new):
            widened = value_widen(old[name], new[name])
            if not widened.is_top:
                out[name] = widened
        return out

    # -- transfer -----------------------------------------------------------

    def _set(self, env: Env, node: C.CFGNode, name: str, value: SymInterval) -> Env:
        out = dict(env)
        out.pop(name, None)
        blocked = self._poison.get(node.cfg_id, frozenset()) | self.volatile
        if name not in blocked and not value.is_top:
            out[name] = value
        return out

    def _kill_callee_effects(self, node: C.CFGNode, env: Env) -> Env:
        """Drop globals a user-defined callee evaluated here may assign."""
        if not self.call_kill:
            return env
        if any(c.name in self.user_functions for c in calls_in(node)):
            return _without(env, self.call_kill)
        return env

    def transfer(self, node: C.CFGNode, env: Env) -> Env:
        kind, ast = node.kind, node.ast
        if kind == C.OMP_PARALLEL_BEGIN and isinstance(ast, A.OmpParallel):
            drop = set(ast.private) | {name for _, name in ast.reductions}
            drop |= self._poison.get(node.cfg_id, frozenset())
            return _without(env, drop)
        if kind == C.OMP_PARALLEL_END and isinstance(ast, A.OmpParallel):
            drop = set(ast.private) | set(ast.firstprivate)
            drop |= {name for _, name in ast.reductions}
            return _without(env, drop)
        if kind in (C.OMP_WS_BEGIN, C.OMP_WS_END) and ast is not None:
            drop = set(getattr(ast, "private", ()))
            drop |= {name for _, name in getattr(ast, "reductions", ())}
            return _without(env, drop) if drop else env
        if kind not in (C.STMT, C.BRANCH, C.LOOP_HEAD) or ast is None:
            return env
        env = self._kill_callee_effects(node, env)
        if kind != C.STMT:
            return env
        stmt = ast.stmt if isinstance(ast, A.OmpAtomic) else ast
        if isinstance(stmt, A.VarDecl) and not stmt.is_array:
            value = eval_expr(stmt.init, env) if stmt.init is not None else TOP
            return self._set(env, node, stmt.name, value)
        if isinstance(stmt, A.Assign) and isinstance(stmt.target, A.Name):
            return self._set(env, node, stmt.target.ident, eval_expr(stmt.value, env))
        return env


def program_globals_env(program: A.Program) -> Env:
    """Initial environment from never-reassigned scalar globals."""
    mutated: Set[str] = set()
    for fn in program.functions:
        mutated |= _assigned_names(fn.body)
    env: Dict[str, SymInterval] = {}
    for decl in program.globals:
        if decl.is_array or decl.init is None or decl.name in mutated:
            continue
        value = eval_expr(decl.init, {})
        if not value.is_top:
            env[decl.name] = value
    return env
