"""Compile-time (static) analysis phase of HOME."""

from .candidates import (  # noqa: F401
    StaticEnvelope,
    ViolationCandidate,
    candidate_summary,
    envelope_of,
    find_candidates,
)
from .checklist import Checklist, ChecklistEntry, build_checklist  # noqa: F401
from .instrument import (  # noqa: F401
    InstrumentationResult,
    InstrumentPolicy,
    instrument_program,
)
from .mpi_sites import MPISite, collect_sites  # noqa: F401
from .report import StaticReport, run_static_analysis  # noqa: F401
from .threadlevel import (  # noqa: F401
    StaticWarning,
    ThreadLevelInfo,
    check_thread_level,
    infer_thread_level,
)

__all__ = [
    "MPISite",
    "ViolationCandidate",
    "StaticEnvelope",
    "find_candidates",
    "candidate_summary",
    "envelope_of",
    "collect_sites",
    "instrument_program",
    "InstrumentationResult",
    "InstrumentPolicy",
    "Checklist",
    "ChecklistEntry",
    "build_checklist",
    "StaticWarning",
    "ThreadLevelInfo",
    "infer_thread_level",
    "check_thread_level",
    "StaticReport",
    "run_static_analysis",
]
