"""Compile-time (static) analysis phase of HOME."""

from .callgraph import (  # noqa: F401
    GUARD_BOTTOM,
    CallGraph,
    CallSite,
    GuardContext,
    ParallelContext,
    build_callgraph,
    parallel_guard_contexts,
    resolve_parallel_contexts,
)
from .candidates import (  # noqa: F401
    StaticEnvelope,
    ViolationCandidate,
    candidate_summary,
    envelope_of,
    find_candidates,
)
from .checklist import Checklist, ChecklistEntry, build_checklist  # noqa: F401
from .collectives import (  # noqa: F401
    COLLECTIVE_COLORS,
    DIV_PRUNE_KINDS,
    CollectiveDivergenceCandidate,
    CollectiveDivergenceReport,
    ColorSite,
    find_collective_divergence,
)
from .dataflow import (  # noqa: F401
    DataflowFacts,
    SymEnvelope,
    SymInterval,
    compute_dataflow,
)
from .instrument import (  # noqa: F401
    InstrumentationResult,
    InstrumentPolicy,
    instrument_program,
)
from .mpi_sites import (  # noqa: F401
    MPISite,
    collect_sites,
    fold_static_value,
    functions_called_from_parallel,
)
from .races import (  # noqa: F401
    RACE_PRUNE_KINDS,
    AccessSite,
    RegionInfo,
    StaticRaceCandidate,
    StaticRaceReport,
    find_races,
)
from .prunes import (  # noqa: F401
    make_prune_dict,
    prune_summary,
)
from .report import (  # noqa: F401
    STATIC_REPORT_SCHEMA_VERSION,
    StaticReport,
    check_report_schema,
    clear_static_analysis_cache,
    run_static_analysis,
)
from .summaries import (  # noqa: F401
    FunctionSummary,
    LinForm,
    SummaryAccess,
    SummaryTable,
    compute_summaries,
)
from .threadlevel import (  # noqa: F401
    StaticWarning,
    ThreadLevelInfo,
    check_thread_level,
    infer_thread_level,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "GUARD_BOTTOM",
    "GuardContext",
    "ParallelContext",
    "build_callgraph",
    "parallel_guard_contexts",
    "resolve_parallel_contexts",
    "FunctionSummary",
    "LinForm",
    "SummaryAccess",
    "SummaryTable",
    "compute_summaries",
    "MPISite",
    "ViolationCandidate",
    "StaticEnvelope",
    "find_candidates",
    "candidate_summary",
    "envelope_of",
    "collect_sites",
    "fold_static_value",
    "functions_called_from_parallel",
    "DataflowFacts",
    "SymEnvelope",
    "SymInterval",
    "compute_dataflow",
    "instrument_program",
    "InstrumentationResult",
    "InstrumentPolicy",
    "Checklist",
    "ChecklistEntry",
    "build_checklist",
    "AccessSite",
    "RegionInfo",
    "StaticRaceCandidate",
    "StaticRaceReport",
    "RACE_PRUNE_KINDS",
    "find_races",
    "COLLECTIVE_COLORS",
    "DIV_PRUNE_KINDS",
    "ColorSite",
    "CollectiveDivergenceCandidate",
    "CollectiveDivergenceReport",
    "find_collective_divergence",
    "make_prune_dict",
    "prune_summary",
    "StaticWarning",
    "ThreadLevelInfo",
    "infer_thread_level",
    "check_thread_level",
    "STATIC_REPORT_SCHEMA_VERSION",
    "StaticReport",
    "check_report_schema",
    "clear_static_analysis_cache",
    "run_static_analysis",
]
