"""Monitored-variable checklist generation.

The static phase produces, for each instrumented MPI site, the list of
monitored variables its wrapper will write and the violation classes
those variables feed — the paper's "thread-safety specification
argument list" that the final report-matching stage consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ...events.event import MONITORED_KINDS_BY_OP, MonitoredKind
from .mpi_sites import MPISite

#: violation classes associated with each monitored variable
VIOLATIONS_BY_KIND: Dict[MonitoredKind, Tuple[str, ...]] = {
    MonitoredKind.SRC: ("ConcurrentRecvViolation", "ProbeViolation"),
    MonitoredKind.TAG: ("ConcurrentRecvViolation", "ProbeViolation"),
    MonitoredKind.COMM: (
        "ConcurrentRecvViolation",
        "ProbeViolation",
        "CollectiveCallViolation",
    ),
    MonitoredKind.REQUEST: ("ConcurrentRequestViolation",),
    MonitoredKind.COLLECTIVE: ("CollectiveCallViolation",),
    MonitoredKind.FINALIZE: ("MPIFinalizationViolation",),
}


@dataclass
class ChecklistEntry:
    """Monitored variables and candidate violations for one site."""

    site: MPISite
    kinds: Tuple[MonitoredKind, ...]
    candidate_violations: Tuple[str, ...]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ", ".join(str(k) for k in self.kinds)
        return f"{self.site}: watches [{kinds}]"


@dataclass
class Checklist:
    """The full static checklist for one instrumented program."""

    entries: List[ChecklistEntry] = field(default_factory=list)

    def kinds_watched(self) -> set:
        out: set = set()
        for entry in self.entries:
            out.update(entry.kinds)
        return out

    def candidate_violations(self) -> set:
        out: set = set()
        for entry in self.entries:
            out.update(entry.candidate_violations)
        return out

    def __len__(self) -> int:
        return len(self.entries)


def build_checklist(sites: List[MPISite]) -> Checklist:
    """Checklist entries for every instrumentable hybrid site."""
    checklist = Checklist()
    for site in sites:
        kinds = MONITORED_KINDS_BY_OP.get(site.op, ())
        if not kinds:
            continue
        violations: List[str] = []
        for kind in kinds:
            for v in VIOLATIONS_BY_KIND[kind]:
                if v not in violations:
                    violations.append(v)
        checklist.entries.append(
            ChecklistEntry(site, tuple(kinds), tuple(violations))
        )
    return checklist
