"""Instrumentation pass: rewrite MPI calls into HOME's HMPI wrappers.

Mirrors Algorithm 1 of the paper: walk the program, and for every MPI
call that executes in hybrid (OpenMP parallel) context, replace it with
the instrumented wrapper (``mpi_recv`` → ``hmpi_recv``).  Calls outside
parallel regions are *filtered out* — this selective monitoring is
HOME's overhead-reduction mechanism.  A ``mpi_monitor_setup(...)``
marker call is inserted at the top of ``main`` (the paper's
``MPI_MonitorVariableSetup`` in the global region).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Literal, Optional

from ...minilang import ast_nodes as A
from ...minilang.builder import callstmt, clone
from .mpi_sites import MPISite, collect_sites

InstrumentPolicy = Literal["hybrid-only", "all", "none"]


@dataclass
class InstrumentationResult:
    """Outcome of the instrumentation pass."""

    program: A.Program
    #: sites actually rewritten, keyed by (rewritten) CallExpr node id
    instrumented: Dict[int, MPISite] = field(default_factory=dict)
    #: sites found but filtered out (error-free region optimization)
    filtered: List[MPISite] = field(default_factory=list)
    policy: InstrumentPolicy = "hybrid-only"
    #: variables the static race pass selected for memory monitoring
    #: (race-directed narrowing; empty = no memory monitoring needed)
    monitored_vars: FrozenSet[str] = frozenset()

    @property
    def n_instrumented(self) -> int:
        return len(self.instrumented)

    @property
    def n_filtered(self) -> int:
        return len(self.filtered)

    @property
    def reduction_ratio(self) -> float:
        """Fraction of MPI sites the static filter excluded from monitoring."""
        total = self.n_instrumented + self.n_filtered
        return (self.n_filtered / total) if total else 0.0


def instrument_program(
    program: A.Program,
    policy: InstrumentPolicy = "hybrid-only",
    interprocedural: bool = True,
    monitor_vars: Iterable[str] = (),
) -> InstrumentationResult:
    """Produce an instrumented clone of *program*.

    ``policy`` selects which MPI sites get wrappers:

    * ``hybrid-only`` — sites in (interprocedurally reachable) parallel
      context, the paper's behaviour;
    * ``all`` — every MPI site (the no-static-filter ablation);
    * ``none`` — nothing (base run through the same pipeline).

    ``monitor_vars`` lists the shared variables the static race pass
    wants the runtime to watch; they are recorded on the result and
    appended as ``mem:<var>`` markers to the monitor-setup call.
    """
    new_program = clone(program)
    assert isinstance(new_program, A.Program)
    sites = collect_sites(new_program, interprocedural=interprocedural)

    result = InstrumentationResult(
        new_program, policy=policy, monitored_vars=frozenset(monitor_vars)
    )
    by_nid: Dict[int, MPISite] = {s.nid: s for s in sites}

    # Walk every CallExpr; rename those whose site is selected.
    for node in new_program.walk():
        if not isinstance(node, A.CallExpr):
            continue
        site = by_nid.get(node.nid)
        if site is None or not site.instrumentable:
            continue
        selected = (
            policy == "all"
            or (policy == "hybrid-only" and site.in_parallel)
        )
        if selected and not node.name.startswith("hmpi_"):
            node.name = "h" + node.name
            result.instrumented[node.nid] = site
        elif selected:
            result.instrumented[node.nid] = site
        else:
            result.filtered.append(site)

    if result.instrumented or result.monitored_vars:
        _insert_monitor_setup(new_program, result.monitored_vars)

    # Renumber the finished clone in pre-order so event call-site ids
    # are a pure function of the source program.  Fresh clone ids come
    # from a process-global counter and so depend on everything parsed
    # before — which would make a resumed campaign's reports differ
    # across process restarts (the durable service resumes journaled
    # submissions in a new server process and must stay byte-identical).
    remap: Dict[int, int] = {}
    for nid, node in enumerate(new_program.walk(), start=1):
        remap[node.nid] = nid
        node.nid = nid
    for site in list(result.instrumented.values()) + result.filtered:
        site.nid = remap.get(site.nid, site.nid)
    result.instrumented = {
        site.nid: site for site in result.instrumented.values()
    }
    return result


def _insert_monitor_setup(
    program: A.Program, monitor_vars: FrozenSet[str] = frozenset()
) -> None:
    """Insert the monitored-variable setup marker at the top of main()."""
    try:
        main = program.function("main")
    except KeyError:
        return
    already = (
        main.body.stmts
        and isinstance(main.body.stmts[0], A.ExprStmt)
        and isinstance(main.body.stmts[0].expr, A.CallExpr)
        and main.body.stmts[0].expr.name == "mpi_monitor_setup"
    )
    if not already:
        setup = callstmt(
            "mpi_monitor_setup",
            A.StrLit("srctmp"), A.StrLit("tagtmp"), A.StrLit("commtmp"),
            A.StrLit("requesttmp"), A.StrLit("collectivetmp"), A.StrLit("finalizetmp"),
            *(A.StrLit(f"mem:{name}") for name in sorted(monitor_vars)),
        )
        main.body.stmts.insert(0, setup)
