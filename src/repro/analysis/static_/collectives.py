"""PARCOACH-family static collective-matching / barrier-divergence pass.

OpenMP requires every thread of a team to encounter the *same sequence*
of collective constructs: explicit ``omp barrier``, the worksharing
constructs (``for``, ``sections``, ``single`` — with or without
``nowait``, encountering is what must match), and the implicit barrier
at region exit.  An MPI collective executed from inside a ``parallel``
region is collective over threads too: if a thread-dependent branch
funnels it to a subset of the team the matched-send/recv structure of
the rank-level collective breaks.  PARCOACH detects both families by
coloring each collective site and checking, along CFG paths out of
control-flow divergence, that every thread reaches the same color
sequence; this module is the static half of that check for the
mini-language.

The pass walks each function's AST (structured control flow makes path
sequences syntax-directed), colors every collective site, and uses the
:mod:`.dataflow.divergence` taint facts to decide which branches are
*thread-dependent* (conditions on ``omp_get_thread_num()``, ``omp for``
indices, or data derived from them).  A
:class:`CollectiveDivergenceCandidate` is emitted when:

* the two arms of a thread-dependent branch contain different collective
  color sequences (including one arm empty — the MPI-under-divergent-
  branch case);
* a collective sits in a context that is divergent by construction: the
  body of ``omp master`` / ``omp single`` (OMP collectives only — a
  *funneled* MPI collective there is the sanctioned hybrid pattern and
  is pruned), an ``omp section``, a worksharing loop body, or a loop
  whose trip count is thread-dependent.

Everything the pass discards is tallied per prune kind (shared plumbing
with the race pass via :mod:`.prunes`):

* ``div-uniform`` — arms differ but the condition is team-uniform;
* ``div-balanced`` — thread-dependent branch, arms match;
* ``div-serial`` — MPI collective under ``master``/``single`` (funneled);
* ``div-mhp`` — divergent collectives outside any parallel context
  (lexically serial and not reachable from a region per
  :func:`~.mpi_sites.functions_called_from_parallel`), or an MPI call
  not in the cross-checked site list.

The candidates drive race-directed narrowing of the dynamic confirm
pass: :attr:`CollectiveDivergenceReport.monitored_locs` is the site set
the runtime needs to track.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ...events.event import COLLECTIVE_OPS
from ...minilang import ast_nodes as A
from ..cfg import CFG, build_program_cfgs
from .dataflow.divergence import TaintSet, branch_taints, expr_thread_dependent
from .mpi_sites import MPISite, functions_called_from_parallel
from .prunes import count_prune, make_prune_dict, prune_summary, total_pruned

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .summaries import SummaryTable

#: divergence-prune categories (rendered next to the race-prune counters)
PRUNE_DIV_UNIFORM = "div-uniform"
PRUNE_DIV_BALANCED = "div-balanced"
PRUNE_DIV_SERIAL = "div-serial"
PRUNE_DIV_MHP = "div-mhp"
DIV_PRUNE_KINDS = (
    PRUNE_DIV_UNIFORM, PRUNE_DIV_BALANCED, PRUNE_DIV_SERIAL, PRUNE_DIV_MHP,
)

#: PARCOACH-style color table (numbers follow the exemplar
#: instrumentation: explicit barrier 36, implicit region-end 1,
#: early return 38, single 3, sections 4, for 5; MPI collectives get
#: their own color 2 and are further distinguished by op + site).
COLLECTIVE_COLORS: Dict[str, int] = {
    "barrier": 36,
    "region-end": 1,
    "return": 38,
    "single": 3,
    "sections": 4,
    "for": 5,
    "mpi": 2,
}

#: candidate kinds
KIND_BARRIER_DIVERGENCE = "barrier-divergence"
KIND_COLLECTIVE_ORDER = "collective-order"
KIND_MPI_COLLECTIVE = "mpi-collective"


@dataclass(frozen=True)
class ColorSite:
    """One colored collective site."""

    kind: str     # key into COLLECTIVE_COLORS
    nid: int      # AST node id of the construct / call
    loc: str      # "line:col" (stable across program clones)
    func: str     # enclosing function
    op: str = ""  # MPI op name for kind == "mpi"

    @property
    def color(self) -> int:
        return COLLECTIVE_COLORS[self.kind]

    def describe(self) -> str:
        label = self.op if self.kind == "mpi" else self.kind
        return f"{label}[{self.color}]@{self.loc}"


#: one element of a collective sequence: a colored site, or an opaque
#: token standing in for a uniform sub-branch / loop whose contribution
#: is identical on every thread that reaches it
SeqEntry = Union[ColorSite, Tuple]
ColorSeq = Tuple[SeqEntry, ...]


def _entry_sites(entries: Iterable[SeqEntry]) -> List[ColorSite]:
    """Every ColorSite inside *entries*, recursing into loop tokens."""
    out: List[ColorSite] = []
    for entry in entries:
        if isinstance(entry, ColorSite):
            out.append(entry)
        elif isinstance(entry, tuple) and entry and entry[0] == "loop":
            out.extend(_entry_sites(entry[2]))
    return out


def _seq_key(entries: Sequence[SeqEntry]) -> Tuple:
    """Canonical *color* key of a sequence: two arms match when every
    position has the same collective color — (kind, op) — regardless of
    which source line the site sits on (balanced branch arms).  Opaque
    branch/loop tokens keep their node identity: a uniform sub-branch in
    one arm never matches a different one in the other."""
    out: List[Tuple] = []
    for entry in entries:
        if isinstance(entry, ColorSite):
            out.append(("site", entry.kind, entry.op))
        elif entry and entry[0] == "loop":
            out.append(("loop", entry[1], _seq_key(entry[2])))
        else:
            out.append(tuple(entry))
    return tuple(out)


def _describe_seq(entries: Sequence[SeqEntry]) -> Tuple[str, ...]:
    out = []
    for entry in entries:
        if isinstance(entry, ColorSite):
            out.append(entry.describe())
        elif entry and entry[0] == "loop":
            inner = ", ".join(_describe_seq(entry[2]))
            out.append(f"loop({inner})")
        else:
            out.append(str(entry[0]))
    return tuple(out)


@dataclass
class CollectiveDivergenceCandidate:
    """A statically possible collective-matching violation."""

    kind: str                 # barrier-divergence | collective-order | mpi-collective
    func: str
    branch_nid: int           # AST nid of the divergent construct
    branch_loc: str
    region: Optional[int]     # nid of the lexically enclosing parallel, if any
    reason: str
    then_colors: Tuple[str, ...]
    else_colors: Tuple[str, ...]
    sites: Tuple[ColorSite, ...]

    def locs(self) -> List[str]:
        seen: List[str] = []
        for loc in (self.branch_loc, *(s.loc for s in self.sites)):
            if loc and loc not in seen:
                seen.append(loc)
        return seen

    @property
    def monitored_locs(self) -> FrozenSet[str]:
        """Collective-site locs the dynamic confirm pass must track."""
        return frozenset(s.loc for s in self.sites if s.loc)

    def __str__(self) -> str:
        arms = ""
        if self.then_colors or self.else_colors:
            arms = (
                f" [then: {', '.join(self.then_colors) or '-'}"
                f" | else: {', '.join(self.else_colors) or '-'}]"
            )
        return (
            f"[{self.kind}] {self.func}:{self.branch_loc}: {self.reason}{arms}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "func": self.func,
            "branch_loc": self.branch_loc,
            "region": self.region,
            "reason": self.reason,
            "then_colors": list(self.then_colors),
            "else_colors": list(self.else_colors),
            "sites": [
                {
                    "kind": s.kind,
                    "color": s.color,
                    "loc": s.loc,
                    "func": s.func,
                    "op": s.op,
                }
                for s in self.sites
            ],
            "locs": self.locs(),
        }


@dataclass
class CollectiveDivergenceReport:
    """Everything the collective-matching pass learned."""

    candidates: List[CollectiveDivergenceCandidate] = field(default_factory=list)
    #: every collective site colored inside a parallel context
    sites: List[ColorSite] = field(default_factory=list)
    pruned: Dict[str, int] = field(
        default_factory=lambda: make_prune_dict(DIV_PRUNE_KINDS)
    )

    @property
    def monitored_locs(self) -> FrozenSet[str]:
        """Union of candidate site locs (divergence-directed narrowing)."""
        out: Set[str] = set()
        for cand in self.candidates:
            out |= cand.monitored_locs
        return frozenset(out)

    @property
    def total_pruned(self) -> int:
        return total_pruned(self.pruned)

    def count_prune(self, kind: str) -> None:
        count_prune(self.pruned, kind)

    def summary_line(self) -> str:
        return prune_summary("divergence pruned", self.pruned)

    def as_dict(self) -> Dict[str, object]:
        return {
            "candidates": [c.as_dict() for c in self.candidates],
            "candidate_count": len(self.candidates),
            "sites": [
                {
                    "kind": s.kind,
                    "color": s.color,
                    "loc": s.loc,
                    "func": s.func,
                    "op": s.op,
                }
                for s in self.sites
            ],
            "monitored_locs": sorted(self.monitored_locs),
            "pruned": dict(self.pruned),
            "total_pruned": self.total_pruned,
        }


def _loc(node: A.Node) -> str:
    return f"{node.loc.line}:{node.loc.col}"


class _DivergenceWalker:
    """Computes per-arm collective color sequences for one function and
    emits divergence candidates as a side effect.

    Structured control flow keeps this syntax-directed: the sequence of
    a block is the concatenation of its statements' sequences; a branch
    whose arms agree contributes that agreed sequence; a branch whose
    arms differ is either a candidate (thread-dependent condition) or an
    opaque-but-uniform token (team-uniform condition).
    """

    def __init__(
        self,
        func: A.FuncDef,
        taints: Dict[int, TaintSet],
        report: CollectiveDivergenceReport,
        mpi_nids: Optional[FrozenSet[int]],
        reachable_from_parallel: bool,
        callee_seqs: Optional[Dict[str, ColorSeq]] = None,
        recursive_collective: FrozenSet[str] = frozenset(),
    ) -> None:
        self.func = func
        self.taints = taints
        self.report = report
        self.mpi_nids = mpi_nids
        self.reachable_from_parallel = reachable_from_parallel
        #: bottom-up summarized top-level color sequences of callees
        #: (``None`` disables interprocedural splicing)
        self.callee_seqs = callee_seqs
        #: recursive functions whose cycle reaches a collective: spliced
        #: as an opaque-but-uniform ``("call", name)`` token
        self.recursive_collective = recursive_collective
        self.region_stack: List[int] = []
        self.serial_depth = 0  # master / claimed-single nesting

    # -- context ---------------------------------------------------------

    def _in_parallel(self) -> bool:
        return bool(self.region_stack) or self.reachable_from_parallel

    def _region(self) -> Optional[int]:
        return self.region_stack[-1] if self.region_stack else None

    # -- candidate / entry helpers ---------------------------------------

    def _emit(
        self,
        kind: str,
        node: A.Node,
        reason: str,
        sites: Sequence[ColorSite],
        then_colors: Tuple[str, ...] = (),
        else_colors: Tuple[str, ...] = (),
    ) -> None:
        self.report.candidates.append(
            CollectiveDivergenceCandidate(
                kind=kind,
                func=self.func.name,
                branch_nid=node.nid,
                branch_loc=_loc(node),
                region=self._region(),
                reason=reason,
                then_colors=then_colors,
                else_colors=else_colors,
                sites=tuple(sites),
            )
        )

    def _collective_entry(self, site: ColorSite, node: A.Node) -> ColorSeq:
        """Color *site*; under master/single the construct itself is the
        divergence (only a subset of the team executes it)."""
        self.report.sites.append(site)
        if self.serial_depth > 0:
            if site.kind == "mpi":
                # funneled MPI collective: the sanctioned hybrid pattern
                self.report.count_prune(PRUNE_DIV_SERIAL)
            elif self._in_parallel():
                self._emit(
                    KIND_BARRIER_DIVERGENCE,
                    node,
                    f"OMP collective `{site.kind}` under master/single "
                    "executes on a strict subset of the team",
                    [site],
                )
            else:
                self.report.count_prune(PRUNE_DIV_MHP)
            return ()
        return (site,)

    def _flag_divergent_body(
        self, node: A.Node, inner: ColorSeq, context: str
    ) -> None:
        """Collectives inside a context where threads take different
        paths by construction (section bodies, worksharing loop bodies)."""
        sites = _entry_sites(inner)
        if not inner:
            return
        if not self._in_parallel():
            self.report.count_prune(PRUNE_DIV_MHP)
            return
        kind = (
            KIND_MPI_COLLECTIVE
            if any(s.kind == "mpi" for s in sites)
            else KIND_BARRIER_DIVERGENCE
        )
        self._emit(
            kind,
            node,
            f"collective(s) inside {context} — threads encounter them "
            "a thread-dependent number of times",
            sites,
            then_colors=_describe_seq(inner),
        )

    # -- statement dispatch ----------------------------------------------

    def seq_stmt(self, stmt: Optional[A.Stmt]) -> ColorSeq:
        if stmt is None:
            return ()
        if isinstance(stmt, A.Block):
            out: List[SeqEntry] = []
            for sub in stmt.stmts:
                out.extend(self.seq_stmt(sub))
            return tuple(out)
        if isinstance(stmt, A.OmpBarrier):
            return self._collective_entry(
                ColorSite("barrier", stmt.nid, _loc(stmt), self.func.name), stmt
            )
        if isinstance(stmt, A.OmpFor):
            inner = self.seq_stmt(stmt.loop.body)
            self._flag_divergent_body(stmt, inner, "a worksharing loop body")
            return self._collective_entry(
                ColorSite("for", stmt.nid, _loc(stmt), self.func.name), stmt
            )
        if isinstance(stmt, A.OmpSections):
            for section in stmt.sections:
                inner = self.seq_stmt(section)
                self._flag_divergent_body(stmt, inner, "an `omp section` body")
            return self._collective_entry(
                ColorSite("sections", stmt.nid, _loc(stmt), self.func.name), stmt
            )
        if isinstance(stmt, A.OmpSingle):
            self.serial_depth += 1
            self.seq_stmt(stmt.body)
            self.serial_depth -= 1
            return self._collective_entry(
                ColorSite("single", stmt.nid, _loc(stmt), self.func.name), stmt
            )
        if isinstance(stmt, A.OmpMaster):
            self.serial_depth += 1
            self.seq_stmt(stmt.body)
            self.serial_depth -= 1
            return ()
        if isinstance(stmt, A.OmpParallel):
            self.region_stack.append(stmt.nid)
            self.seq_stmt(stmt.body)
            # implicit barrier at region exit: recorded for the color
            # table, uniform by construction (every member joins)
            self.report.sites.append(
                ColorSite("region-end", stmt.nid, _loc(stmt), self.func.name)
            )
            self.region_stack.pop()
            return ()
        if isinstance(stmt, A.OmpCritical):
            return self.seq_stmt(stmt.body)
        if isinstance(stmt, A.If):
            return self._seq_if(stmt)
        if isinstance(stmt, (A.While, A.For)):
            return self._seq_loop(stmt)
        if isinstance(stmt, A.Return):
            entries = self._mpi_entries(stmt)
            if self.region_stack:
                # early return from inside a parallel region body: the
                # returning thread skips every later collective
                site = ColorSite("return", stmt.nid, _loc(stmt), self.func.name)
                self.report.sites.append(site)
                entries = entries + (site,)
            return entries
        # plain statements: scan for MPI collective calls
        return self._mpi_entries(stmt)

    # -- compound handlers -----------------------------------------------

    def _seq_if(self, stmt: A.If) -> ColorSeq:
        then_seq = self.seq_stmt(stmt.then)
        else_seq = self.seq_stmt(stmt.els)
        if _seq_key(then_seq) == _seq_key(else_seq):
            if then_seq and self._branch_divergent(stmt.nid, stmt.cond):
                self.report.count_prune(PRUNE_DIV_BALANCED)
            return then_seq
        # arms differ (at least one contains collectives)
        if not self._branch_divergent(stmt.nid, stmt.cond):
            self.report.count_prune(PRUNE_DIV_UNIFORM)
            return (("branch", stmt.nid),)
        if not self._in_parallel():
            self.report.count_prune(PRUNE_DIV_MHP)
            return (("branch", stmt.nid),)
        sites = _entry_sites(then_seq) + [
            s for s in _entry_sites(else_seq) if s not in _entry_sites(then_seq)
        ]
        if any(s.kind == "mpi" for s in sites):
            kind = KIND_MPI_COLLECTIVE
        elif len(then_seq) == len(else_seq):
            kind = KIND_COLLECTIVE_ORDER
        else:
            kind = KIND_BARRIER_DIVERGENCE
        self._emit(
            kind,
            stmt,
            "thread-dependent branch reaches differently-colored "
            "collective sequences",
            sites,
            then_colors=_describe_seq(then_seq),
            else_colors=_describe_seq(else_seq),
        )
        return (("divergent", stmt.nid),)

    def _seq_loop(self, stmt: Union[A.While, A.For]) -> ColorSeq:
        if isinstance(stmt, A.For):
            cond = stmt.cond
            self.seq_stmt(stmt.init)
        else:
            cond = stmt.cond
        body_seq = self.seq_stmt(stmt.body)
        if not body_seq:
            return ()
        if cond is not None and self._branch_divergent(stmt.nid, cond):
            if not self._in_parallel():
                self.report.count_prune(PRUNE_DIV_MHP)
            else:
                self._emit(
                    KIND_BARRIER_DIVERGENCE,
                    stmt,
                    "collective(s) inside a loop with a thread-dependent "
                    "trip count",
                    _entry_sites(body_seq),
                    then_colors=_describe_seq(body_seq),
                )
                return (("divergent", stmt.nid),)
        return (("loop", stmt.nid, body_seq),)

    def _branch_divergent(self, nid: int, cond: A.Expr) -> bool:
        tainted = self.taints.get(nid, frozenset())
        return expr_thread_dependent(cond, tainted)

    # -- MPI collective scan ---------------------------------------------

    def _mpi_entries(self, stmt: A.Stmt) -> ColorSeq:
        out: List[SeqEntry] = []
        scan = stmt.stmt if isinstance(stmt, A.OmpAtomic) else stmt
        for sub in scan.walk():
            if not isinstance(sub, A.CallExpr):
                continue
            if sub.name not in COLLECTIVE_OPS:
                out.extend(self._user_call_entries(sub))
                continue
            if not self._in_parallel():
                continue  # serial SPMD collective — matched per rank
            if self.mpi_nids is not None and sub.nid not in self.mpi_nids:
                self.report.count_prune(PRUNE_DIV_MHP)
                continue
            site = ColorSite(
                "mpi", sub.nid, _loc(sub), self.func.name, op=sub.name
            )
            out.extend(self._collective_entry(site, sub))
        return tuple(out)

    def _user_call_entries(self, call: A.CallExpr) -> ColorSeq:
        """Splice the summarized color sequence of a user callee.

        The callee was walked first (bottom-up call-graph order), its
        sites already colored and recorded; splicing its *top-level*
        sequence here makes a collective hidden two calls down
        participate in the caller's arm comparison.  A recursive callee
        whose cycle reaches a collective contributes an opaque token —
        identical calls still match across arms, differing ones never
        do.  Sequential callers skip splicing: their branches are pruned
        as non-parallel anyway, and the callee's own walk owns any
        intra-callee divergence.
        """
        if self.callee_seqs is None or not self._in_parallel():
            return ()
        if call.name in self.recursive_collective:
            return (("call", call.name),)
        seq = self.callee_seqs.get(call.name)
        if not seq:
            return ()
        if self.serial_depth > 0:
            # master/single around the call: mirror _collective_entry
            # for every site the callee chain reaches
            for site in _entry_sites(seq):
                if site.kind == "mpi":
                    self.report.count_prune(PRUNE_DIV_SERIAL)
                else:
                    self._emit(
                        KIND_BARRIER_DIVERGENCE,
                        call,
                        f"OMP collective `{site.kind}` reached via "
                        f"`{call.name}` under master/single executes on "
                        "a strict subset of the team",
                        [site],
                    )
            return ()
        return seq


def _collective_reaching(summaries: "SummaryTable", program: A.Program) -> FrozenSet[str]:
    """Functions whose transitive callee closure contains a collective
    construct (explicit barrier, worksharing, or an MPI collective)."""
    import networkx as nx

    direct: Set[str] = set()
    for fn in program.functions:
        for node in fn.body.walk():
            if isinstance(node, (A.OmpBarrier, A.OmpFor, A.OmpSections, A.OmpSingle)):
                direct.add(fn.name)
                break
            if isinstance(node, A.CallExpr) and node.name in COLLECTIVE_OPS:
                direct.add(fn.name)
                break
    graph = summaries.callgraph.graph
    reaching = set(direct)
    for name in direct:
        if name in graph:
            reaching |= nx.ancestors(graph, name)
    return frozenset(reaching)


def find_collective_divergence(
    program: A.Program,
    cfgs: Optional[Dict[str, CFG]] = None,
    sites: Optional[Sequence[MPISite]] = None,
    unsafe_funcs: Optional[Set[str]] = None,
    summaries: Optional["SummaryTable"] = None,
) -> CollectiveDivergenceReport:
    """Run the static collective-matching pass over *program*.

    *sites* (from :func:`~.mpi_sites.collect_sites`) cross-checks which
    MPI calls are real collective sites; *unsafe_funcs* (functions
    transitively reachable from a parallel region, the same set the MHP
    facts use) extends the parallel context beyond lexical regions.
    Both are recomputed when omitted.

    *summaries* (a :class:`.summaries.SummaryTable`) turns the pass
    interprocedural: functions are walked in bottom-up call-graph
    order, each function's top-level color sequence is recorded, and
    caller walks splice callee sequences at their call sites — so an
    MPI collective hidden in a helper called under a thread-dependent
    branch unbalances that branch's arms.  The summary taints
    (parameters fed thread-dependent arguments, functions returning
    thread-dependent values) also extend branch-divergence detection
    across calls.
    """
    if cfgs is None:
        cfgs = build_program_cfgs(program)
    if unsafe_funcs is None:
        unsafe_funcs = functions_called_from_parallel(program)
    mpi_nids: Optional[FrozenSet[int]] = None
    if sites is not None:
        mpi_nids = frozenset(
            s.nid for s in sites if s.op in COLLECTIVE_OPS
        )
    report = CollectiveDivergenceReport()

    fn_by_name = {fn.name: fn for fn in program.functions}
    order = list(program.functions)
    callee_seqs: Optional[Dict[str, ColorSeq]] = None
    recursive_collective: FrozenSet[str] = frozenset()
    tainted_params: Dict[str, FrozenSet[str]] = {}
    tainted_calls: FrozenSet[str] = frozenset()
    if summaries is not None:
        cg = summaries.callgraph
        order = [fn_by_name[n] for n in cg.bottom_up if n in fn_by_name]
        order += [fn for fn in program.functions if fn.name not in set(cg.bottom_up)]
        callee_seqs = {}
        recursive_collective = cg.recursive & _collective_reaching(
            summaries, program
        )
        tainted_params = summaries.tainted_params
        tainted_calls = summaries.ret_tainted

    for fn in order:
        cfg = cfgs.get(fn.name)
        taints = (
            branch_taints(
                fn,
                cfg,
                extra_tainted=tainted_params.get(fn.name, frozenset()),
                tainted_calls=tainted_calls,
            )
            if cfg is not None
            else {}
        )
        walker = _DivergenceWalker(
            fn,
            taints,
            report,
            mpi_nids,
            fn.name in unsafe_funcs,
            callee_seqs=callee_seqs,
            recursive_collective=recursive_collective,
        )
        top_seq = walker.seq_stmt(fn.body)
        if callee_seqs is not None and fn.name not in cg.recursive:
            callee_seqs[fn.name] = top_seq
    return report
