"""Static OpenMP data-race detection (LLOV-style).

The paper's static phase only produces *MPI-call* candidates; shared
memory races are left to the dynamic lockset/happens-before phase.
This pass closes the gap at compile time, in four steps:

1. **Classification** — every variable referenced in an ``omp
   parallel``/``omp for`` region is classified as ``shared``,
   ``private``, ``firstprivate``, ``reduction`` or ``loop-index``
   following the default-sharing rules (globals and variables visible
   at region entry are shared; clause lists and in-region declarations
   privatize) — the question LLOV answers from OpenMP clause structure.
2. **Access collection** — read/write sites of shared variables inside
   parallel regions, plus accesses to globals in functions reachable
   from a parallel region (:func:`functions_called_from_parallel`).
3. **Conflict pairing + pruning** — pairs with at least one write are
   pruned by the PR-1 worklist machinery: May-Happen-in-Parallel
   context (regions, barrier phases — including the *implicit* closing
   barriers of non-``nowait`` worksharing constructs — and serialized
   sections), a shared must-held lock or lexical ``omp critical`` /
   ``omp atomic`` guard, ``master``/``single`` serialization, and a
   ZIV/SIV-style subscript disjointness test: ``a[i]`` vs ``a[i]``
   under one ``omp for`` is iteration-disjoint, ``a[i+1]`` write vs
   ``a[i]`` read is loop-carried and stays.
4. **Reporting** — surviving pairs become :class:`StaticRaceCandidate`
   entries whose variables seed the *monitored-variable set* of the
   instrumentation policy, so the dynamic phase watches exactly the
   statically-suspect memory instead of everything (the ITC model's
   monitor-everything behaviour).

Known imprecision, both conservative in opposite directions: array
aliasing through call arguments is ignored (arrays are only tracked by
name), and array accesses with non-constant subscripts in functions
reached from parallel regions are *delegated* to the dynamic phase
(reported as unresolved, never paired) — the caller's distribution
context is invisible, so pairing them would flood the report with
false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .callgraph import CallSite, ParallelContext
    from .summaries import LinForm, SummaryTable

from ...minilang import ast_nodes as A
from ...mpi.constants import LANGUAGE_CONSTANTS
from .. import cfg as C
from .dataflow.engine import solve
from .dataflow.lockstate import LockStateAnalysis, critical_token
from .dataflow.mhp import MHPInfo, compute_mhp, may_happen_in_parallel
from .mpi_sites import fold_static_value, functions_called_from_parallel
from .prunes import count_prune as _count_prune
from .prunes import make_prune_dict, total_pruned as _total_pruned

#: sharing classes (per parallel/worksharing region)
SHARED = "shared"
PRIVATE = "private"
FIRSTPRIVATE = "firstprivate"
REDUCTION = "reduction"
LOOP_INDEX = "loop-index"
#: declaration kind of sequential (function-level) locals
_LOCAL = "local"

#: race-prune categories (surfaced next to the PR-1 dataflow counters)
PRUNE_RACE_MHP = "race-mhp"
PRUNE_RACE_LOCK = "race-lock"
PRUNE_RACE_GUARD = "race-guard"
PRUNE_RACE_SUBSCRIPT = "race-subscript"
#: subscript-disjointness prune of a pair with a summary-instantiated side
PRUNE_RACE_INTERPROC = "race-interproc"
RACE_PRUNE_KINDS = (
    PRUNE_RACE_MHP, PRUNE_RACE_LOCK, PRUNE_RACE_GUARD, PRUNE_RACE_SUBSCRIPT,
    PRUNE_RACE_INTERPROC,
)

#: guard token for ``omp atomic`` (one process-wide lock at runtime)
ATOMIC_TOKEN = "atomic"

#: scope marker for program globals in access keys
GLOBAL_SCOPE = "<global>"


@dataclass
class AccessSite:
    """One read or write of a shared variable in parallel context."""

    nid: int
    var: str
    #: (scope, var) pairing key; scope is ``<global>`` or the function
    #: owning the shared local
    key: Tuple[str, str]
    is_write: bool
    func: str
    loc: str
    #: innermost lexical ``omp parallel`` nid; None = reached only
    #: interprocedurally (function called from a parallel region)
    region: Optional[int]
    is_array: bool = False
    #: raw subscript expression for element accesses (None: scalar or
    #: whole-array use, e.g. an array passed as a call argument)
    subscript: Optional[A.Expr] = None
    #: enclosing ``omp for`` construct nid and its index variable
    omp_for: Optional[int] = None
    loop_var: Optional[str] = None
    #: encounters of that omp for cannot overlap (implicit barrier, or
    #: single encounter outside sequential loops)
    omp_for_serial: bool = True
    #: lexical critical/atomic tokens, widened with must-held locks
    guards: FrozenSet[str] = frozenset()
    in_master: bool = False
    #: (omp single nid, encounters-serial) of the innermost single
    single: Optional[Tuple[int, bool]] = None
    #: interval linear form ``(sym, coeff, lo, hi)`` of the subscript —
    #: set on summary-instantiated sites, where ``subscript`` is None
    lin: Optional[Tuple[Optional[str], int, int, int]] = None
    #: callee the access was instantiated from (None: lexical access)
    via: Optional[str] = None

    @property
    def kind(self) -> str:
        return "write" if self.is_write else "read"

    def describe(self) -> str:
        sub = "[...]" if self.is_array and (
            self.subscript is not None or self.lin is not None
        ) else ""
        where = f"{self.func}:{self.loc}"
        if self.via:
            where = f"{self.via}:{self.loc} (called from {self.func})"
        return f"{self.kind} of {self.var}{sub} at {where}"


@dataclass
class RegionInfo:
    """Per-region variable classification (the LLOV-style table)."""

    nid: int
    func: str
    loc: str
    #: "parallel" or "for"
    kind: str
    sharing: Dict[str, str] = field(default_factory=dict)


@dataclass
class StaticRaceCandidate:
    """A statically possible data race between two access sites."""

    var: str
    scope: str
    a: AccessSite
    b: AccessSite
    reason: str

    def locs(self) -> Tuple[str, ...]:
        return tuple(sorted({self.a.loc, self.b.loc}))

    def __str__(self) -> str:
        return (
            f"[static-race] {self.var}: {self.a.kind}@{self.a.func}:{self.a.loc}"
            f" vs {self.b.kind}@{self.b.func}:{self.b.loc} — {self.reason}"
        )


@dataclass
class StaticRaceReport:
    """Outcome of the static race pass."""

    candidates: List[StaticRaceCandidate] = field(default_factory=list)
    regions: List[RegionInfo] = field(default_factory=list)
    #: every shared access considered for pairing
    accesses: List[AccessSite] = field(default_factory=list)
    #: interprocedural array accesses delegated to the dynamic phase
    unresolved: List[AccessSite] = field(default_factory=list)
    #: formerly-unresolved accesses fully covered by summary
    #: instantiation (every parallel path analyzed statically)
    resolved_interproc: List[AccessSite] = field(default_factory=list)
    #: count of summary-instantiated access sites that joined pairing
    instantiated_sites: int = 0
    pruned: Dict[str, int] = field(
        default_factory=lambda: make_prune_dict(RACE_PRUNE_KINDS)
    )

    @property
    def monitored_vars(self) -> FrozenSet[str]:
        """Variables the dynamic phase should monitor (race-directed
        narrowing of the instrumentation policy)."""
        return frozenset(c.var for c in self.candidates)

    @property
    def total_pruned(self) -> int:
        return _total_pruned(self.pruned)

    def count_prune(self, kind: str) -> None:
        _count_prune(self.pruned, kind)

    def as_dict(self) -> Dict[str, object]:
        def site(s: AccessSite) -> Dict[str, object]:
            row: Dict[str, object] = {
                "var": s.var,
                "kind": s.kind,
                "func": s.func,
                "loc": s.loc,
                "array": s.is_array,
                "interprocedural": s.region is None,
            }
            if s.via is not None:
                row["via"] = s.via
            return row

        return {
            "candidates": [
                {
                    "var": c.var,
                    "scope": c.scope,
                    "a": site(c.a),
                    "b": site(c.b),
                    "reason": c.reason,
                }
                for c in self.candidates
            ],
            "monitored_vars": sorted(self.monitored_vars),
            "accesses": len(self.accesses),
            "unresolved": [site(s) for s in self.unresolved],
            "interproc": {
                "resolved": [site(s) for s in self.resolved_interproc],
                "instantiated_sites": self.instantiated_sites,
            },
            "regions": [
                {
                    "func": r.func,
                    "loc": r.loc,
                    "kind": r.kind,
                    "sharing": dict(sorted(r.sharing.items())),
                }
                for r in self.regions
            ],
            "pruned": dict(self.pruned),
            "total_pruned": self.total_pruned,
        }


# ---------------------------------------------------------------------------
# Classification + access collection
# ---------------------------------------------------------------------------


def _loop_index_name(init: Optional[A.Stmt]) -> Optional[str]:
    if isinstance(init, A.VarDecl):
        return init.name
    if isinstance(init, A.Assign) and isinstance(init.target, A.Name):
        return init.target.ident
    return None


class _FunctionWalker:
    """Collects shared-variable accesses of one function.

    Sharing resolution: scan declaration frames innermost-first.  A name
    declared at or above the innermost region's frame keeps its declared
    class (clause class or ``private`` for in-region declarations); a
    name declared below it was visible at region entry, hence shared;
    an undeclared name is a program global, shared whenever executed in
    parallel context (lexically, or because the whole function is
    reachable from a parallel region).
    """

    def __init__(
        self,
        func: A.FuncDef,
        globals_: Dict[str, bool],
        unsafe: bool,
    ) -> None:
        self.func = func
        self.globals = globals_
        self.unsafe = unsafe
        #: declaration frames: name -> (class, is_array)
        self.frames: List[Dict[str, Tuple[str, bool]]] = [
            {p: (_LOCAL, False) for p in func.params}
        ]
        #: (RegionInfo, index of the frame pushed for the region)
        self.region_stack: List[Tuple[RegionInfo, int]] = []
        #: innermost omp-for RegionInfo (classification sink)
        self.ws_stack: List[RegionInfo] = []
        #: (omp-for nid, loop var, encounters-serial)
        self.ompfor_stack: List[Tuple[int, Optional[str], bool]] = []
        self.guard_stack: List[str] = []
        self.single_stack: List[Tuple[int, bool]] = []
        self.master_depth = 0
        self.loop_depth = 0
        self.accesses: List[AccessSite] = []
        self.unresolved: List[AccessSite] = []
        self.regions: List[RegionInfo] = []

    def run(self) -> None:
        self._walk_block(self.func.body)

    # -- scope machinery ----------------------------------------------------

    def _declare(self, name: str, cls: str, is_array: bool) -> None:
        self.frames[-1][name] = (cls, is_array)

    def _resolve(self, name: str) -> Optional[Tuple[str, bool, bool]]:
        """-> (sharing class, is_array, is_global), or None to skip."""
        if name in LANGUAGE_CONSTANTS:
            return None
        region_frame = self.region_stack[-1][1] if self.region_stack else None
        for idx in range(len(self.frames) - 1, -1, -1):
            if name in self.frames[idx]:
                cls, is_array = self.frames[idx][name]
                if region_frame is None:
                    return (_LOCAL, is_array, False)
                if idx >= region_frame:
                    return (cls, is_array, False)
                # declared outside the innermost region: visible at
                # entry, therefore shared within the region
                return (SHARED, is_array, False)
        if name in self.globals:
            return (SHARED, self.globals[name], True)
        return None  # unknown identifier (builtin value, etc.)

    def _classify_into_regions(self, name: str, cls: str) -> None:
        if self.region_stack:
            self.region_stack[-1][0].sharing.setdefault(name, cls)
        if self.ws_stack:
            self.ws_stack[-1].sharing.setdefault(name, cls)

    # -- access recording ---------------------------------------------------

    def _access(
        self,
        node: A.Expr,
        name: str,
        is_write: bool,
        subscript: Optional[A.Expr] = None,
    ) -> None:
        resolved = self._resolve(name)
        if resolved is None:
            return
        cls, is_array, is_global = resolved
        self._classify_into_regions(name, cls if cls != _LOCAL else SHARED)
        if cls != SHARED:
            return
        in_region = bool(self.region_stack)
        if not in_region and not (self.unsafe and is_global):
            return  # sequential context: cannot race
        ompfor = self.ompfor_stack[-1] if self.ompfor_stack else None
        site = AccessSite(
            nid=node.nid,
            var=name,
            key=(GLOBAL_SCOPE if is_global else self.func.name, name),
            is_write=is_write,
            func=self.func.name,
            loc=f"{node.loc.line}:{node.loc.col}",
            region=self.region_stack[-1][0].nid if in_region else None,
            is_array=is_array,
            subscript=subscript,
            omp_for=ompfor[0] if ompfor else None,
            loop_var=ompfor[1] if ompfor else None,
            omp_for_serial=ompfor[2] if ompfor else True,
            guards=frozenset(self.guard_stack),
            in_master=self.master_depth > 0,
            single=self.single_stack[-1] if self.single_stack else None,
        )
        if (
            site.region is None
            and is_array
            and not isinstance(fold_static_value(subscript) if subscript else None, int)
        ):
            # interprocedural array access with unknown element: the
            # caller's distribution is invisible — delegate to dynamic
            self.unresolved.append(site)
        else:
            self.accesses.append(site)

    def _reads(self, expr: Optional[A.Expr]) -> None:
        if expr is None:
            return
        if isinstance(expr, A.Name):
            self._access(expr, expr.ident, is_write=False)
            return
        if isinstance(expr, A.Index) and isinstance(expr.base, A.Name):
            self._access(expr, expr.base.ident, is_write=False, subscript=expr.index)
            self._reads(expr.index)
            return
        for child in expr.children():
            if isinstance(child, A.Expr):
                self._reads(child)

    # -- traversal ----------------------------------------------------------

    def _walk_block(self, block: A.Block) -> None:
        for stmt in block.stmts:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            self._walk_block(stmt)
        elif isinstance(stmt, A.VarDecl):
            self._reads(stmt.init)
            self._reads(stmt.size)
            cls = PRIVATE if self.region_stack else _LOCAL
            self._declare(stmt.name, cls, stmt.is_array)
            if self.region_stack:
                self._classify_into_regions(stmt.name, PRIVATE)
        elif isinstance(stmt, A.Assign):
            self._reads(stmt.value)
            target = stmt.target
            if isinstance(target, A.Name):
                self._access(target, target.ident, is_write=True)
            elif isinstance(target, A.Index) and isinstance(target.base, A.Name):
                self._reads(target.index)
                self._access(
                    target, target.base.ident, is_write=True,
                    subscript=target.index,
                )
        elif isinstance(stmt, A.If):
            self._reads(stmt.cond)
            self._walk_stmt(stmt.then)
            if stmt.els is not None:
                self._walk_stmt(stmt.els)
        elif isinstance(stmt, A.While):
            self._reads(stmt.cond)
            self.loop_depth += 1
            self._walk_block(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, A.For):
            self.frames.append({})
            if stmt.init is not None:
                self._walk_stmt(stmt.init)
            self._reads(stmt.cond)
            self.loop_depth += 1
            if stmt.step is not None:
                self._walk_stmt(stmt.step)
            self._walk_block(stmt.body)
            self.loop_depth -= 1
            self.frames.pop()
        elif isinstance(stmt, A.OmpParallel):
            self._walk_parallel(stmt)
        elif isinstance(stmt, A.OmpFor):
            self._walk_omp_for(stmt)
        elif isinstance(stmt, A.OmpSections):
            # section-level serialization is the MHP analysis' job
            for section in stmt.sections:
                self._walk_block(section)
        elif isinstance(stmt, A.OmpSingle):
            serial = (self.loop_depth == 0) or not stmt.nowait
            self.single_stack.append((stmt.nid, serial))
            self._walk_block(stmt.body)
            self.single_stack.pop()
        elif isinstance(stmt, A.OmpMaster):
            self.master_depth += 1
            self._walk_block(stmt.body)
            self.master_depth -= 1
        elif isinstance(stmt, A.OmpCritical):
            self.guard_stack.append(critical_token(stmt.name))
            self._walk_block(stmt.body)
            self.guard_stack.pop()
        elif isinstance(stmt, A.OmpAtomic):
            self.guard_stack.append(ATOMIC_TOKEN)
            self._walk_stmt(stmt.stmt)
            self.guard_stack.pop()
        elif isinstance(stmt, A.OmpBarrier):
            pass
        else:
            # leaf statements: ExprStmt, Print, AssertStmt, Return...
            for child in stmt.children():
                if isinstance(child, A.Expr):
                    self._reads(child)

    def _walk_parallel(self, stmt: A.OmpParallel) -> None:
        self._reads(stmt.num_threads)
        info = RegionInfo(
            nid=stmt.nid,
            func=self.func.name,
            loc=f"{stmt.loc.line}:{stmt.loc.col}",
            kind="parallel",
        )
        frame: Dict[str, Tuple[str, bool]] = {}
        for name in stmt.private:
            frame[name] = (PRIVATE, False)
            info.sharing[name] = PRIVATE
        for name in stmt.firstprivate:
            frame[name] = (FIRSTPRIVATE, False)
            info.sharing[name] = FIRSTPRIVATE
        for _op, name in stmt.reductions:
            frame[name] = (REDUCTION, False)
            info.sharing[name] = REDUCTION
        for name in stmt.shared:
            info.sharing[name] = SHARED
        self.regions.append(info)
        self.region_stack.append((info, len(self.frames)))
        self.frames.append(frame)
        self._walk_block(stmt.body)
        self.frames.pop()
        self.region_stack.pop()

    def _walk_omp_for(self, stmt: A.OmpFor) -> None:
        loop = stmt.loop
        loop_var = _loop_index_name(loop.init)
        serial = (self.loop_depth == 0) or not stmt.nowait
        info = RegionInfo(
            nid=stmt.nid,
            func=self.func.name,
            loc=f"{stmt.loc.line}:{stmt.loc.col}",
            kind="for",
        )
        frame: Dict[str, Tuple[str, bool]] = {}
        for name in stmt.private:
            frame[name] = (PRIVATE, False)
            info.sharing[name] = PRIVATE
        for _op, name in stmt.reductions:
            frame[name] = (REDUCTION, False)
            info.sharing[name] = REDUCTION
        if loop_var is not None:
            # the runtime re-declares the index per iteration, so it is
            # private even when a pre-existing variable is reused
            frame[loop_var] = (LOOP_INDEX, False)
            info.sharing[loop_var] = LOOP_INDEX
        self.regions.append(info)
        self.frames.append(frame)
        self.ws_stack.append(info)
        self.ompfor_stack.append((stmt.nid, loop_var, serial))
        self._reads(stmt.chunk)
        if isinstance(loop.init, A.VarDecl):
            self._reads(loop.init.init)
        elif isinstance(loop.init, A.Assign):
            self._reads(loop.init.value)
        self._reads(loop.cond)
        self.loop_depth += 1
        if loop.step is not None:
            self._walk_stmt(loop.step)
        self._walk_block(loop.body)
        self.loop_depth -= 1
        self.ompfor_stack.pop()
        self.ws_stack.pop()
        self.frames.pop()


# ---------------------------------------------------------------------------
# Subscript disjointness (ZIV / SIV)
# ---------------------------------------------------------------------------

_SYM_LOOP = "loop"
_SYM_TID = "tid"


def _linear_form(
    expr: Optional[A.Expr], loop_var: Optional[str]
) -> Optional[Tuple[Optional[str], int, int]]:
    """``expr`` as ``coeff * sym + offset`` over one distribution symbol.

    ``sym`` is None for constants, ``"loop"`` for the enclosing omp-for
    index, ``"tid"`` for ``omp_get_thread_num()``.  Returns None when
    the expression is not linear in a single such symbol.
    """
    if expr is None:
        return None
    folded = fold_static_value(expr)
    if isinstance(folded, int) and not isinstance(folded, bool):
        return (None, 0, folded)
    if isinstance(expr, A.Name):
        if loop_var is not None and expr.ident == loop_var:
            return (_SYM_LOOP, 1, 0)
        return None
    if isinstance(expr, A.CallExpr):
        if expr.name == "omp_get_thread_num" and not expr.args:
            return (_SYM_TID, 1, 0)
        return None
    if isinstance(expr, A.Unary) and expr.op == "-":
        form = _linear_form(expr.operand, loop_var)
        if form is None:
            return None
        return (form[0], -form[1], -form[2])
    if isinstance(expr, A.Binary) and expr.op in ("+", "-", "*"):
        left = _linear_form(expr.left, loop_var)
        right = _linear_form(expr.right, loop_var)
        if left is None or right is None:
            return None
        (ls, lc, lo), (rs, rc, ro) = left, right
        if expr.op == "*":
            if ls is None:
                return (rs, lo * rc, lo * ro)
            if rs is None:
                return (ls, lc * ro, lo * ro)
            return None  # sym * sym: not linear
        sign = 1 if expr.op == "+" else -1
        if ls is None:
            return (rs, sign * rc, lo + sign * ro)
        if rs is None or rs == ls:
            return (ls, lc + sign * rc, lo + sign * ro)
        return None  # two distinct symbols
    return None


def _interval_form(
    site: AccessSite,
) -> Optional[Tuple[Optional[str], int, int, int]]:
    """``(sym, coeff, lo, hi)``: the subscript is ``coeff*sym + d`` with
    ``d`` in ``[lo, hi]``.  Lexical sites derive a point interval from
    their raw subscript; summary-instantiated sites carry ``lin``."""
    if site.lin is not None:
        return site.lin
    form = _linear_form(site.subscript, site.loop_var)
    if form is None:
        return None
    sym, coeff, offset = form
    return (sym, coeff, offset, offset)


def _nonzero_multiple_in(coeff: int, lo: int, hi: int) -> bool:
    """Is some nonzero multiple of ``coeff`` inside ``[lo, hi]``?"""
    magnitude = abs(coeff)
    return hi // magnitude >= 1 or -((-lo) // magnitude) <= -1


def _subscripts_disjoint(
    a: AccessSite,
    b: AccessSite,
    mhp_a: Optional[MHPInfo],
    mhp_b: Optional[MHPInfo],
    overlap_unsafe: bool,
) -> bool:
    """Can the two element accesses provably never touch one address?

    Generalized over interval forms: ``c*sym + [lo, hi]``.  Two same-
    symbol forms with equal nonzero coefficient collide only when
    ``c * (i - i')`` can equal some delta difference, i.e. when a
    nonzero multiple of ``c`` falls in ``[lo_b - hi_a, hi_b - lo_a]``
    (the zero multiple is the same iteration/thread — program-ordered).
    Point forms reduce to the historical ZIV/SIV tests.
    """
    fa = _interval_form(a)
    fb = _interval_form(b)
    if fa is None or fb is None:
        return False
    (sa, ca, la, ha), (sb, cb, lb, hb) = fa, fb
    if sa is None and sb is None:
        return ha < lb or hb < la  # ZIV: disjoint constant ranges
    if overlap_unsafe:
        return False  # overlapping region instances repeat the symbols
    if sa == _SYM_LOOP and sb == _SYM_LOOP:
        # SIV within one omp for: iteration i only touches c*i+[lo,hi],
        # and only cross-iteration overlap races (same iteration = same
        # thread = program order).
        return (
            a.omp_for is not None
            and a.omp_for == b.omp_for
            and a.omp_for_serial
            and b.omp_for_serial
            and ca == cb
            and ca != 0
            and not _nonzero_multiple_in(ca, lb - ha, hb - la)
        )
    if sa == _SYM_TID and sb == _SYM_TID:
        # each thread of one team owns its c*tid+[lo,hi] slice
        return (
            mhp_a is not None
            and mhp_b is not None
            and len(mhp_a.regions) == 1
            and mhp_a.regions == mhp_b.regions
            and ca == cb
            and ca != 0
            and not _nonzero_multiple_in(ca, lb - ha, hb - la)
        )
    return False


# ---------------------------------------------------------------------------
# Pairing
# ---------------------------------------------------------------------------


def _serialized_by_construct(
    a: AccessSite,
    b: AccessSite,
    mhp_a: Optional[MHPInfo],
    mhp_b: Optional[MHPInfo],
    overlap_unsafe: bool,
) -> bool:
    """master/master and same-serial-single pairs run on one thread."""
    if overlap_unsafe or mhp_a is None or mhp_b is None:
        return False
    if len(mhp_a.regions) != 1 or mhp_a.regions != mhp_b.regions:
        return False
    if a.in_master and b.in_master:
        return True  # both on thread 0 of the same (single-level) team
    if (
        a.single is not None
        and a.single == b.single
        and a.single[1]  # encounters provably serial
    ):
        return True
    return False


def _pair_reason(a: AccessSite, b: AccessSite) -> str:
    kinds = f"{a.kind}/{b.kind}"
    if a.is_array or b.is_array:
        def has_element(s: AccessSite) -> bool:
            return s.subscript is not None or s.lin is not None

        if has_element(a) and has_element(b):
            detail = "subscripts not provably disjoint"
        else:
            detail = "whole-array use overlaps element accesses"
        reason = f"unsynchronized {kinds} of shared array ({detail})"
    else:
        reason = f"unsynchronized {kinds} of shared variable"
    if a.region is None or b.region is None:
        reason += "; reached from a parallel region"
    via = sorted({v for v in (a.via, b.via) if v})
    if via:
        reason += "; instantiated from " + ", ".join(via)
    return reason


def find_races(
    program: A.Program,
    cfgs: Optional[Dict[str, C.CFG]] = None,
    unsafe_funcs: Optional[Set[str]] = None,
    summaries: Optional["SummaryTable"] = None,
    interprocedural: bool = True,
) -> StaticRaceReport:
    """Run the full static race pass over *program*.

    With *cfgs* supplied, the must-held lock-state analysis widens each
    access's lexical guard set path-sensitively (a user lock taken three
    statements earlier still serializes).

    With *summaries* (or by default, computed on the fly while
    *interprocedural* is true), every parallel call site instantiates
    the callee's parameterized array accesses under the caller context,
    so previously-``unresolved`` interprocedural accesses join pairing
    with interval subscript forms, and the MHP test uses resolved
    call-site contexts for regionless sites.  Unresolved accesses whose
    every parallel path was analyzed move to ``resolved_interproc``;
    anything that escaped instantiation anywhere stays delegated to the
    dynamic phase.
    """
    unsafe = (
        set(unsafe_funcs)
        if unsafe_funcs is not None
        else functions_called_from_parallel(program)
    )
    mhp = compute_mhp(program, record_all=True, implicit_ws_barriers=True)
    globals_ = {decl.name: decl.is_array for decl in program.globals}

    if summaries is None and interprocedural:
        from .summaries import compute_summaries

        summaries = compute_summaries(program)

    report = StaticRaceReport()
    user_funcs = frozenset(fn.name for fn in program.functions)
    for fn in program.functions:
        walker = _FunctionWalker(fn, globals_, unsafe=fn.name in unsafe)
        walker.run()
        report.accesses.extend(walker.accesses)
        report.unresolved.extend(walker.unresolved)
        report.regions.extend(walker.regions)
        if cfgs and fn.name in cfgs and walker.accesses:
            _widen_guards(walker.accesses, cfgs[fn.name], user_funcs)

    contexts = None
    if summaries is not None:
        from .callgraph import resolve_parallel_contexts

        contexts = resolve_parallel_contexts(summaries.callgraph, mhp)
        _instantiate_summaries(report, summaries, cfgs, user_funcs)

    by_key: Dict[Tuple[str, str], List[AccessSite]] = {}
    for site in report.accesses:
        by_key.setdefault(site.key, []).append(site)

    for key, sites in sorted(by_key.items()):
        if not any(s.is_write for s in sites):
            continue  # read-only sharing is race-free
        for i in range(len(sites)):
            for j in range(i, len(sites)):
                a, b = sites[i], sites[j]
                if not (a.is_write or b.is_write):
                    continue
                _check_pair(report, key, a, b, mhp, unsafe, contexts)
    return report


def _instantiate_summaries(
    report: StaticRaceReport,
    table: "SummaryTable",
    cfgs: Optional[Dict[str, C.CFG]],
    user_funcs: FrozenSet[str],
) -> None:
    """Materialize summary accesses at parallel call sites and settle
    which unresolved accesses are now fully covered."""
    cg = table.callgraph
    instantiated: Dict[int, int] = {}
    escaped = set(table.escaped)
    by_caller: Dict[str, List[AccessSite]] = {}

    for cs in cg.sites:
        if cs.region is None or cs.spawned:
            continue
        summary = table.summary_for(cs.callee)
        if summary is None:
            continue
        for acc in summary.accesses:
            lin = _instantiate_form(acc.form, summary.params, cs)
            if lin is None:
                escaped.add(acc.nid)
                continue
            site = AccessSite(
                nid=cs.nid,
                var=acc.var,
                key=acc.key,
                is_write=acc.is_write,
                func=cs.caller,
                loc=acc.loc,
                region=cs.region,
                is_array=True,
                subscript=None,
                omp_for=cs.omp_for,
                loop_var=cs.loop_var,
                omp_for_serial=cs.omp_for_serial,
                guards=acc.guards | cs.guards,
                in_master=cs.in_master,
                single=cs.single,
                lin=lin,
                via=acc.func,
            )
            instantiated[acc.nid] = instantiated.get(acc.nid, 0) + 1
            by_caller.setdefault(cs.caller, []).append(site)

    for fname, sites in by_caller.items():
        # must-held locks at the call statement persist through the call
        # only when the whole callee chain leaves lock state alone
        if cfgs and fname in cfgs:
            transparent = [
                s for s in sites if s.via in table.lock_transparent
            ]
            if transparent:
                _widen_guards(transparent, cfgs[fname], user_funcs)
        report.accesses.extend(sites)
        report.instantiated_sites += len(sites)

    still_unresolved: List[AccessSite] = []
    for site in report.unresolved:
        covered = (
            instantiated.get(site.nid, 0) >= 1
            and site.nid not in escaped
            and site.func not in cg.spawn_reachable
            and site.func not in cg.recursive
        )
        if covered:
            report.resolved_interproc.append(site)
        else:
            still_unresolved.append(site)
    report.unresolved = still_unresolved


def _instantiate_form(
    form: "LinForm",
    params: Tuple[str, ...],
    cs: "CallSite",
) -> Optional[Tuple[Optional[str], int, int, int]]:
    """Rewrite a callee-parameter form under the call-site context."""
    from .summaries import TID_BASE

    if form.base is None:
        return (None, 0, form.lo, form.hi)
    if form.base == TID_BASE:
        return (_SYM_TID, form.coeff, form.lo, form.hi)
    try:
        position = params.index(form.base)
    except ValueError:
        return None
    if position >= len(cs.args):
        return None
    arg = _linear_form(cs.args[position], cs.loop_var)
    if arg is None:
        return None
    sym, arg_coeff, arg_offset = arg
    shift = form.coeff * arg_offset
    if sym is None:
        return (None, 0, shift + form.lo, shift + form.hi)
    return (sym, form.coeff * arg_coeff, shift + form.lo, shift + form.hi)


def _widen_guards(
    accesses: List[AccessSite], cfg: C.CFG, user_funcs: FrozenSet[str]
) -> None:
    """Merge must-held lock tokens into each access's guard set."""
    result = solve(cfg, LockStateAnalysis(user_funcs))
    node_map = _ast_node_map(cfg)
    for site in accesses:
        node = node_map.get(site.nid)
        if node is None:
            continue
        held = result.fact_before(node)
        if held:
            site.guards = site.guards | held


def _ast_node_map(cfg: C.CFG) -> Dict[int, C.CFGNode]:
    """Tightest CFG node containing each AST sub-node, by nid.

    Same construction-order trick as the dataflow facts' call map, but
    for arbitrary nodes: compound nodes precede their body statements,
    so letting later nodes win keeps the innermost bracket.
    """
    keep = (
        C.STMT, C.BRANCH, C.LOOP_HEAD,
        C.OMP_PARALLEL_BEGIN, C.OMP_WS_BEGIN, C.OMP_CRITICAL_BEGIN,
    )
    out: Dict[int, C.CFGNode] = {}
    for node in cfg.linearize():
        if node.kind not in keep or node.ast is None:
            continue
        for sub in node.ast.walk():
            out[sub.nid] = node
    return out


def _check_pair(
    report: StaticRaceReport,
    key: Tuple[str, str],
    a: AccessSite,
    b: AccessSite,
    mhp: Dict[int, MHPInfo],
    unsafe: Set[str],
    contexts: Optional[Dict[str, "ParallelContext"]] = None,
) -> None:
    mhp_a, mhp_b = mhp.get(a.nid), mhp.get(b.nid)
    if not may_happen_in_parallel(mhp_a, mhp_b, unsafe, contexts):
        report.count_prune(PRUNE_RACE_MHP)
        return
    if a.guards & b.guards:
        report.count_prune(PRUNE_RACE_LOCK)
        return
    overlap_unsafe = a.func in unsafe or b.func in unsafe
    if _serialized_by_construct(a, b, mhp_a, mhp_b, overlap_unsafe):
        report.count_prune(PRUNE_RACE_GUARD)
        return
    if (
        a.is_array
        and b.is_array
        and (a.subscript is not None or a.lin is not None)
        and (b.subscript is not None or b.lin is not None)
        and _subscripts_disjoint(a, b, mhp_a, mhp_b, overlap_unsafe)
    ):
        report.count_prune(
            PRUNE_RACE_INTERPROC if (a.via or b.via) else PRUNE_RACE_SUBSCRIPT
        )
        return
    scope, var = key
    report.candidates.append(
        StaticRaceCandidate(
            var=var, scope=scope, a=a, b=b, reason=_pair_reason(a, b)
        )
    )
