"""Static thread-level checking.

Infers the thread-support level a program requests at initialization
and cross-checks it against the MPI sites found in hybrid context.
This is the compile-time half of the Initialization-Violation rule: a
program that requests ``MPI_THREAD_SINGLE`` (or calls plain
``MPI_Init``) yet performs MPI calls inside ``omp parallel`` regions is
statically unsafe — no execution is needed to know it.

The check is interprocedural for free: :func:`~.mpi_sites.collect_sites`
marks sites in functions reachable from parallel regions as hybrid and
merges the master/critical guards holding on *every* parallel path into
their function (the call-graph guard meet), so an MPI call reached only
via a helper is checked for funneled/serialized compliance exactly like
a lexical one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ...minilang import ast_nodes as A
from ...mpi.constants import (
    MPI_THREAD_FUNNELED,
    MPI_THREAD_MULTIPLE,
    MPI_THREAD_SERIALIZED,
    MPI_THREAD_SINGLE,
    THREAD_LEVEL_NAMES,
)
from .mpi_sites import MPISite, fold_static_value


@dataclass
class StaticWarning:
    """A compile-time diagnosis of an unsafe hybrid programming style."""

    kind: str       # e.g. 'initialization', 'funneled-non-master'
    message: str
    loc: str = ""
    sites: List[MPISite] = field(default_factory=list)

    def __str__(self) -> str:
        where = f" at {self.loc}" if self.loc else ""
        return f"[static:{self.kind}]{where} {self.message}"


@dataclass
class ThreadLevelInfo:
    """Statically inferred initialization facts."""

    declared_level: Optional[int]  # None when not statically known
    init_loc: str = ""
    uses_init_thread: bool = False

    @property
    def level_name(self) -> str:
        if self.declared_level is None:
            return "<dynamic>"
        return THREAD_LEVEL_NAMES.get(self.declared_level, str(self.declared_level))


def infer_thread_level(program: A.Program) -> ThreadLevelInfo:
    """Find the program's MPI initialization call and its requested level."""
    for node in program.walk():
        if not isinstance(node, A.CallExpr):
            continue
        name = node.name.removeprefix("h")
        if name == "mpi_init":
            return ThreadLevelInfo(
                MPI_THREAD_SINGLE, f"{node.loc.line}:{node.loc.col}", False
            )
        if name == "mpi_init_thread":
            level = fold_static_value(node.args[0]) if node.args else None
            return ThreadLevelInfo(
                level if isinstance(level, int) else None,
                f"{node.loc.line}:{node.loc.col}",
                True,
            )
    return ThreadLevelInfo(None)


def check_thread_level(
    program: A.Program, sites: List[MPISite]
) -> List[StaticWarning]:
    """Static initialization-rule warnings."""
    info = infer_thread_level(program)
    warnings: List[StaticWarning] = []
    hybrid_sites = [s for s in sites if s.in_parallel and s.instrumentable]
    if not hybrid_sites:
        return warnings

    if info.declared_level is None and not info.uses_init_thread:
        warnings.append(
            StaticWarning(
                "initialization",
                "program performs MPI calls in omp parallel regions but was "
                "never found to initialize MPI",
                sites=hybrid_sites,
            )
        )
        return warnings

    level = info.declared_level
    if level == MPI_THREAD_SINGLE:
        warnings.append(
            StaticWarning(
                "initialization",
                f"{info.level_name} granted but {len(hybrid_sites)} MPI call(s) "
                "occur inside omp parallel regions — only the main thread may "
                "call MPI",
                loc=info.init_loc,
                sites=hybrid_sites,
            )
        )
    elif level == MPI_THREAD_FUNNELED:
        unguarded = [s for s in hybrid_sites if not s.in_master]
        if unguarded:
            warnings.append(
                StaticWarning(
                    "funneled-non-master",
                    f"{info.level_name} granted but {len(unguarded)} hybrid MPI "
                    "call(s) are not guarded by omp master/single",
                    loc=info.init_loc,
                    sites=unguarded,
                )
            )
    elif level == MPI_THREAD_SERIALIZED:
        unguarded = [
            s for s in hybrid_sites if not s.criticals and not s.in_master
        ]
        if len(unguarded) >= 2:
            warnings.append(
                StaticWarning(
                    "serialized-concurrency",
                    f"{info.level_name} granted but {len(unguarded)} hybrid MPI "
                    "call sites carry no mutual exclusion — concurrent MPI "
                    "calls are possible; runtime checking required",
                    loc=info.init_loc,
                    sites=unguarded,
                )
            )
    elif level is None:
        warnings.append(
            StaticWarning(
                "dynamic-thread-level",
                "requested thread level is not statically known; runtime "
                "checking required",
                loc=info.init_loc,
                sites=hybrid_sites,
            )
        )
    # MPI_THREAD_MULTIPLE: statically fine; dynamic rules still apply.
    return warnings
