"""Context-recording call graph of a mini-language program.

Every static pass that looks across function boundaries needs the same
three facts about a call: *who* calls *whom*, *where* (which OpenMP
context brackets the call expression), and *how* (the argument
expressions, for summary instantiation).  This module computes them
once:

* :class:`CallSite` — one user-function call expression with its full
  lexical OpenMP context (innermost parallel region, worksharing loop,
  master/single nesting, critical/atomic guards) and the argument
  expressions;
* :class:`CallGraph` — the program's call multigraph with recursion
  detection (nontrivial SCCs and self-loops), a bottom-up function
  order for summary composition, spawn-reachability, and the
  parallel-guard meet used to check funneled/serialized compliance of
  MPI calls reached only via helpers;
* :func:`resolve_parallel_contexts` — for functions whose *entire*
  parallel execution funnels through one transparent call site, the
  MHP context of that site, so the MHP analysis can replace its
  "context unknown" answer with the caller's context.

The graph treats ``thread_spawn("f")`` as a call edge flagged
``spawned``: the target runs concurrently with everything after the
spawn, so nothing about it (or its callees) may be context-resolved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import networkx as nx

from ...minilang import ast_nodes as A
from .dataflow.lockstate import critical_token
from .dataflow.mhp import MHPInfo

#: guard token for ``omp atomic`` (mirrors :mod:`.races`)
_ATOMIC_TOKEN = "atomic"


@dataclass(frozen=True)
class CallSite:
    """One call of a user-defined function, with lexical OpenMP context."""

    caller: str
    callee: str
    nid: int                        # CallExpr node id
    loc: str                        # "line:col"
    args: Tuple[A.Expr, ...]
    #: innermost lexical ``omp parallel`` nid (None: sequential context)
    region: Optional[int]
    parallel_depth: int
    in_master: bool                 # inside omp master *or* omp single
    #: inside ``omp master`` proper (always the same thread, so the
    #: chain is serialized even when encounters repeat in a loop)
    master_only: bool
    criticals: Tuple[str, ...]      # enclosing critical-section names
    guards: FrozenSet[str]          # critical/atomic guard tokens
    #: enclosing ``omp for`` nid, its index variable and encounter
    #: serialization (same convention as :class:`..races.AccessSite`)
    omp_for: Optional[int] = None
    loop_var: Optional[str] = None
    omp_for_serial: bool = True
    #: (omp single nid, encounters-serial) of the innermost single
    single: Optional[Tuple[int, bool]] = None
    #: the call is a ``thread_spawn`` of the callee
    spawned: bool = False

    @property
    def serialized(self) -> bool:
        """The whole call runs on one thread per encounter, and the
        encounters themselves are ordered.

        ``omp master`` always qualifies (one fixed thread).  ``omp
        single`` qualifies only when its encounters are serialized — a
        ``nowait`` single inside a loop may have different threads in
        different encounters concurrently, so it does *not*.
        """
        return self.master_only or (self.single is not None and self.single[1])


@dataclass(frozen=True)
class ParallelContext:
    """Resolved execution context of a context-transparent function."""

    info: MHPInfo       # MHP context of the unique parallel call site
    serialized: bool    # call chain passes through master/serial-single
    nid: int            # call-site nid the context was taken from


@dataclass(frozen=True)
class GuardContext:
    """Meet of master/critical guards over every parallel call path."""

    in_master: bool
    criticals: FrozenSet[str]

    def meet(self, other: "GuardContext") -> "GuardContext":
        return GuardContext(
            self.in_master and other.in_master,
            self.criticals & other.criticals,
        )


#: bottom element of the guard meet-lattice (an unguarded path exists);
#: the top element ("no path seen yet") is represented as ``None``
GUARD_BOTTOM = GuardContext(False, frozenset())


def _loop_index_name(init: Optional[A.Stmt]) -> Optional[str]:
    if isinstance(init, A.VarDecl):
        return init.name
    if isinstance(init, A.Assign) and isinstance(init.target, A.Name):
        return init.target.ident
    return None


class _CallSiteWalker:
    """Collects every user-function call of one function, in context."""

    def __init__(self, func: A.FuncDef, user_funcs: FrozenSet[str]) -> None:
        self.func = func
        self.user_funcs = user_funcs
        self.sites: List[CallSite] = []
        self.region_stack: List[int] = []
        self.master_depth = 0       # omp master or omp single
        self.strict_master_depth = 0  # omp master only
        self.criticals: List[str] = []
        self.guard_stack: List[str] = []
        self.ompfor_stack: List[Tuple[int, Optional[str], bool]] = []
        self.single_stack: List[Tuple[int, bool]] = []
        self.loop_depth = 0

    def run(self) -> List[CallSite]:
        self._walk_stmt(self.func.body)
        return self.sites

    def _record(self, call: A.CallExpr, callee: str, spawned: bool) -> None:
        ompfor = self.ompfor_stack[-1] if self.ompfor_stack else None
        self.sites.append(
            CallSite(
                caller=self.func.name,
                callee=callee,
                nid=call.nid,
                loc=f"{call.loc.line}:{call.loc.col}",
                args=tuple(call.args),
                region=self.region_stack[-1] if self.region_stack else None,
                parallel_depth=len(self.region_stack),
                in_master=self.master_depth > 0,
                master_only=self.strict_master_depth > 0,
                criticals=tuple(self.criticals),
                guards=frozenset(self.guard_stack),
                omp_for=ompfor[0] if ompfor else None,
                loop_var=ompfor[1] if ompfor else None,
                omp_for_serial=ompfor[2] if ompfor else True,
                single=self.single_stack[-1] if self.single_stack else None,
                spawned=spawned,
            )
        )

    def _walk_expr(self, expr: A.Expr) -> None:
        if isinstance(expr, A.CallExpr):
            for arg in expr.args:
                self._walk_expr(arg)
            if expr.name in self.user_funcs:
                self._record(expr, expr.name, spawned=False)
            elif (
                expr.name == "thread_spawn"
                and expr.args
                and isinstance(expr.args[0], A.StrLit)
                and expr.args[0].value in self.user_funcs
            ):
                self._record(expr, expr.args[0].value, spawned=True)
            return
        for child in expr.children():
            if isinstance(child, A.Expr):
                self._walk_expr(child)

    def _walk_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            for sub in stmt.stmts:
                self._walk_stmt(sub)
            return
        if isinstance(stmt, A.OmpParallel):
            if stmt.num_threads is not None:
                self._walk_expr(stmt.num_threads)
            self.region_stack.append(stmt.nid)
            self._walk_stmt(stmt.body)
            self.region_stack.pop()
            return
        if isinstance(stmt, A.OmpFor):
            loop = stmt.loop
            serial = (self.loop_depth == 0) or not stmt.nowait
            self.ompfor_stack.append(
                (stmt.nid, _loop_index_name(loop.init), serial)
            )
            self.loop_depth += 1
            self._walk_stmt(loop)
            self.loop_depth -= 1
            self.ompfor_stack.pop()
            return
        if isinstance(stmt, A.OmpSingle):
            serial = (self.loop_depth == 0) or not stmt.nowait
            self.single_stack.append((stmt.nid, serial))
            self.master_depth += 1
            self._walk_stmt(stmt.body)
            self.master_depth -= 1
            self.single_stack.pop()
            return
        if isinstance(stmt, A.OmpMaster):
            self.master_depth += 1
            self.strict_master_depth += 1
            self._walk_stmt(stmt.body)
            self.strict_master_depth -= 1
            self.master_depth -= 1
            return
        if isinstance(stmt, A.OmpCritical):
            self.criticals.append(stmt.name or "<anonymous>")
            self.guard_stack.append(critical_token(stmt.name))
            self._walk_stmt(stmt.body)
            self.guard_stack.pop()
            self.criticals.pop()
            return
        if isinstance(stmt, A.OmpAtomic):
            self.guard_stack.append(_ATOMIC_TOKEN)
            self._walk_stmt(stmt.stmt)
            self.guard_stack.pop()
            return
        if isinstance(stmt, (A.While, A.For)):
            self.loop_depth += 1
            for child in stmt.children():
                if isinstance(child, A.Expr):
                    self._walk_expr(child)
                elif isinstance(child, A.Stmt):
                    self._walk_stmt(child)
            self.loop_depth -= 1
            return
        for child in stmt.children():
            if isinstance(child, A.Expr):
                self._walk_expr(child)
            elif isinstance(child, A.Stmt):
                self._walk_stmt(child)


#: OpenMP constructs that make a function body context-opaque for MHP
#: resolution: its execution is not a plain single-threaded inlining of
#: the call site (it forks, synchronizes, or distributes work).
_CONTEXT_OPAQUE = (
    A.OmpParallel, A.OmpBarrier, A.OmpFor, A.OmpSections, A.OmpSingle,
)


@dataclass
class CallGraph:
    """The program call graph plus everything derived from it."""

    sites: List[CallSite]
    user_funcs: FrozenSet[str]
    graph: nx.DiGraph
    #: members of nontrivial SCCs or self-loops
    recursive: FrozenSet[str]
    #: functions reverse-topologically ordered (callees before callers);
    #: SCC members appear in arbitrary relative order
    bottom_up: List[str]
    #: functions transitively reachable from a ``thread_spawn`` target
    spawn_reachable: FrozenSet[str]
    #: functions reachable (transitively) from inside a parallel region
    reached_from_parallel: FrozenSet[str]
    sites_by_callee: Dict[str, List[CallSite]] = field(default_factory=dict)
    sites_by_caller: Dict[str, List[CallSite]] = field(default_factory=dict)
    #: body-opacity per function (contains parallel/barrier/worksharing)
    context_opaque: FrozenSet[str] = frozenset()


def build_callgraph(program: A.Program) -> CallGraph:
    """Collect every user-call site and derive the graph facts."""
    user_funcs = frozenset(fn.name for fn in program.functions)
    sites: List[CallSite] = []
    for fn in program.functions:
        sites.extend(_CallSiteWalker(fn, user_funcs).run())

    graph = nx.DiGraph()
    graph.add_nodes_from(user_funcs)
    by_callee: Dict[str, List[CallSite]] = {}
    by_caller: Dict[str, List[CallSite]] = {}
    for cs in sites:
        graph.add_edge(cs.caller, cs.callee)
        by_callee.setdefault(cs.callee, []).append(cs)
        by_caller.setdefault(cs.caller, []).append(cs)

    recursive: Set[str] = set()
    for scc in nx.strongly_connected_components(graph):
        if len(scc) > 1:
            recursive |= scc
    recursive |= {cs.caller for cs in sites if cs.caller == cs.callee}

    # Bottom-up order over the condensation (callees first).
    condensation = nx.condensation(graph)
    bottom_up: List[str] = []
    for comp in reversed(list(nx.topological_sort(condensation))):
        bottom_up.extend(sorted(condensation.nodes[comp]["members"]))

    spawn_roots = {cs.callee for cs in sites if cs.spawned}
    spawn_reachable: Set[str] = set()
    for root in spawn_roots:
        spawn_reachable.add(root)
        spawn_reachable |= nx.descendants(graph, root)

    parallel_roots = {
        cs.callee for cs in sites if cs.region is not None or cs.spawned
    }
    reached: Set[str] = set()
    for root in parallel_roots:
        reached.add(root)
        reached |= nx.descendants(graph, root)

    opaque = frozenset(
        fn.name
        for fn in program.functions
        if any(isinstance(node, _CONTEXT_OPAQUE) for node in fn.body.walk())
        or any(
            isinstance(node, A.CallExpr) and node.name == "thread_spawn"
            for node in fn.body.walk()
        )
    )

    return CallGraph(
        sites=sites,
        user_funcs=user_funcs,
        graph=graph,
        recursive=frozenset(recursive),
        bottom_up=bottom_up,
        spawn_reachable=frozenset(spawn_reachable),
        reached_from_parallel=frozenset(reached),
        sites_by_callee=by_callee,
        sites_by_caller=by_caller,
        context_opaque=opaque,
    )


def parallel_guard_contexts(cg: CallGraph) -> Dict[str, GuardContext]:
    """Guards that hold on *every* path into each parallel-reached
    function: the meet, over all call sites executed in parallel
    context, of the master/critical guards bracketing the site (plus the
    guards inherited by the caller itself when the caller is only
    reached interprocedurally).

    An MPI site reached only via helpers inherits these guards, which is
    what lets the thread-level checker prove funneled/serialized
    compliance across calls — and what keeps it honest: one unguarded
    parallel path drives the meet to bottom.
    """
    ctx: Dict[str, Optional[GuardContext]] = {
        fname: None for fname in cg.reached_from_parallel
    }
    changed = True
    iterations = 0
    while changed and iterations < len(cg.user_funcs) + 2:
        changed = False
        iterations += 1
        for cs in cg.sites:
            if cs.callee not in ctx:
                continue
            if cs.spawned:
                contribution: Optional[GuardContext] = GUARD_BOTTOM
            elif cs.region is not None:
                contribution = GuardContext(
                    cs.in_master, frozenset(cs.criticals)
                )
            elif cs.caller in ctx:
                caller_ctx = ctx[cs.caller]
                if caller_ctx is None:
                    continue  # caller's own paths not resolved yet
                contribution = GuardContext(
                    caller_ctx.in_master or cs.in_master,
                    caller_ctx.criticals | frozenset(cs.criticals),
                )
            else:
                continue  # sequential call site: no parallel path
            current = ctx[cs.callee]
            new = contribution if current is None else current.meet(contribution)
            if new != current:
                ctx[cs.callee] = new
                changed = True
    # A guard still at top after the fixpoint has no parallel entry path
    # the fixpoint could see — collapse to bottom rather than overclaim.
    return {
        fname: (GUARD_BOTTOM if g is None else g) for fname, g in ctx.items()
    }


def resolve_parallel_contexts(
    cg: CallGraph, mhp: Dict[int, MHPInfo]
) -> Dict[str, ParallelContext]:
    """Functions whose parallel execution funnels through exactly one
    call site, mapped to that site's MHP context.

    A function qualifies when it has exactly one call site in the whole
    program, is not recursive, not spawn-reachable, and its body is
    context-transparent (no parallel regions, barriers or worksharing
    constructs of its own).  Chains resolve transitively: if the unique
    call site is itself in a context-resolved function, the resolved
    caller context is substituted and ``serialized`` flags accumulate
    along the chain.  The result is fully resolved — a context's
    ``info`` either carries lexical regions or belongs to a function
    with no context entry.
    """
    candidates: Dict[str, CallSite] = {}
    for fname in cg.user_funcs:
        callers = cg.sites_by_callee.get(fname, [])
        if len(callers) != 1:
            continue
        (cs,) = callers
        if (
            cs.spawned
            or fname in cg.recursive
            or fname in cg.spawn_reachable
            or fname in cg.context_opaque
        ):
            continue
        candidates[fname] = cs

    resolved: Dict[str, ParallelContext] = {}

    def resolve(fname: str, seen: FrozenSet[str]) -> Optional[ParallelContext]:
        if fname in resolved:
            return resolved[fname]
        cs = candidates.get(fname)
        if cs is None or fname in seen:
            return None
        info = mhp.get(cs.nid)
        if info is None:
            return None
        if not info.regions:
            # the unique caller is itself only interprocedurally
            # parallel: chain upward.  The root call site (the one with
            # lexical regions) becomes the context identity, so every
            # function on one chain shares a ``nid``.
            parent = resolve(cs.caller, seen | {fname})
            if parent is None:
                return None
            ctx = ParallelContext(
                info=parent.info,
                serialized=cs.serialized or parent.serialized,
                nid=parent.nid,
            )
        else:
            ctx = ParallelContext(
                info=info, serialized=cs.serialized, nid=cs.nid
            )
        resolved[fname] = ctx
        return ctx

    for fname in candidates:
        resolve(fname, frozenset())
    return resolved
