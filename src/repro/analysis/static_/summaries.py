"""Context-sensitive interprocedural function summaries.

The static passes of PR-1..6 are precise *within* a function but fall
back to worst-case assumptions across calls: interprocedural array
accesses are delegated wholesale to the dynamic phase, the MHP answer
for cross-function pairs is "maybe", and a helper call kills every
tracked lock.  This module computes, in one bottom-up pass over the
(cycle-collapsed) call graph, a :class:`FunctionSummary` per function:

* **parameterized array accesses** — every would-be-``unresolved``
  shared-array access with its subscript rewritten as a linear form
  ``coeff * param + [lo, hi]`` over the function's formal parameters
  (or the thread id), composed transitively through sequential call
  chains so a three-level helper stack still yields a form over the
  outermost helper's parameters;
* **lock transparency** — whether a call to the function can disturb
  user-lock state (drives the lock-state transfer function);
* **thread-dependence taint** — which formal parameters receive
  thread-dependent arguments at some call site (top-down fixpoint) and
  which functions *return* thread-dependent values (bottom-up), so the
  divergence pass sees taint flow in and out of calls.

Instantiation at parallel call sites is the consumer's job
(:func:`..races.find_races` turns summary accesses into pairable
:class:`..races.AccessSite` rows; :mod:`..collectives` splices callee
collective sequences).  Soundness contract: any access whose form could
not be computed, composed, or instantiated on **every** parallel path is
recorded in :attr:`SummaryTable.escaped` and stays delegated to the
dynamic phase — summaries only ever *move* accesses from "unresolved"
to "analyzed", never drop them.

Recursion bound: members of nontrivial SCCs (and self-recursive
functions) get an *opaque* summary — no accesses, no composition — and
composition depth through sequential chains is capped at
:data:`MAX_COMPOSE_DEPTH`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ...minilang import ast_nodes as A
from ...mpi.constants import LANGUAGE_CONSTANTS
from .. import cfg as C
from .callgraph import CallGraph, CallSite, build_callgraph
from .dataflow.divergence import (
    expr_thread_dependent,
    omp_for_indices,
    solve_thread_dependence_with,
)
from .dataflow.facts import _call_node_map

#: symbolic base standing for ``omp_get_thread_num()`` in a LinForm
TID_BASE = "<tid>"

#: maximum composition depth through sequential call chains; deeper
#: accesses escape to the dynamic phase (recursion bound of the pass)
MAX_COMPOSE_DEPTH = 8


@dataclass(frozen=True)
class LinForm:
    """``coeff * base + d`` with ``d`` in ``[lo, hi]``.

    ``base`` is a formal-parameter name of the summarized function,
    :data:`TID_BASE`, or ``None`` for a pure constant interval (then
    ``coeff`` is 0).
    """

    base: Optional[str]
    coeff: int
    lo: int
    hi: int

    def shift(self, lo: int, hi: int) -> "LinForm":
        return LinForm(self.base, self.coeff, self.lo + lo, self.hi + hi)

    def scale(self, k: int) -> "LinForm":
        if k >= 0:
            return LinForm(self.base, self.coeff * k, self.lo * k, self.hi * k)
        return LinForm(self.base, self.coeff * k, self.hi * k, self.lo * k)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        rng = f"[{self.lo}, {self.hi}]" if self.lo != self.hi else str(self.lo)
        if self.base is None:
            return rng
        return f"{self.coeff}*{self.base} + {rng}"


@dataclass(frozen=True)
class SummaryAccess:
    """One parameterized shared-array access of a function summary."""

    var: str
    key: Tuple[str, str]
    is_write: bool
    #: nid of the original ``Index`` expression (coverage bookkeeping)
    nid: int
    loc: str
    #: function the access lexically sits in (reporting)
    func: str
    #: critical/atomic guard tokens accumulated along the callee chain
    guards: FrozenSet[str]
    #: subscript as a linear form over the *summarized* function's params
    form: LinForm
    #: composition depth (0 = the summarized function's own access)
    depth: int = 0


@dataclass
class FunctionSummary:
    """Everything later passes need to know about calling one function."""

    name: str
    params: Tuple[str, ...]
    #: recursion / SCC membership: no accesses, no composition
    opaque: bool = False
    accesses: List[SummaryAccess] = field(default_factory=list)


@dataclass
class SummaryTable:
    """Per-function summaries plus the graph-level derived sets."""

    callgraph: CallGraph
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: access nids whose form failed to compute/compose somewhere — the
    #: dynamic phase keeps them (soundness: never dropped)
    escaped: Set[int] = field(default_factory=set)
    #: functions whose call leaves user-lock state undisturbed
    lock_transparent: FrozenSet[str] = frozenset()
    #: formal parameters holding thread-dependent values at some site
    tainted_params: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: functions whose return value may be thread-dependent
    ret_tainted: FrozenSet[str] = frozenset()

    def summary_for(self, name: str) -> Optional[FunctionSummary]:
        summ = self.functions.get(name)
        if summ is None or summ.opaque:
            return None
        return summ


# ---------------------------------------------------------------------------
# Linear abstract interpretation over one function body
# ---------------------------------------------------------------------------

_Env = Dict[str, Optional[LinForm]]


def _const(value: int) -> LinForm:
    return LinForm(None, 0, value, value)


def _eval_form(expr: A.Expr, env: _Env) -> Optional[LinForm]:
    """Best-effort linear form of *expr* under *env* (None = unknown)."""
    if isinstance(expr, A.IntLit):
        return _const(expr.value)
    if isinstance(expr, A.Name):
        if expr.ident in env:
            return env[expr.ident]
        constant = LANGUAGE_CONSTANTS.get(expr.ident)
        if isinstance(constant, int) and not isinstance(constant, bool):
            return _const(constant)
        return None
    if isinstance(expr, A.CallExpr):
        if expr.name == "omp_get_thread_num" and not expr.args:
            return LinForm(TID_BASE, 1, 0, 0)
        return None
    if isinstance(expr, A.Unary) and expr.op == "-":
        inner = _eval_form(expr.operand, env)
        return None if inner is None else inner.scale(-1)
    if isinstance(expr, A.Binary):
        left = _eval_form(expr.left, env)
        right = _eval_form(expr.right, env)
        if left is None or right is None:
            return None
        if expr.op in ("+", "-"):
            if expr.op == "-":
                right = right.scale(-1)
            if left.base is None:
                return right.shift(left.lo, left.hi)
            if right.base is None:
                return left.shift(right.lo, right.hi)
            if left.base == right.base:
                return LinForm(
                    left.base, left.coeff + right.coeff,
                    left.lo + right.lo, left.hi + right.hi,
                )
            return None  # two distinct symbols
        if expr.op == "*":
            if left.base is None and left.lo == left.hi:
                return right.scale(left.lo)
            if right.base is None and right.lo == right.hi:
                return left.scale(right.lo)
            return None
        if expr.op == "%":
            if (
                right.base is None
                and right.lo == right.hi
                and right.lo > 0
                and left.base is None
                and left.lo >= 0
            ):
                m = right.lo
                return LinForm(None, 0, 0, min(left.hi, m - 1))
            return None
    return None


def _assigned_names(stmt: A.Stmt) -> Set[str]:
    """Every name assigned (or declared) anywhere under *stmt*."""
    out: Set[str] = set()
    for node in stmt.walk():
        if isinstance(node, A.VarDecl):
            out.add(node.name)
        elif isinstance(node, A.Assign):
            target = node.target
            if isinstance(target, A.Name):
                out.add(target.ident)
            elif isinstance(target, A.Index) and isinstance(target.base, A.Name):
                out.add(target.base.ident)
    return out


def _counted_loop_range(stmt: A.For, env: _Env) -> Optional[Tuple[str, int, int]]:
    """``(index, lo, hi)`` of a constant-bound counted loop, else None."""
    init = stmt.init
    if isinstance(init, A.VarDecl) and init.init is not None:
        name, init_expr = init.name, init.init
    elif isinstance(init, A.Assign) and isinstance(init.target, A.Name):
        name, init_expr = init.target.ident, init.value
    else:
        return None
    start = _eval_form(init_expr, env)
    if start is None or start.base is not None:
        return None
    cond = stmt.cond
    if not (
        isinstance(cond, A.Binary)
        and cond.op in ("<", "<=")
        and isinstance(cond.left, A.Name)
        and cond.left.ident == name
    ):
        return None
    bound = _eval_form(cond.right, env)
    if bound is None or bound.base is not None:
        return None
    step = stmt.step
    if not (
        isinstance(step, A.Assign)
        and isinstance(step.target, A.Name)
        and step.target.ident == name
        and isinstance(step.value, A.Binary)
        and step.value.op == "+"
    ):
        return None
    increment = _eval_form(step.value.right, env)
    if (
        increment is None
        or increment.base is not None
        or increment.lo != increment.hi
        or increment.lo <= 0
        or not (
            isinstance(step.value.left, A.Name)
            and step.value.left.ident == name
        )
    ):
        return None
    hi = bound.hi if cond.op == "<=" else bound.hi - 1
    if hi < start.lo:
        return None
    return (name, start.lo, hi)


class _FormWalker:
    """Records the linear form of every ``Index`` subscript and every
    user-call argument list of one function, in execution order."""

    def __init__(self, func: A.FuncDef, user_funcs: FrozenSet[str]) -> None:
        self.func = func
        self.user_funcs = user_funcs
        self.env: _Env = {p: LinForm(p, 1, 0, 0) for p in func.params}
        #: Index-expr nid -> subscript form (None = unknown)
        self.index_forms: Dict[int, Optional[LinForm]] = {}
        #: user-call nid -> per-argument forms (None entries = unknown)
        self.arg_forms: Dict[int, Tuple[Optional[LinForm], ...]] = {}

    def run(self) -> None:
        self._walk_stmt(self.func.body)

    # -- expression scan ----------------------------------------------------

    def _scan_expr(self, expr: Optional[A.Expr]) -> None:
        if expr is None:
            return
        if isinstance(expr, A.Index):
            self.index_forms[expr.nid] = _eval_form(expr.index, self.env)
            self._scan_expr(expr.index)
            return
        if isinstance(expr, A.CallExpr) and expr.name in self.user_funcs:
            self.arg_forms[expr.nid] = tuple(
                _eval_form(arg, self.env) for arg in expr.args
            )
        for child in expr.children():
            if isinstance(child, A.Expr):
                self._scan_expr(child)

    def _kill(self, names: Set[str]) -> None:
        for name in names:
            self.env[name] = None

    # -- statement traversal ------------------------------------------------

    def _walk_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            for sub in stmt.stmts:
                self._walk_stmt(sub)
        elif isinstance(stmt, A.VarDecl):
            self._scan_expr(stmt.init)
            self._scan_expr(stmt.size)
            if stmt.is_array or stmt.init is None:
                self.env[stmt.name] = None
            else:
                self.env[stmt.name] = _eval_form(stmt.init, self.env)
        elif isinstance(stmt, A.Assign):
            self._scan_expr(stmt.value)
            target = stmt.target
            if isinstance(target, A.Name):
                self.env[target.ident] = _eval_form(stmt.value, self.env)
            elif isinstance(target, A.Index):
                self._scan_expr(target)
        elif isinstance(stmt, A.If):
            self._scan_expr(stmt.cond)
            snapshot = dict(self.env)
            self._walk_stmt(stmt.then)
            after_then = self.env
            self.env = dict(snapshot)
            if stmt.els is not None:
                self._walk_stmt(stmt.els)
            merged: _Env = {}
            for name in set(after_then) | set(self.env):
                a, b = after_then.get(name), self.env.get(name)
                merged[name] = a if a == b else None
            self.env = merged
        elif isinstance(stmt, A.While):
            self._kill(_assigned_names(stmt))
            self._scan_expr(stmt.cond)
            self._walk_stmt(stmt.body)
            self._kill(_assigned_names(stmt))
        elif isinstance(stmt, A.For):
            counted = _counted_loop_range(stmt, self.env)
            assigned = _assigned_names(stmt)
            self._kill(assigned)
            if counted is not None:
                name, lo, hi = counted
                self.env[name] = LinForm(None, 0, lo, hi)
            self._scan_expr(stmt.cond)
            self._walk_stmt(stmt.body)
            self._kill(assigned)
        elif isinstance(stmt, A.OmpParallel):
            # team execution: composed sequential reasoning stops here;
            # accesses inside have a lexical region of their own
            self._scan_expr(stmt.num_threads)
            self._kill(_assigned_names(stmt))
        elif isinstance(stmt, A.OmpFor):
            # orphaned worksharing: the distribution context is its own
            # (such accesses are never instantiated through calls)
            self._kill(_assigned_names(stmt))
        elif isinstance(stmt, (A.OmpSingle, A.OmpMaster, A.OmpCritical)):
            self._walk_stmt(stmt.body)
        elif isinstance(stmt, A.OmpAtomic):
            self._walk_stmt(stmt.stmt)
        else:
            for child in stmt.children():
                if isinstance(child, A.Expr):
                    self._scan_expr(child)
                elif isinstance(child, A.Stmt):
                    self._walk_stmt(child)


# ---------------------------------------------------------------------------
# Summary construction
# ---------------------------------------------------------------------------


def _own_accesses(
    fn: A.FuncDef,
    globals_: Dict[str, bool],
    forms: _FormWalker,
    escaped: Set[int],
) -> List[SummaryAccess]:
    """The function's own would-be-unresolved accesses, parameterized."""
    from .races import _FunctionWalker

    walker = _FunctionWalker(fn, globals_, unsafe=True)
    walker.run()
    out: List[SummaryAccess] = []
    for site in walker.unresolved:
        if site.omp_for is not None:
            escaped.add(site.nid)
            continue  # distributed by the callee's own worksharing
        form = forms.index_forms.get(site.nid)
        if form is None:
            escaped.add(site.nid)
            continue
        out.append(
            SummaryAccess(
                var=site.var,
                key=site.key,
                is_write=site.is_write,
                nid=site.nid,
                loc=site.loc,
                func=site.func,
                guards=site.guards,
                form=form,
            )
        )
    return out


def _rebase(
    acc: SummaryAccess,
    cs: CallSite,
    callee_params: Tuple[str, ...],
    arg_forms: Tuple[Optional[LinForm], ...],
) -> Optional[LinForm]:
    """Rewrite *acc*'s form from callee-parameter terms to caller terms."""
    form = acc.form
    if form.base is None or form.base == TID_BASE:
        return form
    try:
        position = callee_params.index(form.base)
    except ValueError:
        return None
    if position >= len(arg_forms):
        return None
    arg = arg_forms[position]
    if arg is None:
        return None
    scaled = arg.scale(form.coeff)
    if scaled.base is None:
        return LinForm(None, 0, scaled.lo + form.lo, scaled.hi + form.hi)
    return LinForm(
        scaled.base, scaled.coeff, scaled.lo + form.lo, scaled.hi + form.hi
    )


def _lock_transparent(cg: CallGraph, program: A.Program) -> FrozenSet[str]:
    """Functions that provably leave user-lock state alone."""
    touching: Set[str] = set()
    for fn in program.functions:
        for node in fn.body.walk():
            if isinstance(node, A.CallExpr) and node.name in (
                "omp_set_lock", "omp_unset_lock",
            ):
                touching.add(fn.name)
                break
    may_touch: Set[str] = set()
    import networkx as nx

    for root in touching:
        may_touch.add(root)
        if root in cg.graph:
            may_touch |= nx.ancestors(cg.graph, root)
    return frozenset(cg.user_funcs - may_touch)


def _taint_fixpoint(
    program: A.Program,
    cg: CallGraph,
    cfgs: Dict[str, C.CFG],
) -> Tuple[Dict[str, FrozenSet[str]], FrozenSet[str]]:
    """Top-down parameter taint and bottom-up return taint, to fixpoint."""
    funcs = {fn.name: fn for fn in program.functions}
    tainted_params: Dict[str, FrozenSet[str]] = {
        name: frozenset() for name in funcs
    }
    ret_tainted: Set[str] = set()
    call_maps = {
        name: _call_node_map(cfg) for name, cfg in cfgs.items() if name in funcs
    }
    calls_by_func: Dict[str, List[Tuple[A.CallExpr, str]]] = {}
    for fn in program.functions:
        rows: List[Tuple[A.CallExpr, str]] = []
        for node in fn.body.walk():
            if isinstance(node, A.CallExpr) and node.name in funcs:
                rows.append((node, node.name))
        calls_by_func[fn.name] = rows

    for _ in range(len(funcs) + 2):
        changed = False
        frozen_ret = frozenset(ret_tainted)
        for name, fn in funcs.items():
            cfg = cfgs.get(name)
            if cfg is None:
                continue
            always = omp_for_indices(fn) | tainted_params[name]
            result = solve_thread_dependence_with(cfg, always, frozen_ret)
            node_map = call_maps.get(name, {})
            for call, callee in calls_by_func[name]:
                node = node_map.get(call.nid)
                fact = result.fact_before(node) if node is not None else None
                fact = fact if fact is not None else frozenset()
                callee_params = funcs[callee].params
                newly = set()
                for i, arg in enumerate(call.args):
                    if i >= len(callee_params):
                        break
                    if expr_thread_dependent(arg, fact, frozen_ret):
                        newly.add(callee_params[i])
                merged = tainted_params[callee] | newly
                if merged != tainted_params[callee]:
                    tainted_params[callee] = frozenset(merged)
                    changed = True
            if name in ret_tainted:
                continue
            for cfg_node in cfg.nodes.values():
                if cfg_node.kind != C.STMT or not isinstance(
                    cfg_node.ast, A.Return
                ):
                    continue
                ret = cfg_node.ast
                if ret.value is None:
                    continue
                fact = result.fact_before(cfg_node)
                fact = fact if fact is not None else always
                if expr_thread_dependent(ret.value, fact, frozen_ret):
                    ret_tainted.add(name)
                    changed = True
                    break
        if not changed:
            break
    return tainted_params, frozenset(ret_tainted)


def compute_summaries(
    program: A.Program,
    callgraph: Optional[CallGraph] = None,
    cfgs: Optional[Dict[str, C.CFG]] = None,
) -> SummaryTable:
    """Bottom-up summary computation over the whole program."""
    cg = callgraph if callgraph is not None else build_callgraph(program)
    table = SummaryTable(callgraph=cg)
    globals_ = {decl.name: decl.is_array for decl in program.globals}
    funcs = {fn.name: fn for fn in program.functions}

    form_walkers: Dict[str, _FormWalker] = {}
    for fn in program.functions:
        walker = _FormWalker(fn, cg.user_funcs)
        walker.run()
        form_walkers[fn.name] = walker

    for name in cg.bottom_up:
        fn = funcs.get(name)
        if fn is None:
            continue
        summary = FunctionSummary(name=name, params=tuple(fn.params))
        if name in cg.recursive:
            summary.opaque = True
            table.functions[name] = summary
            continue
        forms = form_walkers[name]
        summary.accesses = _own_accesses(fn, globals_, forms, table.escaped)
        # Compose callee summaries through *sequential-context* call
        # sites: a call inside a lexical parallel region is instantiated
        # directly at that site by the race pass instead.
        for cs in cg.sites_by_caller.get(name, ()):
            if cs.region is not None or cs.spawned:
                continue
            callee = table.functions.get(cs.callee)
            if callee is None or callee.opaque:
                continue
            arg_forms = forms.arg_forms.get(cs.nid, ())
            for acc in callee.accesses:
                if acc.depth + 1 > MAX_COMPOSE_DEPTH:
                    table.escaped.add(acc.nid)
                    continue
                rebased = _rebase(acc, cs, callee.params, arg_forms)
                if rebased is None:
                    table.escaped.add(acc.nid)
                    continue
                summary.accesses.append(
                    SummaryAccess(
                        var=acc.var,
                        key=acc.key,
                        is_write=acc.is_write,
                        nid=acc.nid,
                        loc=acc.loc,
                        func=acc.func,
                        guards=acc.guards | cs.guards,
                        form=rebased,
                        depth=acc.depth + 1,
                    )
                )
        table.functions[name] = summary

    table.lock_transparent = _lock_transparent(cg, program)
    if cfgs:
        table.tainted_params, table.ret_tainted = _taint_fixpoint(
            program, cg, cfgs
        )
    return table
