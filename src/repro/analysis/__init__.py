"""Static and dynamic program analyses (the heart of HOME)."""

from .cfg import CFG, CFGNode, build_cfg, build_program_cfgs  # noqa: F401

__all__ = ["CFG", "CFGNode", "build_cfg", "build_program_cfgs"]
