"""Control-flow graph construction for mini-language functions.

The paper's static phase (Algorithm 1) generates the CFG of the hybrid
program, walks its node list (``srcCFG``), and flags MPI call nodes that
fall between an ``ompParallelBegin`` and its matching ``ompParallelEnd``.
We reproduce that structure: every statement becomes a CFG node; OpenMP
regions contribute explicit *begin*/*end* marker nodes; and
:meth:`CFG.linearize` yields the marker-bracketed node list the
algorithm iterates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx

from ..errors import AnalysisError
from ..minilang import ast_nodes as A

_CFG_NODE = itertools.count(1)

# Marker kinds for structured constructs.
ENTRY = "entry"
EXIT = "exit"
STMT = "stmt"
BRANCH = "branch"
LOOP_HEAD = "loop-head"
OMP_PARALLEL_BEGIN = "ompParallelBegin"
OMP_PARALLEL_END = "ompParallelEnd"
OMP_WS_BEGIN = "ompWorksharingBegin"
OMP_WS_END = "ompWorksharingEnd"
OMP_CRITICAL_BEGIN = "ompCriticalBegin"
OMP_CRITICAL_END = "ompCriticalEnd"
OMP_BARRIER = "ompBarrier"


@dataclass
class CFGNode:
    """One control-flow graph node."""

    cfg_id: int
    kind: str
    ast: Optional[A.Node] = None
    label: str = ""

    @property
    def is_mpi_call(self) -> bool:
        return (
            self.kind == STMT
            and isinstance(self.ast, A.ExprStmt)
            and isinstance(self.ast.expr, A.CallExpr)
            and self.ast.expr.name.startswith(("mpi_", "hmpi_"))
        )

    @property
    def call_name(self) -> str:
        if (
            self.ast is not None
            and isinstance(self.ast, A.ExprStmt)
            and isinstance(self.ast.expr, A.CallExpr)
        ):
            return self.ast.expr.name
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CFGNode {self.cfg_id} {self.kind} {self.label}>"


class CFG:
    """Control-flow graph of one function."""

    def __init__(self, func_name: str) -> None:
        self.func_name = func_name
        self.graph = nx.DiGraph()
        self.nodes: Dict[int, CFGNode] = {}
        self.entry = self._new_node(ENTRY, label=f"entry({func_name})")
        self.exit = self._new_node(EXIT, label=f"exit({func_name})")
        #: emission order of node creation (the paper's srcCFG list)
        self._order: List[int] = [self.entry.cfg_id]

    def _new_node(self, kind: str, ast: Optional[A.Node] = None, label: str = "") -> CFGNode:
        node = CFGNode(next(_CFG_NODE), kind, ast, label)
        self.nodes[node.cfg_id] = node
        self.graph.add_node(node.cfg_id)
        return node

    def add(self, kind: str, ast: Optional[A.Node] = None, label: str = "") -> CFGNode:
        node = self._new_node(kind, ast, label)
        self._order.append(node.cfg_id)
        return node

    def edge(self, a: CFGNode, b: CFGNode) -> None:
        self.graph.add_edge(a.cfg_id, b.cfg_id)

    def finish(self) -> None:
        self._order.append(self.exit.cfg_id)

    def linearize(self) -> List[CFGNode]:
        """Nodes in construction order — Algorithm 1's ``srcCFG`` list.

        Construction order follows source order, so an MPI node appears
        between its region's begin/end markers exactly as the paper's
        traversal expects.
        """
        return [self.nodes[nid] for nid in self._order]

    def successors(self, node: CFGNode) -> List[CFGNode]:
        return [self.nodes[n] for n in self.graph.successors(node.cfg_id)]

    def predecessors(self, node: CFGNode) -> List[CFGNode]:
        return [self.nodes[n] for n in self.graph.predecessors(node.cfg_id)]

    def reachable_from_entry(self) -> set:
        return set(nx.descendants(self.graph, self.entry.cfg_id)) | {self.entry.cfg_id}

    def mpi_nodes(self) -> List[CFGNode]:
        return [n for n in self.linearize() if n.is_mpi_call]


class _Builder:
    """Recursive CFG builder. Returns (first, lasts) fragments."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg

    def build_block(
        self, block: A.Block, preds: List[CFGNode]
    ) -> List[CFGNode]:
        current = preds
        for stmt in block.stmts:
            current = self.build_stmt(stmt, current)
        return current

    def _link(self, preds: List[CFGNode], node: CFGNode) -> None:
        for p in preds:
            self.cfg.edge(p, node)

    def build_stmt(self, stmt: A.Stmt, preds: List[CFGNode]) -> List[CFGNode]:
        cfg = self.cfg
        if isinstance(stmt, (A.VarDecl, A.Assign, A.ExprStmt, A.Print, A.AssertStmt)):
            node = cfg.add(STMT, stmt, label=type(stmt).__name__)
            self._link(preds, node)
            return [node]
        if isinstance(stmt, A.Return):
            node = cfg.add(STMT, stmt, label="Return")
            self._link(preds, node)
            cfg.edge(node, cfg.exit)
            return []
        if isinstance(stmt, A.Block):
            return self.build_block(stmt, preds)
        if isinstance(stmt, A.If):
            branch = cfg.add(BRANCH, stmt, label="If")
            self._link(preds, branch)
            then_last = self.build_block(stmt.then, [branch])
            if stmt.els is not None:
                els = stmt.els if isinstance(stmt.els, A.Block) else A.Block([stmt.els])
                else_last = self.build_block(els, [branch])
            else:
                else_last = [branch]
            return then_last + else_last
        if isinstance(stmt, A.While):
            head = cfg.add(LOOP_HEAD, stmt, label="While")
            self._link(preds, head)
            body_last = self.build_block(stmt.body, [head])
            self._link(body_last, head)
            return [head]
        if isinstance(stmt, A.For):
            pre = preds
            if stmt.init is not None:
                init_node = cfg.add(STMT, stmt.init, label="ForInit")
                self._link(pre, init_node)
                pre = [init_node]
            head = cfg.add(LOOP_HEAD, stmt, label="For")
            self._link(pre, head)
            body_last = self.build_block(stmt.body, [head])
            if stmt.step is not None:
                step_node = cfg.add(STMT, stmt.step, label="ForStep")
                self._link(body_last, step_node)
                body_last = [step_node]
            self._link(body_last, head)
            return [head]
        if isinstance(stmt, A.OmpParallel):
            begin = cfg.add(OMP_PARALLEL_BEGIN, stmt, label="omp parallel")
            self._link(preds, begin)
            body_last = self.build_block(stmt.body, [begin])
            end = cfg.add(OMP_PARALLEL_END, stmt, label="end omp parallel")
            self._link(body_last, end)
            return [end]
        if isinstance(stmt, A.OmpFor):
            begin = cfg.add(OMP_WS_BEGIN, stmt, label="omp for")
            self._link(preds, begin)
            body_last = self.build_stmt(stmt.loop, [begin])
            end = cfg.add(OMP_WS_END, stmt, label="end omp for")
            self._link(body_last, end)
            return [end]
        if isinstance(stmt, A.OmpSections):
            begin = cfg.add(OMP_WS_BEGIN, stmt, label="omp sections")
            self._link(preds, begin)
            lasts: List[CFGNode] = []
            for section in stmt.sections:
                lasts.extend(self.build_block(section, [begin]))
            end = cfg.add(OMP_WS_END, stmt, label="end omp sections")
            self._link(lasts, end)
            return [end]
        if isinstance(stmt, A.OmpSingle):
            begin = cfg.add(OMP_WS_BEGIN, stmt, label="omp single")
            self._link(preds, begin)
            body_last = self.build_block(stmt.body, [begin])
            end = cfg.add(OMP_WS_END, stmt, label="end omp single")
            self._link(body_last + [begin], end)
            return [end]
        if isinstance(stmt, A.OmpMaster):
            begin = cfg.add(OMP_WS_BEGIN, stmt, label="omp master")
            self._link(preds, begin)
            body_last = self.build_block(stmt.body, [begin])
            end = cfg.add(OMP_WS_END, stmt, label="end omp master")
            self._link(body_last + [begin], end)
            return [end]
        if isinstance(stmt, A.OmpCritical):
            begin = cfg.add(OMP_CRITICAL_BEGIN, stmt, label=f"omp critical({stmt.name})")
            self._link(preds, begin)
            body_last = self.build_block(stmt.body, [begin])
            end = cfg.add(OMP_CRITICAL_END, stmt, label="end omp critical")
            self._link(body_last, end)
            return [end]
        if isinstance(stmt, A.OmpBarrier):
            node = cfg.add(OMP_BARRIER, stmt, label="omp barrier")
            self._link(preds, node)
            return [node]
        if isinstance(stmt, A.OmpAtomic):
            node = cfg.add(STMT, stmt, label="omp atomic")
            self._link(preds, node)
            return [node]
        raise AnalysisError(f"cannot build CFG for {type(stmt).__name__}")


def build_cfg(func: A.FuncDef) -> CFG:
    """Build the CFG of one function."""
    cfg = CFG(func.name)
    builder = _Builder(cfg)
    lasts = builder.build_block(func.body, [cfg.entry])
    for node in lasts:
        cfg.edge(node, cfg.exit)
    cfg.finish()
    return cfg


def build_program_cfgs(program: A.Program) -> Dict[str, CFG]:
    """CFGs for every function of *program*."""
    return {fn.name: build_cfg(fn) for fn in program.functions}
