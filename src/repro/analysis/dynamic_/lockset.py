"""Eraser-style lockset analysis (Savage et al., the paper's [21]).

Tracks, for each shared location, the set of locks consistently held
across all accesses.  A location whose candidate set becomes empty while
accessed by multiple threads (with at least one write) is a potential
race — *regardless of whether the racy interleaving actually happened*,
which is exactly why HOME catches violations Marmot misses.

Locations here are abstract keys: the hybrid detector uses
``(proc, MonitoredKind)`` for HOME's monitored variables and
``(proc, cell_id)`` for user memory (the ITC model).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple


class EraserState(enum.Enum):
    """The Eraser per-location state machine."""

    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"            # read-shared after exclusive
    SHARED_MODIFIED = "shared-modified"


@dataclass
class AccessRecord:
    """One recorded access for later pairwise checks."""

    seq: int
    thread: int
    is_write: bool
    locks: FrozenSet[str]


@dataclass
class LocationState:
    """Lockset bookkeeping for one shared location."""

    key: Hashable
    state: EraserState = EraserState.VIRGIN
    candidate: Optional[FrozenSet[str]] = None  # None == universe
    first_thread: Optional[int] = None
    threads: Set[int] = field(default_factory=set)
    writers: Set[int] = field(default_factory=set)
    accesses: List[AccessRecord] = field(default_factory=list)

    @property
    def lockset_empty(self) -> bool:
        return self.candidate is not None and len(self.candidate) == 0

    @property
    def is_race_candidate(self) -> bool:
        """Eraser reports when a shared-modified location has empty lockset."""
        return (
            self.state == EraserState.SHARED_MODIFIED
            and self.lockset_empty
            and len(self.threads) >= 2
        )


class LocksetAnalysis:
    """Streaming Eraser over (location, thread, locks, is_write) accesses."""

    def __init__(self) -> None:
        self.locations: Dict[Hashable, LocationState] = {}

    def access(
        self,
        key: Hashable,
        seq: int,
        thread: int,
        locks: FrozenSet[str],
        is_write: bool,
    ) -> LocationState:
        loc = self.locations.get(key)
        if loc is None:
            loc = self.locations[key] = LocationState(key)
        loc.accesses.append(AccessRecord(seq, thread, is_write, locks))
        loc.threads.add(thread)
        if is_write:
            loc.writers.add(thread)

        # State transitions (Eraser Fig. 2).
        if loc.state == EraserState.VIRGIN:
            loc.state = EraserState.EXCLUSIVE
            loc.first_thread = thread
        elif loc.state == EraserState.EXCLUSIVE:
            if thread != loc.first_thread:
                loc.state = (
                    EraserState.SHARED_MODIFIED if is_write else EraserState.SHARED
                )
        elif loc.state == EraserState.SHARED and is_write:
            loc.state = EraserState.SHARED_MODIFIED

        # Candidate lockset refinement.  Unlike strict Eraser (which only
        # starts refining once a location goes shared, trading missed
        # two-access races for fewer initialization false positives), we
        # refine from the very first access: the monitored variables HOME
        # watches have no benign initialization phase, and the pairwise
        # check must agree with the summary.
        if loc.candidate is None:
            loc.candidate = locks
        else:
            loc.candidate = loc.candidate & locks
        return loc

    def race_candidates(self) -> List[LocationState]:
        return [loc for loc in self.locations.values() if loc.is_race_candidate]

    def racy_pairs(self, key: Hashable) -> List[Tuple[AccessRecord, AccessRecord]]:
        """Access pairs from different threads with disjoint locksets and
        at least one write — the paper's ``IsPotentialLockSetRace(i, j)``."""
        loc = self.locations.get(key)
        if loc is None:
            return []
        out: List[Tuple[AccessRecord, AccessRecord]] = []
        accesses = loc.accesses
        for i in range(len(accesses)):
            a = accesses[i]
            for j in range(i + 1, len(accesses)):
                b = accesses[j]
                if a.thread == b.thread:
                    continue
                if not (a.is_write or b.is_write):
                    continue
                if a.locks & b.locks:
                    continue
                out.append((a, b))
        return out
