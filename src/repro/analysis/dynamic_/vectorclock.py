"""Vector clocks over process-local thread ids.

Sparse dict-backed implementation: component absent == 0.  Used by the
happens-before pass to order events of one process's threads (Lamport's
partial order, as the paper cites).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple


class VectorClock:
    """An immutable-by-convention vector clock (copy before mutating)."""

    __slots__ = ("_c",)

    def __init__(self, components: Dict[int, int] | None = None) -> None:
        self._c: Dict[int, int] = dict(components) if components else {}

    # -- accessors -----------------------------------------------------------

    def get(self, tid: int) -> int:
        return self._c.get(tid, 0)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._c.items())

    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    # -- mutation (on copies) -------------------------------------------------

    def tick(self, tid: int) -> "VectorClock":
        """Return a copy with *tid*'s component incremented."""
        out = self.copy()
        out._c[tid] = out._c.get(tid, 0) + 1
        return out

    def join(self, other: "VectorClock") -> "VectorClock":
        """Pointwise maximum."""
        out = self.copy()
        for tid, val in other._c.items():
            if val > out._c.get(tid, 0):
                out._c[tid] = val
        return out

    # -- ordering -----------------------------------------------------------

    def leq(self, other: "VectorClock") -> bool:
        """True iff self <= other pointwise."""
        return all(val <= other._c.get(tid, 0) for tid, val in self._c.items())

    def happens_before(self, other: "VectorClock") -> bool:
        """Strict Lamport order: self <= other and not other <= self."""
        return self.leq(other) and not other.leq(self)

    def concurrent(self, other: "VectorClock") -> bool:
        return not self.leq(other) and not other.leq(self)

    # -- dunder -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return {k: v for k, v in self._c.items() if v} == {
            k: v for k, v in other._c.items() if v
        }

    def __hash__(self) -> int:
        return hash(frozenset((k, v) for k, v in self._c.items() if v))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"t{t}:{v}" for t, v in sorted(self._c.items()))
        return f"VC({inner})"


def join_all(clocks: Iterable[VectorClock]) -> VectorClock:
    out = VectorClock()
    for clock in clocks:
        out = out.join(clock)
    return out
