"""Vector clocks over process-local thread ids.

Sparse dict-backed implementation: component absent == 0.  Used by the
happens-before pass to order events of one process's threads (Lamport's
partial order, as the paper cites).

Two representations share the component dict format:

* :class:`VectorClock` — immutable; ``tick``/``join`` return new clocks
  and allocate exactly one dict (the old implementation copied once in
  ``copy()`` and forced callers to defensively copy again).  The hash
  is computed once and cached, so clocks can key large dicts cheaply.
* :class:`VectorClockBuilder` — a mutable scratch clock for hot loops
  that apply several synchronization edges before snapshotting (the
  happens-before replay joins fork/join/barrier/lock clocks and then
  ticks once per event); it mutates in place and ``freeze()``\\ s into
  an immutable clock with a single dict allocation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

#: sentinel meaning "hash not computed yet" (a real hash can be any int,
#: so use a private object, not 0/None ambiguity — None is fine here
#: because hash() never returns None)
_UNHASHED = None


class VectorClock:
    """An immutable vector clock (``tick``/``join`` return new clocks)."""

    __slots__ = ("_c", "_hash")

    def __init__(self, components: Dict[int, int] | None = None) -> None:
        self._c: Dict[int, int] = dict(components) if components else {}
        self._hash = _UNHASHED

    @classmethod
    def _adopt(cls, components: Dict[int, int]) -> "VectorClock":
        """Wrap *components* without copying (internal: the caller must
        relinquish ownership of the dict)."""
        out = cls.__new__(cls)
        out._c = components
        out._hash = _UNHASHED
        return out

    # -- accessors -----------------------------------------------------------

    def get(self, tid: int) -> int:
        return self._c.get(tid, 0)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._c.items())

    def copy(self) -> "VectorClock":
        """Clocks are immutable, so a copy is the clock itself."""
        return self

    def mutable(self) -> "VectorClockBuilder":
        """A mutable scratch copy for multi-step updates."""
        return VectorClockBuilder(dict(self._c))

    # -- derivation (pure) ---------------------------------------------------

    def tick(self, tid: int) -> "VectorClock":
        """A new clock with *tid*'s component incremented."""
        components = dict(self._c)
        components[tid] = components.get(tid, 0) + 1
        return VectorClock._adopt(components)

    def join(self, other: "VectorClock") -> "VectorClock":
        """Pointwise maximum.  A join that changes nothing returns
        ``self`` without allocating (common once clocks stabilize behind
        a lock or barrier edge)."""
        mine = self._c
        components = None
        for tid, val in other._c.items():
            if val > (components or mine).get(tid, 0):
                if components is None:
                    components = dict(mine)
                components[tid] = val
        if components is None:
            return self
        return VectorClock._adopt(components)

    # -- ordering -----------------------------------------------------------

    def leq(self, other: "VectorClock") -> bool:
        """True iff self <= other pointwise."""
        theirs = other._c
        return all(val <= theirs.get(tid, 0) for tid, val in self._c.items())

    def happens_before(self, other: "VectorClock") -> bool:
        """Strict Lamport order: self <= other and not other <= self."""
        return self.leq(other) and not other.leq(self)

    def concurrent(self, other: "VectorClock") -> bool:
        return not self.leq(other) and not other.leq(self)

    # -- dunder -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return {k: v for k, v in self._c.items() if v} == {
            k: v for k, v in other._c.items() if v
        }

    def __hash__(self) -> int:
        cached = self._hash
        if cached is _UNHASHED:
            cached = hash(frozenset((k, v) for k, v in self._c.items() if v))
            self._hash = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"t{t}:{v}" for t, v in sorted(self._c.items()))
        return f"VC({inner})"


class VectorClockBuilder:
    """Mutable vector clock for hot loops; ``freeze()`` when done.

    All operations mutate in place and return ``self`` so edge chains
    read naturally::

        clock = clock.mutable().join(fork).join(release).tick(tid).freeze()
    """

    __slots__ = ("_c",)

    def __init__(self, components: Dict[int, int] | None = None) -> None:
        self._c: Dict[int, int] = components if components is not None else {}

    def get(self, tid: int) -> int:
        return self._c.get(tid, 0)

    def tick(self, tid: int) -> "VectorClockBuilder":
        self._c[tid] = self._c.get(tid, 0) + 1
        return self

    def join(self, other: "VectorClock | VectorClockBuilder") -> "VectorClockBuilder":
        mine = self._c
        for tid, val in other._c.items():
            if val > mine.get(tid, 0):
                mine[tid] = val
        return self

    def freeze(self) -> VectorClock:
        """Snapshot into an immutable clock (one dict allocation); the
        builder stays usable and independent of the snapshot."""
        return VectorClock(self._c)

    def into_clock(self) -> VectorClock:
        """Transfer the components into an immutable clock with *zero*
        copies; the builder is reset to empty afterwards."""
        components = self._c
        self._c = {}
        return VectorClock._adopt(components)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"t{t}:{v}" for t, v in sorted(self._c.items()))
        return f"VCBuilder({inner})"


def join_all(clocks: Iterable[VectorClock]) -> VectorClock:
    builder = VectorClockBuilder()
    for clock in clocks:
        builder.join(clock)
    return builder.freeze()
