"""Cross-process message-race detection (the DAMPI model).

The paper's related work surveys DAMPI, which uses "a scalable
algorithm based on Lamport Clocks (vector clocks focused on call order)
to capture possible non-deterministic matches": a *message race* exists
when a receive could have matched more than one in-flight send — the
classic source of nondeterministic MPI behaviour the paper's
introduction describes (Netzer et al.).

This module implements that analysis over the recorded event log:

1. build a **cross-process** happens-before order with one vector-clock
   component per (process, thread): program order per thread, team
   fork/join/barrier/lock edges within a process, a send→receive edge
   for every matched message, and all-to-all edges at each completed
   collective;
2. for every receive, find *alternative* sends — sends whose envelope
   the receive's posted (source, tag, comm) pattern also accepts,
   destined to the same rank, that are not happens-before-ordered after
   the receive and did not causally depend on it.

A receive with at least one alternative send is racy: a different
network timing could have delivered a different message.  Wildcard
(``MPI_ANY_SOURCE``/``MPI_ANY_TAG``) receives are the usual culprits,
but same-envelope traffic from one sender races too when reordering
across threads is possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...events import (
    BarrierEvent,
    EventLog,
    LockAcquire,
    LockRelease,
    MPICall,
    ThreadBegin,
    ThreadFork,
    ThreadJoin,
)
from ...mpi.constants import MPI_ANY_SOURCE, MPI_ANY_TAG
from .vectorclock import VectorClock, join_all

#: vector-clock component key: (proc, thread) encoded as a single int
def _tid_key(proc: int, thread: int) -> int:
    return proc * 10_000 + thread


_P2P_SEND_OPS = frozenset({"mpi_send", "mpi_ssend", "mpi_isend"})
_P2P_RECV_OPS = frozenset({"mpi_recv", "mpi_irecv"})


@dataclass(frozen=True)
class SendRecord:
    """One completed send, as seen at its end event."""

    seq: int
    proc: int          # sender world rank
    thread: int
    dst: int           # destination (comm-local == world for COMM_WORLD)
    tag: int
    comm: int
    msg_id: int
    loc: str


@dataclass(frozen=True)
class RecvRecord:
    """One completed receive (or completed irecv via wait)."""

    seq: int
    proc: int
    thread: int
    src: int           # posted source pattern (may be MPI_ANY_SOURCE)
    tag: int           # posted tag pattern (may be MPI_ANY_TAG)
    comm: int
    msg_id: int        # message actually consumed
    loc: str


@dataclass
class MessageRace:
    """A receive that could have consumed a different message."""

    recv: RecvRecord
    matched_send: Optional[SendRecord]
    alternatives: List[SendRecord] = field(default_factory=list)

    @property
    def is_wildcard(self) -> bool:
        return self.recv.src == MPI_ANY_SOURCE or self.recv.tag == MPI_ANY_TAG

    def __str__(self) -> str:
        alts = ", ".join(
            f"rank {s.proc}@{s.loc}" for s in self.alternatives
        )
        return (
            f"[MessageRace] recv at rank {self.recv.proc} ({self.recv.loc}, "
            f"src={self.recv.src}, tag={self.recv.tag}) could also have "
            f"matched send(s) from: {alts}"
        )


class CrossProcessHB:
    """Vector clocks over every (process, thread) in the job.

    Built in two passes: the first pairs message ids with their send
    *begin* events and groups collective calls into match slots (the
    k-th collective a process completes on a communicator); the second
    replays the log computing clocks.  Emission order guarantees that a
    send's begin precedes any receive of its message and that every
    collective participant's begin precedes every participant's end, so
    all joins in pass two reference already-computed clocks.
    """

    def __init__(self, log: EventLog) -> None:
        self.clocks: Dict[int, VectorClock] = {}       # event seq -> VC
        self._build(log)

    def _index_log(self, log: EventLog):
        """Pass 1: message-id -> send-begin seq; collective slot groups."""
        send_begin_of_call: Dict[Tuple[int, int], int] = {}
        msg_send_begin: Dict[int, int] = {}
        coll_group_of_end: Dict[int, Tuple[int, int]] = {}
        coll_begins: Dict[Tuple[int, int], List[int]] = {}
        begin_count: Dict[Tuple[int, int], int] = {}
        end_count: Dict[Tuple[int, int], int] = {}
        from ...events.event import COLLECTIVE_OPS

        for event in log:
            if not isinstance(event, MPICall):
                continue
            if event.op in _P2P_SEND_OPS or event.op == "mpi_sendrecv":
                if event.phase == "begin":
                    send_begin_of_call[(event.proc, event.call_id)] = event.seq
                else:
                    msg_id = event.args.get("msg_id")
                    begin_seq = send_begin_of_call.get((event.proc, event.call_id))
                    if msg_id and begin_seq is not None and event.op != "mpi_sendrecv":
                        msg_send_begin[msg_id] = begin_seq
            if event.op in COLLECTIVE_OPS:
                comm = event.args.get("comm", 0)
                if event.phase == "begin":
                    idx = begin_count.get((event.proc, comm), 0)
                    begin_count[(event.proc, comm)] = idx + 1
                    coll_begins.setdefault((comm, idx), []).append(event.seq)
                else:
                    idx = end_count.get((event.proc, comm), 0)
                    end_count[(event.proc, comm)] = idx + 1
                    coll_group_of_end[event.seq] = (comm, idx)
        # NOTE: a sendrecv's end logs only the msg_id it *received*, so the
        # send half contributes no begin mapping here; causality via the
        # remote side's receive edge still holds (its begin precedes the
        # remote recv end in emission order).
        return msg_send_begin, coll_group_of_end, coll_begins

    def _build(self, log: EventLog) -> None:
        msg_send_begin, coll_group_of_end, coll_begins = self._index_log(log)
        vc: Dict[int, VectorClock] = {}
        fork_vc: Dict[Tuple[int, int], VectorClock] = {}
        barrier_vc: Dict[Tuple[int, int, int], VectorClock] = {}
        team_members: Dict[Tuple[int, int], Set[int]] = {}
        lock_vc: Dict[Tuple[int, str], VectorClock] = {}

        def clock_of(proc: int, thread: int) -> VectorClock:
            key = _tid_key(proc, thread)
            if key not in vc:
                vc[key] = VectorClock({key: 1})
            return vc[key]

        for event in log:
            key = _tid_key(event.proc, event.thread)
            current = clock_of(event.proc, event.thread)

            if isinstance(event, ThreadFork):
                fork_vc[(event.proc, event.team)] = current.copy()
                members = team_members.setdefault((event.proc, event.team), set())
                members.add(key)
                members.update(_tid_key(event.proc, c) for c in event.children)
            elif isinstance(event, ThreadBegin):
                base = fork_vc.get((event.proc, event.team))
                if base is not None:
                    current = current.join(base)
            elif isinstance(event, ThreadJoin):
                for child in event.children:
                    child_vc = vc.get(_tid_key(event.proc, child))
                    if child_vc is not None:
                        current = current.join(child_vc)
            elif isinstance(event, BarrierEvent):
                bkey = (event.proc, event.team, event.epoch)
                joined = barrier_vc.get(bkey)
                if joined is None:
                    members = team_members.get((event.proc, event.team), {key})
                    joined = join_all(
                        vc[m] for m in members if m in vc
                    ).join(current)
                    barrier_vc[bkey] = joined
                current = current.join(joined)
            elif isinstance(event, LockAcquire):
                held = lock_vc.get((event.proc, event.lock))
                if held is not None:
                    current = current.join(held)
            elif isinstance(event, MPICall) and event.phase == "end":
                msg_id = event.args.get("msg_id")
                op = event.op
                if msg_id and (op in _P2P_RECV_OPS or op == "mpi_sendrecv"
                               or (op == "mpi_wait"
                                   and event.args.get("kind") == "recv")):
                    begin_seq = msg_send_begin.get(msg_id)
                    if begin_seq is not None and begin_seq in self.clocks:
                        current = current.join(self.clocks[begin_seq])
                group = coll_group_of_end.get(event.seq)
                if group is not None:
                    for begin_seq in coll_begins.get(group, ()):
                        clock = self.clocks.get(begin_seq)
                        if clock is not None:
                            current = current.join(clock)

            current = current.tick(key)
            vc[key] = current
            self.clocks[event.seq] = current

            if isinstance(event, LockRelease):
                lock_vc[(event.proc, event.lock)] = current.copy()

    def ordered(self, seq_a: int, seq_b: int) -> bool:
        a, b = self.clocks[seq_a], self.clocks[seq_b]
        return a.leq(b) or b.leq(a)

    def happens_before(self, seq_a: int, seq_b: int) -> bool:
        return self.clocks[seq_a].happens_before(self.clocks[seq_b])


def _collect_p2p(log: EventLog) -> Tuple[List[SendRecord], List[RecvRecord]]:
    sends: List[SendRecord] = []
    recvs: List[RecvRecord] = []
    for event in log:
        if not (isinstance(event, MPICall) and event.phase == "end"):
            continue
        args = event.args
        msg_id = args.get("msg_id")
        if not msg_id:
            continue
        if event.op in _P2P_SEND_OPS:
            sends.append(SendRecord(
                seq=event.seq, proc=event.proc, thread=event.thread,
                dst=args.get("peer", -1), tag=args.get("tag", -1),
                comm=args.get("comm", 0), msg_id=msg_id, loc=event.loc,
            ))
        elif event.op in _P2P_RECV_OPS or (
            event.op == "mpi_wait" and args.get("kind") == "recv"
        ):
            recvs.append(RecvRecord(
                seq=event.seq, proc=event.proc, thread=event.thread,
                src=args.get("peer", MPI_ANY_SOURCE),
                tag=args.get("tag", MPI_ANY_TAG),
                comm=args.get("comm", 0), msg_id=msg_id, loc=event.loc,
            ))
        elif event.op == "mpi_sendrecv":
            # the receive half; the send half was posted with dest/sendtag
            recvs.append(RecvRecord(
                seq=event.seq, proc=event.proc, thread=event.thread,
                src=args.get("peer", MPI_ANY_SOURCE),
                tag=args.get("tag", MPI_ANY_TAG),
                comm=args.get("comm", 0), msg_id=msg_id, loc=event.loc,
            ))
    return sends, recvs


def _envelope_accepts(recv: RecvRecord, send: SendRecord) -> bool:
    if send.comm != recv.comm or send.dst != recv.proc:
        return False
    if recv.src != MPI_ANY_SOURCE and send.proc != recv.src:
        return False
    if recv.tag != MPI_ANY_TAG and send.tag != recv.tag:
        return False
    return True


def find_message_races(log: EventLog) -> List[MessageRace]:
    """DAMPI-style nondeterministic-match detection over a whole run.

    For each receive, an *alternative* send is one whose message the
    receive's posted envelope accepts, other than the one it consumed,
    such that neither (a) the receive happened-before the send (the send
    causally followed the receive — it could not have been matched), nor
    (b) the send's message was consumed by a receive that happened
    strictly before this one on the same thread-order (FIFO pairs from
    the same sender are not racy among themselves).
    """
    hb = CrossProcessHB(log)
    sends, recvs = _collect_p2p(log)
    send_by_msg: Dict[int, SendRecord] = {s.msg_id: s for s in sends}
    consumer_of: Dict[int, RecvRecord] = {r.msg_id: r for r in recvs}

    races: List[MessageRace] = []
    for recv in recvs:
        matched = send_by_msg.get(recv.msg_id)
        alternatives: List[SendRecord] = []
        for send in sends:
            if send.msg_id == recv.msg_id:
                continue
            if not _envelope_accepts(recv, send):
                continue
            # a send that causally depends on this receive couldn't race it
            if hb.happens_before(recv.seq, send.seq):
                continue
            # a message already consumed by a receive that happens-before
            # this one was gone in every timing consistent with the order
            consumer = consumer_of.get(send.msg_id)
            if consumer is not None and hb.happens_before(consumer.seq, recv.seq):
                continue
            # same-sender same-tag messages are FIFO: only the racy case
            # of distinct (sender, tag) streams is a true nondeterministic
            # match, matching DAMPI's focus on wildcard matches.
            if matched is not None and (send.proc, send.tag) == (
                matched.proc, matched.tag
            ):
                continue
            alternatives.append(send)
        if alternatives:
            races.append(MessageRace(recv, matched, alternatives))
    return races


def wildcard_races(log: EventLog) -> List[MessageRace]:
    """Only the races on wildcard receives (DAMPI's headline output)."""
    return [race for race in find_message_races(log) if race.is_wildcard]
