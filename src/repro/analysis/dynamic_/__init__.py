"""Runtime (dynamic) analysis phase: vector clocks, happens-before,
lockset, and the hybrid concurrency detector."""

from .happensbefore import HBResult, compute_happens_before  # noqa: F401
from .hybrid import (  # noqa: F401
    ConcurrencyReport,
    DetectorConfig,
    MPICallRecord,
    RacingPair,
    analyze,
    analyze_process,
    collect_call_records,
)
from .lockset import (  # noqa: F401
    AccessRecord,
    EraserState,
    LocationState,
    LocksetAnalysis,
)
from .memraces import MemRace, find_memory_races  # noqa: F401
from .msgrace import (  # noqa: F401
    CrossProcessHB,
    MessageRace,
    find_message_races,
    wildcard_races,
)
from .vectorclock import VectorClock, join_all  # noqa: F401

__all__ = [
    "VectorClock",
    "join_all",
    "HBResult",
    "compute_happens_before",
    "LocksetAnalysis",
    "LocationState",
    "AccessRecord",
    "EraserState",
    "DetectorConfig",
    "ConcurrencyReport",
    "MPICallRecord",
    "RacingPair",
    "analyze",
    "analyze_process",
    "collect_call_records",
    "MemRace",
    "find_memory_races",
    "CrossProcessHB",
    "MessageRace",
    "find_message_races",
    "wildcard_races",
]
