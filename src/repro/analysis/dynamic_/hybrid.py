"""Hybrid (lockset + happens-before) concurrency detection on monitored
variables — the dynamic half of HOME.

The monitored variables written by the HMPI wrappers turn "two MPI calls
may execute concurrently on two threads" into an ordinary data-race
question: the wrapper writes are racy iff the calls are concurrent.
This module answers that question with the combination the paper uses —
a pair of accesses is *racy* when it is simultaneously

* a potential lockset race (different threads, disjoint locksets,
  ``IsPotentialLockSetRace``), and
* a potential happens-before race (neither access ordered before the
  other, ``IsPotentialHappenBeforeRace``).

Either half can be disabled for the ablation study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...events import EventLog, MonitoredWrite, MPICall
from ...events.event import MonitoredKind
from .happensbefore import HBResult, compute_happens_before
from .lockset import LocksetAnalysis


@dataclass(frozen=True)
class DetectorConfig:
    """Which halves of the hybrid detector are active."""

    use_lockset: bool = True
    use_hb: bool = True
    #: include release->acquire edges in the happens-before order
    lock_edges: bool = True
    #: lock-name set/predicate invisible to the detector (tool quirks)
    ignored_locks: object = None


@dataclass
class MPICallRecord:
    """One dynamic (instrumented) MPI call instance."""

    call_id: int
    proc: int
    thread: int
    op: str
    callsite: int
    loc: str
    time: float
    is_main_thread: bool = True
    #: MonitoredKind -> event seq of this call's write to that variable
    writes: Dict[MonitoredKind, int] = field(default_factory=dict)
    #: MonitoredKind -> value written
    values: Dict[MonitoredKind, object] = field(default_factory=dict)

    def arg(self, kind: MonitoredKind, default=None):
        return self.values.get(kind, default)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.op}@{self.loc} (rank {self.proc}, thread {self.thread})"


@dataclass
class RacingPair:
    """Two MPI call instances whose monitored writes race."""

    a: MPICallRecord
    b: MPICallRecord
    kinds: Tuple[MonitoredKind, ...]

    @property
    def threads(self) -> Tuple[int, int]:
        return (self.a.thread, self.b.thread)

    def ops(self) -> Tuple[str, str]:
        return (self.a.op, self.b.op)

    def callsites(self) -> Tuple[int, int]:
        return tuple(sorted((self.a.callsite, self.b.callsite)))

    def locs(self) -> Tuple[str, str]:
        pairs = sorted(
            ((self.a.callsite, self.a.loc), (self.b.callsite, self.b.loc))
        )
        return (pairs[0][1], pairs[1][1])


@dataclass
class ConcurrencyReport:
    """Per-process verdicts from the hybrid dynamic analysis."""

    proc: int
    records: Dict[int, MPICallRecord] = field(default_factory=dict)
    pairs: List[RacingPair] = field(default_factory=list)
    concurrent_kinds: Set[MonitoredKind] = field(default_factory=set)
    hb: Optional[HBResult] = None
    lockset: Optional[LocksetAnalysis] = None

    def concurrent(self, kind: MonitoredKind) -> bool:
        """The paper's ``Concurrent(var)`` predicate for this process."""
        return kind in self.concurrent_kinds

    def pairs_for_ops(self, ops_a, ops_b) -> List[RacingPair]:
        """Racing pairs whose two ops fall in the given op sets (either
        orientation)."""
        sa, sb = set(ops_a), set(ops_b)
        out = []
        for pair in self.pairs:
            oa, ob = pair.a.op, pair.b.op
            if (oa in sa and ob in sb) or (oa in sb and ob in sa):
                out.append(pair)
        return out


def collect_call_records(log: EventLog, proc: int) -> Dict[int, MPICallRecord]:
    """Group monitored writes (and begin events) into call instances."""
    records: Dict[int, MPICallRecord] = {}
    for event in log:
        if event.proc != proc:
            continue
        if type(event) is MonitoredWrite:
            rec = records.get(event.call_id)
            if rec is None:
                rec = records[event.call_id] = MPICallRecord(
                    call_id=event.call_id,
                    proc=proc,
                    thread=event.thread,
                    op=event.mpi_op,
                    callsite=event.callsite,
                    loc=event.loc,
                    time=event.time,
                )
            rec.writes[event.kind] = event.seq
            rec.values[event.kind] = event.value
        elif type(event) is MPICall and event.phase == "begin":
            rec = records.get(event.call_id)
            if rec is not None:
                rec.is_main_thread = event.is_main_thread
    return records


def analyze_process(
    log: EventLog, proc: int, config: DetectorConfig = DetectorConfig()
) -> ConcurrencyReport:
    """Run the hybrid detector over one process's monitored writes."""
    report = ConcurrencyReport(proc)
    report.records = collect_call_records(log, proc)
    if not report.records:
        return report

    hb = compute_happens_before(
        log, proc, lock_edges=config.lock_edges, ignored_locks=config.ignored_locks
    )
    report.hb = hb

    lockset = LocksetAnalysis()
    for rec in report.records.values():
        for kind, seq in rec.writes.items():
            lockset.access(
                key=(proc, kind),
                seq=seq,
                thread=rec.thread,
                locks=hb.locks_held.get(seq, frozenset()),
                is_write=True,
            )
    report.lockset = lockset

    def racy(seq_a: int, seq_b: int) -> bool:
        if config.use_hb and hb.ordered(seq_a, seq_b):
            return False
        if config.use_lockset and not hb.disjoint_locks(seq_a, seq_b):
            return False
        return True

    recs = sorted(report.records.values(), key=lambda r: r.call_id)
    for i in range(len(recs)):
        a = recs[i]
        for j in range(i + 1, len(recs)):
            b = recs[j]
            if a.thread == b.thread:
                continue
            common = [k for k in a.writes if k in b.writes]
            kinds = tuple(
                k for k in common if racy(a.writes[k], b.writes[k])
            )
            if kinds:
                report.pairs.append(RacingPair(a, b, kinds))
                report.concurrent_kinds.update(kinds)
    return report


def analyze(
    log: EventLog, config: DetectorConfig = DetectorConfig()
) -> Dict[int, ConcurrencyReport]:
    """Hybrid concurrency reports for every process in the log."""
    return {
        proc: analyze_process(log, proc, config) for proc in log.processes()
    }
