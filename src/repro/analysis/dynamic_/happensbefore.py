"""Happens-before computation over one process's event stream.

Replays a process's events in emission order, maintaining per-thread
vector clocks.  Synchronization edges:

* **program order** within each thread;
* **fork** — team workers start with the forking master's clock;
* **join** — the master absorbs every worker's final clock;
* **barrier** — all team members' clocks join at each barrier epoch;
* **lock edges** (optional) — release of lock L happens-before the next
  acquire of L.  With lock edges on, this is the O'Callahan-Choi hybrid
  ordering the paper builds on; turning them off gives the "pure"
  happens-before used in the ablation study.

Emission order is a legal linearization: the interpreter only emits an
event when its thread actually executes, and barrier/join events are
emitted strictly after every prerequisite event of other threads (see
the scheduler's wake conditions), so single-pass replay is sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...events import (
    BarrierEvent,
    EventLog,
    LockAcquire,
    LockRelease,
    ThreadBegin,
    ThreadFork,
    ThreadJoin,
)
from ...events.event import Event
from .vectorclock import VectorClock, VectorClockBuilder


@dataclass
class HBResult:
    """Vector clocks and lockset snapshots for one process's events."""

    proc: int
    #: event seq -> vector clock at that event
    clocks: Dict[int, VectorClock] = field(default_factory=dict)
    #: event seq -> frozenset of lock names held by the thread at the event
    locks_held: Dict[int, frozenset] = field(default_factory=dict)
    threads: Set[int] = field(default_factory=set)

    def ordered(self, seq_a: int, seq_b: int) -> bool:
        """True iff the two events are happens-before ordered (either way)."""
        vc_a, vc_b = self.clocks[seq_a], self.clocks[seq_b]
        return vc_a.leq(vc_b) or vc_b.leq(vc_a)

    def concurrent(self, seq_a: int, seq_b: int) -> bool:
        return not self.ordered(seq_a, seq_b)

    def disjoint_locks(self, seq_a: int, seq_b: int) -> bool:
        return not (self.locks_held[seq_a] & self.locks_held[seq_b])


def compute_happens_before(
    log: EventLog,
    proc: int,
    lock_edges: bool = True,
    ignored_locks=None,
) -> HBResult:
    """Compute vector clocks for every event of process *proc*.

    ``ignored_locks``: a set of lock names, or a predicate
    ``name -> bool``, describing locks the analysis cannot see — used to
    model the Intel Thread Checker's failure to recognize named ``omp
    critical`` sections.  Ignored locks contribute neither
    happens-before edges nor lockset membership.
    """
    if ignored_locks is None:
        def _is_ignored(_name: str) -> bool:
            return False
    elif callable(ignored_locks):
        _is_ignored = ignored_locks
    else:
        _ignored_set = set(ignored_locks)

        def _is_ignored(name: str) -> bool:
            return name in _ignored_set
    result = HBResult(proc)
    vc: Dict[int, VectorClock] = {}
    held: Dict[int, Set[str]] = {}
    #: last released clock per lock
    lock_vc: Dict[str, VectorClock] = {}
    #: fork clock per team id
    fork_vc: Dict[int, VectorClock] = {}
    #: barrier join clock per (team, epoch)
    barrier_vc: Dict[Tuple[int, int], VectorClock] = {}
    #: team id -> member thread ids (learned from fork/begin events)
    team_members: Dict[int, Set[int]] = {}

    def thread_clock(tid: int) -> VectorClock:
        if tid not in vc:
            vc[tid] = VectorClock({tid: 1})
            held[tid] = set()
            result.threads.add(tid)
        return vc[tid]

    #: clocks this event must absorb before its program-order tick;
    #: reused across iterations so the common no-edge event stays
    #: allocation-free until the tick itself
    incoming: List[VectorClock] = []

    for event in log:
        if event.proc != proc:
            continue
        tid = event.thread
        current = thread_clock(tid)
        incoming.clear()

        if isinstance(event, ThreadFork):
            # Clocks are immutable, so the fork snapshot is the clock
            # itself — no defensive copy.
            fork_vc[event.team] = current
            team_members.setdefault(event.team, set()).add(tid)
            team_members[event.team].update(event.children)
        elif isinstance(event, ThreadBegin):
            base = fork_vc.get(event.team)
            if base is not None:
                incoming.append(base)
            team_members.setdefault(event.team, set()).add(tid)
        elif isinstance(event, ThreadJoin):
            for child in event.children:
                child_vc = vc.get(child)
                if child_vc is not None:
                    incoming.append(child_vc)
        elif isinstance(event, BarrierEvent):
            key = (event.team, event.epoch)
            joined = barrier_vc.get(key)
            if joined is None:
                members = team_members.get(event.team, {tid})
                builder = VectorClockBuilder()
                for member in members:
                    member_vc = vc.get(member)
                    if member_vc is not None:
                        builder.join(member_vc)
                builder.join(current)
                joined = builder.into_clock()
                barrier_vc[key] = joined
            incoming.append(joined)
        elif isinstance(event, LockAcquire):
            if not _is_ignored(event.lock):
                if lock_edges and event.lock in lock_vc:
                    incoming.append(lock_vc[event.lock])
                held[tid].add(event.lock)
        elif isinstance(event, LockRelease):
            if not _is_ignored(event.lock):
                held[tid].discard(event.lock)

        # Absorb the synchronization edges and advance program order in
        # one mutating pass — a single dict allocation per event.
        if incoming:
            builder = current.mutable()
            for clock in incoming:
                builder.join(clock)
            current = builder.tick(tid).into_clock()
        else:
            current = current.tick(tid)
        vc[tid] = current
        result.clocks[event.seq] = current
        result.locks_held[event.seq] = frozenset(held.get(tid, ()))

        # Release edge is sourced *after* the event's own tick so that
        # the release itself happens-before the matching acquire.
        if isinstance(event, LockRelease) and lock_edges and not _is_ignored(event.lock):
            lock_vc[event.lock] = current

    return result
