"""Happens-before data-race detection on user memory accesses.

This is what a general-purpose thread checker (the paper's ITC
comparison) does: monitor *every* shared memory access in parallel
regions and report unordered conflicting pairs.  HOME deliberately does
not do this — it is the expensive path — but the ITC baseline model
needs it, and it doubles as an ablation showing why monitored-variable
filtering is so much cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...events import EventLog, MemAccess
from .happensbefore import HBResult, compute_happens_before


@dataclass
class MemRace:
    """A conflicting, unordered access pair on one memory cell."""

    proc: int
    cell: int
    index: int
    var: str
    seq_a: int
    seq_b: int
    thread_a: int
    thread_b: int
    callsite_a: int
    callsite_b: int

    def key(self) -> Tuple[int, int, int]:
        """One finding per racy memory location (cell, element)."""
        return (self.proc, self.cell, self.index)


def find_memory_races(
    log: EventLog,
    proc: int,
    lock_edges: bool = True,
    ignored_locks=None,
    use_lockset: bool = True,
    max_pairs_per_cell: int = 4,
) -> List[MemRace]:
    """Conflicting unordered access pairs on shared cells of *proc*.

    ``max_pairs_per_cell`` bounds the quadratic pair search per cell —
    real detectors keep a bounded access history for the same reason.
    Deduplication by (var, callsite pair) keeps reports readable.
    """
    accesses: Dict[tuple, List[MemAccess]] = {}
    for event in log:
        if type(event) is MemAccess and event.proc == proc:
            accesses.setdefault((event.cell, event.index), []).append(event)
    if not accesses:
        return []

    hb = compute_happens_before(
        log, proc, lock_edges=lock_edges, ignored_locks=ignored_locks
    )

    races: List[MemRace] = []
    seen_keys = set()
    for (cell, _index), evs in accesses.items():
        if len(evs) < 2:
            continue
        threads = {e.thread for e in evs}
        if len(threads) < 2:
            continue
        found = 0
        # Bounded pairwise scan: compare each access against a window of
        # later accesses from other threads.
        for i in range(len(evs)):
            if found >= max_pairs_per_cell:
                break
            a = evs[i]
            for j in range(i + 1, len(evs)):
                b = evs[j]
                if a.thread == b.thread:
                    continue
                if not (a.is_write or b.is_write):
                    continue
                if hb.ordered(a.seq, b.seq):
                    continue
                if use_lockset and not hb.disjoint_locks(a.seq, b.seq):
                    continue
                race = MemRace(
                    proc=proc, cell=cell, index=_index, var=a.var,
                    seq_a=a.seq, seq_b=b.seq,
                    thread_a=a.thread, thread_b=b.thread,
                    callsite_a=a.callsite, callsite_b=b.callsite,
                )
                if race.key() not in seen_keys:
                    seen_keys.add(race.key())
                    races.append(race)
                    found += 1
                if found >= max_pairs_per_cell:
                    break
    return races
