"""Typed runtime events consumed by the dynamic analyses.

The interpreter emits a single totally-ordered (by emission) stream of
events per execution.  HOME's lockset and happens-before analyses, the
Marmot model and the ITC model all consume subsets of this stream.
"""

from .event import (  # noqa: F401
    BarrierEvent,
    CollectiveArrive,
    ErrorHandlerEvent,
    Event,
    FaultEvent,
    LockAcquire,
    LockRelease,
    MemAccess,
    MonitoredKind,
    MonitoredWrite,
    MPICall,
    MPIErrorEvent,
    ThreadBegin,
    ThreadEnd,
    ThreadFork,
    ThreadJoin,
)
from .log import EventLog  # noqa: F401
from .serialize import dump_log, load_log  # noqa: F401

__all__ = [
    "Event",
    "FaultEvent",
    "MemAccess",
    "MonitoredWrite",
    "MonitoredKind",
    "LockAcquire",
    "LockRelease",
    "BarrierEvent",
    "CollectiveArrive",
    "ThreadBegin",
    "ThreadEnd",
    "ThreadFork",
    "ThreadJoin",
    "MPICall",
    "MPIErrorEvent",
    "ErrorHandlerEvent",
    "EventLog",
    "dump_log",
    "load_log",
]
