"""Event-record interning: per-site constant strings built once.

Hot emit paths stamp the same per-callsite constants — the ``"line:col"``
source location above all — onto thousands of event records per run.
Formatting that string on every emission allocates a fresh object each
time; worse, equal-but-distinct strings defeat the identity fast path in
``dict`` probes and comparisons downstream (trace serialization, site
narrowing against ``collective_sites``, report grouping).

:func:`intern_loc` maps a :class:`SourceLoc` to a single
``sys.intern``-ed string per distinct location, so every event emitted
from one callsite shares one object.  The table is process-global and
bounded: location sets are tiny (one entry per distinct source
coordinate in the loaded programs), but a runaway is clipped anyway.
"""

from __future__ import annotations

import sys
from typing import Dict

#: safety valve — far above any realistic distinct-location count
_MAX_ENTRIES = 1 << 16

_LOC_STRINGS: Dict[object, str] = {}


def intern_loc(loc) -> str:
    """Shared ``"line:col"`` string for a source location.

    Byte-for-byte identical to ``f"{loc.line}:{loc.col}"`` — interning
    changes object identity only, never serialized bytes.
    """
    cached = _LOC_STRINGS.get(loc)
    if cached is None:
        if len(_LOC_STRINGS) >= _MAX_ENTRIES:
            _LOC_STRINGS.clear()
        cached = sys.intern(f"{loc.line}:{loc.col}")
        _LOC_STRINGS[loc] = cached
    return cached


def intern_table_size() -> int:
    """Current table size (tests)."""
    return len(_LOC_STRINGS)
