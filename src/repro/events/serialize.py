"""Event-log serialization (JSON lines).

HOME's dynamic phase is offline — it replays a recorded event stream —
so traces are first-class artifacts: a run on one machine can be
analyzed on another, archived next to a bug report, or re-analyzed
with different detector settings without re-running the program.

Format: one JSON object per line; first line is a header with the
format version and run metadata, each following line one event with a
``t`` (type) discriminator.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, TextIO, Union

from ..errors import AnalysisError
from ..jsonlines import read_json_lines
from .event import (
    BarrierEvent,
    CollectiveArrive,
    ErrorHandlerEvent,
    Event,
    FaultEvent,
    LockAcquire,
    LockRelease,
    MemAccess,
    MonitoredKind,
    MonitoredWrite,
    MPICall,
    MPIErrorEvent,
    ThreadBegin,
    ThreadEnd,
    ThreadFork,
    ThreadJoin,
)
from .log import EventLog

FORMAT_VERSION = 1

_TYPES = {
    cls.__name__: cls
    for cls in (
        MemAccess, MonitoredWrite, LockAcquire, LockRelease, BarrierEvent,
        CollectiveArrive, ThreadFork, ThreadJoin, ThreadBegin, ThreadEnd,
        MPICall, FaultEvent, MPIErrorEvent, ErrorHandlerEvent,
    )
}


def _event_to_dict(event: Event) -> Dict[str, Any]:
    import dataclasses

    out: Dict[str, Any] = {"t": type(event).__name__}
    for f in dataclasses.fields(event):
        value = getattr(event, f.name)
        if isinstance(value, MonitoredKind):
            value = value.name
        elif isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


def _event_from_dict(data: Dict[str, Any]) -> Event:
    data = dict(data)
    tname = data.pop("t", None)
    cls = _TYPES.get(tname)
    if cls is None:
        raise AnalysisError(f"unknown event type {tname!r} in trace")
    if cls is MonitoredWrite and "kind" in data:
        data["kind"] = MonitoredKind[data["kind"]]
    for key in ("children",):
        if key in data and isinstance(data[key], list):
            data[key] = tuple(data[key])
    try:
        return cls(**data)
    except TypeError as err:
        raise AnalysisError(f"malformed {tname} record: {err}") from err


def dump_log(
    log: EventLog,
    target: Union[str, Path, TextIO],
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    """Write *log* as JSON lines to a path or open text file."""
    own = isinstance(target, (str, Path))
    fh: TextIO = open(target, "w") if own else target  # type: ignore[arg-type]
    try:
        header = {"format": "repro-trace", "version": FORMAT_VERSION,
                  "events": len(log)}
        if metadata:
            header["meta"] = metadata
        fh.write(json.dumps(header) + "\n")
        for event in log:
            fh.write(json.dumps(_event_to_dict(event)) + "\n")
    finally:
        if own:
            fh.close()


def load_log(source: Union[str, Path, TextIO], strict: bool = True):
    """Read a trace written by :func:`dump_log`.

    Returns ``(EventLog, metadata dict)``.

    A run that crashes or is killed mid-write leaves a truncated or
    corrupt trailing line.  With ``strict=True`` (the default) that
    raises a clear :class:`~repro.errors.AnalysisError` naming the bad
    line.  With ``strict=False`` the valid prefix is salvaged instead:
    reading stops at the first undecodable line and the metadata gains
    ``salvaged: True`` plus a ``dropped_lines`` count, so offline
    analyzers can still consume what the dying run managed to record.
    Truncation handling is shared with the campaign journal
    (:func:`repro.jsonlines.read_json_lines`), so both artifacts agree
    on what a damaged tail means.
    """
    own = isinstance(source, (str, Path))
    fh: TextIO = open(source) if own else source  # type: ignore[arg-type]
    try:
        header_line = fh.readline()
        if not header_line.strip():
            raise AnalysisError("empty trace file")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as err:
            raise AnalysisError(
                f"corrupt trace header (not valid JSON): {err}"
            ) from err
        if header.get("format") != "repro-trace":
            raise AnalysisError("not a repro trace file")
        if header.get("version") != FORMAT_VERSION:
            raise AnalysisError(
                f"unsupported trace version {header.get('version')}"
            )
        meta = dict(header.get("meta", {}))
        events, truncation = read_json_lines(
            fh, lambda line: _event_from_dict(json.loads(line)), start_lineno=2,
            start_offset=len(header_line.encode("utf-8")),
        )
        if truncation is not None and strict:
            raise AnalysisError(
                f"corrupt trace line {truncation.lineno} "
                f"at byte offset {truncation.byte_offset} "
                f"(truncated write or damaged file): {truncation.error}"
            )
        log = EventLog()
        max_seq = -1
        for event in events:
            log.append(event)
            max_seq = max(max_seq, event.seq)
        if truncation is not None:
            # Tolerant mode: everything from the first bad line on is
            # suspect — salvage the valid prefix only, and record where
            # the damage starts so operators can inspect/truncate it.
            meta["salvaged"] = True
            meta["dropped_lines"] = truncation.dropped
            meta["corrupt_byte_offset"] = truncation.byte_offset
        # keep the seq allocator consistent for appended events
        log.reserve_seqs(max_seq)
        return log, meta
    finally:
        if own:
            fh.close()
