"""Append-only event log with typed query helpers.

One :class:`EventLog` is produced per simulated execution.  The dynamic
analyses are offline: they replay this log after the run terminates,
which matches the paper's "StartExecLog(); // record all the arguments
in log" wrapper design.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Tuple, Type, TypeVar

from .event import (
    BarrierEvent,
    Event,
    LockAcquire,
    LockRelease,
    MemAccess,
    MonitoredWrite,
    MPICall,
    ThreadBegin,
    ThreadEnd,
    ThreadFork,
    ThreadJoin,
)

E = TypeVar("E", bound=Event)


class EventLog:
    """Totally ordered (by emission) log of runtime events."""

    __slots__ = ("_events", "_next_seq")

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._next_seq = 0

    # -- recording -----------------------------------------------------------

    def next_seq(self) -> int:
        """Allocate the next emission sequence number."""
        seq = self._next_seq
        self._next_seq = seq + 1
        return seq

    def append(self, event: Event) -> None:
        self._events.append(event)

    def extend(self, events: Iterable[Event]) -> None:
        self._events.extend(events)

    def reserve_seqs(self, upto: int) -> None:
        """Fast-forward the seq allocator past *upto* (trace loaders)."""
        if upto >= self._next_seq:
            self._next_seq = upto + 1

    def raw_append(self):
        """The underlying list's bound ``append`` — the interpreter's
        per-event hot path binds this once instead of paying a method
        dispatch per emission."""
        return self._events.append

    # -- querying ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, idx: int) -> Event:
        return self._events[idx]

    def of_type(self, etype: Type[E]) -> List[E]:
        """All events of exactly the given type, in emission order."""
        return [e for e in self._events if type(e) is etype]

    def for_process(self, proc: int) -> List[Event]:
        return [e for e in self._events if e.proc == proc]

    def processes(self) -> List[int]:
        return sorted({e.proc for e in self._events})

    def threads_of(self, proc: int) -> List[int]:
        return sorted({e.thread for e in self._events if e.proc == proc})

    def by_thread(self, proc: int) -> Dict[int, List[Event]]:
        """Per-thread event streams of one process, each in program order."""
        streams: Dict[int, List[Event]] = defaultdict(list)
        for e in self._events:
            if e.proc == proc:
                streams[e.thread].append(e)
        return dict(streams)

    def monitored_writes(self, proc: int) -> List[MonitoredWrite]:
        return [
            e
            for e in self._events
            if type(e) is MonitoredWrite and e.proc == proc
        ]

    def mpi_calls(self, proc: int | None = None, phase: str = "begin") -> List[MPICall]:
        return [
            e
            for e in self._events
            if type(e) is MPICall
            and e.phase == phase
            and (proc is None or e.proc == proc)
        ]

    def mpi_call_intervals(self, proc: int) -> List[Tuple[MPICall, MPICall]]:
        """(begin, end) pairs for each completed MPI call in *proc*.

        Calls that never completed (e.g. blocked at deadlock) are paired
        with ``None`` end markers and excluded here; the Marmot model
        inspects unfinished calls separately via :meth:`unfinished_mpi_calls`.
        """
        begins: Dict[int, MPICall] = {}
        pairs: List[Tuple[MPICall, MPICall]] = []
        for e in self._events:
            if type(e) is not MPICall or e.proc != proc:
                continue
            if e.phase == "begin":
                begins[e.call_id] = e
            else:
                begin = begins.pop(e.call_id, None)
                if begin is not None:
                    pairs.append((begin, e))
        return pairs

    def unfinished_mpi_calls(self, proc: int) -> List[MPICall]:
        """MPI calls that began but never ended (blocked forever)."""
        begins: Dict[int, MPICall] = {}
        for e in self._events:
            if type(e) is not MPICall or e.proc != proc:
                continue
            if e.phase == "begin":
                begins[e.call_id] = e
            else:
                begins.pop(e.call_id, None)
        return list(begins.values())

    # -- statistics ------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Event counts by type name (diagnostics / tests)."""
        out: Dict[str, int] = defaultdict(int)
        for e in self._events:
            out[type(e).__name__] += 1
        return dict(out)


__all__ = ["EventLog"]
