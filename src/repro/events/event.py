"""Event dataclasses recorded during simulated execution.

Identification scheme
---------------------

* ``proc`` — MPI rank of the process the event happened in.
* ``thread`` — process-local thread id (0 is the process main thread;
  OpenMP workers get fresh ids from a per-process counter, so a thread
  id never repeats within a process even across parallel regions).
* ``seq`` — global emission sequence number (total order of emission,
  *not* a causal order).
* ``time`` — virtual time on the emitting thread's clock.

The paper's six monitored variables map onto :class:`MonitoredKind`;
a write to monitored variable *k* in process *p* is the memory location
``(p, k)`` for the lockset and happens-before analyses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


class MonitoredKind(enum.Enum):
    """The monitored variables HOME's MPI wrappers write (paper §IV-B)."""

    SRC = "srctmp"
    TAG = "tagtmp"
    COMM = "commtmp"
    REQUEST = "requesttmp"
    COLLECTIVE = "collectivetmp"
    FINALIZE = "finalizetmp"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class Event:
    """Base event; all events carry (proc, thread, seq, time)."""

    proc: int
    thread: int
    seq: int
    time: float


@dataclass(frozen=True, slots=True)
class MemAccess(Event):
    """A read or write of a *shared* program variable.

    Only emitted when full memory monitoring is on (the ITC model) —
    HOME deliberately does not monitor computation variables.
    """

    is_write: bool = False
    cell: int = 0          # unique id of the memory cell
    var: str = ""          # source-level variable name (best effort)
    callsite: int = 0      # AST node id of the access
    index: int = -1        # array element index; -1 for scalars


@dataclass(frozen=True, slots=True)
class MonitoredWrite(Event):
    """A write to one of HOME's monitored variables by an HMPI wrapper."""

    kind: MonitoredKind = MonitoredKind.SRC
    value: Any = None
    mpi_op: str = ""       # e.g. 'mpi_recv'
    callsite: int = 0      # AST node id of the (original) MPI call
    loc: str = ""          # human-readable source location
    call_id: int = 0       # dynamic call instance (shared with MPICall)


@dataclass(frozen=True, slots=True)
class LockAcquire(Event):
    lock: str = ""


@dataclass(frozen=True, slots=True)
class LockRelease(Event):
    lock: str = ""


@dataclass(frozen=True, slots=True)
class BarrierEvent(Event):
    """A thread passed a team barrier (explicit or implicit)."""

    team: int = 0
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class ThreadFork(Event):
    """Emitted by the master thread when it creates a team."""

    team: int = 0
    children: Tuple[int, ...] = ()


@dataclass(frozen=True, slots=True)
class ThreadJoin(Event):
    """Emitted by the master thread after joining its team."""

    team: int = 0
    children: Tuple[int, ...] = ()


@dataclass(frozen=True, slots=True)
class ThreadBegin(Event):
    """First event of a worker thread; links back to the forking parent."""

    team: int = 0
    parent: int = 0


@dataclass(frozen=True, slots=True)
class ThreadEnd(Event):
    team: int = 0


@dataclass(frozen=True, slots=True)
class CollectiveArrive(Event):
    """A team member *encountered* a collective construct.

    The dynamic half of the PARCOACH collective-matching check: every
    thread of a team must encounter the same ordered sequence of
    collective constructs (explicit barrier, worksharing entry, an MPI
    collective issued from inside the region).  Emitted at encounter —
    before any blocking — so divergent arrivals are on record even when
    the run subsequently deadlocks.  Only emitted when
    ``RunConfig.monitor_collectives`` is on (divergence-directed
    narrowing keeps default traces byte-identical).
    """

    team: int = 0
    kind: str = ""       # "barrier" | "for" | "sections" | "single" | "mpi"
    op: str = ""         # MPI op name when kind == "mpi"
    callsite: int = 0    # AST node id of the construct / call
    loc: str = ""        # "line:col" (stable across program clones)
    index: int = 0       # position in this member's arrival sequence


@dataclass(frozen=True, slots=True)
class MPICall(Event):
    """Begin/end bracket of an MPI routine invocation.

    ``phase`` is 'begin' or 'end'; a begin/end pair shares ``call_id``.
    ``args`` holds the routine's semantically relevant arguments
    (source, tag, comm id, request handle, root, ...).
    """

    op: str = ""
    phase: str = "begin"
    call_id: int = 0
    callsite: int = 0
    loc: str = ""
    is_main_thread: bool = True
    instrumented: bool = False
    args: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class FaultEvent(Event):
    """An injected fault fired at this point of the execution.

    Recorded in the trace so reports can attribute findings (or their
    absence) to the injected condition — a run that only saw a
    violation *because* the library downgraded the thread level should
    say so.
    """

    kind: str = ""        # fault taxonomy name, e.g. 'rank-crash'
    detail: str = ""      # human-readable description of what was done
    op: str = ""          # MPI op at the injection point, if any


@dataclass(frozen=True, slots=True)
class MPIErrorEvent(Event):
    """An MPI operation surfaced an error class instead of completing.

    Recorded whenever the fault-tolerance layer converts a fault into
    an error code — whether the handler then aborts, returns the code,
    or runs a user handler function.
    """

    op: str = ""          # failing MPI op
    comm: int = 0         # communicator handle
    error_class: str = "" # symbolic name, e.g. 'MPI_ERR_PROC_FAILED'
    code: int = 0         # numeric error class
    handler: str = ""     # 'fatal', 'return', or the handler function name
    detail: str = ""


@dataclass(frozen=True, slots=True)
class ErrorHandlerEvent(Event):
    """Enter/exit bracket of a user error-handler invocation.

    The reentrancy rule uses these spans: a handler making MPI calls
    while another thread is inside MPI is a thread-safety violation
    below ``MPI_THREAD_MULTIPLE``.
    """

    phase: str = "enter"  # 'enter' or 'exit'
    comm: int = 0
    code: int = 0
    handler: str = ""


#: MPI operations considered collectives by the violation rules.
COLLECTIVE_OPS = frozenset(
    {
        "mpi_barrier",
        "mpi_bcast",
        "mpi_reduce",
        "mpi_allreduce",
        "mpi_gather",
        "mpi_allgather",
        "mpi_scatter",
        "mpi_alltoall",
    }
)

#: Map MPI op name -> monitored variable kinds its HMPI wrapper writes
#: (paper §IV-B: "different routines has its own monitored variable").
MONITORED_KINDS_BY_OP: Dict[str, Tuple[MonitoredKind, ...]] = {
    "mpi_send": (MonitoredKind.SRC, MonitoredKind.TAG, MonitoredKind.COMM),
    "mpi_ssend": (MonitoredKind.SRC, MonitoredKind.TAG, MonitoredKind.COMM),
    "mpi_sendrecv": (MonitoredKind.SRC, MonitoredKind.TAG, MonitoredKind.COMM),
    "mpi_recv": (MonitoredKind.SRC, MonitoredKind.TAG, MonitoredKind.COMM),
    "mpi_isend": (MonitoredKind.SRC, MonitoredKind.TAG, MonitoredKind.COMM,
                  MonitoredKind.REQUEST),
    "mpi_irecv": (MonitoredKind.SRC, MonitoredKind.TAG, MonitoredKind.COMM,
                  MonitoredKind.REQUEST),
    "mpi_probe": (MonitoredKind.SRC, MonitoredKind.TAG, MonitoredKind.COMM),
    "mpi_iprobe": (MonitoredKind.SRC, MonitoredKind.TAG, MonitoredKind.COMM),
    "mpi_wait": (MonitoredKind.REQUEST,),
    "mpi_waitall": (MonitoredKind.REQUEST,),
    "mpi_test": (MonitoredKind.REQUEST,),
    "mpi_finalize": (MonitoredKind.FINALIZE,),
    "mpi_barrier": (MonitoredKind.COLLECTIVE, MonitoredKind.COMM),
    "mpi_bcast": (MonitoredKind.COLLECTIVE, MonitoredKind.COMM),
    "mpi_reduce": (MonitoredKind.COLLECTIVE, MonitoredKind.COMM),
    "mpi_allreduce": (MonitoredKind.COLLECTIVE, MonitoredKind.COMM),
    "mpi_gather": (MonitoredKind.COLLECTIVE, MonitoredKind.COMM),
    "mpi_allgather": (MonitoredKind.COLLECTIVE, MonitoredKind.COMM),
    "mpi_scatter": (MonitoredKind.COLLECTIVE, MonitoredKind.COMM),
    "mpi_alltoall": (MonitoredKind.COLLECTIVE, MonitoredKind.COMM),
    # Fault-tolerance surface.  Shrink is deliberately NOT in
    # COLLECTIVE_OPS: its races are claimed by the dedicated
    # recovery-race rule, not the generic collective rule.
    "mpi_comm_shrink": (MonitoredKind.COLLECTIVE, MonitoredKind.COMM),
    "mpi_comm_revoke": (MonitoredKind.COMM,),
    "mpi_comm_failure_ack": (MonitoredKind.COMM,),
    "mpi_comm_set_errhandler": (MonitoredKind.COMM,),
}
