"""Runtime fault injector — the simulator's oracle at decision points.

One :class:`FaultInjector` exists per execution.  The interpreter and
MPI builtins ask it questions ("what thread level does the library
grant?", "does this rank survive its next MPI call?", "how is this
message delivered?") and it answers deterministically from the
:class:`~repro.faults.plan.FaultPlan` plus a run-seeded RNG, recording
every fired fault so the trace and the campaign report can attribute
findings to injected conditions.
"""

from __future__ import annotations

import os
import random
import signal
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, NoReturn, Optional

from ..errors import WorkerKillFault
from .plan import (
    EAGER_RENDEZVOUS,
    LOCK_JITTER,
    MESSAGE_DELAY,
    QUEUE_REORDER,
    RANK_CRASH,
    THREAD_DOWNGRADE,
    WORKER_KILL,
    FaultPlan,
    FaultSpec,
)

#: set (to any non-empty value) in processes that may be killed outright
#: by the worker-kill drill — the campaign supervisor marks its workers
#: disposable; everywhere else the drill degrades to an exception
DISPOSABLE_WORKER_ENV = "REPRO_DISPOSABLE_WORKER"


def kill_worker_process(detail: str) -> NoReturn:
    """Die the way a segfaulting cell would — but only when the process
    is a disposable supervised worker.  In any other process (a serial
    campaign, ``repro check``) raise :class:`WorkerKillFault` instead,
    which per-cell isolation converts into an error outcome."""
    if os.environ.get(DISPOSABLE_WORKER_ENV):
        os.kill(os.getpid(), signal.SIGKILL)
    raise WorkerKillFault(detail)


@dataclass
class SendPerturbation:
    """How an injected fault alters one message transmission."""

    extra_latency: float = 0.0
    force_sync: bool = False
    reorder: bool = False
    applied: List[FaultSpec] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.applied)


class FaultInjector:
    """Answers the simulator's fault questions for one execution."""

    def __init__(self, plan: Optional[FaultPlan], nprocs: int, seed: int = 0) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.nprocs = nprocs
        self.enabled = bool(self.plan)
        #: seeded independently of the scheduler RNG so adding a fault
        #: kind never perturbs scheduling decisions of unrelated runs
        self.rng = random.Random((seed << 16) ^ 0x5EED_FA17)
        #: third independent stream for retry-backoff jitter: retries
        #: must perturb neither scheduling nor other fault decisions,
        #: and exists even for empty plans (retry policies are program
        #: state, not fault-plan state)
        self.retry_rng = random.Random((seed << 16) ^ 0x4E72_7DAD)
        self._mpi_calls: Dict[int, int] = defaultdict(int)
        self._sends: Dict[int, int] = defaultdict(int)
        self._deliveries: Dict[int, int] = defaultdict(int)
        self._crashed: set = set()
        self._wk_calls: Dict[int, int] = defaultdict(int)
        self._wk_fired = False
        #: every fault fired, in firing order (surfaced via run stats)
        self.injected: List[Dict] = []
        by_kind: Dict[str, List[FaultSpec]] = defaultdict(list)
        for spec in self.plan.specs:
            by_kind[spec.kind].append(spec)
        self._by_kind = dict(by_kind)

    # -- bookkeeping ---------------------------------------------------------

    def _first(self, kind: str, rank: int) -> Optional[FaultSpec]:
        for spec in self._by_kind.get(kind, ()):
            if spec.rank is None or spec.rank == rank:
                return spec
        return None

    def record(self, spec: FaultSpec, rank: int, detail: str) -> Dict:
        entry = {"kind": spec.kind, "rank": rank, "detail": detail}
        self.injected.append(entry)
        return entry

    # -- decision points -----------------------------------------------------

    def granted_thread_level(self, rank: int, provided: int) -> tuple:
        """Thread level the (faulty) library grants at init.

        Returns ``(level, spec-or-None)``; *spec* is set when the fault
        downgraded the level below what the healthy library would give.
        """
        spec = self._first(THREAD_DOWNGRADE, rank)
        if spec is None or spec.max_level >= provided:
            return provided, None
        return spec.max_level, spec

    def on_mpi_call(self, rank: int) -> Optional[FaultSpec]:
        """Called once per MPI invocation; non-None means *rank* crashes
        here (and stays dead for the rest of the run — callers should
        test :meth:`crashed` first for already-dead ranks)."""
        spec = self._first(RANK_CRASH, rank)
        if spec is None:
            return None
        self._mpi_calls[rank] += 1
        if self._mpi_calls[rank] >= spec.at_call:
            self._crashed.add(rank)
            return spec
        return None

    def crashed(self, rank: int) -> bool:
        return rank in self._crashed

    def worker_kill_due(self, rank: int) -> Optional[FaultSpec]:
        """Called once per MPI invocation; non-None means the whole
        worker *process* hosting this simulation dies now (the
        poison-cell drill — see :func:`kill_worker_process`).  Fires at
        most once per execution."""
        if not self.enabled or self._wk_fired:
            return None
        spec = self._first(WORKER_KILL, rank)
        if spec is None:
            return None
        self._wk_calls[rank] += 1
        if self._wk_calls[rank] >= spec.at_call:
            self._wk_fired = True
            return spec
        return None

    def perturb_send(self, src: int, dst: int) -> SendPerturbation:
        """Faults applied to one point-to-point transmission src→dst."""
        out = SendPerturbation()
        if not self.enabled:
            return out
        delay = self._first(MESSAGE_DELAY, dst)
        if delay is not None:
            self._deliveries[dst] += 1
            if self._deliveries[dst] % delay.every == 0:
                out.extra_latency += delay.delay
                out.applied.append(delay)
        rdv = self._first(EAGER_RENDEZVOUS, src)
        if rdv is not None:
            self._sends[src] += 1
            if self._sends[src] > rdv.every:
                out.force_sync = True
                out.applied.append(rdv)
        reorder = self._first(QUEUE_REORDER, dst)
        if reorder is not None:
            # deterministic cadence, seeded phase
            if self.rng.randrange(reorder.every) == 0:
                out.reorder = True
                out.applied.append(reorder)
        return out

    def lock_jitter(self, rank: int) -> tuple:
        """Extra virtual-time cost for one lock acquisition."""
        if not self.enabled:
            return 0.0, None
        spec = self._first(LOCK_JITTER, rank)
        if spec is None or spec.delay <= 0:
            return 0.0, None
        return self.rng.uniform(0.0, spec.delay), spec

    def retry_backoff(
        self, base: float, factor: float, attempt: int, jitter: float = 0.25
    ) -> float:
        """Virtual-time cost of the *attempt*-th retry: exponential
        backoff with bounded deterministic jitter from the dedicated
        retry stream."""
        return base * (factor ** attempt) * (1.0 + jitter * self.retry_rng.random())

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict:
        counts: Dict[str, int] = defaultdict(int)
        for entry in self.injected:
            counts[entry["kind"]] += 1
        return {
            "plan": self.plan.name,
            "fired": len(self.injected),
            "by_kind": dict(counts),
            "crashed_ranks": sorted(self._crashed),
        }
