"""Deterministic fault injection for the dynamic phase.

The paper's key limitation of dynamic tools is that they "only see what
actually happened".  This package widens what *can* happen: a
seed-driven :class:`FaultPlan` describes misbehaviours of the simulated
MPI library and runtime — thread-level downgrades, rank crashes,
delivery delays, unexpected-queue reordering, eager→rendezvous flips,
lock jitter — and a :class:`FaultInjector` carried on the
:class:`~repro.runtime.config.RunConfig` answers the simulator's
questions at each decision point.  Every fired fault is recorded as a
:class:`~repro.events.FaultEvent` in the trace so reports can attribute
findings to the injected condition.
"""

from .injector import (  # noqa: F401
    DISPOSABLE_WORKER_ENV,
    FaultInjector,
    SendPerturbation,
    kill_worker_process,
)
from .plan import (  # noqa: F401
    DRILL_KINDS,
    EAGER_RENDEZVOUS,
    FAULT_KINDS,
    LOCK_JITTER,
    MESSAGE_DELAY,
    QUEUE_REORDER,
    RANK_CRASH,
    THREAD_DOWNGRADE,
    WORKER_KILL,
    FaultPlan,
    FaultSpec,
    builtin_plans,
    random_plan,
)

__all__ = [
    "FAULT_KINDS",
    "THREAD_DOWNGRADE",
    "RANK_CRASH",
    "MESSAGE_DELAY",
    "QUEUE_REORDER",
    "EAGER_RENDEZVOUS",
    "LOCK_JITTER",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "SendPerturbation",
    "DISPOSABLE_WORKER_ENV",
    "DRILL_KINDS",
    "WORKER_KILL",
    "builtin_plans",
    "kill_worker_process",
    "random_plan",
]
