"""Fault taxonomy and plans.

A :class:`FaultSpec` names one misbehaviour of the simulated MPI
library or runtime; a :class:`FaultPlan` is the ordered set of specs
one execution runs under.  Plans are plain data — JSON-serializable for
campaign checkpoints, hashable enough to dedup, and buildable either
from the named presets (:func:`builtin_plans`) or deterministically
from a seed (:func:`random_plan`).

The taxonomy (each item maps to a real MPI+threads failure mode):

* ``thread-downgrade`` — the library grants a lower thread level than
  requested (e.g. ``FUNNELED`` for ``MULTIPLE``), the paper's Fig. 1
  trigger and the everyday reality "Frustrated with MPI+Threads?"
  documents;
* ``rank-crash`` — a rank dies (``MPI_Abort`` / segfault model) at its
  Nth MPI call; the rest of the job keeps running and usually hangs;
* ``message-delay`` — delivery to a destination rank is slowed,
  stressing wildcard-receive match order;
* ``queue-reorder`` — the destination's unexpected-message queue is
  permuted on delivery, the adversarial schedule for wildcard-tag
  violations;
* ``eager-rendezvous`` — after N sends a rank's buffers are "exhausted"
  and further standard sends complete in rendezvous mode (the classic
  eager→rendezvous protocol flip that exposes send-side deadlocks);
* ``lock-jitter`` — lock acquisitions cost extra, seeded, variable
  time, perturbing the interleavings the dynamic phase observes.

One extra *drill* kind exists for the campaign service's self-tests
(:data:`DRILL_KINDS`, not part of :data:`FAULT_KINDS` so fuzzed
:func:`random_plan`\\ s never draw it):

* ``worker-kill`` — SIGKILLs the **host worker process** at the Nth
  MPI call, modelling a cell that segfaults the runner itself.  The
  supervised campaign layer must reclaim the lease and eventually
  quarantine the cell as poison; outside a disposable worker it
  degrades to a :class:`~repro.errors.WorkerKillFault` error outcome.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..mpi.constants import MPI_THREAD_FUNNELED

THREAD_DOWNGRADE = "thread-downgrade"
RANK_CRASH = "rank-crash"
MESSAGE_DELAY = "message-delay"
QUEUE_REORDER = "queue-reorder"
EAGER_RENDEZVOUS = "eager-rendezvous"
LOCK_JITTER = "lock-jitter"
WORKER_KILL = "worker-kill"

FAULT_KINDS: Tuple[str, ...] = (
    THREAD_DOWNGRADE,
    RANK_CRASH,
    MESSAGE_DELAY,
    QUEUE_REORDER,
    EAGER_RENDEZVOUS,
    LOCK_JITTER,
)

#: service self-test drills: valid in hand-built / builtin plans but
#: excluded from the random fuzzing pool — a fuzzed plan must perturb
#: the simulated job, never kill the process running it
DRILL_KINDS: Tuple[str, ...] = (WORKER_KILL,)


@dataclass(frozen=True)
class FaultSpec:
    """One injected misbehaviour.

    ``rank=None`` applies the fault to every rank.  The remaining
    fields are kind-specific knobs; unused ones keep their defaults.
    """

    kind: str
    #: target rank (crash victim, delayed destination, jittery process);
    #: None = all ranks
    rank: Optional[int] = None
    #: rank-crash: crash at this (1-based) MPI call of the victim rank
    at_call: int = 1
    #: thread-downgrade: highest level the library will grant
    max_level: int = MPI_THREAD_FUNNELED
    #: message-delay: extra virtual-time delivery latency;
    #: lock-jitter: maximum extra acquire cost
    delay: float = 0.0
    #: message-delay / queue-reorder: fire on every Nth message;
    #: eager-rendezvous: flip after this many sends from the rank
    every: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS and self.kind not in DRILL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.every < 1:
            raise ValueError("every must be >= 1")
        if self.at_call < 1:
            raise ValueError("at_call must be >= 1")

    def describe(self) -> str:
        where = "all ranks" if self.rank is None else f"rank {self.rank}"
        if self.kind == THREAD_DOWNGRADE:
            return f"{self.kind}: cap thread level at {self.max_level} on {where}"
        if self.kind == RANK_CRASH:
            return f"{self.kind}: {where} aborts at MPI call #{self.at_call}"
        if self.kind == MESSAGE_DELAY:
            return (f"{self.kind}: +{self.delay:g} delivery latency to {where}"
                    f" (every {self.every})")
        if self.kind == QUEUE_REORDER:
            return f"{self.kind}: permute {where}'s queue (every {self.every})"
        if self.kind == EAGER_RENDEZVOUS:
            return f"{self.kind}: {where} turns rendezvous after {self.every} send(s)"
        if self.kind == WORKER_KILL:
            return (f"{self.kind}: SIGKILL the worker process at {where}'s "
                    f"MPI call #{self.at_call} (poison-cell drill)")
        return f"{self.kind}: up to +{self.delay:g} per lock acquire on {where}"

    def as_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultSpec":
        known = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class FaultPlan:
    """The full set of faults one execution runs under."""

    specs: Tuple[FaultSpec, ...] = ()
    name: str = "none"

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def by_kind(self, kind: str) -> List[FaultSpec]:
        return [s for s in self.specs if s.kind == kind]

    def kinds(self) -> List[str]:
        return sorted({s.kind for s in self.specs})

    def describe(self) -> str:
        if not self.specs:
            return f"{self.name}: no faults"
        return f"{self.name}: " + "; ".join(s.describe() for s in self.specs)

    def as_dict(self) -> Dict:
        return {"name": self.name, "specs": [s.as_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        return cls(
            specs=tuple(FaultSpec.from_dict(s) for s in data.get("specs", ())),
            name=data.get("name", "none"),
        )


def builtin_plans(nprocs: int = 2) -> Dict[str, FaultPlan]:
    """The named single-fault plans the campaign CLI exposes.

    The crash victim is the last rank so rank 0 (which usually drives
    I/O and collectives roots in the workloads) survives to produce a
    trace worth analyzing.
    """
    victim = max(0, nprocs - 1)
    plans = {
        "none": FaultPlan(name="none"),
        "downgrade": FaultPlan(
            (FaultSpec(THREAD_DOWNGRADE, max_level=MPI_THREAD_FUNNELED),),
            name="downgrade",
        ),
        "crash": FaultPlan(
            (FaultSpec(RANK_CRASH, rank=victim, at_call=5),),
            name="crash",
        ),
        "delay": FaultPlan(
            (FaultSpec(MESSAGE_DELAY, delay=250.0, every=2),),
            name="delay",
        ),
        "reorder": FaultPlan(
            (FaultSpec(QUEUE_REORDER, every=2),),
            name="reorder",
        ),
        "rendezvous": FaultPlan(
            (FaultSpec(EAGER_RENDEZVOUS, every=2),),
            name="rendezvous",
        ),
        "jitter": FaultPlan(
            (FaultSpec(LOCK_JITTER, delay=8.0),),
            name="jitter",
        ),
        # poison-cell drill: every attempt at this cell SIGKILLs the
        # supervised worker running it — the service must quarantine it
        "killworker": FaultPlan(
            (FaultSpec(WORKER_KILL, rank=0, at_call=3),),
            name="killworker",
        ),
    }
    return plans


def random_plan(
    seed: int,
    nprocs: int = 2,
    kinds: Optional[Sequence[str]] = None,
    max_faults: int = 2,
) -> FaultPlan:
    """A deterministic plan derived from *seed* (campaign matrix rows).

    The same (seed, nprocs, kinds) always yields the same plan, so a
    campaign can be resumed or replayed exactly.
    """
    rng = random.Random(seed * 2654435761 % (1 << 32))
    pool = list(kinds if kinds is not None else FAULT_KINDS)
    count = rng.randint(1, max(1, min(max_faults, len(pool))))
    chosen = rng.sample(pool, count)
    specs: List[FaultSpec] = []
    for kind in chosen:
        rank = rng.choice([None] + list(range(nprocs)))
        if kind == RANK_CRASH:
            # crashes always target a concrete rank
            crash_rank = rank if rank is not None else rng.randrange(nprocs)
            specs.append(FaultSpec(kind, rank=crash_rank, at_call=rng.randint(1, 12)))
        elif kind == THREAD_DOWNGRADE:
            specs.append(FaultSpec(kind, rank=rank, max_level=rng.randint(0, 2)))
        elif kind == MESSAGE_DELAY:
            specs.append(FaultSpec(kind, rank=rank, delay=float(rng.randint(50, 500)),
                                   every=rng.randint(1, 3)))
        elif kind == QUEUE_REORDER:
            specs.append(FaultSpec(kind, rank=rank, every=rng.randint(1, 3)))
        elif kind == EAGER_RENDEZVOUS:
            specs.append(FaultSpec(kind, rank=rank, every=rng.randint(1, 4)))
        else:  # LOCK_JITTER
            specs.append(FaultSpec(kind, rank=rank, delay=float(rng.randint(1, 16))))
    return FaultPlan(tuple(specs), name=f"random-{seed}")
