"""Marmot model (Hilbrich et al., the paper's [6]).

Marmot intercepts every MPI call through the profiling interface and
funnels it to an *additional analysis process* that performs a global
check — which is why its overhead grows sharply with process count
(:data:`~repro.runtime.costmodel.MARMOT_CHARGE` serializes a manager
round-trip per call).

Its key limitation, which the paper's comparison hinges on: **it only
detects violations that actually appear in the monitored run.**  Two
MPI calls are deemed concurrent iff their execution intervals actually
overlapped; a potential race whose racy interleaving did not manifest
(e.g. two receives separated by compute skew) is silently missed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.dynamic_.hybrid import ConcurrencyReport, MPICallRecord, RacingPair
from ..events import EventLog, MPICall
from ..runtime import ExecutionResult
from ..runtime.costmodel import MARMOT_CHARGE
from ..violations import ViolationReport, match_violations
from .base import CheckingTool, call_records_from_events

_INFINITY = float("inf")


def observed_intervals(log: EventLog, proc: int) -> Dict[int, Tuple[float, float]]:
    """call_id -> (begin time, end time); unfinished calls end at +inf
    (a call blocked forever is concurrent with everything after it)."""
    out: Dict[int, Tuple[float, float]] = {}
    for begin, end in log.mpi_call_intervals(proc):
        out[begin.call_id] = (begin.time, end.time)
    for begin in log.unfinished_mpi_calls(proc):
        out[begin.call_id] = (begin.time, _INFINITY)
    return out


def observed_concurrency(log: EventLog, proc: int) -> ConcurrencyReport:
    """Concurrency oracle from actually-overlapping call intervals."""
    report = ConcurrencyReport(proc)
    report.records = call_records_from_events(log, proc)
    intervals = observed_intervals(log, proc)
    recs = sorted(report.records.values(), key=lambda r: r.call_id)
    for i in range(len(recs)):
        a = recs[i]
        ia = intervals.get(a.call_id)
        if ia is None:
            continue
        for j in range(i + 1, len(recs)):
            b = recs[j]
            if a.thread == b.thread:
                continue
            ib = intervals.get(b.call_id)
            if ib is None:
                continue
            # Strict interval overlap: both calls were in flight at once.
            if ia[0] < ib[1] and ib[0] < ia[1]:
                common = tuple(k for k in a.writes if k in b.writes)
                if common:
                    report.pairs.append(RacingPair(a, b, common))
                    report.concurrent_kinds.update(common)
    return report


class Marmot(CheckingTool):
    """Observed-occurrence-only dynamic checker with a central manager."""

    name = "MARMOT"
    charge = MARMOT_CHARGE
    monitor_memory = False

    def analyze(self, result: ExecutionResult, static) -> ViolationReport:
        log = result.log
        reports = {
            proc: observed_concurrency(log, proc) for proc in log.processes()
        }
        report = match_violations(log, reports)
        return report

    def check(self, program, nprocs=2, num_threads=2, seed=0, **overrides):
        tool_report = super().check(program, nprocs, num_threads, seed, **overrides)
        # Marmot's timeout-based deadlock detection: a deadlocked run is
        # reported (this is the one thing it catches that needs no overlap).
        if tool_report.deadlocked:
            tool_report.extras["deadlock"] = tool_report.execution.deadlock.summary()
        return tool_report
