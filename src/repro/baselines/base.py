"""Shared tool-driver machinery.

A checking tool is something that (a) possibly transforms the program,
(b) runs it under a cost/monitoring configuration, and (c) turns the
event log into a :class:`~repro.violations.ViolationReport`.  The three
tools compared in the paper — HOME, Marmot, the Intel Thread Checker —
differ in all three steps, but share this interface so the experiment
harness can sweep them uniformly.
"""

from __future__ import annotations

import abc
import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..analysis.dynamic_.hybrid import ConcurrencyReport, MPICallRecord
from ..events import EventLog, MPICall
from ..events.event import COLLECTIVE_OPS, MonitoredKind
from ..minilang import ast_nodes as A
from ..runtime import ExecutionResult, RunConfig, make_interpreter
from ..runtime.costmodel import NO_INSTRUMENTATION, InstrumentationCharge
from ..violations import ViolationReport


@dataclass
class ToolReport:
    """Outcome of running one checking tool on one program."""

    tool: str
    program: str
    violations: ViolationReport
    execution: ExecutionResult
    #: static-analysis artifacts, HOME only
    static: Optional[object] = None
    #: analysis wall-clock seconds (host time, diagnostics only)
    analysis_seconds: float = 0.0
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.execution.makespan

    @property
    def deadlocked(self) -> bool:
        return self.execution.deadlocked

    def summary(self) -> str:
        lines = [
            f"=== {self.tool} on {self.program} "
            f"(procs={self.execution.config.nprocs}, "
            f"threads={self.execution.config.num_threads}) ===",
            f"virtual execution time: {self.makespan:.0f}",
        ]
        if self.deadlocked:
            lines.append(self.execution.deadlock.summary())
        lines.append(self.violations.summary())
        return "\n".join(lines)


class CheckingTool(abc.ABC):
    """Base class for the tool drivers."""

    name: str = "tool"
    charge: InstrumentationCharge = NO_INSTRUMENTATION
    monitor_memory: bool = False

    def prepare(self, program: A.Program):
        """Return (program_to_run, static_artifacts)."""
        return program, None

    def run_config(
        self,
        nprocs: int,
        num_threads: int,
        seed: int,
        static: Optional[object] = None,
        **overrides,
    ) -> RunConfig:
        """Build the execution configuration for one check run.

        *static* carries the tool's own :meth:`prepare` artifacts so a
        tool can condition its runtime monitoring on what the static
        phase found (HOME narrows memory monitoring this way); the base
        implementation ignores it.
        """
        cfg = dict(
            nprocs=nprocs,
            num_threads=num_threads,
            seed=seed,
            charge=self.charge,
            monitor_memory=self.monitor_memory,
            thread_level_mode="permissive",
        )
        cfg.update(overrides)
        return RunConfig(**cfg)

    @abc.abstractmethod
    def analyze(self, result: ExecutionResult, static: Optional[object]) -> ViolationReport:
        """Turn an execution into violation findings."""

    def check(
        self,
        program: A.Program,
        nprocs: int = 2,
        num_threads: int = 2,
        seed: int = 0,
        **overrides,
    ) -> ToolReport:
        to_run, static = self.prepare(program)
        config = self.run_config(nprocs, num_threads, seed, static=static, **overrides)
        result = make_interpreter(to_run, config).run()
        t0 = _time.perf_counter()
        violations = self.analyze(result, static)
        elapsed = _time.perf_counter() - t0
        return ToolReport(
            tool=self.name,
            program=program.name,
            violations=violations,
            execution=result,
            static=static,
            analysis_seconds=elapsed,
        )


class BaseRunner(CheckingTool):
    """No checking at all — the 'Base' series of the paper's figures."""

    name = "Base"

    def analyze(self, result: ExecutionResult, static) -> ViolationReport:
        return ViolationReport()


def call_records_from_events(
    log: EventLog, proc: int, exclude_ops: frozenset = frozenset()
) -> Dict[int, MPICallRecord]:
    """Build call records straight from MPICall begin events.

    Used by tools that intercept MPI calls without HOME's wrappers
    (PMPI-style interception): argument values are mapped onto the
    monitored-variable kinds so the shared violation rules apply.
    """
    records: Dict[int, MPICallRecord] = {}
    for event in log:
        if type(event) is not MPICall or event.proc != proc or event.phase != "begin":
            continue
        if event.op in exclude_ops:
            continue
        if event.op in ("mpi_init", "mpi_init_thread"):
            continue
        rec = MPICallRecord(
            call_id=event.call_id,
            proc=proc,
            thread=event.thread,
            op=event.op,
            callsite=event.callsite,
            loc=event.loc,
            time=event.time,
            is_main_thread=event.is_main_thread,
        )
        args = event.args
        if "peer" in args:
            rec.writes[MonitoredKind.SRC] = event.seq
            rec.values[MonitoredKind.SRC] = args["peer"]
        if "tag" in args:
            rec.writes[MonitoredKind.TAG] = event.seq
            rec.values[MonitoredKind.TAG] = args["tag"]
        if "comm" in args:
            rec.writes[MonitoredKind.COMM] = event.seq
            rec.values[MonitoredKind.COMM] = args["comm"]
        if "request" in args:
            rec.writes[MonitoredKind.REQUEST] = event.seq
            rec.values[MonitoredKind.REQUEST] = args["request"]
        if event.op in COLLECTIVE_OPS:
            rec.writes[MonitoredKind.COLLECTIVE] = event.seq
            rec.values[MonitoredKind.COLLECTIVE] = event.op
        if event.op == "mpi_finalize":
            rec.writes[MonitoredKind.FINALIZE] = event.seq
            rec.values[MonitoredKind.FINALIZE] = 1
        records[event.call_id] = rec
    return records
