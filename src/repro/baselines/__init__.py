"""Baseline checking-tool models: Marmot and the Intel Thread Checker."""

from .base import BaseRunner, CheckingTool, ToolReport, call_records_from_events  # noqa: F401
from .itc import IntelThreadChecker, itc_concurrency, itc_ignores_lock  # noqa: F401
from .marmot import Marmot, observed_concurrency, observed_intervals  # noqa: F401

__all__ = [
    "CheckingTool",
    "ToolReport",
    "BaseRunner",
    "Marmot",
    "IntelThreadChecker",
    "call_records_from_events",
    "observed_concurrency",
    "observed_intervals",
    "itc_concurrency",
    "itc_ignores_lock",
]
