"""Intel Thread Checker model (the paper's [2]/[18] comparison tool).

ITC is a general-purpose binary-instrumentation race detector: it
monitors **every** shared memory access in threaded code — hence its
large overhead (:data:`~repro.runtime.costmodel.ITC_CHARGE` charges per
access, the paper observed up to ~200%).

Modelled quirks, both taken from the paper's §V-B discussion:

* **Named ``omp critical`` sections are not recognized** ("it cannot
  recognize omp critical directives correctly"): they contribute no
  happens-before edges and no lockset membership, so code correctly
  serialized by a named critical is reported as racing (the false
  positive the paper sees on BT), while anonymous criticals — the
  common OpenMP runtime entry point — are understood.
* **``MPI_Probe``/``MPI_Iprobe`` are invisible** ("the source and tag
  information in MPI_Probe() is not detected by intel thread checker"):
  probes have no buffer access for the binary instrumentation to hook,
  so probe-only violations are missed (the paper's LU miss).

Unlike HOME it has no notion of the MPI thread-safety specification per
se: it reports *races*.  Races on intercepted MPI call arguments map to
the shared violation rules; races on ordinary user memory are reported
as generic ``DataRace`` findings (the BT false positive is one).
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.dynamic_.happensbefore import compute_happens_before
from ..analysis.dynamic_.hybrid import ConcurrencyReport, RacingPair
from ..analysis.dynamic_.memraces import find_memory_races
from ..events import EventLog
from ..runtime import ExecutionResult
from ..runtime.costmodel import ITC_CHARGE
from ..violations import ViolationReport, match_violations
from ..violations.spec import Violation
from .base import CheckingTool, call_records_from_events

#: MPI operations invisible to ITC's interception.
_INVISIBLE_OPS = frozenset({"mpi_probe", "mpi_iprobe"})


def itc_ignores_lock(name: str) -> bool:
    """ITC does not recognize *named* omp critical sections."""
    return name.startswith("critical:") and name != "critical:<anonymous>"


def itc_concurrency(log: EventLog, proc: int) -> ConcurrencyReport:
    """Concurrency oracle: happens-before with ITC's blind spots."""
    report = ConcurrencyReport(proc)
    report.records = call_records_from_events(
        log, proc, exclude_ops=_INVISIBLE_OPS
    )
    if not report.records:
        return report
    hb = compute_happens_before(
        log, proc, lock_edges=True, ignored_locks=itc_ignores_lock
    )
    report.hb = hb
    recs = sorted(report.records.values(), key=lambda r: r.call_id)
    # ITC keys races off the begin events of intercepted calls.
    seq_of = {}
    for rec in recs:
        for kind, seq in rec.writes.items():
            seq_of[(rec.call_id, kind)] = seq
    for i in range(len(recs)):
        a = recs[i]
        for j in range(i + 1, len(recs)):
            b = recs[j]
            if a.thread == b.thread:
                continue
            common = [k for k in a.writes if k in b.writes]
            kinds = []
            for k in common:
                sa, sb = a.writes[k], b.writes[k]
                if sa not in hb.clocks or sb not in hb.clocks:
                    continue
                if hb.ordered(sa, sb):
                    continue
                if not hb.disjoint_locks(sa, sb):
                    continue
                kinds.append(k)
            if kinds:
                report.pairs.append(RacingPair(a, b, tuple(kinds)))
                report.concurrent_kinds.update(kinds)
    return report


class IntelThreadChecker(CheckingTool):
    """Full-memory-monitoring race detector with OpenMP blind spots."""

    name = "ITC"
    charge = ITC_CHARGE
    monitor_memory = True

    def analyze(self, result: ExecutionResult, static) -> ViolationReport:
        log = result.log
        reports = {proc: itc_concurrency(log, proc) for proc in log.processes()}
        violations = match_violations(log, reports)
        # Generic data races on user memory (named criticals invisible).
        for proc in log.processes():
            for race in find_memory_races(
                log, proc, lock_edges=True, ignored_locks=itc_ignores_lock
            ):
                violations.add(
                    Violation(
                        vclass="DataRace",
                        proc=proc,
                        message=(
                            f"conflicting unsynchronized accesses to shared "
                            f"variable {race.var!r} from threads "
                            f"{race.thread_a} and {race.thread_b}"
                        ),
                        callsites=tuple(sorted((race.callsite_a, race.callsite_b))),
                        threads=tuple(sorted((race.thread_a, race.thread_b))),
                    )
                )
        return violations
