"""General violation injection into arbitrary hybrid programs.

The NPB generator bakes its six violations in at source-generation
time; this module provides the same capability as a *program
transformation*: take any mini-language program and graft a chosen
violation pattern into it (the paper's methodology — "we artificially
implemented several tricky errors inside of these benchmarks" — as a
reusable library feature).

Each injection is a self-contained ``home_inject_<class>`` function
appended to the program plus a call inserted into ``main`` just before
its final ``mpi_finalize`` (or at the end).  Paired processes exchange
with ``rank XOR 1``, so any even process count works.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ToolError
from ..minilang import Program, ast_nodes as A, parse, print_program
from ..minilang.builder import clone
from ..violations.spec import (
    COLLECTIVE,
    CONCURRENT_RECV,
    CONCURRENT_REQUEST,
    FINALIZATION,
    INITIALIZATION,
    PROBE,
)

#: Base tag for injected traffic; spaced so multiple injections coexist.
_TAG_BASE = 9200


@dataclass(frozen=True)
class InjectionSpec:
    """Parameters of one graftable violation."""

    vclass: str
    func_name: str
    #: mini-language source of the injection function (format: ``tag``)
    template: str
    #: skew (compute units) applied to thread 1, when supported
    supports_skew: bool = False


_TEMPLATES: Dict[str, InjectionSpec] = {}


def _register(vclass: str, func_name: str, template: str, supports_skew=False):
    _TEMPLATES[vclass] = InjectionSpec(vclass, func_name, template, supports_skew)


_register(CONCURRENT_RECV, "home_inject_recv", """
func home_inject_recv(rank, size) {{
    var partner = rank + 1 - 2 * (rank % 2);
    var ibuf[2];
    mpi_send(ibuf, 1, partner, {tag}, MPI_COMM_WORLD);
    mpi_send(ibuf, 1, partner, {tag}, MPI_COMM_WORLD);
    omp parallel num_threads(2) {{{skew}
        mpi_recv(ibuf, 1, partner, {tag}, MPI_COMM_WORLD);
    }}
    return 0;
}}
""", supports_skew=True)

_register(CONCURRENT_REQUEST, "home_inject_request", """
func home_inject_request(rank, size) {{
    var partner = rank + 1 - 2 * (rank % 2);
    var ibuf[2];
    compute(60);
    mpi_send(ibuf, 1, partner, {tag}, MPI_COMM_WORLD);
    var ireq = mpi_irecv(ibuf, 1, partner, {tag}, MPI_COMM_WORLD);
    omp parallel num_threads(2) {{{skew}
        mpi_wait(ireq);
    }}
    return 0;
}}
""", supports_skew=True)

_register(PROBE, "home_inject_probe", """
func home_inject_probe(rank, size) {{
    var partner = rank + 1 - 2 * (rank % 2);
    var ibuf[2];
    mpi_send(ibuf, 1, partner, {tag}, MPI_COMM_WORLD);
    omp parallel num_threads(2) {{
        mpi_probe(partner, {tag}, MPI_COMM_WORLD);
    }}
    mpi_recv(ibuf, 1, partner, {tag}, MPI_COMM_WORLD);
    return 0;
}}
""")

_register(COLLECTIVE, "home_inject_collective", """
func home_inject_collective(rank, size) {{
    omp parallel num_threads(2) {{
        mpi_barrier(MPI_COMM_WORLD);
    }}
    return 0;
}}
""")

_register(FINALIZATION, "home_inject_finalize", """
func home_inject_finalize(rank, size) {{
    omp parallel num_threads(2) {{
        if (omp_get_thread_num() == 1) {{
            mpi_finalize();
        }}
    }}
    return 0;
}}
""")


INJECTABLE_CLASSES = tuple(_TEMPLATES) + (INITIALIZATION,)


@dataclass
class InjectedProgram:
    """Result of grafting violations into a program."""

    program: Program
    injected: List[str] = field(default_factory=list)  # violation classes
    functions: List[str] = field(default_factory=list)


def _parse_injection(spec: InjectionSpec, tag: int, skew: int) -> A.FuncDef:
    skew_text = ""
    if skew > 0:
        if not spec.supports_skew:
            raise ToolError(f"{spec.vclass} injection does not support skew")
        skew_text = (
            "\n        if (omp_get_thread_num() == 1) {"
            f"\n            compute({skew});"
            "\n        }"
        )
    source = "program stub;\n" + spec.template.format(tag=tag, skew=skew_text)
    stub = parse(source)
    return stub.functions[0]


def _find_finalize_index(main: A.FuncDef) -> Optional[int]:
    for i, stmt in enumerate(main.body.stmts):
        if (
            isinstance(stmt, A.ExprStmt)
            and isinstance(stmt.expr, A.CallExpr)
            and stmt.expr.name.removeprefix("h") == "mpi_finalize"
        ):
            return i
    return None


def _downgrade_thread_level(program: Program) -> bool:
    """Initialization injection: weaken the requested level to SERIALIZED."""
    for node in program.walk():
        if isinstance(node, A.CallExpr) and node.name.removeprefix("h") == "mpi_init_thread":
            if node.args:
                node.args[0] = A.Name("MPI_THREAD_SERIALIZED")
                return True
    return False


def inject_violations(
    program: Program,
    classes: Sequence[str],
    skew: int = 0,
    tag_base: int = _TAG_BASE,
) -> InjectedProgram:
    """Graft the given violation classes into a copy of *program*.

    ``skew`` (compute units on thread 1) makes the recv/request
    injections *unmanifested*: still potential races, but their calls
    never overlap in time — the pattern a purely observational checker
    misses.

    The initialization class has no code block: it is injected by
    downgrading the program's requested thread level to
    ``MPI_THREAD_SERIALIZED`` (which the other injections' concurrency
    then violates); the program must call ``mpi_init_thread``.
    """
    unknown = [c for c in classes if c not in INJECTABLE_CLASSES]
    if unknown:
        raise ToolError(f"cannot inject violation class(es): {unknown}")

    new_program = clone(program)
    assert isinstance(new_program, Program)
    result = InjectedProgram(new_program)
    try:
        main = new_program.function("main")
    except KeyError:
        raise ToolError("program has no main() to inject into") from None

    declared = {
        stmt.name for stmt in main.body.walk() if isinstance(stmt, A.VarDecl)
    }
    needs_rank = any(c != INITIALIZATION for c in classes)
    if needs_rank and not {"rank", "size"} <= declared:
        raise ToolError(
            "injection requires main() to declare 'rank' and 'size' "
            "(e.g. var rank = mpi_comm_rank(MPI_COMM_WORLD);)"
        )

    calls: List[A.Stmt] = []
    for offset, vclass in enumerate(c for c in classes if c != INITIALIZATION):
        spec = _TEMPLATES[vclass]
        fn = _parse_injection(spec, tag_base + offset, skew)
        new_program.functions.append(fn)
        call = A.ExprStmt(A.CallExpr(fn.name, [A.Name("rank"), A.Name("size")]))
        calls.append(call)
        result.injected.append(vclass)
        result.functions.append(fn.name)

    if calls:
        guard = A.If(
            A.Binary(">=", A.Name("size"), A.IntLit(2)),
            A.Block(calls),
        )
        idx = _find_finalize_index(main)
        if FINALIZATION in classes:
            # the finalize injection replaces the program's own finalize
            if idx is not None:
                del main.body.stmts[idx]
            main.body.stmts.append(guard)
        elif idx is not None:
            main.body.stmts.insert(idx, guard)
        else:
            main.body.stmts.append(guard)

    if INITIALIZATION in classes:
        if not _downgrade_thread_level(new_program):
            raise ToolError(
                "initialization injection requires an mpi_init_thread call"
            )
        result.injected.append(INITIALIZATION)

    return result


def inject_all(program: Program, skew: int = 0) -> InjectedProgram:
    """Graft one violation of every class (the paper's 6-per-benchmark
    methodology) into *program*."""
    return inject_violations(
        program,
        [CONCURRENT_RECV, CONCURRENT_REQUEST, PROBE, COLLECTIVE,
         FINALIZATION, INITIALIZATION],
        skew=skew,
    )
