"""BT-MZ: block tri-diagonal solver, multi-zone mini version.

BT has three solver stages per step (x/y/z sweeps) and — uniquely — a
benign *named* ``omp critical`` performance counter in its base code.
The counter is perfectly serialized at runtime, but the ITC model does
not recognize named criticals, so it reports a spurious data race —
the one false positive behind the Table-1 row
``NPB-MZ BT (6) | HOME 6 | ITC 7 | Marmot 6``.

All six injections manifest as real overlaps here (no skew), so Marmot
detects all of them; the probe injection is iprobe+recv, whose receive
side is visible to ITC.
"""

from __future__ import annotations

from ...minilang import Program
from .common import NPBSpec, build_program, build_source

BT_SPEC = NPBSpec(
    name="bt_mz",
    zones=48,
    steps=2,
    stages=3,
    zone_weight=8,
    compute_units=2,
    named_critical_counter=True,
    recv_skew=0,
    request_late_delay=100,
    request_skew=0,
    probe_style="iprobe-recv",
)


def build_bt_mz(inject: bool = True) -> Program:
    """The BT-MZ mini benchmark (optionally with the six violations)."""
    return build_program(BT_SPEC, inject=inject)


def bt_mz_source(inject: bool = True) -> str:
    return build_source(BT_SPEC, inject=inject)
