"""Mini NPB-MZ benchmark generator.

Generates hybrid MPI/OpenMP multi-zone benchmarks in the mini language,
structurally modelled on the NAS NPB3.3-MZ suite the paper evaluates:
a fixed global set of zones is partitioned across MPI ranks; each rank
sweeps its zones with OpenMP worksharing (one or more solver stages per
time step), exchanges boundary data with its ring neighbours, and
reduces a residual.

Following the paper's methodology ("these well-tested benchmarks do not
have thread-safety issues... so we artificially implemented several
tricky errors inside of these benchmarks"), each benchmark can be
generated with six injected violations — one per violation class — as
dedicated ``inject_*`` functions appended to the program.  Knobs on
:class:`NPBSpec` control the *manifestation* characteristics of each
injection (compute skew, late messages, probe style), which is what
differentiates the tools' detection counts in Table 1:

* a **skewed** pair is still a potential race (HOME's lockset+HB finds
  it on any schedule) but its two calls never actually overlap in time,
  so the observed-occurrence-only Marmot model misses it;
* a **probe/probe** pair is invisible to the ITC model (probes are not
  intercepted), while an **iprobe+recv** pair is visible through its
  receive side;
* a **named-critical counter** in the base code (BT only) is perfectly
  serialized at runtime but unrecognized by the ITC model — its one
  false positive.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Literal, Optional, Tuple

from ...minilang import Program, ast_nodes as A, parse
from ...violations.spec import (
    COLLECTIVE,
    CONCURRENT_RECV,
    CONCURRENT_REQUEST,
    FINALIZATION,
    INITIALIZATION,
    PROBE,
)

ProbeStyle = Literal["probe-probe", "iprobe-recv"]


@dataclass(frozen=True)
class NPBSpec:
    """Shape parameters of one mini NPB-MZ benchmark."""

    name: str
    #: total zones, partitioned across ranks (strong scaling)
    zones: int = 64
    #: time steps of the outer solver loop
    steps: int = 3
    #: solver stages (omp-for sweeps) per step — BT has x/y/z solves
    stages: int = 1
    #: inner compute iterations per zone per stage
    zone_weight: int = 8
    #: per-iteration synthetic compute units
    compute_units: int = 1
    #: residual allreduce at each step
    use_allreduce: bool = True
    #: halo exchange with ring neighbours each step
    use_exchange: bool = True
    #: BT quirk: a benign named-critical counter in the base code
    named_critical_counter: bool = False
    #: compute skew (units) applied to thread 1 of the recv injection;
    #: >0 means the two receives never overlap (Marmot misses it)
    recv_skew: int = 0
    #: >0: the request injection's message is sent late (both waits
    #: block and overlap); 0 with request_skew>0: SP's Marmot miss
    request_late_delay: int = 400
    #: compute skew for thread 1 of the request injection
    request_skew: int = 0
    #: probe injection style (see module docstring)
    probe_style: ProbeStyle = "iprobe-recv"
    #: serial (main-thread) work per step — boundary conditions etc.;
    #: the Amdahl fraction that keeps strong scaling from being ideal
    serial_units: int = 120

    def injected_classes(self) -> Tuple[str, ...]:
        return (
            INITIALIZATION,
            FINALIZATION,
            CONCURRENT_RECV,
            CONCURRENT_REQUEST,
            PROBE,
            COLLECTIVE,
        )


@dataclass
class InjectionInfo:
    """Registry entry mapping an injected violation to source lines."""

    vclass: str
    func_name: str
    first_line: int
    last_line: int

    def contains_loc(self, loc: str) -> bool:
        try:
            line = int(loc.split(":")[0])
        except (ValueError, IndexError):
            return False
        return self.first_line <= line <= self.last_line


# ---------------------------------------------------------------------------
# Source generation
# ---------------------------------------------------------------------------


def _base_functions(spec: NPBSpec) -> str:
    """Zone solver, halo exchange and residual functions."""
    total_elems = spec.zones * 4
    parts: List[str] = []
    parts.append(f"""
func zone_work(z, stage) {{
    var base = z * 4;
    for (var k = 0; k < {spec.zone_weight}; k = k + 1) {{
        var e = base + (k % 4);
        field[e] = field[e] + 1.0 + stage;
        compute({spec.compute_units});
    }}
    omp critical {{
        residual[0] = residual[0] + 1.0;
    }}
    return 0;
}}""")
    if spec.use_exchange:
        parts.append("""
func exchange(rank, size, step) {
    if (size > 1) {
        var right = (rank + 1) % size;
        var left = (rank + size - 1) % size;
        mpi_send(halo_out, 4, right, 100 + step, MPI_COMM_WORLD);
        mpi_recv(halo_in, 4, left, 100 + step, MPI_COMM_WORLD);
    }
    return 0;
}""")
    header = f"""
var field[{total_elems}];
var residual[2];
var halo_out[4];
var halo_in[4];
var tcount = 0;
"""
    return header + "\n".join(parts)


def _main_loop(spec: NPBSpec) -> str:
    """The solver loop body (inside main)."""
    stage_loops = []
    for stage in range(spec.stages):
        stage_loops.append(f"""
        omp for schedule(static) for (var z = zfirst; z < zlast; z = z + 1) {{
            zone_work(z, {stage});
        }}""")
    critical_counter = ""
    if spec.named_critical_counter:
        critical_counter = """
        omp critical (perf_counter) {
            tcount = tcount + 1;
        }"""
    body = f"""
    var chunk = {spec.zones} / size;
    var rem = {spec.zones} % size;
    var zfirst = rank * chunk + min(rank, rem);
    var zcount = chunk;
    if (rank < rem) {{ zcount = zcount + 1; }}
    var zlast = zfirst + zcount;
    for (var step = 0; step < {spec.steps}; step = step + 1) {{
        compute({spec.serial_units});
        omp parallel num_threads(2) {{{"".join(stage_loops)}{critical_counter}
        }}"""
    if spec.use_exchange:
        body += """
        exchange(rank, size, step);"""
    if spec.use_allreduce:
        body += """
        var global_res = mpi_allreduce(residual[0], MPI_SUM, MPI_COMM_WORLD);
        residual[1] = global_res;"""
    body += """
    }"""
    return body


def _injection_functions(spec: NPBSpec) -> str:
    """The six artificial violations, one function each."""
    parts: List[str] = []

    # V3: Concurrent MPI_Recv — two threads receive with the same
    # (source, tag, communicator) envelope.
    skew = ""
    if spec.recv_skew > 0:
        skew = f"""
        if (omp_get_thread_num() == 1) {{
            compute({spec.recv_skew});
        }}"""
    parts.append(f"""
func inject_concurrent_recv(rank, size) {{
    var partner = rank + 1 - 2 * (rank % 2);
    var vbuf[2];
    mpi_send(vbuf, 1, partner, 77, MPI_COMM_WORLD);
    mpi_send(vbuf, 1, partner, 77, MPI_COMM_WORLD);
    omp parallel num_threads(2) {{{skew}
        mpi_recv(vbuf, 1, partner, 77, MPI_COMM_WORLD);
    }}
    return 0;
}}""")

    # V4: Concurrent request — two threads wait on the same request.
    delay = ""
    if spec.request_late_delay > 0:
        delay = f"""
    compute({spec.request_late_delay});"""
    rskew = ""
    if spec.request_skew > 0:
        rskew = f"""
        if (omp_get_thread_num() == 1) {{
            compute({spec.request_skew});
        }}"""
    parts.append(f"""
func inject_concurrent_request(rank, size) {{
    var partner = rank + 1 - 2 * (rank % 2);
    var sbuf[2];
    var rbuf[2];{delay}
    mpi_send(sbuf, 1, partner, 66, MPI_COMM_WORLD);
    var req = mpi_irecv(rbuf, 1, partner, 66, MPI_COMM_WORLD);
    omp parallel num_threads(2) {{{rskew}
        mpi_wait(req);
    }}
    return 0;
}}""")

    # V5: Probe violation.
    if spec.probe_style == "probe-probe":
        parts.append("""
func inject_probe(rank, size) {
    var partner = rank + 1 - 2 * (rank % 2);
    var pbuf[2];
    mpi_send(pbuf, 1, partner, 88, MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        mpi_probe(partner, 88, MPI_COMM_WORLD);
    }
    mpi_recv(pbuf, 1, partner, 88, MPI_COMM_WORLD);
    return 0;
}""")
    else:  # iprobe-recv
        parts.append("""
func inject_probe(rank, size) {
    var partner = rank + 1 - 2 * (rank % 2);
    var pbuf[2];
    mpi_send(pbuf, 1, partner, 88, MPI_COMM_WORLD);
    mpi_send(pbuf, 1, partner, 88, MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        var got = 0;
        while (got == 0) {
            got = mpi_iprobe(partner, 88, MPI_COMM_WORLD);
            compute(1);
        }
        mpi_recv(pbuf, 1, partner, 88, MPI_COMM_WORLD);
    }
    return 0;
}""")

    # V6: Collective-call violation — two threads of each process issue
    # collectives on the same communicator concurrently.  (Totals stay
    # balanced: every rank contributes two arrivals, so the run
    # terminates — the violation is the undefined pairing.)
    parts.append("""
func inject_collective(rank, size) {
    omp parallel num_threads(2) {
        mpi_barrier(MPI_COMM_WORLD);
    }
    return 0;
}""")

    # V2: Finalization violation — mpi_finalize from a non-main thread.
    parts.append("""
func inject_finalize(rank) {
    omp parallel num_threads(2) {
        if (omp_get_thread_num() == 1) {
            mpi_finalize();
        }
    }
    return 0;
}""")
    return "\n".join(parts)


def build_source(spec: NPBSpec, inject: bool = True) -> str:
    """Generate the benchmark's mini-language source text."""
    parts = [f"program {spec.name};", _base_functions(spec)]
    if inject:
        parts.append(_injection_functions(spec))
    # V1: Initialization violation — the injected program initializes at
    # MPI_THREAD_SERIALIZED although its (injected) regions perform
    # concurrent MPI calls.  The clean program asks for MULTIPLE.
    level = "MPI_THREAD_SERIALIZED" if inject else "MPI_THREAD_MULTIPLE"
    main = [f"""
func main() {{
    var provided = mpi_init_thread({level});
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var size = mpi_comm_size(MPI_COMM_WORLD);
{_main_loop(spec)}"""]
    if inject:
        main.append("""
    if (size >= 2) {
        inject_concurrent_recv(rank, size);
        inject_concurrent_request(rank, size);
        inject_probe(rank, size);
        inject_collective(rank, size);
    }
    inject_finalize(rank);
}""")
    else:
        main.append("""
    mpi_finalize();
}""")
    parts.append("".join(main))
    return "\n".join(parts) + "\n"


def build_program(spec: NPBSpec, inject: bool = True) -> Program:
    return parse(build_source(spec, inject=inject))


# ---------------------------------------------------------------------------
# Injection registry
# ---------------------------------------------------------------------------

_INJECT_CLASS_BY_FUNC = {
    "inject_concurrent_recv": CONCURRENT_RECV,
    "inject_concurrent_request": CONCURRENT_REQUEST,
    "inject_probe": PROBE,
    "inject_collective": COLLECTIVE,
    "inject_finalize": FINALIZATION,
}


def injection_registry(program: Program) -> List[InjectionInfo]:
    """Locate every injected violation in a generated benchmark.

    The initialization violation has no code block of its own (it is the
    init-level choice); it is registered with the ``mpi_init_thread``
    call's line and matched by class rather than location.
    """
    registry: List[InjectionInfo] = []
    for fn in program.functions:
        vclass = _INJECT_CLASS_BY_FUNC.get(fn.name)
        if vclass is None:
            continue
        lines = [n.loc.line for n in fn.walk() if n.loc.line > 0]
        if not lines:
            continue
        registry.append(InjectionInfo(vclass, fn.name, min(lines), max(lines)))
    for node in program.walk():
        if isinstance(node, A.CallExpr) and node.name.removeprefix("h") == "mpi_init_thread":
            registry.append(
                InjectionInfo(INITIALIZATION, "main", node.loc.line, node.loc.line)
            )
            break
    return registry


def score_report(
    violations, registry: List[InjectionInfo]
) -> Dict[str, object]:
    """Score a tool's ViolationReport against the injection registry.

    Returns the Table-1 style count: detected injections plus false
    positives (findings attributable to no injection).  An injection is
    detected when any finding's location falls in its line range — any
    class, since different tools surface the same bug as different
    report kinds — except the initialization injection, which is matched
    by class (it has no dedicated code block).
    """
    detected: Dict[str, bool] = {info.func_name: False for info in registry}
    fp: List = []
    init_info = next(
        (i for i in registry if i.vclass == INITIALIZATION), None
    )
    for v in violations:
        matched = False
        if init_info is not None and v.vclass == INITIALIZATION:
            detected[init_info.func_name] = True
            matched = True
        for info in registry:
            if info.vclass == INITIALIZATION:
                continue
            if any(info.contains_loc(loc) for loc in v.locs):
                detected[info.func_name] = True
                matched = True
        if not matched:
            fp.append(v)
    n_detected = sum(detected.values())
    return {
        "detected": n_detected,
        "false_positives": len(fp),
        "score": n_detected + len(fp),
        "missed": [name for name, hit in detected.items() if not hit],
        "fp_findings": fp,
    }
