"""NPB kernels with clause-level OpenMP data-race injections.

Same methodology as the MPI-violation injections of :mod:`.common`
("these well-tested benchmarks do not have thread-safety issues... so
we artificially implemented several tricky errors"), but for the static
race pass: each racy variant drops or misuses exactly one data-sharing
clause, the classic OpenMP porting mistakes LLOV catalogues:

* **missing-reduction** — an accumulation into a pre-region local runs
  without ``reduction(+: ...)``: write/write and read/write races;
* **missing-private** — a scratch temporary shared across the team
  instead of ``private(tmp)``;
* **loop-shift** — a loop-carried ``field[z+1] = f(field[z])`` stencil
  under ``omp for``: iteration *z*'s read races iteration *z+1*'s
  write (the fixed variant aligns the subscripts, which the SIV test
  proves iteration-disjoint).

``build_racy_npb(..., fixed=True)`` generates the clause-correct twin
of every injection; the static pass must report **zero** candidates on
it — that asymmetry (and monitoring strictly fewer variables than a
monitor-everything tool) is the acceptance test of the race-directed
narrowing.
"""

from __future__ import annotations

from typing import Tuple

from ...minilang import Program, parse
from .common import NPBSpec, _base_functions, _main_loop
from .lu_mz import LU_SPEC

#: injection names, in source order
RACE_CLASSES: Tuple[str, ...] = (
    "missing-reduction", "missing-private", "loop-shift",
)

#: variables each racy injection puts in conflict
RACY_VARS: Tuple[str, ...] = ("local_norm", "tmp", "field")


def _race_functions(spec: NPBSpec, fixed: bool) -> str:
    """The three race injections (or their clause-fixed twins)."""
    total_elems = spec.zones * 4
    reduction = " reduction(+: local_norm)" if fixed else ""
    private = " private(tmp)" if fixed else ""
    # the fixed stencil aligns subscripts, making iterations disjoint
    shift_write = "field[z]" if fixed else "field[z + 1]"
    return f"""
func race_norm(zfirst, zlast) {{
    var local_norm = 0.0;
    omp parallel num_threads(2) {{
        omp for{reduction} for (var z = zfirst; z < zlast; z = z + 1) {{
            local_norm = local_norm + field[z * 4];
        }}
    }}
    rnorm[0] = local_norm;
    return 0;
}}

func race_scratch(n) {{
    var tmp = 0.0;
    omp parallel num_threads(2){private} {{
        omp for for (var z = 0; z < n; z = z + 1) {{
            tmp = field[z * 4] + 1.0;
            field[z * 4] = tmp;
        }}
    }}
    return 0;
}}

func race_stencil() {{
    omp parallel num_threads(2) {{
        omp for for (var z = 0; z < {total_elems - 1}; z = z + 1) {{
            {shift_write} = field[z] + 1.0;
        }}
    }}
    return 0;
}}
"""


def racy_npb_source(spec: NPBSpec = LU_SPEC, fixed: bool = False) -> str:
    """An NPB kernel (clean MPI behaviour) plus the race injections."""
    suffix = "_fixed" if fixed else "_racy"
    spec = NPBSpec(**{**spec.__dict__, "name": spec.name + suffix})
    parts = [
        f"program {spec.name};",
        "var rnorm[2];",
        _base_functions(spec),
        _race_functions(spec, fixed),
        f"""
func main() {{
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var size = mpi_comm_size(MPI_COMM_WORLD);
{_main_loop(spec)}
    race_norm(zfirst, zlast);
    race_scratch(zcount);
    race_stencil();
    mpi_finalize();
}}""",
    ]
    return "\n".join(parts) + "\n"


def build_racy_npb(spec: NPBSpec = LU_SPEC, fixed: bool = False) -> Program:
    return parse(racy_npb_source(spec, fixed=fixed))
