"""FT-MZ: fault-tolerant multi-zone mini benchmark.

Unlike the LU/BT/SP rows, this pair exercises the simulator's
fault-tolerance surface — MPI error handlers, failure acknowledgement
and ULFM-style communicator shrink — and carries the two *error-path*
thread-safety hazards the extended rules detect:

* the **racy** variant (``inject=True``) initializes at
  ``MPI_THREAD_SERIALIZED`` and installs an error handler that itself
  calls MPI (``mpi_comm_failure_ack``).  Under a rank-crash fault both
  survivor threads take ``MPI_ERR_PROC_FAILED`` out of their receives
  and run the handler concurrently — the handler's MPI call overlaps
  the other thread's, the ``ErrorHandlerReentrancyViolation``.  Its
  recovery step shrinks the world from *both* threads of a parallel
  region, so each thread obtains a different replacement communicator —
  the ``RecoveryRaceViolation``.  Both hazards are latent in the code
  (the shrink race needs no fault at all to be detectable);
* the **fixed** variant (``inject=False``) initializes at
  ``MPI_THREAD_MULTIPLE``, installs a flag-setting handler that makes
  no MPI calls, exchanges from the main thread only and shrinks exactly
  once, serially, after an error was observed.  It must report zero
  violations under any fault plan.

Both variants terminate under a healthy library *and* under the builtin
rank-crash plan: messages already mailed before the crash still match,
later receives surface ``MPI_ERR_PROC_FAILED`` through the handler
instead of hanging, and shrink treats failed ranks as arrived.
"""

from __future__ import annotations

from ...minilang import Program, parse
from .common import NPBSpec

FT_SPEC = NPBSpec(
    name="ft_mz",
    zones=16,
    steps=2,
    stages=1,
    zone_weight=4,
    compute_units=1,
    serial_units=40,
)

_SHARED_DECLS = """
var halo_out[4];
var halo_in[4];
var ft_errors[2];
var shrink_size[4];
"""

_RACY_HANDLER = """
func ft_handler(comm, code) {
    ft_errors[0] = code;
    mpi_comm_failure_ack(comm);
    compute(200);
    return 0;
}
"""

_FIXED_HANDLER = """
func ft_flag_handler(comm, code) {
    ft_errors[0] = code;
    return 0;
}
"""


def _racy_main(spec: NPBSpec) -> str:
    return f"""
func main() {{
    var provided = mpi_init_thread(MPI_THREAD_SERIALIZED);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var size = mpi_comm_size(MPI_COMM_WORLD);
    mpi_comm_set_errhandler(MPI_COMM_WORLD, "ft_handler");
    if (size >= 2) {{
        var partner = rank + 1 - 2 * (rank % 2);
        for (var step = 0; step < {spec.steps}; step = step + 1) {{
            compute({spec.serial_units});
            mpi_send(halo_out, 2, partner, 50 + step, MPI_COMM_WORLD);
            mpi_send(halo_out, 2, partner, 50 + step, MPI_COMM_WORLD);
            omp parallel num_threads(2) {{
                mpi_recv(halo_in, 2, partner, 50 + step, MPI_COMM_WORLD);
            }}
        }}
    }}
    omp parallel num_threads(2) {{
        var newcomm = mpi_comm_shrink(MPI_COMM_WORLD);
        shrink_size[omp_get_thread_num()] = mpi_comm_size(newcomm);
    }}
    mpi_finalize();
}}"""


def _fixed_main(spec: NPBSpec) -> str:
    return f"""
func main() {{
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var size = mpi_comm_size(MPI_COMM_WORLD);
    mpi_comm_set_errhandler(MPI_COMM_WORLD, "ft_flag_handler");
    if (size >= 2) {{
        var partner = rank + 1 - 2 * (rank % 2);
        for (var step = 0; step < {spec.steps}; step = step + 1) {{
            compute({spec.serial_units});
            if (ft_errors[0] == 0) {{
                mpi_send(halo_out, 2, partner, 50 + step, MPI_COMM_WORLD);
                mpi_recv(halo_in, 2, partner, 50 + step, MPI_COMM_WORLD);
            }}
        }}
    }}
    if (ft_errors[0] < 0) {{
        var newcomm = mpi_comm_shrink(MPI_COMM_WORLD);
        shrink_size[0] = mpi_comm_size(newcomm);
    }}
    mpi_finalize();
}}"""


def ft_mz_source(inject: bool = True) -> str:
    """Mini-language source of the FT-MZ benchmark pair."""
    spec = FT_SPEC
    parts = [f"program {spec.name};", _SHARED_DECLS]
    if inject:
        parts.append(_RACY_HANDLER)
        parts.append(_racy_main(spec))
    else:
        parts.append(_FIXED_HANDLER)
        parts.append(_fixed_main(spec))
    return "\n".join(parts) + "\n"


def build_ft_mz(inject: bool = True) -> Program:
    """The FT-MZ mini benchmark (racy error paths, or the fixed twin)."""
    return parse(ft_mz_source(inject=inject))
