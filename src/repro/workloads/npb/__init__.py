"""Mini NPB-MZ hybrid benchmarks (LU, BT, SP)."""

from .bt_mz import BT_SPEC, bt_mz_source, build_bt_mz  # noqa: F401
from .common import (  # noqa: F401
    InjectionInfo,
    NPBSpec,
    build_program,
    build_source,
    injection_registry,
    score_report,
)
from .divergence import (  # noqa: F401
    DIVERGENCE_CLASSES,
    build_divergent_npb,
    divergent_npb_source,
)
from .ft_mz import FT_SPEC, build_ft_mz, ft_mz_source  # noqa: F401
from .interproc import (  # noqa: F401
    INTERPROC_CLASS_FUNCS,
    build_interproc_npb,
    interproc_npb_source,
    interproc_registry,
)
from .lu_mz import LU_SPEC, build_lu_mz, lu_mz_source  # noqa: F401
from .races import (  # noqa: F401
    RACE_CLASSES,
    RACY_VARS,
    build_racy_npb,
    racy_npb_source,
)
from .sp_mz import SP_SPEC, build_sp_mz, sp_mz_source  # noqa: F401

BENCHMARKS = {
    "lu": build_lu_mz,
    "bt": build_bt_mz,
    "sp": build_sp_mz,
    "ft": build_ft_mz,
}

SPECS = {
    "lu": LU_SPEC,
    "bt": BT_SPEC,
    "sp": SP_SPEC,
    "ft": FT_SPEC,
}

__all__ = [
    "NPBSpec",
    "InjectionInfo",
    "build_program",
    "build_source",
    "injection_registry",
    "score_report",
    "build_lu_mz",
    "build_bt_mz",
    "build_sp_mz",
    "build_ft_mz",
    "lu_mz_source",
    "bt_mz_source",
    "sp_mz_source",
    "ft_mz_source",
    "LU_SPEC",
    "BT_SPEC",
    "SP_SPEC",
    "FT_SPEC",
    "BENCHMARKS",
    "SPECS",
    "RACE_CLASSES",
    "RACY_VARS",
    "build_racy_npb",
    "racy_npb_source",
    "DIVERGENCE_CLASSES",
    "build_divergent_npb",
    "divergent_npb_source",
    "INTERPROC_CLASS_FUNCS",
    "build_interproc_npb",
    "interproc_npb_source",
    "interproc_registry",
]
