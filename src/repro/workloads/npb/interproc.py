"""NPB kernels whose injected violations hide behind helper-call chains.

Same methodology as the lexical injections of :mod:`.common`, but every
violating MPI operation (and the data-race write) sits in a *leaf*
helper reached through a two- or three-deep call chain from the
``omp parallel`` region — the shape the context-sensitive
interprocedural summary layer exists for.  A purely lexical static
phase sees none of these sites as hybrid, pairs no candidates, and
resolves no subscripts; with the call-graph + summary layer every
class is reported statically and confirmed dynamically:

* **concurrent recv / request / probe** — the MPI call is in
  ``ip_*_leaf``, invoked via ``ip_*_mid`` from a parallel region in the
  ``ip_*`` entry;
* **collective** — ``mpi_barrier`` two calls down from the team fork
  (the collective-divergence pass splices the leaf's color into the
  caller's sequence);
* **finalization** — ``mpi_finalize`` reached from a thread-dependent
  branch through the chain;
* **initialization** — the injected variant requests
  ``MPI_THREAD_SERIALIZED`` although its helper chains perform
  concurrent MPI calls;
* **data race** — ``ip_race_leaf`` writes ``rdata[i]`` under a formal
  parameter subscript; the racy chain pins ``i = 0`` for every thread,
  the fixed chain passes the thread id (the summary instantiation
  proves the elements disjoint, so the fixed twin monitors nothing).

``build_interproc_npb(..., fixed=True)`` generates the funneled twin of
every injection — MPI funneled through ``omp master`` (the serialized
chain the MHP context resolution prunes), finalize after the join,
thread-disjoint race subscripts.  The static phase must report zero
candidates and the dynamic confirm pass zero violations on it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...minilang import Program, ast_nodes as A, parse
from ...violations.spec import (
    COLLECTIVE,
    CONCURRENT_RECV,
    CONCURRENT_REQUEST,
    FINALIZATION,
    INITIALIZATION,
    PROBE,
)
from .common import InjectionInfo, NPBSpec, _base_functions, _main_loop
from .lu_mz import LU_SPEC

#: dynamic class of the interprocedural race injection
DATA_RACE = "DataRace"

#: violation class -> (leaf, mid, entry) helper chain, entry last
INTERPROC_CLASS_FUNCS: Dict[str, Tuple[str, ...]] = {
    CONCURRENT_RECV: ("ip_recv_leaf", "ip_recv_mid", "ip_recv"),
    CONCURRENT_REQUEST: ("ip_wait_leaf", "ip_wait_mid", "ip_wait"),
    PROBE: ("ip_probe_leaf", "ip_probe_mid", "ip_probe"),
    COLLECTIVE: ("ip_coll_leaf", "ip_coll_mid", "ip_coll"),
    FINALIZATION: ("ip_fin_leaf", "ip_fin_mid", "ip_fin"),
    DATA_RACE: ("ip_race_leaf", "ip_race_mid", "ip_race"),
}


def _interproc_functions(fixed: bool) -> str:
    """The injected helper chains (or their funneled/disjoint twins)."""
    # concurrent recv: two messages, two threads receiving through the
    # chain (fixed: one master thread drains both)
    recv_body = (
        """
        omp master {
            ip_recv_mid(partner);
            ip_recv_mid(partner);
        }"""
        if fixed
        else """
        ip_recv_mid(partner);"""
    )
    # concurrent request: both threads wait on the one request (fixed:
    # only the master waits, once)
    wait_body = (
        """
        omp master {
            ip_wait_mid(req);
        }"""
        if fixed
        else """
        ip_wait_mid(req);"""
    )
    probe_body = (
        """
        omp master {
            ip_probe_mid(partner);
            ip_probe_mid(partner);
        }"""
        if fixed
        else """
        ip_probe_mid(partner);"""
    )
    coll_body = (
        """
        omp master {
            ip_coll_mid();
        }
        omp barrier;"""
        if fixed
        else """
        ip_coll_mid();"""
    )
    fin_par = (
        ""
        if fixed
        else """
        if (omp_get_thread_num() == 1) {
            ip_fin_mid();
        }"""
    )
    fin_after = (
        """
    ip_fin_mid();"""
        if fixed
        else ""
    )
    # racy chain collapses every thread onto element 0; the fixed chain
    # fans threads out by id (summary-provably disjoint)
    race_mid_arg = "t" if fixed else "0"
    return f"""
func ip_recv_leaf(partner) {{
    var lbuf[2];
    mpi_recv(lbuf, 1, partner, 71, MPI_COMM_WORLD);
    return 0;
}}

func ip_recv_mid(partner) {{
    ip_recv_leaf(partner);
    return 0;
}}

func ip_recv(rank, size) {{
    var partner = rank + 1 - 2 * (rank % 2);
    var sbuf[2];
    mpi_send(sbuf, 1, partner, 71, MPI_COMM_WORLD);
    mpi_send(sbuf, 1, partner, 71, MPI_COMM_WORLD);
    omp parallel num_threads(2) {{{recv_body}
    }}
    return 0;
}}

func ip_wait_leaf(r) {{
    mpi_wait(r);
    return 0;
}}

func ip_wait_mid(r) {{
    ip_wait_leaf(r);
    return 0;
}}

func ip_wait(rank, size) {{
    var partner = rank + 1 - 2 * (rank % 2);
    var sbuf[2];
    var rbuf[2];
    compute(400);
    mpi_send(sbuf, 1, partner, 72, MPI_COMM_WORLD);
    var req = mpi_irecv(rbuf, 1, partner, 72, MPI_COMM_WORLD);
    omp parallel num_threads(2) {{{wait_body}
    }}
    return 0;
}}

func ip_probe_leaf(partner) {{
    var pbuf[2];
    var got = 0;
    while (got == 0) {{
        got = mpi_iprobe(partner, 73, MPI_COMM_WORLD);
        compute(1);
    }}
    mpi_recv(pbuf, 1, partner, 73, MPI_COMM_WORLD);
    return 0;
}}

func ip_probe_mid(partner) {{
    ip_probe_leaf(partner);
    return 0;
}}

func ip_probe(rank, size) {{
    var partner = rank + 1 - 2 * (rank % 2);
    var sbuf[2];
    mpi_send(sbuf, 1, partner, 73, MPI_COMM_WORLD);
    mpi_send(sbuf, 1, partner, 73, MPI_COMM_WORLD);
    omp parallel num_threads(2) {{{probe_body}
    }}
    return 0;
}}

func ip_coll_leaf() {{
    mpi_barrier(MPI_COMM_WORLD);
    return 0;
}}

func ip_coll_mid() {{
    ip_coll_leaf();
    return 0;
}}

func ip_coll(rank, size) {{
    omp parallel num_threads(2) {{{coll_body}
    }}
    return 0;
}}

func ip_race_leaf(i) {{
    rdata[i] = rdata[i] + 1.0;
    return 0;
}}

func ip_race_mid(t) {{
    ip_race_leaf({race_mid_arg});
    return 0;
}}

func ip_race() {{
    omp parallel num_threads(2) {{
        ip_race_mid(omp_get_thread_num());
    }}
    return 0;
}}

func ip_fin_leaf() {{
    mpi_finalize();
    return 0;
}}

func ip_fin_mid() {{
    ip_fin_leaf();
    return 0;
}}

func ip_fin(rank) {{
    omp parallel num_threads(2) {{{fin_par}
    }}{fin_after}
    return 0;
}}
"""


def interproc_npb_source(spec: NPBSpec = LU_SPEC, fixed: bool = False) -> str:
    """An NPB kernel (clean MPI behaviour) plus helper-chain injections."""
    suffix = "_funneled" if fixed else "_interproc"
    spec = NPBSpec(**{**spec.__dict__, "name": spec.name + suffix})
    # the injected variant under-requests the thread level (the V1
    # initialization violation, reached only via helper-chain MPI)
    level = "MPI_THREAD_MULTIPLE" if fixed else "MPI_THREAD_SERIALIZED"
    parts = [
        f"program {spec.name};",
        "var rdata[4];",
        _base_functions(spec),
        _interproc_functions(fixed),
        f"""
func main() {{
    var provided = mpi_init_thread({level});
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var size = mpi_comm_size(MPI_COMM_WORLD);
{_main_loop(spec)}
    ip_race();
    if (size >= 2) {{
        ip_recv(rank, size);
        ip_wait(rank, size);
        ip_probe(rank, size);
    }}
    ip_coll(rank, size);
    ip_fin(rank);
}}""",
    ]
    return "\n".join(parts) + "\n"


def build_interproc_npb(spec: NPBSpec = LU_SPEC, fixed: bool = False) -> Program:
    return parse(interproc_npb_source(spec, fixed=fixed))


def interproc_registry(program: Program) -> List[InjectionInfo]:
    """Locate every helper-chain injection in a generated benchmark.

    Unlike :func:`.common.injection_registry`, each entry's line range
    spans the *whole* chain (leaf + mid + entry): dynamic findings carry
    the leaf MPI call's location, static candidates may anchor at the
    entry's call site, and both must credit the same injection.
    """
    registry: List[InjectionInfo] = []
    for vclass, funcs in INTERPROC_CLASS_FUNCS.items():
        lines = [
            node.loc.line
            for fname in funcs
            for node in program.function(fname).walk()
            if node.loc.line > 0
        ]
        if lines:
            registry.append(
                InjectionInfo(vclass, funcs[-1], min(lines), max(lines))
            )
    for node in program.walk():
        if (
            isinstance(node, A.CallExpr)
            and node.name.removeprefix("h") == "mpi_init_thread"
        ):
            registry.append(
                InjectionInfo(INITIALIZATION, "main", node.loc.line, node.loc.line)
            )
            break
    return registry
