"""SP-MZ: scalar penta-diagonal solver, multi-zone mini version.

Injection characteristics (Table-1 row
``NPB-MZ SP (6) | HOME 6 | ITC 6 | Marmot 5``):

* the Concurrent-Request pair is the unmanifested one here: the
  request's message arrives *early* and thread 1 is compute-skewed, so
  the two waits never overlap — Marmot misses it (5);
* the probe injection is iprobe+recv (visible to ITC through the
  receive side), and the recv pair is unskewed, so ITC scores all 6.
"""

from __future__ import annotations

from ...minilang import Program
from .common import NPBSpec, build_program, build_source

SP_SPEC = NPBSpec(
    name="sp_mz",
    zones=64,
    steps=4,
    stages=1,
    zone_weight=6,
    compute_units=2,
    recv_skew=0,
    request_late_delay=0,
    request_skew=150,
    probe_style="iprobe-recv",
)


def build_sp_mz(inject: bool = True) -> Program:
    """The SP-MZ mini benchmark (optionally with the six violations)."""
    return build_program(SP_SPEC, inject=inject)


def sp_mz_source(inject: bool = True) -> str:
    return build_source(SP_SPEC, inject=inject)
