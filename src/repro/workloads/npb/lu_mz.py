"""LU-MZ: lower-upper symmetric Gauss-Seidel, multi-zone mini version.

Injection characteristics (drives the paper's Table-1 row
``NPB-MZ LU (6) | HOME 6 | ITC 5 | Marmot 5``):

* the Concurrent-Recv pair is **compute-skewed** — it never manifests
  as an actual overlap, so Marmot misses it (5);
* the probe violation is **probe-vs-probe** — invisible to ITC's
  interception, so ITC misses it (5);
* the request injection's message arrives late, so both waits block and
  overlap (Marmot sees it).
"""

from __future__ import annotations

from ...minilang import Program
from .common import NPBSpec, build_program, build_source

LU_SPEC = NPBSpec(
    name="lu_mz",
    zones=64,
    steps=3,
    stages=1,
    zone_weight=16,
    compute_units=2,
    recv_skew=150,
    request_late_delay=100,
    request_skew=0,
    probe_style="probe-probe",
)


def build_lu_mz(inject: bool = True) -> Program:
    """The LU-MZ mini benchmark (optionally with the six violations)."""
    return build_program(LU_SPEC, inject=inject)


def lu_mz_source(inject: bool = True) -> str:
    return build_source(LU_SPEC, inject=inject)
