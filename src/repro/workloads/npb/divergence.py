"""NPB kernels with collective-divergence injections.

Same methodology as the race injections of :mod:`.races`, but for the
PARCOACH-family collective-matching pass: each racy variant makes a
strict subset of an OpenMP team encounter a collective construct (or
encounter collectives in a different order), the divergence patterns
PARCOACH catalogues:

* **divergent-order** — a thread-dependent branch whose arms contain
  the same collectives in *opposite order* (barrier/single vs
  single/barrier): the team still completes, but threads arrive at
  differently-colored collectives position by position;
* **divergent-single** — a ``single nowait`` guarded by a
  ``omp_get_thread_num()`` branch, so one thread never encounters it;
* **divergent-collective** — an MPI collective (``mpi_allreduce``)
  issued from inside ``omp parallel`` under a thread-dependent branch:
  collective over threads *and* ranks, the hybrid case the paper's
  static/dynamic split is built for;
* **divergent-barrier** — a thread-dependent *extra* ``omp barrier``:
  the canonical mismatched-barrier hang.  The racy run deadlocks —
  which is exactly why arrivals are recorded at *encounter*: the
  divergence is on record before the team wedges.  It runs last so the
  other injections still execute.

``build_divergent_npb(..., fixed=True)`` generates the matched twin of
every injection — balanced arms, unconditional single, the allreduce
funneled through ``omp master`` (the sanctioned hybrid pattern the
static pass prunes as ``div-serial``), unconditional barrier.  The
static pass must report **zero** candidates on it and the dynamic
confirm pass zero violations; that asymmetry is the acceptance test of
the divergence-directed narrowing.
"""

from __future__ import annotations

from typing import Tuple

from ...minilang import Program, parse
from .common import NPBSpec, _base_functions, _main_loop
from .lu_mz import LU_SPEC

#: injection names, in source order
DIVERGENCE_CLASSES: Tuple[str, ...] = (
    "divergent-order", "divergent-single", "divergent-collective",
    "divergent-barrier",
)


def _divergence_functions(spec: NPBSpec, fixed: bool) -> str:
    """The four divergence injections (or their matched twins)."""
    if fixed:
        order_then = """
            omp barrier;
            omp single nowait { dscratch[0] = dscratch[0] + 1.0; }"""
        order_else = """
            omp barrier;
            omp single nowait { dscratch[1] = dscratch[1] + 1.0; }"""
        single_body = """
        omp single nowait { dscratch[2] = dscratch[2] + 1.0; }"""
        collective_body = """
        omp master {
            dscratch[3] = mpi_allreduce(residual[0], MPI_SUM, MPI_COMM_WORLD);
        }
        omp barrier;"""
        sync_body = """
        omp barrier;
        omp critical { dscratch[0] = dscratch[0] + 1.0; }"""
    else:
        order_then = """
            omp barrier;
            omp single nowait { dscratch[0] = dscratch[0] + 1.0; }"""
        order_else = """
            omp single nowait { dscratch[1] = dscratch[1] + 1.0; }
            omp barrier;"""
        single_body = """
        if (tid > 0) {
            omp single nowait { dscratch[2] = dscratch[2] + 1.0; }
        }"""
        collective_body = """
        if (tid == 0) {
            dscratch[3] = mpi_allreduce(residual[0], MPI_SUM, MPI_COMM_WORLD);
        }"""
        sync_body = """
        if (tid == 0) {
            omp barrier;
        }
        omp critical { dscratch[0] = dscratch[0] + 1.0; }"""
    return f"""
func div_order() {{
    omp parallel num_threads(2) {{
        var tid = omp_get_thread_num();
        if (tid == 0) {{{order_then}
        }} else {{{order_else}
        }}
    }}
    return 0;
}}

func div_single() {{
    omp parallel num_threads(2) {{
        var tid = omp_get_thread_num();{single_body}
    }}
    return 0;
}}

func div_collective() {{
    omp parallel num_threads(2) {{
        var tid = omp_get_thread_num();{collective_body}
    }}
    return 0;
}}

func div_sync() {{
    omp parallel num_threads(2) {{
        var tid = omp_get_thread_num();{sync_body}
    }}
    return 0;
}}
"""


def divergent_npb_source(spec: NPBSpec = LU_SPEC, fixed: bool = False) -> str:
    """An NPB kernel (clean MPI behaviour) plus divergence injections."""
    suffix = "_matched" if fixed else "_divergent"
    spec = NPBSpec(**{**spec.__dict__, "name": spec.name + suffix})
    parts = [
        f"program {spec.name};",
        "var dscratch[4];",
        _base_functions(spec),
        _divergence_functions(spec, fixed),
        f"""
func main() {{
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var size = mpi_comm_size(MPI_COMM_WORLD);
{_main_loop(spec)}
    div_order();
    div_single();
    div_collective();
    div_sync();
    mpi_finalize();
}}""",
    ]
    return "\n".join(parts) + "\n"


def build_divergent_npb(spec: NPBSpec = LU_SPEC, fixed: bool = False) -> Program:
    return parse(divergent_npb_source(spec, fixed=fixed))
