"""The paper's two motivating case studies (Figs. 1 and 2) plus small
fixed variants, all as mini-language source text.
"""

from __future__ import annotations

from ..minilang import Program, parse

#: Figure 1 — MPI initialized without thread support (plain mpi_init ==
#: MPI_THREAD_SINGLE), yet omp sections issue MPI calls from two
#: threads.  Under a real MPI library only the main thread's call
#: executes ("only MPI_Send or MPI_Recv is executed, but not both"),
#: silently breaking the send/recv pairing.
CASE_STUDY_1 = """
program case_study_1;

var a[4];

func main() {
    mpi_init();
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    omp_set_num_threads(2);
    omp parallel num_threads(2) {
        omp sections {
            omp section {
                if (rank == 0) {
                    mpi_send(a, 1, 1, 0, MPI_COMM_WORLD);
                }
            }
            omp section {
                if (rank == 0) {
                    mpi_recv(a, 1, 1, 0, MPI_COMM_WORLD);
                }
            }
        }
    }
    mpi_finalize();
}
"""

#: Figure 2 — MPI_THREAD_MULTIPLE ping-pong where both threads of each
#: rank use the SAME tag on the same communicator: all arriving
#: messages are interchangeable between threads, so the matching order
#: is undefined (a Concurrent-Recv violation; with synchronous sends a
#: deadlock can manifest nondeterministically).
CASE_STUDY_2 = """
program case_study_2;

var a[1];

func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var tag = 0;
    omp_set_num_threads(2);
    omp parallel for for (var j = 0; j < 2; j = j + 1) {
        if (rank == 0) {
            mpi_send(a, 1, 1, tag, MPI_COMM_WORLD);
            mpi_recv(a, 1, 1, tag, MPI_COMM_WORLD);
        }
        if (rank == 1) {
            mpi_recv(a, 1, 0, tag, MPI_COMM_WORLD);
            mpi_send(a, 1, 0, tag, MPI_COMM_WORLD);
        }
    }
    mpi_finalize();
}
"""

#: The standard fix for case study 2: distinguish per-thread traffic by
#: using the thread id as the message tag ("a common solution is to use
#: thread ID as tag").  No violation should be reported.
CASE_STUDY_2_FIXED = """
program case_study_2_fixed;

var a[1];

func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    omp_set_num_threads(2);
    omp parallel num_threads(2) {
        var tag = omp_get_thread_num();
        omp for for (var j = 0; j < 2; j = j + 1) {
            if (rank == 0) {
                mpi_send(a, 1, 1, tag, MPI_COMM_WORLD);
                mpi_recv(a, 1, 1, tag, MPI_COMM_WORLD);
            }
            if (rank == 1) {
                mpi_recv(a, 1, 0, tag, MPI_COMM_WORLD);
                mpi_send(a, 1, 0, tag, MPI_COMM_WORLD);
            }
        }
    }
    mpi_finalize();
}
"""

#: A thread-safe hybrid program (FUNNELED done right): all MPI calls
#: funneled through omp master, compute spread over the team.
SAFE_FUNNELED = """
program safe_funneled;

var field[32];

func main() {
    var provided = mpi_init_thread(MPI_THREAD_FUNNELED);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var size = mpi_comm_size(MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        omp for for (var i = 0; i < 16; i = i + 1) {
            field[i] = field[i] + i;
            compute(2);
        }
        omp barrier;
        omp master {
            if (size > 1) {
                if (rank == 0) {
                    mpi_send(field, 16, 1, 5, MPI_COMM_WORLD);
                }
                if (rank == 1) {
                    mpi_recv(field, 16, 0, 5, MPI_COMM_WORLD);
                }
            }
        }
    }
    mpi_finalize();
}
"""


def case_study_1() -> Program:
    return parse(CASE_STUDY_1)


def case_study_2() -> Program:
    return parse(CASE_STUDY_2)


def case_study_2_fixed() -> Program:
    return parse(CASE_STUDY_2_FIXED)


def safe_funneled() -> Program:
    return parse(SAFE_FUNNELED)
