"""Workloads: case studies and the mini NPB-MZ benchmark suite."""

from . import case_studies, npb  # noqa: F401
from .case_studies import (  # noqa: F401
    case_study_1,
    case_study_2,
    case_study_2_fixed,
    safe_funneled,
)
from .npb import (  # noqa: F401
    BENCHMARKS,
    SPECS,
    build_racy_npb,
    injection_registry,
    racy_npb_source,
    score_report,
)

__all__ = [
    "case_studies",
    "npb",
    "case_study_1",
    "case_study_2",
    "case_study_2_fixed",
    "safe_funneled",
    "BENCHMARKS",
    "SPECS",
    "injection_registry",
    "score_report",
    "build_racy_npb",
    "racy_npb_source",
]
