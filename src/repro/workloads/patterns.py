"""Reusable hybrid programming patterns (micro-workloads).

A small library of canonical hybrid MPI/OpenMP structures — each in a
thread-safe form — used by tests, docs and overhead studies.  All
builders return parseable mini-language source; every pattern runs
clean under HOME (asserted in the test suite), so they double as
regression anchors against false positives.
"""

from __future__ import annotations

from ..minilang import Program, parse


def ping_pong(rounds: int = 2, use_thread_tags: bool = True) -> Program:
    """Two ranks, two threads, per-thread tag disambiguation."""
    tag = "10 + omp_get_thread_num()" if use_thread_tags else "10"
    return parse(f"""
program ping_pong;
var a[1];
func main() {{
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var partner = 1 - rank;
    omp parallel num_threads(2) {{
        var tag = {tag};
        for (var r = 0; r < {rounds}; r = r + 1) {{
            if (rank == 0) {{
                mpi_send(a, 1, partner, tag, MPI_COMM_WORLD);
                mpi_recv(a, 1, partner, tag, MPI_COMM_WORLD);
            }}
            if (rank == 1) {{
                mpi_recv(a, 1, partner, tag, MPI_COMM_WORLD);
                mpi_send(a, 1, partner, tag, MPI_COMM_WORLD);
            }}
        }}
    }}
    mpi_finalize();
}}
""")


def halo_ring(steps: int = 2, width: int = 4) -> Program:
    """Ring halo exchange with sendrecv, computation spread over a team."""
    return parse(f"""
program halo_ring;
var field[64];
var halo_out[{width}];
var halo_in[{width}];
func main() {{
    var provided = mpi_init_thread(MPI_THREAD_FUNNELED);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var size = mpi_comm_size(MPI_COMM_WORLD);
    var right = (rank + 1) % size;
    var left = (rank + size - 1) % size;
    for (var step = 0; step < {steps}; step = step + 1) {{
        omp parallel num_threads(2) {{
            omp for for (var i = 0; i < 64; i = i + 1) {{
                field[i] = field[i] + 1.0;
                compute(1);
            }}
            omp master {{
                if (size > 1) {{
                    mpi_sendrecv(halo_out, {width}, right, 20 + step,
                                 halo_in, left, 20 + step, MPI_COMM_WORLD);
                }}
            }}
        }}
    }}
    mpi_finalize();
}}
""")


def master_worker(tasks: int = 6) -> Program:
    """Rank 0 hands out work items; workers reply with results.

    All communication stays on the MPI main thread (FUNNELED style);
    OpenMP accelerates the per-item computation.
    """
    return parse(f"""
program master_worker;
var item[2];
var result[2];
func process(units) {{
    omp parallel num_threads(2) {{
        omp for for (var k = 0; k < 8; k = k + 1) {{
            compute(units);
        }}
    }}
    return 0;
}}
func main() {{
    var provided = mpi_init_thread(MPI_THREAD_FUNNELED);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var size = mpi_comm_size(MPI_COMM_WORLD);
    if (size > 1) {{
        if (rank == 0) {{
            for (var t = 0; t < {tasks}; t = t + 1) {{
                var dest = 1 + (t % (size - 1));
                item[0] = t;
                mpi_send(item, 1, dest, 30, MPI_COMM_WORLD);
            }}
            for (var t = 0; t < {tasks}; t = t + 1) {{
                mpi_recv(result, 1, MPI_ANY_SOURCE, 31, MPI_COMM_WORLD);
            }}
            for (var w = 1; w < size; w = w + 1) {{
                item[0] = -1;
                mpi_send(item, 1, w, 30, MPI_COMM_WORLD);
            }}
        }} else {{
            var running = 1;
            while (running == 1) {{
                mpi_recv(item, 1, 0, 30, MPI_COMM_WORLD);
                if (item[0] < 0) {{
                    running = 0;
                }} else {{
                    process(2);
                    result[0] = item[0] * 2;
                    mpi_send(result, 1, 0, 31, MPI_COMM_WORLD);
                }}
            }}
        }}
    }}
    mpi_finalize();
}}
""")


def reduction_tree(levels: int = 2) -> Program:
    """Team-parallel local reduction feeding a global allreduce."""
    return parse(f"""
program reduction_tree;
var partial[8];
func main() {{
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var size = mpi_comm_size(MPI_COMM_WORLD);
    var local = 0;
    for (var lvl = 0; lvl < {levels}; lvl = lvl + 1) {{
        omp parallel num_threads(2) {{
            omp for for (var i = 0; i < 8; i = i + 1) {{
                partial[i] = partial[i] + rank + lvl;
                compute(1);
            }}
            omp single {{
                local = 0;
                for (var k = 0; k < 8; k = k + 1) {{
                    local = local + partial[k];
                }}
            }}
        }}
        var total = mpi_allreduce(local, MPI_SUM, MPI_COMM_WORLD);
        assert(total >= local);
    }}
    mpi_finalize();
}}
""")


def thread_split_comms() -> Program:
    """The communicator-per-thread fix: each team thread talks over its
    own duplicated communicator, so identical tags cannot collide."""
    return parse("""
program thread_split_comms;
var a[1];
func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var partner = 1 - rank;
    var comm0 = mpi_comm_dup(MPI_COMM_WORLD);
    var comm1 = mpi_comm_dup(MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        var mycomm = comm0;
        if (omp_get_thread_num() == 1) { mycomm = comm1; }
        if (rank == 0) {
            mpi_send(a, 1, partner, 5, mycomm);
            mpi_recv(a, 1, partner, 5, mycomm);
        }
        if (rank == 1) {
            mpi_recv(a, 1, partner, 5, mycomm);
            mpi_send(a, 1, partner, 5, mycomm);
        }
    }
    mpi_finalize();
}
""")


ALL_PATTERNS = {
    "ping_pong": ping_pong,
    "halo_ring": halo_ring,
    "master_worker": master_worker,
    "reduction_tree": reduction_tree,
    "thread_split_comms": thread_split_comms,
}
