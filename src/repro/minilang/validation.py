"""Structural validation of mini-language programs.

Validation runs before interpretation and before static analysis; it
rejects programs that are syntactically representable but semantically
nonsensical (duplicate functions, missing ``main``, directly nested
worksharing constructs, non-positive literal thread counts, ...).
"""

from __future__ import annotations

from typing import Iterator, List

from ..errors import ValidationError
from . import ast_nodes as A

#: Constructs that may not be *lexically* nested inside one another
#: without an intervening ``omp parallel`` (OpenMP forbids closely nested
#: worksharing regions).
_WORKSHARING = (A.OmpFor, A.OmpSections, A.OmpSingle)


def _iter_stmts(node: A.Node) -> Iterator[A.Stmt]:
    for sub in node.walk():
        if isinstance(sub, A.Stmt):
            yield sub


def _check_nesting(node: A.Node, in_worksharing: bool, errors: List[str]) -> None:
    """Recursively enforce worksharing-nesting rules.

    Entering an ``omp parallel`` resets the worksharing flag (a new team
    may legally run worksharing constructs).
    """
    for child in node.children():
        child_in_ws = in_worksharing
        if isinstance(child, A.OmpParallel):
            child_in_ws = False
        elif isinstance(child, _WORKSHARING):
            if in_worksharing:
                errors.append(
                    f"worksharing construct at {child.loc} is closely nested "
                    "inside another worksharing construct"
                )
            child_in_ws = True
        _check_nesting(child, child_in_ws, errors)


def validate(program: A.Program, require_main: bool = True) -> None:
    """Validate *program*, raising :class:`ValidationError` on the first group
    of problems found."""
    errors: List[str] = []

    seen = set()
    for fn in program.functions:
        if fn.name in seen:
            errors.append(f"duplicate function definition {fn.name!r}")
        seen.add(fn.name)
        if len(set(fn.params)) != len(fn.params):
            errors.append(f"function {fn.name!r} has duplicate parameters")

    if require_main and "main" not in seen:
        errors.append("program has no 'main' function")

    seen_globals = set()
    for g in program.globals:
        if g.name in seen_globals:
            errors.append(f"duplicate global variable {g.name!r}")
        seen_globals.add(g.name)

    for fn in program.functions:
        _check_nesting(fn.body, in_worksharing=False, errors=errors)
        for stmt in _iter_stmts(fn.body):
            if isinstance(stmt, A.OmpParallel) and isinstance(stmt.num_threads, A.IntLit):
                if stmt.num_threads.value <= 0:
                    errors.append(
                        f"omp parallel at {stmt.loc} has non-positive "
                        f"num_threads({stmt.num_threads.value})"
                    )
            if isinstance(stmt, A.OmpFor):
                loop = stmt.loop
                if loop.init is None or loop.cond is None or loop.step is None:
                    errors.append(
                        f"omp for at {stmt.loc} requires a fully specified "
                        "(init; cond; step) loop header"
                    )

    if errors:
        raise ValidationError("; ".join(errors))


def count_nodes(program: A.Program) -> int:
    """Total number of AST nodes (used in reports and tests)."""
    return sum(1 for _ in program.walk())
