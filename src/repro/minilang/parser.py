"""Recursive-descent parser for the mini hybrid MPI/OpenMP language.

Grammar (informal EBNF)::

    program     := "program" IDENT ";" (global_decl | funcdef)*
    global_decl := var_decl
    funcdef     := "func" IDENT "(" [params] ")" block
    params      := IDENT ("," IDENT)*
    block       := "{" stmt* "}"
    stmt        := var_decl | simple ";" | if | while | for | return
                 | print | assert | omp_directive | block
    var_decl    := "var" IDENT ("[" expr "]")? ("=" expr)? ";"
    simple      := assign | call
    if          := "if" "(" expr ")" block ["else" (block | if)]
    while       := "while" "(" expr ")" block
    for         := "for" "(" [simple_nosemi] ";" [expr] ";" [simple_nosemi] ")" block
    omp_directive :=
          "omp" "parallel" clauses block
        | "omp" "for" for_clauses for
        | "omp" "sections" ["nowait"] "{" ("omp" "section" block)+ "}"
        | "omp" "critical" ["(" IDENT ")"] block
        | "omp" "barrier" ";"
        | "omp" "single" ["nowait"] block
        | "omp" "master" block
        | "omp" "atomic" assign ";"

Expression parsing uses precedence climbing with C-like precedence:
``||`` < ``&&`` < equality < relational < additive < multiplicative
< unary < postfix (call / index).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ParseError
from . import ast_nodes as A
from .lexer import Token, tokenize

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


class Parser:
    """Parses a token stream into a :class:`repro.minilang.ast_nodes.Program`."""

    #: maximum block/expression nesting depth.  Recursive-descent
    #: parsing burns one Python stack frame per level, so a generated
    #: (or adversarial) deeply nested program would die with an opaque
    #: ``RecursionError`` traceback instead of a diagnostic; cap well
    #: below the interpreter stack limit and report a normal ParseError.
    MAX_NESTING = 200

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.depth = 0

    def _descend(self, tok: Token) -> None:
        self.depth += 1
        if self.depth > self.MAX_NESTING:
            raise ParseError(
                f"nesting too deep (max {self.MAX_NESTING} levels)",
                tok.line,
                tok.col,
            )

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self._peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def _match(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self._peek()
        if not self._check(kind, text):
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r} but found {tok.text or tok.kind!r}",
                tok.line,
                tok.col,
            )
        return self._advance()

    def _loc(self, tok: Token) -> A.SourceLoc:
        return A.SourceLoc(tok.line, tok.col)

    # -- top level ------------------------------------------------------------

    def parse_program(self) -> A.Program:
        start = self._expect("keyword", "program")
        name = self._expect("ident").text
        self._expect("punct", ";")
        globals_: List[A.VarDecl] = []
        functions: List[A.FuncDef] = []
        while not self._check("eof"):
            if self._check("keyword", "var"):
                globals_.append(self._parse_var_decl())
            elif self._check("keyword", "func"):
                functions.append(self._parse_funcdef())
            else:
                tok = self._peek()
                raise ParseError(
                    f"expected 'var' or 'func' at top level, found {tok.text!r}",
                    tok.line,
                    tok.col,
                )
        return A.Program(name, globals_, functions, loc=self._loc(start))

    def _parse_funcdef(self) -> A.FuncDef:
        start = self._expect("keyword", "func")
        name = self._expect("ident").text
        self._expect("punct", "(")
        params: List[str] = []
        if not self._check("punct", ")"):
            params.append(self._expect("ident").text)
            while self._match("punct", ","):
                params.append(self._expect("ident").text)
        self._expect("punct", ")")
        body = self._parse_block()
        return A.FuncDef(name, params, body, loc=self._loc(start))

    # -- statements ------------------------------------------------------------

    def _parse_block(self) -> A.Block:
        start = self._expect("punct", "{")
        self._descend(start)
        try:
            stmts: List[A.Stmt] = []
            while not self._check("punct", "}"):
                if self._check("eof"):
                    raise ParseError(
                        "unterminated block", start.line, start.col
                    )
                stmts.append(self._parse_stmt())
            self._expect("punct", "}")
            return A.Block(stmts, loc=self._loc(start))
        finally:
            self.depth -= 1

    def _parse_stmt(self) -> A.Stmt:
        tok = self._peek()
        if tok.kind == "keyword":
            if tok.text == "var":
                return self._parse_var_decl()
            if tok.text == "if":
                return self._parse_if()
            if tok.text == "while":
                return self._parse_while()
            if tok.text == "for":
                return self._parse_for()
            if tok.text == "return":
                return self._parse_return()
            if tok.text == "print":
                return self._parse_print()
            if tok.text == "assert":
                return self._parse_assert()
            if tok.text == "omp":
                return self._parse_omp()
        if tok.kind == "punct" and tok.text == "{":
            return self._parse_block()
        stmt = self._parse_simple()
        self._expect("punct", ";")
        return stmt

    def _parse_var_decl(self) -> A.VarDecl:
        start = self._expect("keyword", "var")
        name = self._expect("ident").text
        size: Optional[A.Expr] = None
        init: Optional[A.Expr] = None
        if self._match("punct", "["):
            size = self._parse_expr()
            self._expect("punct", "]")
        if self._match("op", "="):
            init = self._parse_expr()
        self._expect("punct", ";")
        return A.VarDecl(name, init=init, size=size, loc=self._loc(start))

    def _parse_simple(self) -> A.Stmt:
        """Parse an assignment or a bare call (no trailing semicolon)."""
        start = self._peek()
        expr = self._parse_expr()
        if self._match("op", "="):
            value = self._parse_expr()
            return A.Assign(expr, value, loc=self._loc(start))
        if not isinstance(expr, A.CallExpr):
            raise ParseError(
                "expression statement must be a call or assignment",
                start.line,
                start.col,
            )
        return A.ExprStmt(expr, loc=self._loc(start))

    def _parse_if(self) -> A.If:
        start = self._expect("keyword", "if")
        self._expect("punct", "(")
        cond = self._parse_expr()
        self._expect("punct", ")")
        then = self._parse_block()
        els: Optional[A.Stmt] = None
        if self._match("keyword", "else"):
            if self._check("keyword", "if"):
                # Normalize 'else if' into an else-block containing the if,
                # so the else branch is always a Block (round-trip friendly).
                nested = self._parse_if()
                els = A.Block([nested], loc=nested.loc)
            else:
                els = self._parse_block()
        return A.If(cond, then, els, loc=self._loc(start))

    def _parse_while(self) -> A.While:
        start = self._expect("keyword", "while")
        self._expect("punct", "(")
        cond = self._parse_expr()
        self._expect("punct", ")")
        body = self._parse_block()
        return A.While(cond, body, loc=self._loc(start))

    def _parse_for_header(self) -> tuple:
        self._expect("punct", "(")
        init: Optional[A.Stmt] = None
        if not self._check("punct", ";"):
            if self._check("keyword", "var"):
                start = self._expect("keyword", "var")
                name = self._expect("ident").text
                iexpr = None
                if self._match("op", "="):
                    iexpr = self._parse_expr()
                init = A.VarDecl(name, init=iexpr, loc=self._loc(start))
            else:
                init = self._parse_simple()
        self._expect("punct", ";")
        cond: Optional[A.Expr] = None
        if not self._check("punct", ";"):
            cond = self._parse_expr()
        self._expect("punct", ";")
        step: Optional[A.Stmt] = None
        if not self._check("punct", ")"):
            step = self._parse_simple()
        self._expect("punct", ")")
        return init, cond, step

    def _parse_for(self) -> A.For:
        start = self._expect("keyword", "for")
        init, cond, step = self._parse_for_header()
        body = self._parse_block()
        return A.For(init, cond, step, body, loc=self._loc(start))

    def _parse_return(self) -> A.Return:
        start = self._expect("keyword", "return")
        value: Optional[A.Expr] = None
        if not self._check("punct", ";"):
            value = self._parse_expr()
        self._expect("punct", ";")
        return A.Return(value, loc=self._loc(start))

    def _parse_print(self) -> A.Print:
        start = self._expect("keyword", "print")
        self._expect("punct", "(")
        args: List[A.Expr] = []
        if not self._check("punct", ")"):
            args.append(self._parse_expr())
            while self._match("punct", ","):
                args.append(self._parse_expr())
        self._expect("punct", ")")
        self._expect("punct", ";")
        return A.Print(args, loc=self._loc(start))

    def _parse_assert(self) -> A.AssertStmt:
        start = self._expect("keyword", "assert")
        self._expect("punct", "(")
        cond = self._parse_expr()
        self._expect("punct", ")")
        self._expect("punct", ";")
        return A.AssertStmt(cond, loc=self._loc(start))

    # -- OpenMP directives -------------------------------------------------

    def _parse_name_list(self) -> List[str]:
        self._expect("punct", "(")
        names = [self._expect("ident").text]
        while self._match("punct", ","):
            names.append(self._expect("ident").text)
        self._expect("punct", ")")
        return names

    def _parse_reduction_clause(self) -> List[tuple]:
        """``reduction(op: a, b, ...)`` -> [(op, 'a'), (op, 'b'), ...]."""
        self._expect("punct", "(")
        tok = self._peek()
        if tok.kind == "op" and tok.text in ("+", "*"):
            op = self._advance().text
        elif tok.kind == "ident" and tok.text in ("min", "max"):
            op = self._advance().text
        else:
            raise ParseError(
                f"unknown reduction operator {tok.text!r} (expected +, *, min, max)",
                tok.line, tok.col,
            )
        self._expect("punct", ":")
        pairs = [(op, self._expect("ident").text)]
        while self._match("punct", ","):
            pairs.append((op, self._expect("ident").text))
        self._expect("punct", ")")
        return pairs

    def _parse_omp(self) -> A.Stmt:
        start = self._expect("keyword", "omp")
        tok = self._peek()
        if self._match("keyword", "parallel"):
            return self._parse_omp_parallel(start)
        if self._match("keyword", "for"):
            return self._parse_omp_for(start)
        if self._match("keyword", "sections"):
            return self._parse_omp_sections(start)
        if self._match("keyword", "critical"):
            name = ""
            if self._match("punct", "("):
                name = self._expect("ident").text
                self._expect("punct", ")")
            body = self._parse_block()
            return A.OmpCritical(body, name=name, loc=self._loc(start))
        if self._match("keyword", "barrier"):
            self._expect("punct", ";")
            return A.OmpBarrier(loc=self._loc(start))
        if self._match("keyword", "single"):
            nowait = bool(self._match("keyword", "nowait"))
            body = self._parse_block()
            return A.OmpSingle(body, nowait=nowait, loc=self._loc(start))
        if self._match("keyword", "master"):
            body = self._parse_block()
            return A.OmpMaster(body, loc=self._loc(start))
        if self._match("keyword", "atomic"):
            stmt = self._parse_simple()
            self._expect("punct", ";")
            if not isinstance(stmt, A.Assign):
                raise ParseError("omp atomic requires an assignment", start.line, start.col)
            return A.OmpAtomic(stmt, loc=self._loc(start))
        raise ParseError(f"unknown omp directive {tok.text!r}", tok.line, tok.col)

    def _parse_omp_parallel(self, start: Token) -> A.OmpParallel:
        num_threads: Optional[A.Expr] = None
        private: List[str] = []
        shared: List[str] = []
        firstprivate: List[str] = []
        reductions: List[tuple] = []
        # 'omp parallel for' combined construct sugar.
        if self._check("keyword", "for"):
            self._advance()
            inner = self._parse_omp_for(start)
            body = A.Block([inner], loc=self._loc(start))
            return A.OmpParallel(body, loc=self._loc(start))
        while True:
            if self._match("keyword", "num_threads"):
                self._expect("punct", "(")
                num_threads = self._parse_expr()
                self._expect("punct", ")")
            elif self._match("keyword", "private"):
                private.extend(self._parse_name_list())
            elif self._match("keyword", "shared"):
                shared.extend(self._parse_name_list())
            elif self._match("keyword", "firstprivate"):
                firstprivate.extend(self._parse_name_list())
            elif self._match("keyword", "reduction"):
                reductions.extend(self._parse_reduction_clause())
            elif self._check("keyword", "for"):
                # 'omp parallel num_threads(..) for ...' combined construct.
                self._advance()
                inner = self._parse_omp_for(start)
                body = A.Block([inner], loc=self._loc(start))
                return A.OmpParallel(
                    body,
                    num_threads=num_threads,
                    private=private,
                    shared=shared,
                    firstprivate=firstprivate,
                    reductions=reductions,
                    loc=self._loc(start),
                )
            else:
                break
        body = self._parse_block()
        return A.OmpParallel(
            body,
            num_threads=num_threads,
            private=private,
            shared=shared,
            firstprivate=firstprivate,
            reductions=reductions,
            loc=self._loc(start),
        )

    def _parse_omp_for(self, start: Token) -> A.OmpFor:
        schedule = "static"
        chunk: Optional[A.Expr] = None
        nowait = False
        private: List[str] = []
        reductions: List[tuple] = []
        while True:
            if self._match("keyword", "schedule"):
                self._expect("punct", "(")
                kind_tok = self._peek()
                kind = self._advance().text
                if kind not in A.SCHEDULE_KINDS:
                    raise ParseError(
                        f"unknown schedule kind {kind!r}", kind_tok.line, kind_tok.col
                    )
                schedule = kind
                if self._match("punct", ","):
                    chunk = self._parse_expr()
                self._expect("punct", ")")
            elif self._match("keyword", "nowait"):
                nowait = True
            elif self._match("keyword", "private"):
                private.extend(self._parse_name_list())
            elif self._match("keyword", "reduction"):
                reductions.extend(self._parse_reduction_clause())
            else:
                break
        for_tok = self._expect("keyword", "for")
        init, cond, step = self._parse_for_header()
        body = self._parse_block()
        loop = A.For(init, cond, step, body, loc=self._loc(for_tok))
        return A.OmpFor(
            loop,
            schedule=schedule,
            chunk=chunk,
            nowait=nowait,
            private=private,
            reductions=reductions,
            loc=self._loc(start),
        )

    def _parse_omp_sections(self, start: Token) -> A.OmpSections:
        nowait = bool(self._match("keyword", "nowait"))
        self._expect("punct", "{")
        sections: List[A.Block] = []
        while not self._check("punct", "}"):
            self._expect("keyword", "omp")
            self._expect("keyword", "section")
            sections.append(self._parse_block())
        self._expect("punct", "}")
        if not sections:
            raise ParseError("omp sections requires at least one section", start.line, start.col)
        return A.OmpSections(sections, nowait=nowait, loc=self._loc(start))

    # -- expressions ------------------------------------------------------------

    def _parse_expr(self, min_prec: int = 1) -> A.Expr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            if tok.kind != "op" or tok.text not in _PRECEDENCE:
                return left
            prec = _PRECEDENCE[tok.text]
            if prec < min_prec:
                return left
            self._advance()
            right = self._parse_expr(prec + 1)
            left = A.Binary(tok.text, left, right, loc=self._loc(tok))

    def _parse_unary(self) -> A.Expr:
        tok = self._peek()
        if tok.kind == "op" and tok.text in ("-", "!"):
            self._advance()
            self._descend(tok)
            try:
                operand = self._parse_unary()
            finally:
                self.depth -= 1
            return A.Unary(tok.text, operand, loc=self._loc(tok))
        return self._parse_postfix()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            if self._check("punct", "["):
                tok = self._advance()
                index = self._parse_expr()
                self._expect("punct", "]")
                expr = A.Index(expr, index, loc=self._loc(tok))
            else:
                return expr

    def _parse_primary(self) -> A.Expr:
        tok = self._peek()
        if tok.kind == "int":
            self._advance()
            return A.IntLit(int(tok.text), loc=self._loc(tok))
        if tok.kind == "float":
            self._advance()
            return A.FloatLit(float(tok.text), loc=self._loc(tok))
        if tok.kind == "string":
            self._advance()
            return A.StrLit(tok.text, loc=self._loc(tok))
        if tok.kind == "keyword" and tok.text in ("true", "false"):
            self._advance()
            return A.BoolLit(tok.text == "true", loc=self._loc(tok))
        if tok.kind == "ident":
            self._advance()
            if self._check("punct", "("):
                self._advance()
                args: List[A.Expr] = []
                if not self._check("punct", ")"):
                    args.append(self._parse_expr())
                    while self._match("punct", ","):
                        args.append(self._parse_expr())
                self._expect("punct", ")")
                return A.CallExpr(tok.text, args, loc=self._loc(tok))
            return A.Name(tok.text, loc=self._loc(tok))
        if tok.kind == "punct" and tok.text == "(":
            self._advance()
            self._descend(tok)
            try:
                expr = self._parse_expr()
            finally:
                self.depth -= 1
            self._expect("punct", ")")
            return expr
        raise ParseError(f"unexpected token {tok.text or tok.kind!r}", tok.line, tok.col)


def parse(source: str) -> A.Program:
    """Parse mini-language *source* text into a :class:`Program`."""
    parser = Parser(tokenize(source))
    program = parser.parse_program()
    eof = parser._peek()
    if eof.kind != "eof":  # pragma: no cover - parse_program consumes to eof
        raise ParseError("trailing input after program", eof.line, eof.col)
    return program
