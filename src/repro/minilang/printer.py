"""Pretty-printer for mini-language ASTs.

``print_program(parse(src))`` produces source that parses back to a
structurally identical AST — the round-trip property is enforced by the
test suite.  The printer is also used to show users the instrumented
program HOME generates (MPI calls rewritten to ``hmpi_*`` wrappers).
"""

from __future__ import annotations

from typing import List

from . import ast_nodes as A

_INDENT = "    "


def _fmt_expr(expr: A.Expr) -> str:
    if isinstance(expr, A.IntLit):
        return str(expr.value)
    if isinstance(expr, A.FloatLit):
        text = repr(expr.value)
        return text if ("." in text or "e" in text or "E" in text) else text + ".0"
    if isinstance(expr, A.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, A.StrLit):
        escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return f'"{escaped}"'
    if isinstance(expr, A.Name):
        return expr.ident
    if isinstance(expr, A.Index):
        return f"{_fmt_expr(expr.base)}[{_fmt_expr(expr.index)}]"
    if isinstance(expr, A.Unary):
        return f"({expr.op}{_fmt_expr(expr.operand)})"
    if isinstance(expr, A.Binary):
        return f"({_fmt_expr(expr.left)} {expr.op} {_fmt_expr(expr.right)})"
    if isinstance(expr, A.CallExpr):
        args = ", ".join(_fmt_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"cannot print expression node {type(expr).__name__}")


def _fmt_simple(stmt: A.Stmt) -> str:
    """Format an assignment/call/var-decl *without* the trailing semicolon."""
    if isinstance(stmt, A.Assign):
        return f"{_fmt_expr(stmt.target)} = {_fmt_expr(stmt.value)}"
    if isinstance(stmt, A.ExprStmt):
        return _fmt_expr(stmt.expr)
    if isinstance(stmt, A.VarDecl):
        text = f"var {stmt.name}"
        if stmt.size is not None:
            text += f"[{_fmt_expr(stmt.size)}]"
        if stmt.init is not None:
            text += f" = {_fmt_expr(stmt.init)}"
        return text
    raise TypeError(f"cannot print simple statement {type(stmt).__name__}")


def _fmt_reductions(reductions) -> str:
    """Group (op, var) pairs into reduction(op: vars) clauses, preserving
    the order in which operators first appear."""
    if not reductions:
        return ""
    grouped = {}
    for op, name in reductions:
        grouped.setdefault(op, []).append(name)
    return "".join(
        f" reduction({op}: {', '.join(names)})" for op, names in grouped.items()
    )


class _Printer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def emit(self, text: str) -> None:
        self.lines.append(_INDENT * self.depth + text)

    # -- statements -----------------------------------------------------------

    def stmt(self, node: A.Stmt) -> None:
        if isinstance(node, (A.VarDecl, A.Assign, A.ExprStmt)):
            self.emit(_fmt_simple(node) + ";")
        elif isinstance(node, A.Block):
            self.emit("{")
            self.depth += 1
            for s in node.stmts:
                self.stmt(s)
            self.depth -= 1
            self.emit("}")
        elif isinstance(node, A.If):
            self._if(node, prefix="if")
        elif isinstance(node, A.While):
            self.emit(f"while ({_fmt_expr(node.cond)}) {{")
            self._body(node.body)
        elif isinstance(node, A.For):
            self.emit(self._for_header(node) + " {")
            self._body(node.body)
        elif isinstance(node, A.Return):
            self.emit(f"return {_fmt_expr(node.value)};" if node.value else "return;")
        elif isinstance(node, A.Print):
            args = ", ".join(_fmt_expr(a) for a in node.args)
            self.emit(f"print({args});")
        elif isinstance(node, A.AssertStmt):
            self.emit(f"assert({_fmt_expr(node.cond)});")
        elif isinstance(node, A.OmpParallel):
            clauses = ""
            if node.num_threads is not None:
                clauses += f" num_threads({_fmt_expr(node.num_threads)})"
            for kw, names in (
                ("private", node.private),
                ("shared", node.shared),
                ("firstprivate", node.firstprivate),
            ):
                if names:
                    clauses += f" {kw}({', '.join(names)})"
            clauses += _fmt_reductions(node.reductions)
            self.emit(f"omp parallel{clauses} {{")
            self._body(node.body)
        elif isinstance(node, A.OmpFor):
            clauses = ""
            if node.schedule != "static" or node.chunk is not None:
                clauses += f" schedule({node.schedule}"
                if node.chunk is not None:
                    clauses += f", {_fmt_expr(node.chunk)}"
                clauses += ")"
            if node.private:
                clauses += f" private({', '.join(node.private)})"
            clauses += _fmt_reductions(node.reductions)
            if node.nowait:
                clauses += " nowait"
            self.emit(f"omp for{clauses} {self._for_header(node.loop)} {{")
            self._body(node.loop.body)
        elif isinstance(node, A.OmpSections):
            nowait = " nowait" if node.nowait else ""
            self.emit(f"omp sections{nowait} {{")
            self.depth += 1
            for section in node.sections:
                self.emit("omp section {")
                self._body(section)
            self.depth -= 1
            self.emit("}")
        elif isinstance(node, A.OmpCritical):
            name = f" ({node.name})" if node.name else ""
            self.emit(f"omp critical{name} {{")
            self._body(node.body)
        elif isinstance(node, A.OmpBarrier):
            self.emit("omp barrier;")
        elif isinstance(node, A.OmpSingle):
            nowait = " nowait" if node.nowait else ""
            self.emit(f"omp single{nowait} {{")
            self._body(node.body)
        elif isinstance(node, A.OmpMaster):
            self.emit("omp master {")
            self._body(node.body)
        elif isinstance(node, A.OmpAtomic):
            self.emit(f"omp atomic {_fmt_simple(node.stmt)};")
        else:
            raise TypeError(f"cannot print statement node {type(node).__name__}")

    def _if(self, node: A.If, prefix: str) -> None:
        self.emit(f"{prefix} ({_fmt_expr(node.cond)}) {{")
        self.depth += 1
        for s in node.then.stmts:
            self.stmt(s)
        self.depth -= 1
        if node.els is None:
            self.emit("}")
        else:
            self.emit("} else {")
            self.depth += 1
            els = node.els if isinstance(node.els, A.Block) else A.Block([node.els])
            for s in els.stmts:
                self.stmt(s)
            self.depth -= 1
            self.emit("}")

    def _for_header(self, node: A.For) -> str:
        init = _fmt_simple(node.init) if node.init is not None else ""
        cond = _fmt_expr(node.cond) if node.cond is not None else ""
        step = _fmt_simple(node.step) if node.step is not None else ""
        return f"for ({init}; {cond}; {step})"

    def _body(self, block: A.Block) -> None:
        self.depth += 1
        for s in block.stmts:
            self.stmt(s)
        self.depth -= 1
        self.emit("}")


def print_program(program: A.Program) -> str:
    """Render *program* back to parseable mini-language source text."""
    printer = _Printer()
    printer.emit(f"program {program.name};")
    printer.emit("")
    for decl in program.globals:
        printer.stmt(decl)
    if program.globals:
        printer.emit("")
    for fn in program.functions:
        params = ", ".join(fn.params)
        printer.emit(f"func {fn.name}({params}) {{")
        printer._body(fn.body)
        printer.emit("")
    while printer.lines and printer.lines[-1] == "":
        printer.lines.pop()
    return "\n".join(printer.lines) + "\n"


def print_stmt(stmt: A.Stmt) -> str:
    """Render a single statement (used in reports and debugging)."""
    printer = _Printer()
    printer.stmt(stmt)
    return "\n".join(printer.lines)


def print_expr(expr: A.Expr) -> str:
    """Render a single expression."""
    return _fmt_expr(expr)
