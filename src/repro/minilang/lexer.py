"""Lexer for the mini hybrid MPI/OpenMP language.

Produces a flat list of :class:`Token` objects.  The token stream keeps
line/column information so downstream error messages and violation
reports can point back at source locations, mirroring how the paper's
tool reports "all possible code locations involved in errors".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..errors import LexError

KEYWORDS = frozenset(
    {
        "program", "func", "var", "if", "else", "while", "for", "return",
        "print", "assert", "true", "false",
        "omp", "parallel", "sections", "section", "critical", "barrier",
        "single", "master", "atomic", "num_threads", "private", "shared",
        "firstprivate", "schedule", "nowait", "reduction",
    }
)

# Multi-character operators first so maximal munch works by scan order.
OPERATORS = (
    "&&", "||", "==", "!=", "<=", ">=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!",
)

PUNCT = ("(", ")", "{", "}", "[", "]", ",", ";", ":")


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # 'ident', 'keyword', 'int', 'float', 'string', 'op', 'punct', 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


class Lexer:
    """Streaming tokenizer over mini-language source text."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, n: int = 1) -> str:
        text = self.source[self.pos : self.pos + n]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += n
        return text

    def _skip_trivia(self) -> None:
        """Skip whitespace and ``//`` / ``/* */`` comments."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.col
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", start_line, start_col)
            else:
                return

    # -- token producers ----------------------------------------------------

    def _lex_number(self) -> Token:
        line, col = self.line, self.col
        text = ""
        while self._peek().isdigit():
            text += self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            text += self._advance()
            while self._peek().isdigit():
                text += self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            text += self._advance()
            if self._peek() in "+-":
                text += self._advance()
            while self._peek().isdigit():
                text += self._advance()
        if self._peek().isalpha() or self._peek() == "_":
            raise LexError(f"invalid numeric literal {text + self._peek()!r}", line, col)
        return Token("float" if is_float else "int", text, line, col)

    def _lex_ident(self) -> Token:
        line, col = self.line, self.col
        text = ""
        while self._peek().isalnum() or self._peek() == "_":
            text += self._advance()
        kind = "keyword" if text in KEYWORDS else "ident"
        return Token(kind, text, line, col)

    def _lex_string(self) -> Token:
        line, col = self.line, self.col
        quote = self._advance()
        text = ""
        while True:
            ch = self._peek()
            if ch == "":
                raise LexError("unterminated string literal", line, col)
            if ch == "\n":
                raise LexError("newline in string literal", line, col)
            if ch == quote:
                self._advance()
                return Token("string", text, line, col)
            if ch == "\\":
                self._advance()
                esc = self._advance()
                text += {"n": "\n", "t": "\t", "\\": "\\", '"': '"', "'": "'"}.get(
                    esc, esc
                )
            else:
                text += self._advance()

    def tokens(self) -> Iterator[Token]:
        """Yield all tokens, terminated by a single ``eof`` token."""
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                yield Token("eof", "", self.line, self.col)
                return
            ch = self._peek()
            if ch.isdigit():
                yield self._lex_number()
            elif ch.isalpha() or ch == "_":
                yield self._lex_ident()
            elif ch in "\"'":
                yield self._lex_string()
            else:
                line, col = self.line, self.col
                for op in OPERATORS:
                    if self.source.startswith(op, self.pos):
                        self._advance(len(op))
                        yield Token("op", op, line, col)
                        break
                else:
                    if ch in PUNCT:
                        self._advance()
                        yield Token("punct", ch, line, col)
                    else:
                        raise LexError(f"unexpected character {ch!r}", line, col)


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*, returning a list ending with the ``eof`` token."""
    return list(Lexer(source).tokens())
