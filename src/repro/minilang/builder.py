"""Programmatic construction helpers for mini-language ASTs.

Workload generators (:mod:`repro.workloads`) assemble large benchmark
programs; doing that through raw AST constructors is verbose, so this
module provides a tiny combinator layer plus structural-equality and
cloning utilities that the instrumentation pass and the round-trip
property tests rely on.
"""

from __future__ import annotations

import copy
from typing import Optional, Sequence, Union

from . import ast_nodes as A

ExprLike = Union[A.Expr, int, float, bool, str]


def expr(value: ExprLike) -> A.Expr:
    """Coerce a Python literal (or an existing Expr) into an expression node.

    Strings are treated as *variable names*; use :func:`lit` for string
    literals.
    """
    if isinstance(value, A.Expr):
        return value
    if isinstance(value, bool):
        return A.BoolLit(value)
    if isinstance(value, int):
        return A.IntLit(value)
    if isinstance(value, float):
        return A.FloatLit(value)
    if isinstance(value, str):
        return A.Name(value)
    raise TypeError(f"cannot coerce {value!r} to an expression")


def lit(value: Union[int, float, bool, str]) -> A.Expr:
    """Build a literal node (strings become string literals here)."""
    if isinstance(value, bool):
        return A.BoolLit(value)
    if isinstance(value, int):
        return A.IntLit(value)
    if isinstance(value, float):
        return A.FloatLit(value)
    if isinstance(value, str):
        return A.StrLit(value)
    raise TypeError(f"cannot build literal from {value!r}")


def name(ident: str) -> A.Name:
    return A.Name(ident)


def idx(base: ExprLike, index: ExprLike) -> A.Index:
    return A.Index(expr(base), expr(index))


def unop(op: str, operand: ExprLike) -> A.Unary:
    return A.Unary(op, expr(operand))


def binop(op: str, left: ExprLike, right: ExprLike) -> A.Binary:
    return A.Binary(op, expr(left), expr(right))


def add(a: ExprLike, b: ExprLike) -> A.Binary:
    return binop("+", a, b)


def sub(a: ExprLike, b: ExprLike) -> A.Binary:
    return binop("-", a, b)


def mul(a: ExprLike, b: ExprLike) -> A.Binary:
    return binop("*", a, b)


def mod(a: ExprLike, b: ExprLike) -> A.Binary:
    return binop("%", a, b)


def eq(a: ExprLike, b: ExprLike) -> A.Binary:
    return binop("==", a, b)


def lt(a: ExprLike, b: ExprLike) -> A.Binary:
    return binop("<", a, b)


def call(fname: str, *args: ExprLike) -> A.CallExpr:
    return A.CallExpr(fname, [expr(a) for a in args])


def callstmt(fname: str, *args: ExprLike) -> A.ExprStmt:
    return A.ExprStmt(call(fname, *args))


def block(*stmts: A.Stmt) -> A.Block:
    return A.Block(list(stmts))


def decl(var_name: str, init: Optional[ExprLike] = None, size: Optional[ExprLike] = None) -> A.VarDecl:
    return A.VarDecl(
        var_name,
        init=expr(init) if init is not None else None,
        size=expr(size) if size is not None else None,
    )


def assign(target: Union[str, A.Expr], value: ExprLike) -> A.Assign:
    tgt = A.Name(target) if isinstance(target, str) else target
    return A.Assign(tgt, expr(value))


def if_(cond: ExprLike, then: Sequence[A.Stmt], els: Optional[Sequence[A.Stmt]] = None) -> A.If:
    return A.If(
        expr(cond),
        A.Block(list(then)),
        A.Block(list(els)) if els is not None else None,
    )


def while_(cond: ExprLike, body: Sequence[A.Stmt]) -> A.While:
    return A.While(expr(cond), A.Block(list(body)))


def for_range(var: str, start: ExprLike, stop: ExprLike, body: Sequence[A.Stmt], step: int = 1) -> A.For:
    """Build ``for (var v = start; v < stop; v = v + step) { body }``."""
    return A.For(
        A.VarDecl(var, init=expr(start)),
        binop("<", A.Name(var), expr(stop)),
        A.Assign(A.Name(var), binop("+", A.Name(var), A.IntLit(step))),
        A.Block(list(body)),
    )


def parallel(
    body: Sequence[A.Stmt],
    num_threads: Optional[ExprLike] = None,
    private: Sequence[str] = (),
    shared: Sequence[str] = (),
    firstprivate: Sequence[str] = (),
) -> A.OmpParallel:
    return A.OmpParallel(
        A.Block(list(body)),
        num_threads=expr(num_threads) if num_threads is not None else None,
        private=private,
        shared=shared,
        firstprivate=firstprivate,
    )


def omp_for(
    var: str,
    start: ExprLike,
    stop: ExprLike,
    body: Sequence[A.Stmt],
    schedule: str = "static",
    chunk: Optional[ExprLike] = None,
    nowait: bool = False,
) -> A.OmpFor:
    loop = for_range(var, start, stop, body)
    return A.OmpFor(
        loop,
        schedule=schedule,
        chunk=expr(chunk) if chunk is not None else None,
        nowait=nowait,
    )


def sections(*bodies: Sequence[A.Stmt], nowait: bool = False) -> A.OmpSections:
    return A.OmpSections([A.Block(list(b)) for b in bodies], nowait=nowait)


def critical(body: Sequence[A.Stmt], name: str = "") -> A.OmpCritical:
    return A.OmpCritical(A.Block(list(body)), name=name)


def barrier() -> A.OmpBarrier:
    return A.OmpBarrier()


def single(body: Sequence[A.Stmt], nowait: bool = False) -> A.OmpSingle:
    return A.OmpSingle(A.Block(list(body)), nowait=nowait)


def master(body: Sequence[A.Stmt]) -> A.OmpMaster:
    return A.OmpMaster(A.Block(list(body)))


def func(fname: str, params: Sequence[str], body: Sequence[A.Stmt]) -> A.FuncDef:
    return A.FuncDef(fname, list(params), A.Block(list(body)))


def program(pname: str, functions: Sequence[A.FuncDef], globals: Sequence[A.VarDecl] = ()) -> A.Program:
    return A.Program(pname, list(globals), list(functions))


# ---------------------------------------------------------------------------
# Structural utilities
# ---------------------------------------------------------------------------


def clone(node: A.Node) -> A.Node:
    """Deep-copy an AST subtree, assigning fresh node ids throughout.

    Instrumentation must not alias nodes between the original and the
    rewritten program, and node ids must stay unique so event call-site
    attribution is unambiguous.
    """
    new = copy.deepcopy(node)
    for sub in new.walk():
        sub.nid = A._next_nid()
    return new


_EQ_IGNORED_SLOTS = {"nid", "loc"}


def _node_fields(node: A.Node) -> list:
    slots: list = []
    for klass in type(node).__mro__:
        slots.extend(getattr(klass, "__slots__", ()))
    return [s for s in slots if s not in _EQ_IGNORED_SLOTS]


def ast_equal(a: object, b: object) -> bool:
    """Structural equality of two AST subtrees, ignoring node ids and locations."""
    if isinstance(a, A.Node) != isinstance(b, A.Node):
        return False
    if isinstance(a, A.Node):
        if type(a) is not type(b):
            return False
        for fname in _node_fields(a):
            if not ast_equal(getattr(a, fname), getattr(b, fname)):
                return False
        return True
    if isinstance(a, (list, tuple)):
        if not isinstance(b, (list, tuple)) or len(a) != len(b):
            return False
        return all(ast_equal(x, y) for x, y in zip(a, b))
    return a == b
