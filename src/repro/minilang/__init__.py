"""Mini hybrid MPI/OpenMP language: AST, lexer, parser, printer, builder.

This package is the "source language" substrate of the reproduction: the
CLUSTER 2015 paper analyses C programs mixing MPI routines with OpenMP
directives, and every workload, case study and injected violation in
this repository is expressed in this language.
"""

from . import ast_nodes as ast  # noqa: F401  (public alias)
from .ast_nodes import (  # noqa: F401
    NOLOC,
    Node,
    Program,
    SourceLoc,
    renumber_nids,
)
from .builder import ast_equal, clone  # noqa: F401
from .lexer import Token, tokenize  # noqa: F401
from .parser import parse  # noqa: F401
from .printer import print_expr, print_program, print_stmt  # noqa: F401
from .validation import count_nodes, validate  # noqa: F401

__all__ = [
    "ast",
    "Node",
    "Program",
    "SourceLoc",
    "NOLOC",
    "Token",
    "tokenize",
    "parse",
    "renumber_nids",
    "print_program",
    "print_stmt",
    "print_expr",
    "validate",
    "count_nodes",
    "clone",
    "ast_equal",
]
