"""AST node definitions for the mini hybrid MPI/OpenMP language.

The language is a small C-like imperative language with first-class
OpenMP directives and MPI routines (modelled as builtin calls).  It is
rich enough to express the hybrid programming patterns the CLUSTER 2015
paper analyses: MPI calls nested inside ``omp parallel`` regions,
worksharing constructs, named critical sections, locks and barriers.

Every node carries a source location (``loc``) and a unique node id
(``nid``) assigned at construction.  Node ids let the static analysis
map CFG nodes and instrumentation sites back to the AST, and let the
dynamic analysis attribute runtime events to call sites.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

_NODE_COUNTER = itertools.count(1)


def _next_nid() -> int:
    return next(_NODE_COUNTER)


def renumber_nids(root: "Node") -> "Node":
    """Reassign node ids in pre-order, starting from 1.

    Node ids are drawn from a process-global counter, so a program's ids
    depend on everything parsed before it in the same process.  That is
    fine within one run, but any consumer that must produce identical
    artifacts across process restarts — the campaign service resumes a
    journaled submission in a *new* server process and must finish it
    byte-identical — needs ids that are a pure function of the program
    text.  Pre-order renumbering gives exactly that.

    Must be applied before any nid-keyed analysis touches the tree.
    Returns ``root`` for call-site convenience.
    """
    for nid, node in enumerate(root.walk(), start=1):
        node.nid = nid
    return root


@dataclass(frozen=True)
class SourceLoc:
    """A (line, column) position in mini-language source text."""

    line: int = 0
    col: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.line}:{self.col}"


NOLOC = SourceLoc(0, 0)


class Node:
    """Base class for all AST nodes."""

    __slots__ = ("nid", "loc")

    def __init__(self, loc: SourceLoc = NOLOC) -> None:
        self.nid: int = _next_nid()
        self.loc: SourceLoc = loc

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (used by generic walkers)."""
        return iter(())

    def walk(self) -> Iterator["Node"]:
        """Yield this node and every descendant in pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} nid={self.nid} loc={self.loc}>"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base class for expressions."""

    __slots__ = ()


class IntLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        self.value = int(value)


class FloatLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float, loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        self.value = float(value)


class BoolLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: bool, loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        self.value = bool(value)


class StrLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: str, loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        self.value = str(value)


class Name(Expr):
    """Reference to a variable."""

    __slots__ = ("ident",)

    def __init__(self, ident: str, loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        self.ident = ident


class Index(Expr):
    """Array element access ``base[index]``."""

    __slots__ = ("base", "index")

    def __init__(self, base: Expr, index: Expr, loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        self.base = base
        self.index = index

    def children(self) -> Iterator[Node]:
        yield self.base
        yield self.index


UNARY_OPS = ("-", "!")
BINARY_OPS = (
    "+", "-", "*", "/", "%",
    "==", "!=", "<", "<=", ">", ">=",
    "&&", "||",
)


class Unary(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        if op not in UNARY_OPS:
            raise ValueError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def children(self) -> Iterator[Node]:
        yield self.operand


class Binary(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


class CallExpr(Expr):
    """Call to a user function or a builtin (``mpi_*``, ``omp_*``, ``compute``)."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expr], loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        self.name = name
        self.args = list(args)

    def children(self) -> Iterator[Node]:
        yield from self.args


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    """Base class for statements."""

    __slots__ = ()


class Block(Stmt):
    __slots__ = ("stmts",)

    def __init__(self, stmts: Sequence[Stmt] = (), loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        self.stmts = list(stmts)

    def children(self) -> Iterator[Node]:
        yield from self.stmts


class VarDecl(Stmt):
    """``var x = e;`` or ``var a[n];`` (array of zeros)."""

    __slots__ = ("name", "init", "size")

    def __init__(
        self,
        name: str,
        init: Optional[Expr] = None,
        size: Optional[Expr] = None,
        loc: SourceLoc = NOLOC,
    ) -> None:
        super().__init__(loc)
        self.name = name
        self.init = init
        self.size = size

    @property
    def is_array(self) -> bool:
        return self.size is not None

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init
        if self.size is not None:
            yield self.size


class Assign(Stmt):
    """Assignment to a name or array element."""

    __slots__ = ("target", "value")

    def __init__(self, target: Expr, value: Expr, loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        if not isinstance(target, (Name, Index)):
            raise ValueError("assignment target must be a Name or Index")
        self.target = target
        self.value = value

    def children(self) -> Iterator[Node]:
        yield self.target
        yield self.value


class If(Stmt):
    __slots__ = ("cond", "then", "els")

    def __init__(
        self,
        cond: Expr,
        then: Block,
        els: Optional[Stmt] = None,
        loc: SourceLoc = NOLOC,
    ) -> None:
        super().__init__(loc)
        self.cond = cond
        self.then = then
        self.els = els

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.then
        if self.els is not None:
            yield self.els


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: Block, loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        self.cond = cond
        self.body = body

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.body


class For(Stmt):
    """C-style ``for (init; cond; step) body`` loop.

    ``init`` and ``step`` are optional statements (VarDecl/Assign/ExprStmt);
    ``cond`` is an optional expression (absent means "true").
    """

    __slots__ = ("init", "cond", "step", "body")

    def __init__(
        self,
        init: Optional[Stmt],
        cond: Optional[Expr],
        step: Optional[Stmt],
        body: Block,
        loc: SourceLoc = NOLOC,
    ) -> None:
        super().__init__(loc)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init
        if self.cond is not None:
            yield self.cond
        if self.step is not None:
            yield self.step
        yield self.body


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr] = None, loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        self.value = value

    def children(self) -> Iterator[Node]:
        if self.value is not None:
            yield self.value


class ExprStmt(Stmt):
    """Expression evaluated for effect — typically an MPI/builtin call."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr, loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        self.expr = expr

    def children(self) -> Iterator[Node]:
        yield self.expr


class Print(Stmt):
    __slots__ = ("args",)

    def __init__(self, args: Sequence[Expr], loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        self.args = list(args)

    def children(self) -> Iterator[Node]:
        yield from self.args


class AssertStmt(Stmt):
    __slots__ = ("cond",)

    def __init__(self, cond: Expr, loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        self.cond = cond

    def children(self) -> Iterator[Node]:
        yield self.cond


# ---------------------------------------------------------------------------
# OpenMP directives
# ---------------------------------------------------------------------------

SCHEDULE_KINDS = ("static", "dynamic")

#: reduction operators supported by the reduction(...) clause
REDUCTION_OPS = ("+", "*", "min", "max")


class OmpParallel(Stmt):
    """``omp parallel [num_threads(e)] [private(...)] [shared(...)] [firstprivate(...)]``."""

    __slots__ = ("body", "num_threads", "private", "shared", "firstprivate",
                 "reductions")

    def __init__(
        self,
        body: Block,
        num_threads: Optional[Expr] = None,
        private: Sequence[str] = (),
        shared: Sequence[str] = (),
        firstprivate: Sequence[str] = (),
        reductions: Sequence[tuple] = (),
        loc: SourceLoc = NOLOC,
    ) -> None:
        super().__init__(loc)
        self.body = body
        self.num_threads = num_threads
        self.private = list(private)
        self.shared = list(shared)
        self.firstprivate = list(firstprivate)
        #: list of (op, varname) pairs from reduction(op: vars) clauses
        self.reductions = list(reductions)

    def children(self) -> Iterator[Node]:
        if self.num_threads is not None:
            yield self.num_threads
        yield self.body


class OmpFor(Stmt):
    """``omp for [schedule(kind[, chunk])] [nowait]`` wrapping a For loop."""

    __slots__ = ("loop", "schedule", "chunk", "nowait", "private", "reductions")

    def __init__(
        self,
        loop: For,
        schedule: str = "static",
        chunk: Optional[Expr] = None,
        nowait: bool = False,
        private: Sequence[str] = (),
        reductions: Sequence[tuple] = (),
        loc: SourceLoc = NOLOC,
    ) -> None:
        super().__init__(loc)
        if schedule not in SCHEDULE_KINDS:
            raise ValueError(f"unknown schedule kind {schedule!r}")
        self.loop = loop
        self.schedule = schedule
        self.chunk = chunk
        self.nowait = nowait
        self.private = list(private)
        #: list of (op, varname) pairs from reduction(op: vars) clauses
        self.reductions = list(reductions)

    def children(self) -> Iterator[Node]:
        if self.chunk is not None:
            yield self.chunk
        yield self.loop


class OmpSections(Stmt):
    """``omp sections { omp section {...} ... }``."""

    __slots__ = ("sections", "nowait")

    def __init__(
        self, sections: Sequence[Block], nowait: bool = False, loc: SourceLoc = NOLOC
    ) -> None:
        super().__init__(loc)
        self.sections = list(sections)
        self.nowait = nowait

    def children(self) -> Iterator[Node]:
        yield from self.sections


class OmpCritical(Stmt):
    """``omp critical [(name)]`` — anonymous criticals share one global lock."""

    __slots__ = ("name", "body")

    def __init__(self, body: Block, name: str = "", loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        self.name = name
        self.body = body

    def children(self) -> Iterator[Node]:
        yield self.body


class OmpBarrier(Stmt):
    __slots__ = ()


class OmpSingle(Stmt):
    __slots__ = ("body", "nowait")

    def __init__(self, body: Block, nowait: bool = False, loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        self.body = body
        self.nowait = nowait

    def children(self) -> Iterator[Node]:
        yield self.body


class OmpMaster(Stmt):
    __slots__ = ("body",)

    def __init__(self, body: Block, loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        self.body = body

    def children(self) -> Iterator[Node]:
        yield self.body


class OmpAtomic(Stmt):
    """``omp atomic`` wrapping a single assignment statement."""

    __slots__ = ("stmt",)

    def __init__(self, stmt: Assign, loc: SourceLoc = NOLOC) -> None:
        super().__init__(loc)
        self.stmt = stmt

    def children(self) -> Iterator[Node]:
        yield self.stmt


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


class FuncDef(Node):
    __slots__ = ("name", "params", "body")

    def __init__(
        self, name: str, params: Sequence[str], body: Block, loc: SourceLoc = NOLOC
    ) -> None:
        super().__init__(loc)
        self.name = name
        self.params = list(params)
        self.body = body

    def children(self) -> Iterator[Node]:
        yield self.body


class Program(Node):
    """A whole mini-language translation unit."""

    __slots__ = ("name", "globals", "functions")

    def __init__(
        self,
        name: str,
        globals: Sequence[VarDecl] = (),
        functions: Sequence[FuncDef] = (),
        loc: SourceLoc = NOLOC,
    ) -> None:
        super().__init__(loc)
        self.name = name
        self.globals = list(globals)
        self.functions = list(functions)

    def children(self) -> Iterator[Node]:
        yield from self.globals
        yield from self.functions

    def function(self, name: str) -> FuncDef:
        """Return the function definition called *name*.

        Raises :class:`KeyError` if no such function exists.
        """
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r} in program {self.name!r}")

    @property
    def main(self) -> FuncDef:
        return self.function("main")


# Statement types that open an OpenMP parallel context.
OMP_DIRECTIVE_TYPES = (
    OmpParallel,
    OmpFor,
    OmpSections,
    OmpCritical,
    OmpBarrier,
    OmpSingle,
    OmpMaster,
    OmpAtomic,
)
