"""Command-line interface: ``home-check`` / ``python -m repro.cli``.

Subcommands
-----------

``check FILE``
    Run a checking tool (HOME by default) on a mini-language program.
``static FILE``
    Compile-time phase only: sites, warnings, dataflow facts,
    instrumented source; ``--json`` emits the full report as JSON.
``run FILE``
    Execute a program on the simulator without any checking.
``table1``
    Regenerate the paper's detection-count table.
``figure {4,5,6,7}``
    Regenerate one of the paper's figures as a text table.
``demo``
    Run HOME over the built-in case studies.
``campaign FILE``
    Multi-seed fault-injection campaign; ``--journal`` turns on the
    durable crash-safe service path.
``serve SPOOL``
    Durable campaign server over a spool directory of submissions.
``bench``
    Interpreter stepping-rate micro-benchmark (N reps, best-of), with
    JSON output compatible with ``BENCH_campaign.json`` so the CI
    regression gate (``benchmarks/check_campaign_regression.py``) can
    consume it directly.

Every execution subcommand takes ``--engine {ast,bytecode}``; the flag
is exported as ``REPRO_ENGINE`` so campaign worker processes inherit
it.  The two engines produce byte-identical traces (see
``docs/PERFORMANCE.md``).

Exit codes: 0 success, 1 findings/degraded, 2 usage or input error,
3 interrupted (SIGTERM/SIGINT landed and a partial result was saved).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from pathlib import Path
from typing import List, Optional

from . import errors
from .baselines import BaseRunner, IntelThreadChecker, Marmot
from .home import Home
from .minilang import parse, print_program, validate

TOOLS = {
    "home": Home,
    "marmot": Marmot,
    "itc": IntelThreadChecker,
    "base": BaseRunner,
}

#: a SIGTERM/SIGINT landed: the journal/checkpoint were flushed and a
#: partial report emitted before exiting
EXIT_INTERRUPTED = 3


def _graceful_stop_event() -> threading.Event:
    """Install SIGTERM/SIGINT handlers that request a graceful stop.

    The first signal sets the returned event; long-running commands
    poll it, finish or release in-flight work, flush their durable
    state (journal, checkpoint, partial report) and exit with
    :data:`EXIT_INTERRUPTED`.  A second SIGINT falls back to the
    default KeyboardInterrupt so an impatient operator can still bail.
    """
    stop = threading.Event()

    def handler(signum, frame):  # noqa: ARG001 - signal signature
        if stop.is_set() and signum == signal.SIGINT:
            raise KeyboardInterrupt
        stop.set()

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    return stop


def _load_program(path: str):
    source = Path(path).read_text()
    try:
        program = parse(source)
        validate(program)
    except errors.MiniLangError as err:
        err.path = path
        raise
    return program


#: valid ``--engine`` values (mirrors :data:`repro.runtime.config.ENGINES`;
#: kept literal here so ``--help`` doesn't import the runtime package)
_ENGINE_CHOICES = ("ast", "bytecode")


def _add_run_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--procs", type=int, default=2, help="MPI processes (default 2)")
    p.add_argument("--threads", type=int, default=2, help="OpenMP threads per process")
    p.add_argument("--seed", type=int, default=0, help="scheduler seed")
    _add_engine_arg(p)


def _add_engine_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--engine", choices=_ENGINE_CHOICES, default=None,
        help="execution engine: 'bytecode' (compiled dispatch loop, the "
             "default) or 'ast' (reference tree-walk); traces are "
             "byte-identical either way",
    )


def cmd_check(args: argparse.Namespace) -> int:
    source = Path(args.file).read_text()
    program = _load_program(args.file)
    tool = TOOLS[args.tool]()
    overrides = {}
    if args.thread_level_mode:
        overrides["thread_level_mode"] = args.thread_level_mode
    report = tool.check(
        program, nprocs=args.procs, num_threads=args.threads, seed=args.seed,
        **overrides,
    )
    if args.format == "json":
        from .violations.render import report_to_json

        print(report_to_json(report.violations))
        return 1 if len(report.violations) or report.deadlocked else 0
    if args.excerpts:
        from .violations.render import render_report

        print(f"=== {tool.name} on {program.name} ===")
        print(f"virtual execution time: {report.makespan:.0f}")
        print(render_report(report.violations, source=source,
                            with_fixes=args.fix_hints))
    else:
        print(report.summary())
    if args.fix_hints and len(report.violations):
        from .violations.fixes import suggest_fixes

        print()
        print("suggested fixes:")
        for suggestion in suggest_fixes(report.violations):
            print(f"  {suggestion}")
    if args.msg_races:
        from .analysis.dynamic_.msgrace import wildcard_races

        races = wildcard_races(report.execution.log)
        print()
        if races:
            print(f"{len(races)} nondeterministic message match(es) "
                  "(DAMPI-style analysis):")
            for race in races:
                print(f"  {race}")
        else:
            print("no nondeterministic message matches (DAMPI-style analysis)")
    if args.html:
        from .violations.html import report_to_html

        static_info = None
        if report.static is not None:
            static_info = {
                "declared thread level": report.static.thread_level.level_name,
                "MPI call sites": len(report.static.sites),
                "hybrid sites": len(report.static.hybrid_sites),
                "instrumented": report.static.instrumentation.n_instrumented,
                "filtered out": report.static.instrumentation.n_filtered,
                "static candidates": len(report.static.candidates),
            }
        page = report_to_html(
            report.violations,
            program_name=program.name,
            tool_name=tool.name,
            source=source,
            run_info={
                "processes": args.procs, "threads": args.threads,
                "seed": args.seed,
                "virtual time": f"{report.makespan:.0f}",
            },
            static_info=static_info,
        )
        Path(args.html).write_text(page)
        print(f"HTML report written to {args.html}")
    if args.save_trace:
        from .events.serialize import dump_log

        dump_log(
            report.execution.log, args.save_trace,
            metadata={
                "program": program.name, "tool": tool.name,
                "procs": args.procs, "threads": args.threads,
                "seed": args.seed,
            },
        )
        print(f"trace written to {args.save_trace}")
    if args.verbose:
        for warning in report.extras.get("static_warnings", []):
            print(f"  {warning}")
        for note in report.execution.notes:
            print(f"  note: {note}")
        if report.extras.get("monitored_vars"):
            from .violations.render import render_race_triage

            print("  race-directed monitoring: "
                  + ", ".join(report.extras["monitored_vars"]))
            print(render_race_triage(report.extras["race_triage"]))
        if report.extras.get("divergence_triage"):
            from .violations.render import render_divergence_triage

            print(render_divergence_triage(report.extras["divergence_triage"]))
    return 1 if len(report.violations) or report.deadlocked else 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Offline re-analysis of a saved trace."""
    from .analysis.dynamic_.hybrid import DetectorConfig, analyze
    from .events.serialize import load_log
    from .violations import match_violations

    log, meta = load_log(args.trace)
    detector = DetectorConfig(
        use_lockset=not args.no_lockset,
        use_hb=not args.no_hb,
        lock_edges=not args.no_lock_edges,
    )
    reports = analyze(log, detector)
    violations = match_violations(log, reports)
    if meta:
        origin = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        print(f"trace: {origin}")
    print(f"events: {len(log)}")
    print(violations.summary())
    return 1 if len(violations) else 0


def cmd_fix(args: argparse.Namespace) -> int:
    """Check, auto-repair (serializing critical), verify, write result."""
    from .minilang import print_program
    from .violations.fixes import repair_and_verify, suggest_fixes

    program = _load_program(args.file)
    before, repair, after = repair_and_verify(
        program, nprocs=args.procs, num_threads=args.threads, seed=args.seed
    )
    print(f"before: {len(before.violations)} finding(s)")
    for v in before.violations:
        print(f"  {v}")
    if not len(before.violations):
        print("nothing to fix")
        return 0
    print(f"repair: wrapped {repair.wrapped_statements} statement(s) in "
          f"omp critical (home_repair); classes: "
          f"{', '.join(repair.targeted_classes) or '<none repairable>'}")
    print(f"after:  {len(after.violations)} finding(s)")
    for v in after.violations:
        print(f"  {v}")
    remaining = set(after.violations.classes()) & set(repair.targeted_classes)
    if remaining:
        print(f"WARNING: repair did not clear: {', '.join(sorted(remaining))}")
    if after.violations.classes():
        print("remaining findings need structural fixes:")
        for suggestion in suggest_fixes(after.violations):
            print(f"  {suggestion}")
    if args.output:
        Path(args.output).write_text(print_program(repair.program))
        print(f"repaired program written to {args.output}")
    return 0 if not remaining else 1


def cmd_static(args: argparse.Namespace) -> int:
    from .analysis.static_ import run_static_analysis

    program = _load_program(args.file)
    report = run_static_analysis(
        program,
        dataflow=not args.no_dataflow,
        races=not args.no_races,
        collectives=not args.no_collectives,
        summaries=not args.no_summaries,
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
        return 1 if report.warnings else 0
    print(report.summary())
    prunes = report.prune_counts()
    if prunes:
        print("prune counters:")
        for kind, count in sorted(prunes.items()):
            print(f"  {kind}: {count}")
    if report.races is not None and report.races.candidates:
        from .violations.render import render_race_candidates

        print()
        print(render_race_candidates(
            report.races.candidates, source=Path(args.file).read_text()
        ))
    if report.collectives is not None and report.collectives.candidates:
        from .violations.render import render_divergence_candidates

        print()
        print(render_divergence_candidates(
            report.collectives.candidates, source=Path(args.file).read_text()
        ))
    facts = report.dataflow_facts
    if facts is not None and facts.envelopes:
        print("dataflow facts (per site):")
        by_nid = {s.nid: s for s in report.sites}
        for nid, env in sorted(facts.envelopes.items()):
            site = by_nid.get(nid)
            where = f"{site.op}@{site.func}:{site.loc}" if site else f"nid {nid}"
            held = facts.locks_held.get(nid)
            lock_note = f" holds {{{', '.join(sorted(held))}}}" if held else ""
            print(f"  {where}: envelope {env}{lock_note}")
    if args.dump:
        print("\n// ---- instrumented program ----")
        print(print_program(report.instrumented_program))
    return 1 if report.warnings else 0


def cmd_run(args: argparse.Namespace) -> int:
    from .runtime import run_program
    from .runtime.scheduler import DEFAULT_MAX_STEPS

    program = _load_program(args.file)
    result = run_program(
        program,
        nprocs=args.procs,
        num_threads=args.threads,
        seed=args.seed,
        max_steps=args.max_steps or DEFAULT_MAX_STEPS,
        max_wall_seconds=args.max_wall_seconds or 0.0,
        thread_level_mode="permissive" if args.permissive else "skip",
    )
    for proc, thread, text in result.outputs:
        print(f"[rank {proc}.t{thread}] {text}")
    print(result.summary())
    if result.deadlocked:
        print(result.deadlock.summary())
        return 2
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Hardened multi-seed fault-injection campaign."""
    from .campaign import CampaignConfig, default_plan_matrix, run_campaign
    from .runtime.scheduler import DEFAULT_MAX_STEPS

    if bool(args.file) == bool(args.npb):
        print("error: give either FILE or --npb, not both / neither",
              file=sys.stderr)
        return 2
    if args.npb == "div":
        from .workloads.npb import build_divergent_npb

        program = build_divergent_npb(fixed=args.clean)
    elif args.npb == "ip":
        from .workloads.npb import build_interproc_npb

        program = build_interproc_npb(fixed=args.clean)
    elif args.npb:
        from .workloads.npb import BENCHMARKS

        program = BENCHMARKS[args.npb](inject=not args.clean)
    else:
        program = _load_program(args.file)
    try:
        plans = default_plan_matrix(
            args.procs, [p.strip() for p in args.plans.split(",") if p.strip()]
        )
    except KeyError as err:
        print(f"error: {err.args[0]}", file=sys.stderr)
        return 2
    jobs = args.jobs
    if jobs != "auto":
        try:
            jobs = int(jobs)
            if jobs < 1:
                raise ValueError
        except ValueError:
            print(f"error: --jobs must be a positive integer or 'auto', "
                  f"got {args.jobs!r}", file=sys.stderr)
            return 2
    config = CampaignConfig(
        seeds=range(args.seeds),
        plans=plans,
        nprocs=args.procs,
        num_threads=args.threads,
        budget_steps=args.budget_steps or DEFAULT_MAX_STEPS,
        budget_seconds=args.budget_seconds,
        retries=args.retries,
        thread_level_mode=args.thread_level_mode or "permissive",
        checkpoint=args.checkpoint,
        resume=args.resume,
        force_fail=args.force_fail,
        jobs=jobs,
        record_timing=not args.no_timing,
        journal=args.journal,
        lease_seconds=args.lease_seconds,
        poison_retries=args.poison_retries,
        drill_kill_worker_after=args.drill_kill_worker,
        drill_abort_after=args.drill_abort_after,
    )
    progress = print if args.verbose else None
    stop = _graceful_stop_event()
    result = run_campaign(program, config, progress=progress, stop=stop)
    print(result.summary())
    if args.json:
        Path(args.json).write_text(json.dumps(result.as_dict(), indent=2) + "\n")
        print(f"campaign report written to {args.json}")
    if result.interrupted:
        print("campaign interrupted: partial state saved; rerun with "
              "--resume to continue", file=sys.stderr)
        return EXIT_INTERRUPTED
    return 1 if result.degraded else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Durable campaign server over a spool directory."""
    from .campaign import CampaignService, ServeConfig

    jobs = args.jobs
    if jobs != "auto":
        try:
            jobs = int(jobs)
            if jobs < 1:
                raise ValueError
        except ValueError:
            print(f"error: --jobs must be a positive integer or 'auto', "
                  f"got {args.jobs!r}", file=sys.stderr)
            return 2
    stop = _graceful_stop_event()
    service = CampaignService(
        ServeConfig(
            spool=args.spool,
            jobs=jobs,
            poll_seconds=args.poll_seconds,
            once=args.once,
        ),
        progress=print if args.verbose else None,
        stop=stop,
    )
    interrupted = service.run()
    print(f"serve: {service.processed} submission(s) completed, "
          f"{service.failed} rejected")
    if interrupted:
        print("serve interrupted: in-flight submissions stay in active/ "
              "and resume on the next start", file=sys.stderr)
        return EXIT_INTERRUPTED
    return 1 if service.failed else 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Corpus-scale differential fuzzing over generated programs."""
    from .fuzz import GeneratorConfig, FuzzConfig, ORACLES, run_fuzz
    from .fuzz.oracles import INJECT_KINDS

    oracle_names = tuple(
        name.strip() for name in args.oracles.split(",") if name.strip()
    )
    unknown = [name for name in oracle_names if name not in ORACLES]
    if unknown:
        print(
            f"error: unknown oracle(s): {', '.join(unknown)} "
            f"(available: {', '.join(ORACLES)})",
            file=sys.stderr,
        )
        return 2
    if args.inject is not None and args.inject not in INJECT_KINDS:
        print(
            f"error: unknown --inject kind {args.inject!r} "
            f"(available: {', '.join(INJECT_KINDS)})",
            file=sys.stderr,
        )
        return 2
    jobs = args.jobs
    if jobs != "auto":
        try:
            jobs = int(jobs)
            if jobs < 1:
                raise ValueError
        except ValueError:
            print(f"error: --jobs must be a positive integer or 'auto', "
                  f"got {args.jobs!r}", file=sys.stderr)
            return 2
    generator = GeneratorConfig()
    if args.max_stmts is not None:
        if args.max_stmts < 2:
            print("error: --max-stmts must be >= 2", file=sys.stderr)
            return 2
        generator = GeneratorConfig(max_stmts=args.max_stmts)
    config = FuzzConfig(
        seeds=args.seeds,
        seed_base=args.seed_base,
        oracles=oracle_names,
        generator=generator,
        nprocs=args.procs,
        num_threads=args.threads,
        max_steps=args.budget_steps,
        max_wall_seconds=args.budget_seconds,
        jobs_every=args.jobs_oracle_every,
        inject=args.inject,
        reduce=not args.no_reduce,
        jobs=jobs,
        journal=args.journal,
        resume=args.resume,
        lease_seconds=args.lease_seconds,
        poison_retries=args.poison_retries,
    )
    progress = print if args.verbose else None
    stop = _graceful_stop_event()
    report = run_fuzz(config, progress=progress, stop=stop)
    print(report.summary())
    if args.report:
        Path(args.report).write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"fuzz report written to {args.report}")
    if args.corpus:
        from .fuzz import generate_source

        corpus = Path(args.corpus)
        corpus.mkdir(parents=True, exist_ok=True)
        for i in range(config.seeds):
            seed = config.seed_base + i
            (corpus / f"seed-{seed:05d}.mini").write_text(
                generate_source(seed, config.generator)
            )
        written = config.seeds
        for entry in report.bank.entries.values():
            if entry.reduced_source is None:
                continue
            slug = str(entry.signature).replace(":", "_").replace("/", "_")
            (corpus / f"reduced-{slug}.mini").write_text(entry.reduced_source)
            written += 1
        print(f"{written} program(s) written to {corpus}/")
    if report.interrupted:
        print("fuzz interrupted: partial results reported; rerun with "
              "--journal + --resume for exact continuation", file=sys.stderr)
        return EXIT_INTERRUPTED
    return 0 if report.clean else 1


def cmd_bench(args: argparse.Namespace) -> int:
    """Local stepping-rate micro-bench: best-of-N per engine.

    The JSON written by ``--json`` carries the same ``stepping_rate``
    key as the CI benchmark session's ``BENCH_campaign.json``, so
    ``benchmarks/check_campaign_regression.py`` accepts either file.
    """
    import time

    from .runtime import RunConfig, make_interpreter
    from .workloads.npb import BENCHMARKS

    if args.reps < 1:
        print("error: --reps must be >= 1", file=sys.stderr)
        return 2
    program = BENCHMARKS[args.npb](inject=False)
    engines = _ENGINE_CHOICES if args.engine == "both" else (args.engine,)
    best = {}
    steps = {}
    for engine in engines:
        config = RunConfig(
            nprocs=args.procs, num_threads=args.threads, seed=args.seed,
            engine=engine,
        )
        rate = 0.0
        for _ in range(args.reps):
            start = time.perf_counter()
            result = make_interpreter(program, config).run()
            elapsed = time.perf_counter() - start
            steps[engine] = result.stats["scheduler_steps"]
            rate = max(rate, steps[engine] / elapsed)
        best[engine] = rate
        print(f"{engine:>8}: {rate:>12,.0f} steps/s  "
              f"({steps[engine]} steps, best of {args.reps})")
    # the gated number is the default engine's rate when both were run
    primary = "bytecode" if "bytecode" in best else args.engine
    out = {
        "benchmark": args.npb,
        "nprocs": args.procs,
        "num_threads": args.threads,
        "seed": args.seed,
        "reps": args.reps,
        "engine": primary,
        "scheduler_steps": steps[primary],
        "stepping_rate": round(best[primary], 1),
    }
    if len(best) == 2:
        speedup = best["bytecode"] / best["ast"]
        out["stepping_rate_ast"] = round(best["ast"], 1)
        out["vm_speedup"] = round(speedup, 2)
        print(f"bytecode vs ast: {speedup:.2f}x")
        if steps["ast"] != steps["bytecode"]:
            print(f"error: engines disagree on step count "
                  f"(ast={steps['ast']}, bytecode={steps['bytecode']})",
                  file=sys.stderr)
            return 1
    if args.json:
        Path(args.json).write_text(json.dumps(out, indent=2,
                                              sort_keys=True) + "\n")
        print(f"bench stats written to {args.json}")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from .experiments import run_table1, table1_data

    cells = run_table1(nprocs=args.procs, threads=args.threads, seed=args.seed)
    print(table1_data(cells).render())
    mismatches = [c for c in cells.values() if not c.matches_paper]
    if mismatches:
        for c in mismatches:
            print(
                f"MISMATCH: {c.benchmark}/{c.tool} scored {c.score}, "
                f"paper reports {c.paper_value}"
            )
        return 1
    print("all cells match the paper's reported counts")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    from .experiments import execution_time_figure, overhead_figure

    procs = args.proc_list or [2, 4, 8, 16, 32, 64]
    if args.number == 7:
        fig = overhead_figure(procs=procs, seed=args.seed)
        print(fig.render(fmt="{:.0f}%"))
    else:
        benchmark = {4: "lu", 5: "bt", 6: "sp"}[args.number]
        fig = execution_time_figure(benchmark, procs=procs, seed=args.seed)
        print(fig.render())
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """Regenerate the paper's whole evaluation in one command."""
    from .experiments import (
        overhead_band,
        overhead_figure,
        execution_time_figure,
        run_table1,
        table1_data,
    )

    procs = (2, 4, 8) if args.quick else (2, 4, 8, 16, 32, 64)
    print("=" * 68)
    print("Table 1 — detected violations")
    print("=" * 68)
    cells = run_table1(seed=args.seed)
    print(table1_data(cells).render())
    mismatch = [c for c in cells.values() if not c.matches_paper]
    print("-> all cells match the paper" if not mismatch
          else f"-> {len(mismatch)} cell(s) mismatch the paper")
    for number, benchmark in ((4, "lu"), (5, "bt"), (6, "sp")):
        print()
        print("=" * 68)
        print(f"Figure {number} — {benchmark.upper()}-MZ execution time")
        print("=" * 68)
        print(execution_time_figure(benchmark, procs=procs, seed=args.seed).render())
    print()
    print("=" * 68)
    print("Figure 7 — average overhead")
    print("=" * 68)
    fig7 = overhead_figure(procs=procs, seed=args.seed)
    print(fig7.render(fmt="{:.0f}%"))
    print()
    for tool, paper in (("HOME", "16-45%"), ("MARMOT", "15-56%"),
                        ("ITC", "up to ~200%")):
        lo, hi = overhead_band(fig7, tool)
        print(f"{tool:7s} reproduced {lo:.0f}%-{hi:.0f}%   (paper: {paper})")
    return 0 if not mismatch else 1


def cmd_demo(args: argparse.Namespace) -> int:
    from .workloads.case_studies import (
        case_study_1,
        case_study_2,
        case_study_2_fixed,
        safe_funneled,
    )

    for builder in (case_study_1, case_study_2, case_study_2_fixed, safe_funneled):
        program = builder()
        report = Home().check(program, nprocs=2, num_threads=2, seed=args.seed)
        print("=" * 64)
        print(report.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="home-check",
        description="HOME: thread-safety checking for hybrid MPI/OpenMP programs "
        "(CLUSTER 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="run a checking tool on a program")
    p.add_argument("file")
    p.add_argument("--tool", choices=sorted(TOOLS), default="home")
    p.add_argument("-v", "--verbose", action="store_true")
    p.add_argument("--fix-hints", action="store_true",
                   help="print remediation suggestions for findings")
    p.add_argument("--save-trace", metavar="PATH",
                   help="save the execution's event trace as JSON lines")
    p.add_argument("--excerpts", action="store_true",
                   help="show source excerpts at each finding")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--html", metavar="PATH",
                   help="write a standalone HTML report")
    p.add_argument("--msg-races", action="store_true",
                   help="also report nondeterministic message matches "
                        "(DAMPI-style wildcard-receive analysis)")
    p.add_argument(
        "--thread-level-mode", choices=("skip", "permissive", "strict"),
        default=None,
        help="how breaching MPI calls behave (default: the tool's own "
             "mode, permissive for all shipped tools)",
    )
    _add_run_args(p)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("analyze", help="re-analyze a saved event trace")
    p.add_argument("trace")
    p.add_argument("--no-lockset", action="store_true")
    p.add_argument("--no-hb", action="store_true")
    p.add_argument("--no-lock-edges", action="store_true")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "fix", help="auto-repair concurrency findings (serializing critical)"
    )
    p.add_argument("file")
    p.add_argument("-o", "--output", metavar="PATH",
                   help="write the repaired program here")
    _add_run_args(p)
    p.set_defaults(func=cmd_fix)

    p = sub.add_parser("static", help="compile-time analysis only")
    p.add_argument("file")
    p.add_argument("--dump", action="store_true", help="print the instrumented source")
    p.add_argument("--json", action="store_true", help="emit the full report as JSON")
    p.add_argument(
        "--no-dataflow",
        action="store_true",
        help="skip the worklist dataflow analyses (envelope/lock/MHP pruning)",
    )
    p.add_argument(
        "--no-races",
        action="store_true",
        help="skip the static data-race pass",
    )
    p.add_argument(
        "--no-collectives",
        action="store_true",
        help="skip the static collective-matching / barrier-divergence pass",
    )
    p.add_argument(
        "--no-summaries",
        action="store_true",
        help="skip the context-sensitive interprocedural summary layer",
    )
    p.set_defaults(func=cmd_static)

    p = sub.add_parser("run", help="execute a program without checking")
    p.add_argument("file")
    p.add_argument(
        "--permissive",
        action="store_true",
        help="execute thread-level-breaching MPI calls instead of skipping them",
    )
    p.add_argument("--max-steps", type=int, default=None,
                   help="scheduler step budget; exhausting it exits 2 with "
                        "a one-line step-limit diagnostic")
    p.add_argument("--max-wall-seconds", type=float, default=None,
                   help="wall-clock budget in seconds; exhausting it exits "
                        "2 with a one-line wall-clock diagnostic")
    _add_run_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "campaign",
        help="multi-seed fault-injection campaign with crash isolation",
    )
    p.add_argument("file", nargs="?", default=None,
                   help="mini-language program (or use --npb)")
    p.add_argument("--npb", choices=("lu", "bt", "sp", "ft", "div", "ip"),
                   help="campaign over a built-in NPB multi-zone variant "
                        "(ft = the fault-tolerant error-path pair, "
                        "div = the collective-divergence pair, "
                        "ip = the interprocedural helper-chain pair)")
    p.add_argument("--clean", action="store_true",
                   help="with --npb: use the violation-free variant")
    p.add_argument("--seeds", type=int, default=4,
                   help="number of scheduler seeds (0..N-1, default 4)")
    p.add_argument("--plans", default="none,downgrade,crash",
                   help="comma-separated builtin fault plans "
                        "(none,downgrade,crash,delay,reorder,rendezvous,jitter)")
    p.add_argument("--budget-steps", type=int, default=None,
                   help="per-run scheduler step budget")
    p.add_argument("--budget-seconds", type=float, default=0.0,
                   help="per-run host wall-clock budget (0 = unlimited)")
    p.add_argument("--retries", type=int, default=1,
                   help="retry attempts per failed run (default 1)")
    p.add_argument("--checkpoint", metavar="PATH",
                   help="JSON checkpoint written after every run")
    p.add_argument("--resume", action="store_true",
                   help="reuse finished runs from --checkpoint")
    p.add_argument("--force-fail", action="store_true",
                   help="degradation drill: fail every dynamic run")
    p.add_argument("--jobs", default="auto", metavar="N",
                   help="parallel cell worker processes (positive int or "
                        "'auto' = one per CPU core; 1 = serial; default "
                        "auto).  The merged report, checkpoint and exit "
                        "code are identical for every worker count")
    p.add_argument("--no-timing", action="store_true",
                   help="zero the wall_seconds fields so report/checkpoint "
                        "files are bit-exact across repeated runs")
    p.add_argument("--journal", metavar="PATH",
                   help="append-only crash journal; turns on the durable "
                        "service path (supervised workers, lease reclaim, "
                        "poison-cell quarantine) and makes --resume exact "
                        "even after kill -9")
    p.add_argument("--lease-seconds", type=float, default=60.0,
                   help="durable path: seconds a cell may run without a "
                        "heartbeat before its worker is presumed dead "
                        "(default 60)")
    p.add_argument("--poison-retries", type=int, default=2,
                   help="durable path: crash-reclaims a cell survives "
                        "before quarantine (default 2)")
    p.add_argument("--drill-kill-worker", type=int, default=None,
                   metavar="N",
                   help="chaos drill: SIGKILL one busy worker after the "
                        "Nth completed cell (durable path, jobs > 1)")
    p.add_argument("--drill-abort-after", type=int, default=None,
                   metavar="N",
                   help="chaos drill: hard-kill the coordinator (exit 137) "
                        "after the Nth fresh cell (durable path)")
    p.add_argument("--json", metavar="PATH",
                   help="write the merged campaign report as JSON")
    p.add_argument(
        "--thread-level-mode", choices=("skip", "permissive", "strict"),
        default=None,
    )
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print per-run progress lines")
    p.add_argument("--procs", type=int, default=2)
    p.add_argument("--threads", type=int, default=2)
    _add_engine_arg(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "serve",
        help="durable campaign server over a spool directory",
    )
    p.add_argument("spool",
                   help="spool directory (incoming/active/reports/done/"
                        "failed are created under it)")
    p.add_argument("--jobs", default=1, metavar="N",
                   help="default worker count for submissions that don't "
                        "set one (positive int or 'auto'; default 1)")
    p.add_argument("--once", action="store_true",
                   help="drain the spool once and exit instead of watching")
    p.add_argument("--poll-seconds", type=float, default=0.5,
                   help="incoming/ scan period (default 0.5)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print per-submission progress lines")
    _add_engine_arg(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "fuzz",
        help="corpus-scale differential fuzzing (generated programs, "
             "cross-engine/cross-tool oracles, triage + reduction)",
    )
    p.add_argument("--seeds", type=int, default=100, metavar="N",
                   help="number of generated programs (default 100); "
                        "generator seeds are SEED_BASE..SEED_BASE+N-1")
    p.add_argument("--seed-base", type=int, default=0,
                   help="first generator seed (default 0); together with "
                        "the grammar version this makes every program "
                        "bit-reproducible")
    p.add_argument("--oracles", default="engine,jobs,narrowing,coherence",
                   help="comma-separated differential oracles to run "
                        "(default: all four)")
    p.add_argument("--corpus", metavar="DIR",
                   help="write every generated program (plus reduced "
                        "reproducers) under DIR as .mini sources")
    p.add_argument("--report", metavar="PATH",
                   help="write the LLOV-style JSON fuzz report to PATH")
    p.add_argument("--no-reduce", action="store_true",
                   help="skip automatic delta-debugging of reproducers")
    p.add_argument("--max-stmts", type=int, default=None,
                   help="generator size budget per program (default 14)")
    p.add_argument("--budget-steps", type=int, default=200_000,
                   help="per-run scheduler step budget (default 200000)")
    p.add_argument("--budget-seconds", type=float, default=20.0,
                   help="per-run wall-clock budget in seconds (default 20)")
    p.add_argument("--jobs-oracle-every", type=int, default=25, metavar="N",
                   help="run the (expensive) jobs oracle on every Nth "
                        "program (default 25; skips are counted in the "
                        "report, never silent)")
    p.add_argument("--inject", default=None, metavar="KIND",
                   help="drill hook: inject a synthetic failure "
                        "('engine-divergence') to exercise triage + "
                        "reduction end-to-end")
    p.add_argument("--jobs", default=1, metavar="N",
                   help="parallel fuzz-cell workers (positive int or "
                        "'auto'; default 1)")
    p.add_argument("--journal", metavar="PATH",
                   help="append-only journal; turns on the durable "
                        "campaign-service path (leases, supervised "
                        "workers, poison-program quarantine)")
    p.add_argument("--resume", action="store_true",
                   help="resume a journaled fuzz session")
    p.add_argument("--lease-seconds", type=float, default=60.0,
                   help="durable path: worker heartbeat lease (default 60)")
    p.add_argument("--poison-retries", type=int, default=2,
                   help="durable path: crash-reclaims before a generated "
                        "program is quarantined as poison (default 2)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print per-program progress lines")
    p.add_argument("--procs", type=int, default=2)
    p.add_argument("--threads", type=int, default=2)
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "bench",
        help="interpreter stepping-rate micro-benchmark (best-of-N)",
    )
    p.add_argument("--npb", choices=("lu", "bt", "sp"), default="lu",
                   help="NPB multi-zone workload to step (default lu; "
                        "always the fault-free variant)")
    p.add_argument("--reps", type=int, default=3,
                   help="timed repetitions per engine; the best rate is "
                        "reported (default 3)")
    p.add_argument("--engine", choices=_ENGINE_CHOICES + ("both",),
                   default="both",
                   help="engine(s) to time (default both, printing the "
                        "bytecode-over-ast speedup)")
    p.add_argument("--procs", type=int, default=2)
    p.add_argument("--threads", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", metavar="PATH",
                   help="write stats JSON compatible with "
                        "BENCH_campaign.json (stepping_rate key)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("table1", help="regenerate the detection-count table")
    _add_run_args(p)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("number", type=int, choices=(4, 5, 6, 7))
    p.add_argument(
        "--proc-list", type=int, nargs="+", default=None,
        help="process counts to sweep (default: 2 4 8 16 32 64)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser(
        "reproduce", help="regenerate the paper's full evaluation"
    )
    p.add_argument("--quick", action="store_true",
                   help="sweep only 2/4/8 processes")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_reproduce)

    p = sub.add_parser("demo", help="run HOME over the built-in case studies")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_demo)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    engine = getattr(args, "engine", None)
    if engine in _ENGINE_CHOICES:
        # export rather than thread through call sites: RunConfig's
        # default engine reads the env, so campaign/serve worker
        # *processes* inherit the choice too
        os.environ["REPRO_ENGINE"] = engine
    try:
        return args.func(args)
    except errors.MiniLangError as err:
        path = getattr(err, "path", None)
        if path is not None:
            # compiler-style one-liner: file:line:col: error: message
            print(f"{path}:{err.line}:{err.col}: error: {err.bare}",
                  file=sys.stderr)
        else:
            print(f"error: {err}", file=sys.stderr)
        return 2
    except errors.ReproError as err:
        # every typed SimError-family diagnostic (runtime budgets, MPI
        # usage, analysis failures...) exits 2 as one line — raw Python
        # tracebacks never escape for malformed or pathological inputs
        print(f"error: {err}", file=sys.stderr)
        return 2
    except RecursionError:
        print("error: program exceeds the interpreter recursion limit",
              file=sys.stderr)
        return 2
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # output piped into a pager/head that exited early
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
