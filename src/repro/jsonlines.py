"""Shared JSON-lines salvage: one tail-truncation policy for all logs.

Two subsystems write append-only JSON-lines files that a dying process
can leave cut mid-record: event traces (:mod:`repro.events.serialize`)
and the durable campaign journal (:mod:`repro.campaign.journal`).  Both
must agree on what a damaged tail means, so the policy lives here,
once:

* every line **before** the first undecodable line is trusted;
* the first undecodable line and **everything after it** are suspect
  and dropped — a partial write tells us nothing about whether later
  bytes belong to this file's history or to a torn page.

Callers pick strictness themselves: raise on truncation (a trace the
user asked to analyze verbatim) or salvage the valid prefix (a journal
being replayed after ``kill -9``).  A truncation report carries the byte
offset of the first corrupt record so operators can inspect (or
``truncate(2)``) the damaged file without re-deriving the position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, TextIO, Tuple

from .errors import AnalysisError


@dataclass(frozen=True)
class TailTruncation:
    """Where and why decoding stopped before end-of-file."""

    #: line number (1-based, in the caller's numbering) of the first
    #: undecodable line
    lineno: int
    #: lines dropped: the undecodable line plus everything after it
    dropped: int
    #: the decode failure, as text
    error: str
    #: byte offset (from the caller's ``start_offset``) where the first
    #: undecodable line begins; -1 when the caller didn't track offsets
    byte_offset: int = -1


def read_json_lines(
    fh: TextIO,
    decode: Callable[[str], Any],
    start_lineno: int = 1,
    start_offset: int = 0,
) -> Tuple[List[Any], Optional[TailTruncation]]:
    """Decode *fh* line by line until EOF or the first bad line.

    *decode* turns one non-blank line into a record; raising
    :class:`ValueError` (``json.JSONDecodeError`` included) or
    :class:`~repro.errors.AnalysisError` marks the line undecodable.
    Blank lines are skipped.  Returns ``(records, truncation)`` where
    *truncation* is ``None`` for a clean file.

    *start_offset* is the byte position of the first line handed to this
    call (a caller that already consumed a header passes its encoded
    length); offsets are accumulated in UTF-8 bytes so the reported
    position matches what ``seek``/``truncate`` on the binary file mean.
    """
    records: List[Any] = []
    offset = start_offset
    for lineno, raw in enumerate(fh, start=start_lineno):
        line = raw.strip()
        if not line:
            offset += len(raw.encode("utf-8"))
            continue
        try:
            records.append(decode(line))
        except (ValueError, AnalysisError) as err:
            # the bad line plus the unread remainder are all suspect
            dropped = 1 + sum(1 for _ in fh)
            return records, TailTruncation(
                lineno=lineno, dropped=dropped, error=str(err),
                byte_offset=offset,
            )
        offset += len(raw.encode("utf-8"))
    return records, None
