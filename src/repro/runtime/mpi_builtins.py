"""MPI builtin implementations for the interpreter.

Every handler has the signature::

    handler(interp, ctx, node, args, instrumented) -> generator -> value

``instrumented=True`` means the call site was rewritten by HOME's static
pass into an ``hmpi_*`` wrapper: the handler then charges the wrapper
overhead and writes the monitored variables (srctmp, tagtmp, commtmp,
requesttmp, collectivetmp, finalizetmp) *before* performing the real
operation — exactly the paper's Listing 1-6 wrapper structure.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..errors import MPIUsageError, RankCrashFault, SimAbort
from ..events import ErrorHandlerEvent, FaultEvent, MonitoredWrite, MPICall, MPIErrorEvent
from ..faults.injector import kill_worker_process
from ..events.event import MonitoredKind
from ..events.intern import intern_loc
from ..mpi.collectives import apply_reduce
from ..mpi.constants import (
    MPI_THREAD_FUNNELED,
    MPI_THREAD_SERIALIZED,
    MPI_THREAD_SINGLE,
    THREAD_LEVEL_NAMES,
)
from ..mpi.errors import (
    MPI_ERR_PROC_FAILED,
    MPI_ERR_REVOKED,
    MPI_ERR_TIMEOUT,
    MPI_ERRORS_ARE_FATAL,
    MPI_ERRORS_RETURN,
    MPI_SUCCESS,
    error_string,
)
from ..mpi.ftmpi import RetryPolicy
from ..mpi.requests import Request
from .scheduler import Block, Step
from .values import ArrayValue, as_int

Gen = Generator


def _loc(node) -> str:
    return intern_loc(node.loc)


def _payload(buf: Any, count: int) -> np.ndarray:
    """Snapshot a send buffer (array slice or scalar) into a payload."""
    if isinstance(buf, ArrayValue):
        snap = buf.snapshot()
        return snap[: count if count > 0 else len(snap)]
    if isinstance(buf, (int, float, bool)):
        return np.asarray([float(buf)])
    raise SimAbort(f"cannot send value of type {type(buf).__name__}")


def _deliver(buf: Any, payload: np.ndarray, count: int) -> None:
    if isinstance(buf, ArrayValue):
        buf.load(payload, count if count > 0 else None)
    # Scalar receive buffers have value semantics in the mini language;
    # callers use the return value instead.


class _CallInfo:
    """Per-invocation bookkeeping shared by the helpers below."""

    __slots__ = ("call_id", "skipped")

    def __init__(self, call_id: int, skipped: bool) -> None:
        self.call_id = call_id
        self.skipped = skipped


def _prologue(
    interp, ctx, node, op: str, instrumented: bool,
    monitored: List[Tuple[MonitoredKind, Any]],
    args_dict: Dict[str, Any],
) -> _CallInfo:
    """Wrapper writes, manager round trip, thread-level gate, begin event."""
    _crash_gate(interp, ctx, op)
    charge = interp.charge_cfg
    call_id = interp.next_call_id()
    if instrumented:
        ctx.charge(charge.wrapper_cost)
        if monitored:
            # Build all monitored-variable writes locally and land them
            # with one batched append.  Each write is charged *before*
            # its event is stamped, so the per-event virtual times match
            # one-at-a-time emission exactly.
            log = interp.log
            rank = ctx.proc.rank
            tid = ctx.tid
            loc = _loc(node)
            batch = []
            for kind, value in monitored:
                ctx.charge(charge.monitored_event_cost)
                batch.append(
                    MonitoredWrite(
                        proc=rank, thread=tid, seq=log.next_seq(),
                        time=ctx.clock, kind=kind, value=value, mpi_op=op,
                        callsite=node.nid, loc=loc, call_id=call_id,
                    )
                )
            interp.emit_batch(batch)
    skipped = not _thread_level_gate(interp, ctx, op)
    args = dict(args_dict)
    if skipped:
        args["skipped"] = True
    interp.emit(
        MPICall, ctx,
        op=op, phase="begin", call_id=call_id, callsite=node.nid, loc=_loc(node),
        is_main_thread=ctx.is_main_thread, instrumented=instrumented, args=args,
    )
    if not skipped:
        ctx.proc.mpi.calls_in_flight += 1
    return _CallInfo(call_id, skipped)


def _epilogue(interp, ctx, node, op: str, info: _CallInfo, instrumented: bool,
              args_dict: Optional[Dict[str, Any]] = None) -> None:
    if not info.skipped:
        ctx.proc.mpi.calls_in_flight -= 1
    interp.emit(
        MPICall, ctx,
        op=op, phase="end", call_id=info.call_id, callsite=node.nid, loc=_loc(node),
        is_main_thread=ctx.is_main_thread, instrumented=instrumented,
        args=dict(args_dict or {}),
    )
    # Marmot-style central manager: every MPI call reports to a single
    # analysis process *after* completing (a PMPI post-hook).  The
    # manager is a shared resource serving the whole job, so the
    # expected queueing delay per report grows with the number of
    # processes feeding it — the source of Marmot's poor scaling.
    charge = interp.charge_cfg
    if charge.manager_rtt:
        delay = charge.manager_rtt
        if charge.manager_serializes:
            delay += charge.manager_service * interp.config.nprocs
        ctx.charge(delay)
        interp.world.manager_free_at = max(interp.world.manager_free_at, ctx.clock)


def _crash_gate(interp, ctx, op: str) -> None:
    """Injected rank-crash (MPI_Abort model): the victim rank dies at
    its Nth MPI call and every later MPI call from any of its threads
    fails immediately — the rank is gone."""
    faults = interp.faults
    if not faults.enabled:
        return
    rank = ctx.proc.rank
    if faults.crashed(rank):
        raise RankCrashFault(
            f"rank {rank}: {op} on dead rank (earlier injected crash)"
        )
    spec = faults.on_mpi_call(rank)
    if spec is not None:
        detail = (
            f"rank {rank} crashed (injected MPI_Abort) at MPI call "
            f"#{spec.at_call} ({op})"
        )
        ctx.proc.mpi.crashed = True
        interp.world.ft.mark_failed(rank)
        interp.faults.record(spec, rank, detail)
        interp.emit(FaultEvent, ctx, kind=spec.kind, detail=detail, op=op)
        interp.note(f"fault injected: {detail}")
        raise RankCrashFault(detail)
    spec = faults.worker_kill_due(rank)
    if spec is not None:
        # poison-cell drill: SIGKILL the hosting worker process (or, in
        # a non-disposable process, unwind as an ordinary cell error)
        detail = (
            f"worker-kill drill at rank {rank}'s MPI call "
            f"#{spec.at_call} ({op})"
        )
        interp.faults.record(spec, rank, detail)
        kill_worker_process(detail)


def _post_send_faulted(
    interp, ctx, dst_local: int, tag: int, comm_id: int,
    payload: np.ndarray, sync: bool, op: str,
):
    """world.post_send with the injector consulted on delivery.

    Returns the delivered :class:`~repro.mpi.message.Message`; *sync*
    may have been forced on by an eager→rendezvous flip (check
    ``msg.sync``).
    """
    world = interp.world
    dst_world = world.comm(comm_id).world_rank(dst_local)
    perturb = interp.faults.perturb_send(ctx.proc.rank, dst_world)
    msg = world.post_send(
        src_world=ctx.proc.rank,
        dst_local=dst_local,
        tag=tag,
        comm_id=comm_id,
        payload=payload,
        sent_time=ctx.clock,
        latency=interp.cm.msg_latency + perturb.extra_latency,
        per_elem=interp.cm.msg_per_elem,
        sync=sync or perturb.force_sync,
        sender_thread=ctx.tid,
    )
    if perturb.reorder:
        world.perturb_mailbox(dst_world, comm_id, interp.faults.rng)
    for spec in perturb.applied:
        detail = (
            f"{spec.kind} on message #{msg.msg_id} "
            f"rank {ctx.proc.rank} -> rank {dst_world} ({op})"
        )
        interp.faults.record(spec, ctx.proc.rank, detail)
        interp.emit(FaultEvent, ctx, kind=spec.kind, detail=detail, op=op)
    return msg


# ---------------------------------------------------------------------------
# Fault tolerance: error surfacing, timeouts, handler dispatch
# ---------------------------------------------------------------------------


def _ft_wait(interp, ctx, comm_id: int, what: str, ready, peer_failed=None,
             always_block: bool = False) -> Gen:
    """Block until *ready()*, with fault-tolerant escapes.

    Returns ``MPI_SUCCESS`` once ready; otherwise the error class the
    wait failed over to: ``MPI_ERR_REVOKED`` (communicator revoked),
    ``MPI_ERR_PROC_FAILED`` (*peer_failed()* true and no completion
    possible), or ``MPI_ERR_TIMEOUT`` (retry budget exhausted).

    When the FT layer is inactive on this communicator the behavior is
    the legacy one — a single bare Block whose wake predicate is
    *ready* — so fault-free runs are byte-identical to the pre-FT
    simulator.  Timeouts only fire through the scheduler's stall hook:
    a blocked op can never out-wait a runnable peer, so an armed waiter
    escapes only when the entire job has stalled.
    """
    ft = interp.world.ft
    if not ft.active(comm_id):
        if always_block or not ready():
            yield Block(what, ready)
        return MPI_SUCCESS
    policy = ft.policy(comm_id)
    attempt = 0
    first = True
    while True:
        if not (always_block and first):
            if ready():
                return MPI_SUCCESS
            if ft.is_revoked(comm_id):
                return MPI_ERR_REVOKED
            if peer_failed is not None and peer_failed():
                return MPI_ERR_PROC_FAILED
        first = False
        waiter = ft.arm(ctx.clock + policy.timeout) if policy is not None else None

        def wake(w=waiter):
            return (
                ready()
                or ft.is_revoked(comm_id)
                or (peer_failed is not None and peer_failed())
                or (w is not None and w.escaped)
            )

        yield Block(what, wake)
        if waiter is None:
            continue
        if waiter.escaped and not (
            ready()
            or ft.is_revoked(comm_id)
            or (peer_failed is not None and peer_failed())
        ):
            # Pure timeout: back off and retry, bounded.
            if attempt >= policy.max_retries:
                return MPI_ERR_TIMEOUT
            backoff = interp.faults.retry_backoff(
                policy.backoff_base, policy.backoff_factor, attempt
            )
            ctx.charge(backoff)
            attempt += 1
            interp.note(
                f"rank {ctx.proc.rank}: {what}: timed out, retry "
                f"{attempt}/{policy.max_retries} after backoff {backoff:.1f}"
            )
            continue
        ft.disarm(waiter)


def _dispatch_error(interp, ctx, node, op: str, comm_id: int, code: int,
                    info: "_CallInfo", instrumented: bool, detail: str = "") -> Gen:
    """Surface error *code* through the communicator's error handler.

    ``MPI_ERRORS_ARE_FATAL`` aborts the rank (the pre-FT behavior for
    any fault); ``MPI_ERRORS_RETURN`` and user handler functions let
    the builtin hand the error class back to the program.  A user
    handler runs *inside* the failing MPI call — exactly the reentrancy
    hazard the new violation rule checks — as ``handler(comm, code)``.
    Must be called before the op's ``_epilogue``.
    """
    ft = interp.world.ft
    handler = ft.handler(comm_id)
    hname = (
        "fatal" if handler == MPI_ERRORS_ARE_FATAL
        else "return" if handler == MPI_ERRORS_RETURN
        else str(handler)
    )
    interp.emit(
        MPIErrorEvent, ctx,
        op=op, comm=comm_id, error_class=error_string(code), code=code,
        handler=hname, detail=detail,
    )
    interp.note(
        f"rank {ctx.proc.rank}: {op} on comm {comm_id} raised "
        f"{error_string(code)} (handler: {hname})"
        + (f": {detail}" if detail else "")
    )
    if handler == MPI_ERRORS_ARE_FATAL:
        if not info.skipped:
            ctx.proc.mpi.calls_in_flight -= 1
        raise SimAbort(
            f"rank {ctx.proc.rank}: {op}: {error_string(code)} "
            f"with MPI_ERRORS_ARE_FATAL"
        )
    if isinstance(handler, str):
        fn = interp._functions.get(handler)
        if fn is None:
            interp.note(
                f"rank {ctx.proc.rank}: unknown error handler {handler!r}; "
                "treating as MPI_ERRORS_RETURN"
            )
        else:
            interp.emit(
                ErrorHandlerEvent, ctx,
                phase="enter", comm=comm_id, code=code, handler=handler,
            )
            ctx.handler_depth += 1
            try:
                yield from interp._call_user(fn, [comm_id, code], ctx)
            finally:
                ctx.handler_depth -= 1
                interp.emit(
                    ErrorHandlerEvent, ctx,
                    phase="exit", comm=comm_id, code=code, handler=handler,
                )
    return code


_GATE_EXEMPT = frozenset({"mpi_init", "mpi_init_thread", "mpi_finalize",
                          "mpi_comm_rank", "mpi_comm_size", "mpi_wtime",
                          "mpi_is_thread_main", "mpi_initialized"})


def _thread_level_gate(interp, ctx, op: str) -> bool:
    """Enforce the granted thread level; returns False if the call is skipped."""
    pstate = ctx.proc.mpi
    if op in ("mpi_init", "mpi_init_thread"):
        return True
    if not pstate.initialized:
        raise SimAbort(f"{op} called before MPI initialization")
    if pstate.finalized and op != "mpi_finalize":
        raise SimAbort(f"{op} called after mpi_finalize")
    if op in _GATE_EXEMPT:
        return True
    level = pstate.thread_level
    breach = None
    if level in (MPI_THREAD_SINGLE, MPI_THREAD_FUNNELED) and not ctx.is_main_thread:
        breach = (
            f"rank {ctx.proc.rank}: {op} from non-main thread {ctx.tid} "
            f"under {THREAD_LEVEL_NAMES[level]}"
        )
    elif level == MPI_THREAD_SERIALIZED and pstate.calls_in_flight > 0:
        breach = (
            f"rank {ctx.proc.rank}: {op} on thread {ctx.tid} overlaps another "
            f"MPI call under {THREAD_LEVEL_NAMES[level]}"
        )
    if breach is None:
        return True
    interp.note(breach)
    mode = interp.config.thread_level_mode
    if mode == "strict":
        raise SimAbort(breach)
    return mode != "skip"


# ---------------------------------------------------------------------------
# Initialization / finalization
# ---------------------------------------------------------------------------


def mpi_init(interp, ctx, node, args, instrumented) -> Gen:
    return (yield from _init_common(interp, ctx, node, MPI_THREAD_SINGLE, instrumented,
                                    op="mpi_init"))


def mpi_init_thread(interp, ctx, node, args, instrumented) -> Gen:
    required = as_int(args[0], "required thread level") if args else MPI_THREAD_SINGLE
    return (yield from _init_common(interp, ctx, node, required, instrumented,
                                    op="mpi_init_thread"))


def _init_common(interp, ctx, node, required: int, instrumented: bool, op: str) -> Gen:
    pstate = ctx.proc.mpi
    if pstate.initialized:
        raise SimAbort(f"rank {ctx.proc.rank}: MPI initialized twice")
    provided = min(required, interp.config.max_thread_level)
    granted, downgrade = interp.faults.granted_thread_level(
        ctx.proc.rank, provided
    )
    pstate.initialized = True
    pstate.thread_level = granted
    pstate.main_thread = ctx.tid
    if downgrade is not None:
        detail = (
            f"rank {ctx.proc.rank}: library granted thread level {granted} "
            f"({THREAD_LEVEL_NAMES.get(granted, granted)}) although "
            f"{THREAD_LEVEL_NAMES.get(provided, provided)} was available "
            "(injected thread-level downgrade)"
        )
        interp.fault_fired(ctx, downgrade, detail, op=op)
    provided = granted
    if ctx.tid != 0:
        interp.note(f"rank {ctx.proc.rank}: MPI initialized from thread {ctx.tid}")
    info = _prologue(interp, ctx, node, op, instrumented, [],
                     {"required": required, "provided": provided})
    yield Step(interp.cm.mpi_call)
    _epilogue(interp, ctx, node, op, info, instrumented)
    return provided


def mpi_finalize(interp, ctx, node, args, instrumented) -> Gen:
    pstate = ctx.proc.mpi
    monitored = [(MonitoredKind.FINALIZE, 1)]
    info = _prologue(interp, ctx, node, "mpi_finalize", instrumented, monitored, {})
    if not ctx.is_main_thread:
        interp.note(
            f"rank {ctx.proc.rank}: mpi_finalize called from non-main thread {ctx.tid}"
        )
    pending = pstate.requests.pending()
    if pending:
        interp.note(
            f"rank {ctx.proc.rank}: mpi_finalize with {len(pending)} pending request(s)"
        )
    if pstate.calls_in_flight > 1:  # >1: this finalize itself is in flight
        interp.note(
            f"rank {ctx.proc.rank}: mpi_finalize while other MPI calls are executing"
        )
    yield Step(interp.cm.mpi_call)
    pstate.finalized = True
    _epilogue(interp, ctx, node, "mpi_finalize", info, instrumented)
    return 0


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


def mpi_comm_rank(interp, ctx, node, args, instrumented) -> Gen:
    comm = interp.world.comm(as_int(args[0], "communicator"))
    return comm.local_rank(ctx.proc.rank)
    yield  # pragma: no cover


def mpi_comm_size(interp, ctx, node, args, instrumented) -> Gen:
    comm = interp.world.comm(as_int(args[0], "communicator"))
    return comm.size
    yield  # pragma: no cover


def mpi_wtime(interp, ctx, node, args, instrumented) -> Gen:
    return ctx.clock
    yield  # pragma: no cover


def mpi_is_thread_main(interp, ctx, node, args, instrumented) -> Gen:
    return ctx.is_main_thread
    yield  # pragma: no cover


def mpi_initialized(interp, ctx, node, args, instrumented) -> Gen:
    return ctx.proc.mpi.initialized
    yield  # pragma: no cover


# ---------------------------------------------------------------------------
# Point-to-point
# ---------------------------------------------------------------------------


def _p2p_args(args, op: str):
    if len(args) != 5:
        raise SimAbort(f"{op} expects (buf, count, peer, tag, comm)")
    buf, count, peer, tag, comm_id = args
    return (
        buf,
        as_int(count, "count"),
        as_int(peer, "peer rank"),
        as_int(tag, "tag"),
        as_int(comm_id, "communicator"),
    )


def mpi_send(interp, ctx, node, args, instrumented) -> Gen:
    buf, count, dest, tag, comm_id = _p2p_args(args, "mpi_send")
    monitored = [
        (MonitoredKind.SRC, dest),
        (MonitoredKind.TAG, tag),
        (MonitoredKind.COMM, comm_id),
    ]
    adict = {"peer": dest, "tag": tag, "comm": comm_id, "count": count}
    info = _prologue(interp, ctx, node, "mpi_send", instrumented, monitored, adict)
    if info.skipped:
        _epilogue(interp, ctx, node, "mpi_send", info, instrumented, adict)
        return 0
    payload = _payload(buf, count)
    sync = interp.config.sync_sends or len(payload) >= interp.config.eager_threshold
    yield Step(interp.cm.mpi_call)
    msg = _post_send_faulted(interp, ctx, dest, tag, comm_id, payload, sync,
                             "mpi_send")
    if msg.sync:
        ft = interp.world.ft
        comm = interp.world.comm(comm_id)
        err = yield from _ft_wait(
            interp, ctx, comm_id,
            f"mpi_send (sync) to rank {dest} tag {tag} comm {comm_id}",
            lambda: msg.consumed,
            peer_failed=lambda: ft.peer_failed(comm, dest),
        )
        if err != MPI_SUCCESS:
            code = yield from _dispatch_error(
                interp, ctx, node, "mpi_send", comm_id, err, info, instrumented
            )
            _epilogue(interp, ctx, node, "mpi_send", info, instrumented,
                      dict(adict, error=error_string(err)))
            return code
        ctx.advance_to(msg.consumed_time)
    _epilogue(interp, ctx, node, "mpi_send", info, instrumented,
              dict(adict, msg_id=msg.msg_id))
    return 0


def _match_blocking(interp, ctx, comm_id: int, src: int, tag: int, what: str) -> Gen:
    """Match a message for a blocking receive; returns ``(msg, errcode)``
    where *msg* is None iff *errcode* is not ``MPI_SUCCESS``."""
    world = interp.world
    me = ctx.proc.rank
    comm = world.comm(comm_id)
    ft = world.ft
    msg = world.match_recv(me, comm_id, src, tag)
    while msg is None:
        err = yield from _ft_wait(
            interp, ctx, comm_id,
            f"{what} waiting for message (src={src}, tag={tag}, comm={comm_id}) "
            f"at rank {me}",
            lambda: world.peek_recv(me, comm_id, src, tag) is not None,
            peer_failed=lambda: ft.peer_failed(comm, src),
        )
        if err != MPI_SUCCESS:
            return None, err
        msg = world.match_recv(me, comm_id, src, tag)
    return msg, MPI_SUCCESS


def mpi_recv(interp, ctx, node, args, instrumented) -> Gen:
    buf, count, src, tag, comm_id = _p2p_args(args, "mpi_recv")
    monitored = [
        (MonitoredKind.SRC, src),
        (MonitoredKind.TAG, tag),
        (MonitoredKind.COMM, comm_id),
    ]
    adict = {"peer": src, "tag": tag, "comm": comm_id, "count": count}
    info = _prologue(interp, ctx, node, "mpi_recv", instrumented, monitored, adict)
    if info.skipped:
        _epilogue(interp, ctx, node, "mpi_recv", info, instrumented, adict)
        return -1
    yield Step(interp.cm.mpi_call)
    msg, err = yield from _match_blocking(interp, ctx, comm_id, src, tag, "mpi_recv")
    if err != MPI_SUCCESS:
        code = yield from _dispatch_error(
            interp, ctx, node, "mpi_recv", comm_id, err, info, instrumented
        )
        _epilogue(interp, ctx, node, "mpi_recv", info, instrumented,
                  dict(adict, error=error_string(err)))
        return code
    ctx.advance_to(msg.avail_time)
    if msg.sync:
        msg.consumed_time = ctx.clock
    _deliver(buf, msg.payload, count)
    adict = dict(adict, matched_src=msg.src, matched_tag=msg.tag,
                 msg_id=msg.msg_id)
    _epilogue(interp, ctx, node, "mpi_recv", info, instrumented, adict)
    return msg.src


def mpi_isend(interp, ctx, node, args, instrumented) -> Gen:
    buf, count, dest, tag, comm_id = _p2p_args(args, "mpi_isend")
    req = Request(kind="send", comm=comm_id, src=ctx.proc.rank, tag=tag,
                  dst=dest, count=count, owner_thread=ctx.tid)
    ctx.proc.mpi.requests.allocate(req)
    monitored = [
        (MonitoredKind.SRC, dest),
        (MonitoredKind.TAG, tag),
        (MonitoredKind.COMM, comm_id),
        (MonitoredKind.REQUEST, req.handle),
    ]
    adict = {"peer": dest, "tag": tag, "comm": comm_id, "request": req.handle}
    info = _prologue(interp, ctx, node, "mpi_isend", instrumented, monitored, adict)
    if info.skipped:
        _epilogue(interp, ctx, node, "mpi_isend", info, instrumented, adict)
        return 0
    payload = _payload(buf, count)
    yield Step(interp.cm.mpi_call)
    msg = _post_send_faulted(interp, ctx, dest, tag, comm_id, payload, False,
                             "mpi_isend")
    if msg.sync:
        ft = interp.world.ft
        comm = interp.world.comm(comm_id)
        err = yield from _ft_wait(
            interp, ctx, comm_id,
            f"mpi_isend (rendezvous) to rank {dest} tag {tag} comm {comm_id}",
            lambda: msg.consumed,
            peer_failed=lambda: ft.peer_failed(comm, dest),
        )
        if err != MPI_SUCCESS:
            code = yield from _dispatch_error(
                interp, ctx, node, "mpi_isend", comm_id, err, info, instrumented
            )
            _epilogue(interp, ctx, node, "mpi_isend", info, instrumented,
                      dict(adict, error=error_string(err)))
            return code
        ctx.advance_to(msg.consumed_time)
    req.done = True
    req.complete_time = ctx.clock
    req.msg_id = msg.msg_id
    ctx.proc.mpi.requests.register(req)
    _epilogue(interp, ctx, node, "mpi_isend", info, instrumented,
              dict(adict, msg_id=msg.msg_id))
    return req.handle


def mpi_irecv(interp, ctx, node, args, instrumented) -> Gen:
    buf, count, src, tag, comm_id = _p2p_args(args, "mpi_irecv")
    if not isinstance(buf, ArrayValue):
        raise SimAbort("mpi_irecv requires an array receive buffer")
    req = Request(kind="recv", comm=comm_id, src=src, tag=tag,
                  buf=buf, count=count, owner_thread=ctx.tid)
    ctx.proc.mpi.requests.allocate(req)
    monitored = [
        (MonitoredKind.SRC, src),
        (MonitoredKind.TAG, tag),
        (MonitoredKind.COMM, comm_id),
        (MonitoredKind.REQUEST, req.handle),
    ]
    adict = {"peer": src, "tag": tag, "comm": comm_id, "request": req.handle}
    info = _prologue(interp, ctx, node, "mpi_irecv", instrumented, monitored, adict)
    if info.skipped:
        _epilogue(interp, ctx, node, "mpi_irecv", info, instrumented, adict)
        return 0
    yield Step(interp.cm.mpi_call)
    ctx.proc.mpi.requests.register(req)
    _epilogue(interp, ctx, node, "mpi_irecv", info, instrumented, adict)
    return req.handle


def _complete_recv_request(interp, ctx, req: Request) -> Gen:
    """Complete a pending receive request, waking early if another thread
    races us to it (the Concurrent-Request violation scenario: the loser
    must not hang waiting for a message that was already consumed).

    Returns ``MPI_SUCCESS`` or the error class the wait failed with.
    """
    world = interp.world
    me = ctx.proc.rank
    comm = world.comm(req.comm)
    ft = world.ft
    while not req.done:
        msg = world.match_recv(me, req.comm, req.src, req.tag)
        if msg is not None:
            ctx.advance_to(msg.avail_time)
            if msg.sync:
                msg.consumed_time = ctx.clock
            _deliver(req.buf, msg.payload, req.count)
            req.done = True
            req.complete_time = ctx.clock
            req.msg_id = msg.msg_id
            return MPI_SUCCESS
        err = yield from _ft_wait(
            interp, ctx, req.comm,
            f"mpi_wait(request {req.handle}) waiting for message "
            f"(src={req.src}, tag={req.tag}, comm={req.comm}) at rank {me}",
            lambda: req.done
            or world.peek_recv(me, req.comm, req.src, req.tag) is not None,
            peer_failed=(
                (lambda: ft.peer_failed(comm, req.src))
                if req.kind == "recv" else None
            ),
        )
        if err != MPI_SUCCESS:
            return err
    # Completed by a racing thread.
    interp.note(
        f"rank {me}: request {req.handle} was completed by another thread "
        f"while thread {ctx.tid} waited — concurrent request usage"
    )
    ctx.advance_to(req.complete_time)
    return MPI_SUCCESS


def mpi_wait(interp, ctx, node, args, instrumented) -> Gen:
    handle = as_int(args[0], "request handle")
    monitored = [(MonitoredKind.REQUEST, handle)]
    adict = {"request": handle}
    info = _prologue(interp, ctx, node, "mpi_wait", instrumented, monitored, adict)
    if info.skipped:
        _epilogue(interp, ctx, node, "mpi_wait", info, instrumented, adict)
        return 0
    table = ctx.proc.mpi.requests
    req = table.requests.get(handle)
    yield Step(interp.cm.mpi_call)
    if req is None:
        interp.note(
            f"rank {ctx.proc.rank}: mpi_wait on unknown/freed request {handle} "
            f"(thread {ctx.tid}) — possible concurrent wait"
        )
    else:
        if req.done:
            if req.kind == "recv" and req.owner_thread != ctx.tid:
                interp.note(
                    f"rank {ctx.proc.rank}: request {handle} already completed when "
                    f"thread {ctx.tid} waited — concurrent request usage"
                )
            ctx.advance_to(req.complete_time)
        else:
            err = yield from _complete_recv_request(interp, ctx, req)
            if err != MPI_SUCCESS:
                table.free(handle)
                code = yield from _dispatch_error(
                    interp, ctx, node, "mpi_wait", req.comm, err, info, instrumented)
                _epilogue(interp, ctx, node, "mpi_wait", info, instrumented,
                          dict(adict, error=error_string(err)))
                return code
        adict = dict(adict, msg_id=req.msg_id, peer=req.src, tag=req.tag,
                     comm=req.comm, kind=req.kind)
        table.free(handle)
    _epilogue(interp, ctx, node, "mpi_wait", info, instrumented, adict)
    return 0


def mpi_test(interp, ctx, node, args, instrumented) -> Gen:
    handle = as_int(args[0], "request handle")
    monitored = [(MonitoredKind.REQUEST, handle)]
    adict = {"request": handle}
    info = _prologue(interp, ctx, node, "mpi_test", instrumented, monitored, adict)
    if info.skipped:
        _epilogue(interp, ctx, node, "mpi_test", info, instrumented, adict)
        return False
    table = ctx.proc.mpi.requests
    req = table.requests.get(handle)
    yield Step(interp.cm.mpi_call)
    done = False
    if req is None:
        interp.note(
            f"rank {ctx.proc.rank}: mpi_test on unknown/freed request {handle}"
        )
        done = True
    elif req.done:
        ctx.advance_to(req.complete_time)
        table.free(handle)
        done = True
    elif req.kind == "recv":
        msg = interp.world.match_recv(ctx.proc.rank, req.comm, req.src, req.tag)
        if msg is not None:
            ctx.advance_to(msg.avail_time)
            if msg.sync:
                msg.consumed_time = ctx.clock
            _deliver(req.buf, msg.payload, req.count)
            req.done = True
            req.complete_time = ctx.clock
            table.free(handle)
            done = True
    _epilogue(interp, ctx, node, "mpi_test", info, instrumented, adict)
    return done


def mpi_probe(interp, ctx, node, args, instrumented) -> Gen:
    src = as_int(args[0], "source")
    tag = as_int(args[1], "tag")
    comm_id = as_int(args[2], "communicator")
    monitored = [
        (MonitoredKind.SRC, src),
        (MonitoredKind.TAG, tag),
        (MonitoredKind.COMM, comm_id),
    ]
    adict = {"peer": src, "tag": tag, "comm": comm_id}
    info = _prologue(interp, ctx, node, "mpi_probe", instrumented, monitored, adict)
    if info.skipped:
        _epilogue(interp, ctx, node, "mpi_probe", info, instrumented, adict)
        return -1
    world = interp.world
    me = ctx.proc.rank
    comm = world.comm(comm_id)
    ft = world.ft
    yield Step(interp.cm.mpi_call)
    msg = world.peek_recv(me, comm_id, src, tag)
    while msg is None:
        err = yield from _ft_wait(
            interp, ctx, comm_id,
            f"mpi_probe waiting (src={src}, tag={tag}, comm={comm_id}) at rank {me}",
            lambda: world.peek_recv(me, comm_id, src, tag) is not None,
            peer_failed=lambda: ft.peer_failed(comm, src),
        )
        if err != MPI_SUCCESS:
            code = yield from _dispatch_error(
                interp, ctx, node, "mpi_probe", comm_id, err, info, instrumented)
            _epilogue(interp, ctx, node, "mpi_probe", info, instrumented,
                      dict(adict, error=error_string(err)))
            return code
        msg = world.peek_recv(me, comm_id, src, tag)
    ctx.advance_to(msg.avail_time)
    _epilogue(interp, ctx, node, "mpi_probe", info, instrumented,
              dict(adict, matched_src=msg.src, matched_tag=msg.tag))
    return msg.src


def mpi_iprobe(interp, ctx, node, args, instrumented) -> Gen:
    src = as_int(args[0], "source")
    tag = as_int(args[1], "tag")
    comm_id = as_int(args[2], "communicator")
    monitored = [
        (MonitoredKind.SRC, src),
        (MonitoredKind.TAG, tag),
        (MonitoredKind.COMM, comm_id),
    ]
    adict = {"peer": src, "tag": tag, "comm": comm_id}
    info = _prologue(interp, ctx, node, "mpi_iprobe", instrumented, monitored, adict)
    if info.skipped:
        _epilogue(interp, ctx, node, "mpi_iprobe", info, instrumented, adict)
        return False
    yield Step(interp.cm.mpi_call)
    msg = interp.world.peek_recv(ctx.proc.rank, comm_id, src, tag)
    found = msg is not None
    if found:
        ctx.advance_to(msg.avail_time)
    _epilogue(interp, ctx, node, "mpi_iprobe", info, instrumented, adict)
    return found


# ---------------------------------------------------------------------------
# Collectives
# ---------------------------------------------------------------------------


def _collective(interp, ctx, node, op: str, comm_id: int, instrumented: bool,
                value: Any = None, root: Optional[int] = None,
                reduce_op: Optional[int] = None, extra: Optional[dict] = None) -> Gen:
    """Common collective machinery; returns ``(slot, errcode)``.

    ``slot`` is None when the call was skipped, malformed, or failed;
    ``errcode`` is ``MPI_SUCCESS`` unless a fault-tolerance escape fired
    (peer death, revocation, timeout) — in that case the error has
    already been dispatched to the communicator's handler.
    """
    monitored = [
        (MonitoredKind.COLLECTIVE, op),
        (MonitoredKind.COMM, comm_id),
    ]
    adict = {"comm": comm_id, "root": root}
    if extra:
        adict.update(extra)
    info = _prologue(interp, ctx, node, op, instrumented, monitored, adict)
    if info.skipped:
        _epilogue(interp, ctx, node, op, info, instrumented, adict)
        return None, MPI_SUCCESS
    world = interp.world
    comm = world.comm(comm_id)
    engine = world.collectives
    ft = world.ft
    yield Step(interp.cm.mpi_call)
    index = engine.next_index(comm_id, ctx.proc.rank)
    try:
        slot = engine.arrive(
            comm, index, ctx.proc.rank, op, ctx.clock,
            value=value, root=root, reduce_op=reduce_op,
        )
    except MPIUsageError as err:
        interp.note(str(err))
        _epilogue(interp, ctx, node, op, info, instrumented, adict)
        return None, MPI_SUCCESS
    err = yield from _ft_wait(
        interp, ctx, comm_id,
        f"{op} on {comm.name} (slot {index}) at rank {ctx.proc.rank}",
        lambda: engine.complete(comm, index),
        peer_failed=lambda: any(w in ft.failed for w in comm.members),
        always_block=True,
    )
    if err != MPI_SUCCESS:
        code = yield from _dispatch_error(
            interp, ctx, node, op, comm_id, err, info, instrumented)
        _epilogue(interp, ctx, node, op, info, instrumented,
                  dict(adict, error=error_string(err)))
        return None, code
    ctx.advance_to(engine.completion_time(comm, index))
    ctx.charge(interp.cm.barrier)
    if slot.mismatch:
        interp.note(slot.mismatch)
    _epilogue(interp, ctx, node, op, info, instrumented, adict)
    return slot, MPI_SUCCESS


def _contribution(value: Any) -> Any:
    if isinstance(value, ArrayValue):
        return value.snapshot()
    return value


def mpi_barrier(interp, ctx, node, args, instrumented) -> Gen:
    comm_id = as_int(args[0], "communicator")
    _slot, err = yield from _collective(
        interp, ctx, node, "mpi_barrier", comm_id, instrumented)
    return err if err != MPI_SUCCESS else 0


def mpi_bcast(interp, ctx, node, args, instrumented) -> Gen:
    value, root, comm_id = args[0], as_int(args[1], "root"), as_int(args[2], "communicator")
    slot, err = yield from _collective(
        interp, ctx, node, "mpi_bcast", comm_id, instrumented,
        value=_contribution(value), root=root,
    )
    if err != MPI_SUCCESS:
        return err
    if slot is None or slot.mismatch:
        return value if not isinstance(value, ArrayValue) else 0
    comm = interp.world.comm(comm_id)
    root_value = slot.contributions.get(comm.world_rank(root))
    if isinstance(value, ArrayValue):
        if isinstance(root_value, np.ndarray):
            value.load(root_value)
        return 0
    return root_value


def mpi_reduce(interp, ctx, node, args, instrumented) -> Gen:
    value, op_h, root, comm_id = (
        args[0], as_int(args[1], "op"), as_int(args[2], "root"),
        as_int(args[3], "communicator"),
    )
    slot, err = yield from _collective(
        interp, ctx, node, "mpi_reduce", comm_id, instrumented,
        value=_contribution(value), root=root, reduce_op=op_h,
    )
    if err != MPI_SUCCESS:
        return err
    if slot is None or slot.mismatch:
        return 0
    comm = interp.world.comm(comm_id)
    if comm.local_rank(ctx.proc.rank) != root:
        return 0
    contribs = [slot.contributions[w] for w in comm.members]
    result = apply_reduce(op_h, contribs)
    if isinstance(value, ArrayValue):
        value.load(np.asarray(result))
        return 0
    return result


def mpi_allreduce(interp, ctx, node, args, instrumented) -> Gen:
    value, op_h, comm_id = args[0], as_int(args[1], "op"), as_int(args[2], "communicator")
    slot, err = yield from _collective(
        interp, ctx, node, "mpi_allreduce", comm_id, instrumented,
        value=_contribution(value), reduce_op=op_h,
    )
    if err != MPI_SUCCESS:
        return err
    if slot is None or slot.mismatch:
        return 0
    comm = interp.world.comm(comm_id)
    contribs = [slot.contributions[w] for w in comm.members]
    result = apply_reduce(op_h, contribs)
    if isinstance(value, ArrayValue):
        value.load(np.asarray(result))
        return 0
    return result


def mpi_gather(interp, ctx, node, args, instrumented) -> Gen:
    value, recvbuf, root, comm_id = (
        args[0], args[1], as_int(args[2], "root"), as_int(args[3], "communicator"),
    )
    slot, err = yield from _collective(
        interp, ctx, node, "mpi_gather", comm_id, instrumented,
        value=_contribution(value), root=root,
    )
    if err != MPI_SUCCESS:
        return err
    if slot is None or slot.mismatch:
        return 0
    comm = interp.world.comm(comm_id)
    if comm.local_rank(ctx.proc.rank) == root and isinstance(recvbuf, ArrayValue):
        gathered = np.asarray(
            [float(np.asarray(slot.contributions[w]).flat[0]) for w in comm.members]
        )
        recvbuf.load(gathered)
    return 0


def mpi_allgather(interp, ctx, node, args, instrumented) -> Gen:
    value, recvbuf, comm_id = args[0], args[1], as_int(args[2], "communicator")
    slot, err = yield from _collective(
        interp, ctx, node, "mpi_allgather", comm_id, instrumented,
        value=_contribution(value),
    )
    if err != MPI_SUCCESS:
        return err
    if slot is None or slot.mismatch:
        return 0
    comm = interp.world.comm(comm_id)
    if isinstance(recvbuf, ArrayValue):
        gathered = np.asarray(
            [float(np.asarray(slot.contributions[w]).flat[0]) for w in comm.members]
        )
        recvbuf.load(gathered)
    return 0


def mpi_scatter(interp, ctx, node, args, instrumented) -> Gen:
    sendbuf, root, comm_id = args[0], as_int(args[1], "root"), as_int(args[2], "communicator")
    slot, err = yield from _collective(
        interp, ctx, node, "mpi_scatter", comm_id, instrumented,
        value=_contribution(sendbuf), root=root,
    )
    if err != MPI_SUCCESS:
        return err
    if slot is None or slot.mismatch:
        return 0
    comm = interp.world.comm(comm_id)
    root_contrib = slot.contributions.get(comm.world_rank(root))
    my_local = comm.local_rank(ctx.proc.rank)
    if isinstance(root_contrib, np.ndarray) and my_local < len(root_contrib):
        return float(root_contrib[my_local])
    return 0


def mpi_alltoall(interp, ctx, node, args, instrumented) -> Gen:
    sendbuf, recvbuf, comm_id = args[0], args[1], as_int(args[2], "communicator")
    slot, err = yield from _collective(
        interp, ctx, node, "mpi_alltoall", comm_id, instrumented,
        value=_contribution(sendbuf),
    )
    if err != MPI_SUCCESS:
        return err
    if slot is None or slot.mismatch:
        return 0
    comm = interp.world.comm(comm_id)
    my_local = comm.local_rank(ctx.proc.rank)
    if isinstance(recvbuf, ArrayValue):
        row = []
        for w in comm.members:
            contrib = np.asarray(slot.contributions[w])
            row.append(float(contrib[my_local]) if my_local < len(contrib) else 0.0)
        recvbuf.load(np.asarray(row))
    return 0


# ---------------------------------------------------------------------------
# Communicator management
# ---------------------------------------------------------------------------


def mpi_comm_dup(interp, ctx, node, args, instrumented) -> Gen:
    comm_id = as_int(args[0], "communicator")
    pstate = ctx.proc.mpi
    registry = interp.world.comms
    instance = pstate.dup_counter.get(comm_id, 0)
    pstate.dup_counter[comm_id] = instance + 1
    adict = {"comm": comm_id, "instance": instance}
    info = _prologue(interp, ctx, node, "mpi_comm_dup", instrumented,
                     [(MonitoredKind.COMM, comm_id)], adict)
    if info.skipped:
        _epilogue(interp, ctx, node, "mpi_comm_dup", info, instrumented, adict)
        return comm_id
    registry.dup_arrive(comm_id, instance, ctx.proc.rank)
    ft = interp.world.ft
    comm = interp.world.comm(comm_id)
    err = yield from _ft_wait(
        interp, ctx, comm_id,
        f"mpi_comm_dup({comm_id}) instance {instance} at rank {ctx.proc.rank}",
        lambda: registry.dup_complete(comm_id, instance),
        peer_failed=lambda: any(w in ft.failed for w in comm.members),
        always_block=True,
    )
    if err != MPI_SUCCESS:
        code = yield from _dispatch_error(
            interp, ctx, node, "mpi_comm_dup", comm_id, err, info, instrumented)
        _epilogue(interp, ctx, node, "mpi_comm_dup", info, instrumented,
                  dict(adict, error=error_string(err)))
        return code
    new_cid = registry.dup_result(comm_id, instance)
    ctx.charge(interp.cm.barrier)
    _epilogue(interp, ctx, node, "mpi_comm_dup", info, instrumented, adict)
    return new_cid


def mpi_comm_split(interp, ctx, node, args, instrumented) -> Gen:
    comm_id = as_int(args[0], "communicator")
    color = as_int(args[1], "color")
    key = as_int(args[2], "key")
    pstate = ctx.proc.mpi
    registry = interp.world.comms
    instance = pstate.split_counter.get(comm_id, 0)
    pstate.split_counter[comm_id] = instance + 1
    adict = {"comm": comm_id, "color": color, "instance": instance}
    info = _prologue(interp, ctx, node, "mpi_comm_split", instrumented,
                     [(MonitoredKind.COMM, comm_id)], adict)
    if info.skipped:
        _epilogue(interp, ctx, node, "mpi_comm_split", info, instrumented, adict)
        return comm_id
    registry.split_arrive(comm_id, instance, ctx.proc.rank, color, key)
    ft = interp.world.ft
    comm = interp.world.comm(comm_id)
    err = yield from _ft_wait(
        interp, ctx, comm_id,
        f"mpi_comm_split({comm_id}) instance {instance} at rank {ctx.proc.rank}",
        lambda: registry.split_complete(comm_id, instance),
        peer_failed=lambda: any(w in ft.failed for w in comm.members),
        always_block=True,
    )
    if err != MPI_SUCCESS:
        code = yield from _dispatch_error(
            interp, ctx, node, "mpi_comm_split", comm_id, err, info, instrumented)
        _epilogue(interp, ctx, node, "mpi_comm_split", info, instrumented,
                  dict(adict, error=error_string(err)))
        return code
    new_cid = registry.split_result(comm_id, instance, ctx.proc.rank)
    ctx.charge(interp.cm.barrier)
    _epilogue(interp, ctx, node, "mpi_comm_split", info, instrumented, adict)
    return new_cid




def mpi_ssend(interp, ctx, node, args, instrumented) -> Gen:
    """Synchronous-mode send: always rendezvous, regardless of config."""
    buf, count, dest, tag, comm_id = _p2p_args(args, "mpi_ssend")
    monitored = [
        (MonitoredKind.SRC, dest),
        (MonitoredKind.TAG, tag),
        (MonitoredKind.COMM, comm_id),
    ]
    adict = {"peer": dest, "tag": tag, "comm": comm_id, "count": count}
    info = _prologue(interp, ctx, node, "mpi_ssend", instrumented, monitored, adict)
    if info.skipped:
        _epilogue(interp, ctx, node, "mpi_ssend", info, instrumented, adict)
        return 0
    payload = _payload(buf, count)
    yield Step(interp.cm.mpi_call)
    msg = _post_send_faulted(interp, ctx, dest, tag, comm_id, payload, True,
                             "mpi_ssend")
    ft = interp.world.ft
    comm = interp.world.comm(comm_id)
    err = yield from _ft_wait(
        interp, ctx, comm_id,
        f"mpi_ssend to rank {dest} tag {tag} comm {comm_id}",
        lambda: msg.consumed,
        peer_failed=lambda: ft.peer_failed(comm, dest),
    )
    if err != MPI_SUCCESS:
        code = yield from _dispatch_error(
            interp, ctx, node, "mpi_ssend", comm_id, err, info, instrumented
        )
        _epilogue(interp, ctx, node, "mpi_ssend", info, instrumented,
                  dict(adict, error=error_string(err)))
        return code
    ctx.advance_to(msg.consumed_time)
    _epilogue(interp, ctx, node, "mpi_ssend", info, instrumented,
              dict(adict, msg_id=msg.msg_id))
    return 0


def mpi_sendrecv(interp, ctx, node, args, instrumented) -> Gen:
    """Combined send+receive (deadlock-free halo-exchange primitive).

    Signature: mpi_sendrecv(sendbuf, count, dest, sendtag,
                            recvbuf, source, recvtag, comm).
    """
    if len(args) != 8:
        raise SimAbort(
            "mpi_sendrecv expects (sendbuf, count, dest, sendtag, "
            "recvbuf, source, recvtag, comm)"
        )
    sendbuf = args[0]
    count = as_int(args[1], "count")
    dest = as_int(args[2], "dest")
    sendtag = as_int(args[3], "sendtag")
    recvbuf = args[4]
    source = as_int(args[5], "source")
    recvtag = as_int(args[6], "recvtag")
    comm_id = as_int(args[7], "communicator")
    monitored = [
        (MonitoredKind.SRC, source),
        (MonitoredKind.TAG, recvtag),
        (MonitoredKind.COMM, comm_id),
    ]
    adict = {"peer": source, "tag": recvtag, "comm": comm_id,
             "dest": dest, "sendtag": sendtag}
    info = _prologue(interp, ctx, node, "mpi_sendrecv", instrumented, monitored, adict)
    if info.skipped:
        _epilogue(interp, ctx, node, "mpi_sendrecv", info, instrumented, adict)
        return -1
    payload = _payload(sendbuf, count)
    yield Step(interp.cm.mpi_call)
    # The send half is always buffered: sendrecv must not deadlock even
    # in a ring where everyone sends first.  A forced rendezvous flip
    # may still mark the message sync; the sender deliberately does not
    # wait on it here.
    _post_send_faulted(interp, ctx, dest, sendtag, comm_id, payload, False,
                       "mpi_sendrecv")
    msg, err = yield from _match_blocking(
        interp, ctx, comm_id, source, recvtag, "mpi_sendrecv"
    )
    if err != MPI_SUCCESS:
        code = yield from _dispatch_error(
            interp, ctx, node, "mpi_sendrecv", comm_id, err, info, instrumented)
        _epilogue(interp, ctx, node, "mpi_sendrecv", info, instrumented,
                  dict(adict, error=error_string(err)))
        return code
    ctx.advance_to(msg.avail_time)
    if msg.sync:
        msg.consumed_time = ctx.clock
    _deliver(recvbuf, msg.payload, count)
    _epilogue(interp, ctx, node, "mpi_sendrecv", info, instrumented,
              dict(adict, matched_src=msg.src, msg_id=msg.msg_id))
    return msg.src


def mpi_waitall(interp, ctx, node, args, instrumented) -> Gen:
    """Wait for every request handle passed (varargs)."""
    handles = [as_int(a, "request handle") for a in args]
    monitored = [(MonitoredKind.REQUEST, h) for h in handles]
    adict = {"requests": tuple(handles)}
    info = _prologue(interp, ctx, node, "mpi_waitall", instrumented, monitored, adict)
    if info.skipped:
        _epilogue(interp, ctx, node, "mpi_waitall", info, instrumented, adict)
        return 0
    table = ctx.proc.mpi.requests
    yield Step(interp.cm.mpi_call)
    for handle in handles:
        req = table.requests.get(handle)
        if req is None:
            interp.note(
                f"rank {ctx.proc.rank}: mpi_waitall on unknown/freed request "
                f"{handle}"
            )
            continue
        if req.done:
            ctx.advance_to(req.complete_time)
        else:
            err = yield from _complete_recv_request(interp, ctx, req)
            if err != MPI_SUCCESS:
                table.free(handle)
                code = yield from _dispatch_error(
                    interp, ctx, node, "mpi_waitall", req.comm, err, info,
                    instrumented)
                _epilogue(interp, ctx, node, "mpi_waitall", info, instrumented,
                          dict(adict, error=error_string(err)))
                return code
        table.free(handle)
    _epilogue(interp, ctx, node, "mpi_waitall", info, instrumented, adict)
    return 0


# ---------------------------------------------------------------------------
# Fault tolerance & recovery (error handlers, timeouts, ULFM-style shrink)
# ---------------------------------------------------------------------------


def mpi_comm_set_errhandler(interp, ctx, node, args, instrumented) -> Gen:
    """Attach an error handler to a communicator.

    The handler may be MPI_ERRORS_ARE_FATAL, MPI_ERRORS_RETURN, or the
    name of a two-argument function ``handler(comm, code)`` defined in
    the program, which then runs inside any failing MPI call on that
    communicator.
    """
    comm_id = as_int(args[0], "communicator")
    hval = args[1] if isinstance(args[1], str) else as_int(args[1], "error handler")
    adict = {"comm": comm_id, "handler": str(hval)}
    info = _prologue(interp, ctx, node, "mpi_comm_set_errhandler", instrumented,
                     [(MonitoredKind.COMM, comm_id)], adict)
    if not info.skipped:
        yield Step(interp.cm.mpi_call)
        interp.world.ft.set_handler(comm_id, hval)
    _epilogue(interp, ctx, node, "mpi_comm_set_errhandler", info, instrumented,
              adict)
    return 0


def mpi_comm_get_errhandler(interp, ctx, node, args, instrumented) -> Gen:
    return interp.world.ft.handler(as_int(args[0], "communicator"))
    yield  # pragma: no cover


def mpi_error_string(interp, ctx, node, args, instrumented) -> Gen:
    return error_string(as_int(args[0], "error code"))
    yield  # pragma: no cover


def mpi_set_timeout(interp, ctx, node, args, instrumented) -> Gen:
    """Arm a timeout/retry policy on a communicator: blocking operations
    on it surface MPI_ERR_TIMEOUT after the retry budget is spent instead
    of hanging until the deadlock detector fires.

    Signature: mpi_set_timeout(comm, timeout[, max_retries]).  Query
    style on purpose: it must not shift fault-plan call counting.
    """
    comm_id = as_int(args[0], "communicator")
    timeout = float(as_int(args[1], "timeout") if not isinstance(args[1], float)
                    else args[1])
    retries = as_int(args[2], "max retries") if len(args) > 2 else 3
    interp.world.ft.set_policy(comm_id, RetryPolicy(
        timeout=timeout, max_retries=retries,
        backoff_base=interp.cm.retry_backoff,
    ))
    return 0
    yield  # pragma: no cover


def mpi_comm_failure_ack(interp, ctx, node, args, instrumented) -> Gen:
    """Acknowledge locally-known failed processes; returns how many."""
    comm_id = as_int(args[0], "communicator")
    adict = {"comm": comm_id}
    info = _prologue(interp, ctx, node, "mpi_comm_failure_ack", instrumented,
                     [(MonitoredKind.COMM, comm_id)], adict)
    acked = 0
    if not info.skipped:
        yield Step(interp.cm.mpi_call)
        acked = interp.world.ft.ack_failures(ctx.proc.rank)
    _epilogue(interp, ctx, node, "mpi_comm_failure_ack", info, instrumented,
              dict(adict, acked=acked))
    return acked


def mpi_comm_revoke(interp, ctx, node, args, instrumented) -> Gen:
    """Revoke a communicator: every pending and future blocking call on
    it (at any rank) surfaces MPI_ERR_REVOKED instead of completing."""
    comm_id = as_int(args[0], "communicator")
    adict = {"comm": comm_id}
    info = _prologue(interp, ctx, node, "mpi_comm_revoke", instrumented,
                     [(MonitoredKind.COMM, comm_id)], adict)
    if not info.skipped:
        yield Step(interp.cm.mpi_call)
        interp.world.ft.revoke(comm_id)
        interp.note(
            f"rank {ctx.proc.rank}: mpi_comm_revoke({comm_id}) — pending "
            f"operations on the communicator will surface MPI_ERR_REVOKED"
        )
    _epilogue(interp, ctx, node, "mpi_comm_revoke", info, instrumented, adict)
    return 0


def mpi_comm_shrink(interp, ctx, node, args, instrumented) -> Gen:
    """ULFM-style recovery collective: survivors of *comm* agree on a new
    communicator excluding failed ranks.  Collective among survivors —
    failed members count as arrived.  Each calling thread gets its own
    shrink instance; two threads shrinking the same communicator race to
    create two different replacements (the recovery-race hazard)."""
    comm_id = as_int(args[0], "communicator")
    pstate = ctx.proc.mpi
    ft = interp.world.ft
    instance = pstate.shrink_counter.get(comm_id, 0)
    pstate.shrink_counter[comm_id] = instance + 1
    adict = {"comm": comm_id, "instance": instance}
    monitored = [
        (MonitoredKind.COLLECTIVE, "mpi_comm_shrink"),
        (MonitoredKind.COMM, comm_id),
    ]
    info = _prologue(interp, ctx, node, "mpi_comm_shrink", instrumented,
                     monitored, adict)
    if info.skipped:
        _epilogue(interp, ctx, node, "mpi_comm_shrink", info, instrumented, adict)
        return comm_id
    yield Step(interp.cm.mpi_call)
    ft.shrink_arrive(comm_id, instance, ctx.proc.rank)
    yield Block(
        f"mpi_comm_shrink({comm_id}) instance {instance} at rank {ctx.proc.rank}",
        lambda: ft.shrink_complete(comm_id, instance),
    )
    new_cid = ft.shrink_result(comm_id, instance)
    ctx.charge(interp.cm.barrier)
    _epilogue(interp, ctx, node, "mpi_comm_shrink", info, instrumented,
              dict(adict, new_comm=new_cid))
    return new_cid


BUILTINS = {
    "mpi_init": mpi_init,
    "mpi_init_thread": mpi_init_thread,
    "mpi_finalize": mpi_finalize,
    "mpi_comm_rank": mpi_comm_rank,
    "mpi_comm_size": mpi_comm_size,
    "mpi_wtime": mpi_wtime,
    "mpi_is_thread_main": mpi_is_thread_main,
    "mpi_initialized": mpi_initialized,
    "mpi_send": mpi_send,
    "mpi_ssend": mpi_ssend,
    "mpi_sendrecv": mpi_sendrecv,
    "mpi_recv": mpi_recv,
    "mpi_isend": mpi_isend,
    "mpi_irecv": mpi_irecv,
    "mpi_wait": mpi_wait,
    "mpi_waitall": mpi_waitall,
    "mpi_test": mpi_test,
    "mpi_probe": mpi_probe,
    "mpi_iprobe": mpi_iprobe,
    "mpi_barrier": mpi_barrier,
    "mpi_bcast": mpi_bcast,
    "mpi_reduce": mpi_reduce,
    "mpi_allreduce": mpi_allreduce,
    "mpi_gather": mpi_gather,
    "mpi_allgather": mpi_allgather,
    "mpi_scatter": mpi_scatter,
    "mpi_alltoall": mpi_alltoall,
    "mpi_comm_dup": mpi_comm_dup,
    "mpi_comm_split": mpi_comm_split,
    "mpi_comm_set_errhandler": mpi_comm_set_errhandler,
    "mpi_comm_get_errhandler": mpi_comm_get_errhandler,
    "mpi_error_string": mpi_error_string,
    "mpi_set_timeout": mpi_set_timeout,
    "mpi_comm_failure_ack": mpi_comm_failure_ack,
    "mpi_comm_revoke": mpi_comm_revoke,
    "mpi_comm_shrink": mpi_comm_shrink,
}
