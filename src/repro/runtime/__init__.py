"""Simulation runtime: scheduler, interpreter, cost model, configuration."""

from .config import ExecutionResult, RunConfig  # noqa: F401
from .costmodel import (  # noqa: F401
    DEFAULT_COST_MODEL,
    HOME_CHARGE,
    ITC_CHARGE,
    MARMOT_CHARGE,
    NO_INSTRUMENTATION,
    CostModel,
    InstrumentationCharge,
)
from .interpreter import Interpreter, ProcessCtx, ThreadCtx  # noqa: F401
from .scheduler import Block, Scheduler, Step, Task  # noqa: F401
from .values import ArrayValue, BinOps, Cell, Scope, as_int, truthy  # noqa: F401


def make_interpreter(program, config: RunConfig) -> Interpreter:
    """Build the interpreter selected by ``config.engine``.

    Both engines produce byte-identical traces; "bytecode" runs the
    compile-once closure-array VM, "ast" the reference tree-walk.
    """
    if config.engine == "bytecode":
        from .bytecode import BytecodeInterpreter

        return BytecodeInterpreter(program, config)
    return Interpreter(program, config)


def reset_sim_counters() -> None:
    """Reset the process-global simulation id counters.

    Cell ids, MPI message ids and communicator ids are process-global
    monotone counters, so two otherwise identical runs in one process
    serialize different ``msg_id``/``comm`` values into their traces.
    Callers that compare traces byte-for-byte across runs (the engine
    differential oracle, the equivalence test suite) call this before
    each run so both start from bit-identical worlds.

    Deliberately does **not** touch the AST node-id counter: programs
    already built would collide with ones built after the reset, and
    the static-analysis memo cache keys on node identity.
    """
    import itertools

    from ..mpi import communicator as _communicator
    from ..mpi import message as _message
    from . import values as _values

    _values._CELL_COUNTER = itertools.count(1)
    _message._MSG_COUNTER = itertools.count(1)
    _communicator._COMM_COUNTER = itertools.count(1)


def run_program(program, config: RunConfig | None = None, **kwargs) -> ExecutionResult:
    """Convenience: run *program* under a fresh interpreter.

    Keyword arguments are forwarded to :class:`RunConfig` when no config
    object is given.
    """
    if config is None:
        config = RunConfig(**kwargs)
    elif kwargs:
        raise TypeError("pass either a RunConfig or keyword overrides, not both")
    return make_interpreter(program, config).run()


__all__ = [
    "RunConfig",
    "ExecutionResult",
    "Interpreter",
    "ProcessCtx",
    "ThreadCtx",
    "Scheduler",
    "Task",
    "Step",
    "Block",
    "CostModel",
    "InstrumentationCharge",
    "DEFAULT_COST_MODEL",
    "NO_INSTRUMENTATION",
    "HOME_CHARGE",
    "MARMOT_CHARGE",
    "ITC_CHARGE",
    "ArrayValue",
    "Cell",
    "Scope",
    "BinOps",
    "truthy",
    "as_int",
    "make_interpreter",
    "reset_sim_counters",
    "run_program",
]
