"""Tree-walking interpreter executing mini-language programs over the
cooperative scheduler.

Each simulated thread runs as a generator; OpenMP directives fork/join
teams, MPI builtins operate on the shared :class:`~repro.mpi.MPIWorld`.
The interpreter is also the event source for all dynamic analyses: it
emits lock/barrier/fork/join/MPI events always, memory-access events
when full monitoring is on (the ITC model), and monitored-variable
writes when executing ``hmpi_*`` wrapper calls (HOME's instrumentation).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..errors import DeadlockError, SchedulerError, SimAbort
from ..events import (
    BarrierEvent,
    CollectiveArrive,
    EventLog,
    FaultEvent,
    LockAcquire,
    LockRelease,
    MemAccess,
    ThreadBegin,
    ThreadEnd,
    ThreadFork,
    ThreadJoin,
)
from ..events.event import COLLECTIVE_OPS
from ..events.intern import intern_loc
from ..faults import FaultInjector
from ..minilang import ast_nodes as A
from ..mpi import LANGUAGE_CONSTANTS, MPIWorld
from ..mpi.deadlock import diagnose
from ..omp import (
    ForState,
    LockTable,
    SectionsState,
    SingleState,
    Team,
    check_iteration_budget,
    static_chunks,
)
from .config import ExecutionResult, RunConfig
from .scheduler import Block, Scheduler, Step
from .values import ArrayValue, BinOps, Cell, Scope, as_int, truthy

_RETURN = "return"

#: reduction operator -> (identity value, combine function)
_REDUCTION_SEMANTICS = {
    "+": (0, lambda a, b: a + b),
    "*": (1, lambda a, b: a * b),
    "min": (float("inf"), lambda a, b: min(a, b)),
    "max": (float("-inf"), lambda a, b: max(a, b)),
}

Flow = Optional[Tuple[str, Any]]
Gen = Generator  # alias for brevity in signatures


class ProcessCtx:
    """Per-process interpreter state (one MPI rank)."""

    def __init__(self, interp: "Interpreter", rank: int) -> None:
        self.interp = interp
        self.rank = rank
        self.globals = Scope()
        self.locks = LockTable(rank)
        self.mpi = interp.world.proc(rank)
        self._tid_counter = itertools.count(1)  # 0 is the main thread
        self.default_threads = interp.config.num_threads
        #: spawned (pthread-style) threads: handle -> state dict
        self.pthreads: Dict[int, dict] = {}
        self._pthread_handle = itertools.count(1)
        #: count of live explicitly spawned threads
        self.live_pthreads = 0
        #: set once the process ever spawned an explicit thread — memory
        #: monitoring then stays on (conservative: join edges order any
        #: post-join accesses, so no false positives arise)
        self.ever_pthreads = False
        for cname, cvalue in LANGUAGE_CONSTANTS.items():
            self.globals.declare(cname, cvalue)

    def fresh_tid(self) -> int:
        return next(self._tid_counter)


class ThreadCtx:
    """Per-thread interpreter state."""

    __slots__ = (
        "proc", "tid", "scope", "team", "team_index", "held_locks",
        "call_depth", "task", "construct_visits", "is_pthread",
        "handler_depth", "serialized_depth",
    )

    def __init__(
        self,
        proc: ProcessCtx,
        tid: int,
        scope: Scope,
        team: Optional[Team] = None,
        team_index: int = 0,
    ) -> None:
        self.proc = proc
        self.tid = tid
        self.scope = scope
        self.team = team
        self.team_index = team_index
        self.held_locks: List[str] = []
        self.call_depth = 0
        self.task = None  # linked after Scheduler.spawn
        #: per-thread visit counters for worksharing construct instances
        self.construct_visits: Dict[int, int] = {}
        #: True for explicitly spawned (pthread-style) threads
        self.is_pthread = False
        #: nesting depth of MPI error-handler invocations on this thread
        self.handler_depth = 0
        #: nesting depth of master / claimed-single bodies — MPI
        #: collectives issued here are the sanctioned funneled pattern,
        #: not a per-thread collective arrival
        self.serialized_depth = 0

    # -- clock --------------------------------------------------------------

    @property
    def clock(self) -> float:
        return self.task.clock

    def advance_to(self, t: float) -> None:
        if t > self.task.clock:
            self.task.clock = t

    def charge(self, cost: float) -> None:
        """Accrue cost without a scheduling point."""
        self.task.clock += cost

    # -- misc -----------------------------------------------------------------

    @property
    def in_parallel(self) -> bool:
        """True when other threads may access this thread's shared state:
        inside a multi-thread OpenMP team, on a spawned thread, or while
        the process has live spawned threads."""
        if self.is_pthread or self.proc.ever_pthreads:
            return True
        team = self.team
        while team is not None:
            if team.size > 1:
                return True
            team = team.parent
        return False

    @property
    def is_main_thread(self) -> bool:
        return self.tid == self.proc.mpi.main_thread

    def visit(self, nid: int) -> int:
        """Per-thread visit counter for a worksharing construct node."""
        count = self.construct_visits.get(nid, 0)
        self.construct_visits[nid] = count + 1
        return count


class Interpreter:
    """Executes one program across ``config.nprocs`` simulated processes."""

    def __init__(self, program: A.Program, config: RunConfig) -> None:
        self.program = program
        self.config = config
        self.cm = config.cost_model
        self.charge_cfg = config.charge
        self.world = MPIWorld(config.nprocs)
        self.faults = FaultInjector(
            config.fault_plan, config.nprocs, seed=config.seed
        )
        self.scheduler = Scheduler(
            seed=config.seed,
            policy=config.schedule_policy,
            max_steps=config.max_steps,
            max_wall_seconds=config.max_wall_seconds,
        )
        # When the whole job stalls, let the FT layer time out the
        # earliest armed waiter instead of declaring deadlock.  With no
        # retry policies set this never fires and deadlock detection is
        # unchanged.
        self.scheduler.stall_handler = self.world.ft.escape_earliest
        self.log = EventLog()
        #: bound list.append — emission is the single hottest call site
        #: in the interpreter, so skip the EventLog method dispatch
        self._log_append = self.log.raw_append()
        self.outputs: List[tuple] = []
        self.notes: List[str] = []
        self.procs: List[ProcessCtx] = []
        self._call_id = itertools.count(1)
        self._team_id = itertools.count(1)
        self._functions = {fn.name: fn for fn in program.functions}
        self._mpi_calls = 0
        # MPI builtin table is installed lazily to avoid an import cycle.
        from . import mpi_builtins

        self._mpi_table = mpi_builtins.BUILTINS

    # -- event helpers ------------------------------------------------------

    def emit(self, ctor, ctx: ThreadCtx, **fields) -> None:
        self._log_append(
            ctor(
                proc=ctx.proc.rank,
                thread=ctx.tid,
                seq=self.log.next_seq(),
                time=ctx.clock,
                **fields,
            )
        )

    def emit_batch(self, events) -> None:
        """Append pre-built events in one call.

        Wrappers that emit several events per MPI call (one
        ``MonitoredWrite`` per monitored variable plus the call bracket)
        construct the ``__slots__``-ed event objects themselves —
        allocating seqs via :meth:`EventLog.next_seq` in emission order
        — and land them with a single ``list.extend``.
        """
        self.log.extend(events)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def fault_fired(self, ctx: "ThreadCtx", spec, detail: str, op: str = "") -> None:
        """Record one fired fault: trace event + run note + injector log."""
        self.faults.record(spec, ctx.proc.rank, detail)
        self.emit(FaultEvent, ctx, kind=spec.kind, detail=detail, op=op)
        self.note(f"fault injected: {detail}")

    def next_call_id(self) -> int:
        self._mpi_calls += 1
        return next(self._call_id)

    def _collective_arrive(
        self, ctx: "ThreadCtx", node: A.Node, kind: str, op: str = ""
    ) -> None:
        """PARCOACH-style confirm pass: record that this team member
        encountered a collective construct.

        Called at *encounter*, before any blocking, so divergent
        arrivals are in the ledger and on the trace even when the run
        subsequently deadlocks.  Off unless the run config enables
        collective monitoring, and narrowable to the static divergence
        candidates' site locs.
        """
        config = self.config
        if not config.monitor_collectives:
            return
        team = ctx.team
        if team is None or team.size < 2:
            return
        if kind == "mpi" and ctx.serialized_depth > 0:
            # funneled MPI collective under master/single: one arrival
            # on behalf of the whole team, the sanctioned pattern
            return
        loc = intern_loc(node.loc)
        sites = config.collective_sites
        if sites is not None and loc not in sites:
            return
        index = team.collectives.record(ctx.team_index, kind, loc, op)
        self.emit(
            CollectiveArrive, ctx, team=team.team_id, kind=kind, op=op,
            callsite=node.nid, loc=loc, index=index,
        )

    def _collective_close(self, ctx: "ThreadCtx") -> None:
        """Mark this member's collective sequence complete (it reached
        the end of the region body)."""
        if self.config.monitor_collectives and ctx.team is not None:
            ctx.team.collectives.close(ctx.team_index)

    # -- top level ------------------------------------------------------------

    def run(self) -> ExecutionResult:
        for rank in range(self.config.nprocs):
            pctx = ProcessCtx(self, rank)
            self.procs.append(pctx)
            ctx = ThreadCtx(pctx, tid=0, scope=Scope(parent=pctx.globals))
            task = self.scheduler.spawn(f"p{rank}.main", rank, 0, self._main_task(ctx))
            ctx.task = task

        result = ExecutionResult(self.program.name, self.config)
        try:
            self.scheduler.run()
        except DeadlockError as err:
            if self.config.raise_on_deadlock:
                raise
            result.deadlock = diagnose(err.blocked)
        except SchedulerError as err:
            # Step/wall budget exhaustion: the partial trace is still a
            # valid prefix of the execution — salvage it when asked.
            if not self.config.capture_partial:
                raise
            result.failure = str(err)
        result.log = self.log
        result.outputs = self.outputs
        result.notes = self.notes
        result.makespan = self.scheduler.makespan()
        result.proc_clocks = self.scheduler.clocks_by_process()
        result.stats = {
            "scheduler_steps": self.scheduler.total_steps,
            "messages_sent": self.world.messages_sent,
            "mpi_calls": self._mpi_calls,
            "events": len(self.log),
        }
        if self.faults.enabled:
            result.stats["faults"] = self.faults.summary()
            result.stats["faults_injected"] = list(self.faults.injected)
        return result

    def _main_task(self, ctx: ThreadCtx) -> Gen:
        try:
            # Program globals are per-process (each rank has its own copy,
            # like distinct address spaces).
            for decl in self.program.globals:
                yield from self._exec_vardecl(decl, ctx, target=ctx.proc.globals)
            main = self._functions.get("main")
            if main is None:
                raise SimAbort(f"program {self.program.name!r} has no main()")
            yield from self._call_user(main, [], ctx)
        except SimAbort as err:
            self.note(f"rank {ctx.proc.rank}: aborted: {err}")

    # -- statement execution -------------------------------------------------

    def _exec_block(self, block: A.Block, ctx: ThreadCtx, new_scope: bool = True) -> Gen:
        if new_scope:
            saved = ctx.scope
            ctx.scope = Scope(parent=saved)
        flow: Flow = None
        try:
            for stmt in block.stmts:
                flow = yield from self._exec_stmt(stmt, ctx)
                if flow is not None:
                    break
        finally:
            if new_scope:
                ctx.scope = saved
        return flow

    def _exec_stmt(self, node: A.Stmt, ctx: ThreadCtx) -> Gen:
        yield Step(self.cm.stmt)
        if isinstance(node, A.VarDecl):
            yield from self._exec_vardecl(node, ctx, target=ctx.scope)
            return None
        if isinstance(node, A.Assign):
            yield from self._exec_assign(node, ctx)
            return None
        if isinstance(node, A.ExprStmt):
            yield from self._eval(node.expr, ctx)
            return None
        if isinstance(node, A.If):
            cond = yield from self._eval(node.cond, ctx)
            if truthy(cond):
                return (yield from self._exec_block(node.then, ctx))
            if node.els is not None:
                els = node.els if isinstance(node.els, A.Block) else A.Block([node.els])
                return (yield from self._exec_block(els, ctx))
            return None
        if isinstance(node, A.While):
            while True:
                cond = yield from self._eval(node.cond, ctx)
                if not truthy(cond):
                    return None
                flow = yield from self._exec_block(node.body, ctx)
                if flow is not None:
                    return flow
                yield Step(self.cm.stmt)
        if isinstance(node, A.For):
            return (yield from self._exec_for(node, ctx))
        if isinstance(node, A.Return):
            value = None
            if node.value is not None:
                value = yield from self._eval(node.value, ctx)
            return (_RETURN, value)
        if isinstance(node, A.Print):
            parts = []
            for arg in node.args:
                val = yield from self._eval(arg, ctx)
                parts.append(str(val))
            self.outputs.append((ctx.proc.rank, ctx.tid, " ".join(parts)))
            return None
        if isinstance(node, A.AssertStmt):
            cond = yield from self._eval(node.cond, ctx)
            if not truthy(cond):
                raise SimAbort(f"assertion failed at {node.loc}")
            return None
        if isinstance(node, A.Block):
            return (yield from self._exec_block(node, ctx))
        if isinstance(node, A.OmpParallel):
            yield from self._exec_parallel(node, ctx)
            return None
        if isinstance(node, A.OmpFor):
            return (yield from self._exec_omp_for(node, ctx))
        if isinstance(node, A.OmpSections):
            return (yield from self._exec_omp_sections(node, ctx))
        if isinstance(node, A.OmpCritical):
            return (yield from self._exec_critical(node, ctx))
        if isinstance(node, A.OmpBarrier):
            self._collective_arrive(ctx, node, "barrier")
            yield from self._team_barrier(ctx)
            return None
        if isinstance(node, A.OmpSingle):
            return (yield from self._exec_single(node, ctx))
        if isinstance(node, A.OmpMaster):
            if ctx.team is None or ctx.team_index == 0:
                ctx.serialized_depth += 1
                try:
                    return (yield from self._exec_block(node.body, ctx))
                finally:
                    ctx.serialized_depth -= 1
            return None
        if isinstance(node, A.OmpAtomic):
            return (yield from self._exec_atomic(node, ctx))
        raise SimAbort(f"cannot execute statement {type(node).__name__}")

    def _exec_vardecl(self, node: A.VarDecl, ctx: ThreadCtx, target: Scope) -> Gen:
        if node.size is not None:
            size_val = yield from self._eval(node.size, ctx)
            value: Any = ArrayValue(as_int(size_val, "array size"))
        elif node.init is not None:
            value = yield from self._eval(node.init, ctx)
        else:
            value = 0
        target.declare(node.name, value)
        return None

    def _exec_assign(self, node: A.Assign, ctx: ThreadCtx) -> Gen:
        value = yield from self._eval(node.value, ctx)
        yield from self._store(node.target, value, ctx)
        return None

    def _store(self, target: A.Expr, value: Any, ctx: ThreadCtx) -> Gen:
        if isinstance(target, A.Name):
            cell = ctx.scope.lookup(target.ident)
            self._mem_access(ctx, cell, is_write=True, callsite=target.nid)
            cell.value = value
            return None
        if isinstance(target, A.Index):
            arr, cell = yield from self._eval_array(target.base, ctx)
            index = yield from self._eval(target.index, ctx)
            idx = as_int(index, "array index")
            if cell is not None:
                self._mem_access(ctx, cell, is_write=True, callsite=target.nid, index=idx)
            arr.set(idx, value)
            return None
        raise SimAbort("invalid assignment target")

    def _exec_for(self, node: A.For, ctx: ThreadCtx) -> Gen:
        saved = ctx.scope
        ctx.scope = Scope(parent=saved)
        try:
            if node.init is not None:
                if isinstance(node.init, A.VarDecl):
                    yield from self._exec_vardecl(node.init, ctx, target=ctx.scope)
                else:
                    flow = yield from self._exec_stmt(node.init, ctx)
                    if flow is not None:
                        return flow
            while True:
                if node.cond is not None:
                    cond = yield from self._eval(node.cond, ctx)
                    if not truthy(cond):
                        return None
                flow = yield from self._exec_block(node.body, ctx)
                if flow is not None:
                    return flow
                if node.step is not None:
                    flow = yield from self._exec_stmt(node.step, ctx)
                    if flow is not None:
                        return flow
                else:
                    yield Step(self.cm.stmt)
        finally:
            ctx.scope = saved

    # -- OpenMP ------------------------------------------------------------

    def _exec_parallel(self, node: A.OmpParallel, ctx: ThreadCtx) -> Gen:
        pctx = ctx.proc
        if node.num_threads is not None:
            nt_val = yield from self._eval(node.num_threads, ctx)
            nthreads = as_int(nt_val, "num_threads")
        else:
            nthreads = pctx.default_threads
        if nthreads < 1:
            raise SimAbort(f"num_threads must be >= 1, got {nthreads}")

        # Everything visible at region entry is shared by default.
        for cell in ctx.scope.visible_cells():
            cell.shared = True

        team = Team(pctx.rank, nthreads, ctx.tid, ctx.team, next(self._team_id))
        fork_cost = self.cm.fork_per_thread * nthreads
        instr_cost = self.charge_cfg.per_thread_setup * nthreads
        yield Step(fork_cost + instr_cost)

        reduction_outers = [
            (op, nm, ctx.scope.lookup(nm)) for op, nm in node.reductions
        ]

        def member_scope() -> Scope:
            scope = Scope(parent=ctx.scope)
            for nm in node.private:
                scope.declare(nm, 0)
            for nm in node.firstprivate:
                outer = ctx.scope.lookup(nm)
                init = outer.value
                if isinstance(init, ArrayValue):
                    copy = ArrayValue(len(init))
                    copy.load(init.snapshot())
                    init = copy
                scope.declare(nm, init)
            for op, nm, _outer in reduction_outers:
                scope.declare(nm, _REDUCTION_SEMANTICS[op][0])
            return scope

        worker_tids: List[int] = []
        for index in range(1, nthreads):
            tid = pctx.fresh_tid()
            team.register_worker(index, tid)
            wctx = ThreadCtx(pctx, tid, member_scope(), team, index)
            task = self.scheduler.spawn(
                f"p{pctx.rank}.t{tid}", pctx.rank, tid,
                self._worker_body(node, wctx, reduction_outers),
                start_clock=ctx.clock,
            )
            wctx.task = task
            worker_tids.append(tid)

        self.emit(ThreadFork, ctx, team=team.team_id, children=tuple(worker_tids))

        # Worksharing-instance visit counters are scoped to the team:
        # workers start with fresh ThreadCtx objects, so the master must
        # also enter the region with a clean counter set (otherwise its
        # counters from earlier regions desynchronize single/sections/
        # dynamic-for instance keys against the workers\').
        saved = (ctx.scope, ctx.team, ctx.team_index, ctx.construct_visits)
        ctx.scope = member_scope()
        ctx.team, ctx.team_index = team, 0
        ctx.construct_visits = {}
        try:
            flow = yield from self._exec_block(node.body, ctx, new_scope=False)
            if flow is not None:
                raise SimAbort(f"return inside omp parallel at {node.loc}")
            yield from self._fold_reductions(ctx, reduction_outers)
            self._collective_close(ctx)
        finally:
            team.final_clocks[0] = ctx.clock
            ctx.scope, ctx.team, ctx.team_index, ctx.construct_visits = saved

        yield Block("join omp parallel team", lambda: team.all_workers_done)
        ctx.advance_to(max(team.final_clocks))
        ctx.charge(self.cm.barrier)
        self.emit(ThreadJoin, ctx, team=team.team_id, children=tuple(worker_tids))
        if self.config.monitor_collectives and team.size > 1:
            mismatch = team.collectives.first_mismatch()
            if mismatch is not None:
                idx, a, b = mismatch
                self.note(
                    f"rank {pctx.rank} team {team.team_id}: collective "
                    f"arrival mismatch at position {idx} between members "
                    f"{a} and {b}"
                )
        return None

    def _worker_body(self, node: A.OmpParallel, wctx: ThreadCtx,
                     reduction_outers=()) -> Gen:
        self.emit(ThreadBegin, wctx, team=wctx.team.team_id, parent=wctx.team.master_tid)
        try:
            flow = yield from self._exec_block(node.body, wctx, new_scope=False)
            if flow is not None:
                raise SimAbort(f"return inside omp parallel at {node.loc}")
            yield from self._fold_reductions(wctx, reduction_outers)
            self._collective_close(wctx)
        except SimAbort as err:
            self.note(f"rank {wctx.proc.rank} thread {wctx.tid}: aborted: {err}")
        finally:
            self.emit(ThreadEnd, wctx, team=wctx.team.team_id)
            wctx.team.worker_done(wctx.team_index, wctx.clock)

    def _fold_reductions(self, ctx: ThreadCtx, reduction_outers) -> Gen:
        """Combine a member's private reduction partials into the shared
        variables under the process atomic lock (the synchronization a
        real OpenMP runtime performs, visible to the analyses)."""
        if not reduction_outers:
            return None
        lock = ctx.proc.locks.atomic()
        yield from self._acquire(lock, ctx, "omp reduction")
        try:
            for op, nm, outer in reduction_outers:
                partial = ctx.scope.lookup(nm).value
                combine = _REDUCTION_SEMANTICS[op][1]
                self._mem_access(ctx, outer, is_write=True, callsite=0)
                outer.value = combine(outer.value, partial)
        finally:
            self._release(lock, ctx)
        return None

    def _loop_header(self, loop: A.For, ctx: ThreadCtx) -> Gen:
        """Evaluate an ``omp for`` header into (varname, iteration list)."""
        init = loop.init
        if isinstance(init, A.VarDecl) and init.init is not None:
            var = init.name
            start = yield from self._eval(init.init, ctx)
        elif isinstance(init, A.Assign) and isinstance(init.target, A.Name):
            var = init.target.ident
            start = yield from self._eval(init.value, ctx)
        else:
            raise SimAbort(f"omp for at {loop.loc}: unsupported init form")
        cond = loop.cond
        if not (isinstance(cond, A.Binary) and isinstance(cond.left, A.Name)
                and cond.left.ident == var and cond.op in ("<", "<=", ">", ">=")):
            raise SimAbort(f"omp for at {loop.loc}: condition must test the loop variable")
        bound = yield from self._eval(cond.right, ctx)
        step_stmt = loop.step
        if not (isinstance(step_stmt, A.Assign) and isinstance(step_stmt.target, A.Name)
                and step_stmt.target.ident == var
                and isinstance(step_stmt.value, A.Binary)
                and step_stmt.value.op in ("+", "-")):
            raise SimAbort(f"omp for at {loop.loc}: unsupported step form")
        sval = step_stmt.value
        if isinstance(sval.left, A.Name) and sval.left.ident == var:
            inc = yield from self._eval(sval.right, ctx)
        elif isinstance(sval.right, A.Name) and sval.right.ident == var and sval.op == "+":
            inc = yield from self._eval(sval.left, ctx)
        else:
            raise SimAbort(f"omp for at {loop.loc}: unsupported step form")
        inc = as_int(inc, "loop step")
        if sval.op == "-":
            inc = -inc
        if inc == 0:
            raise SimAbort(f"omp for at {loop.loc}: zero loop step")
        start = as_int(start, "loop start")
        bound = as_int(bound, "loop bound")
        # lazy ranges, not materialized lists: a generated loop header
        # may span billions of iterations, and the budget guard below
        # must fire before any allocation proportional to the span
        empty = range(0)
        if cond.op == "<":
            iters = range(start, bound, inc) if inc > 0 else empty
        elif cond.op == "<=":
            iters = range(start, bound + 1, inc) if inc > 0 else empty
        elif cond.op == ">":
            iters = range(start, bound, inc) if inc < 0 else empty
        else:  # >=
            iters = range(start, bound - 1, inc) if inc < 0 else empty
        return var, iters

    def _exec_omp_for(self, node: A.OmpFor, ctx: ThreadCtx) -> Gen:
        self._collective_arrive(ctx, node, "for")
        var, iterations = yield from self._loop_header(node.loop, ctx)
        check_iteration_budget(
            len(iterations), self.config.max_steps, node.loc
        )
        team = ctx.team
        chunk = None
        if node.chunk is not None:
            cval = yield from self._eval(node.chunk, ctx)
            chunk = max(1, as_int(cval, "chunk"))

        # reduction(...) clause: shadow each variable with a per-thread
        # partial for the duration of the loop, folded before the barrier.
        reduction_outers = [
            (op, nm, ctx.scope.lookup(nm)) for op, nm in node.reductions
        ]
        loop_scope: Optional[Scope] = None
        if reduction_outers:
            loop_scope = Scope(parent=ctx.scope)
            for op, nm, _outer in reduction_outers:
                loop_scope.declare(nm, _REDUCTION_SEMANTICS[op][0])
            ctx.scope = loop_scope

        def run_iteration(i: int) -> Gen:
            saved = ctx.scope
            ctx.scope = Scope(parent=saved)
            ctx.scope.declare(var, i)
            try:
                flow = yield from self._exec_block(node.loop.body, ctx)
                if flow is not None:
                    raise SimAbort(f"return inside omp for at {node.loc}")
            finally:
                ctx.scope = saved

        try:
            if team is None or team.size == 1:
                for i in iterations:
                    yield from run_iteration(i)
            elif node.schedule == "static":
                key = (node.nid, ctx.visit(node.nid))
                for i in static_chunks(iterations, team.size, ctx.team_index, chunk):
                    yield from run_iteration(i)
            else:  # dynamic
                key = (node.nid, ctx.visit(node.nid))
                state = team.construct_state(key, lambda: ForState(iterations))
                grab = chunk or 1
                while True:
                    batch = state.grab(grab)
                    if not batch:
                        break
                    for i in batch:
                        yield from run_iteration(i)
            yield from self._fold_reductions(ctx, reduction_outers)
        finally:
            if loop_scope is not None:
                ctx.scope = loop_scope.parent
        if not node.nowait:
            yield from self._team_barrier(ctx)
        return None

    def _exec_omp_sections(self, node: A.OmpSections, ctx: ThreadCtx) -> Gen:
        self._collective_arrive(ctx, node, "sections")
        team = ctx.team
        if team is None or team.size == 1:
            for section in node.sections:
                flow = yield from self._exec_block(section, ctx)
                if flow is not None:
                    return flow
            return None
        key = (node.nid, ctx.visit(node.nid))
        state = team.construct_state(key, lambda: SectionsState(len(node.sections)))
        while True:
            idx = state.grab()
            if idx is None:
                break
            flow = yield from self._exec_block(node.sections[idx], ctx)
            if flow is not None:
                raise SimAbort(f"return inside omp sections at {node.loc}")
        if not node.nowait:
            yield from self._team_barrier(ctx)
        return None

    def _exec_single(self, node: A.OmpSingle, ctx: ThreadCtx) -> Gen:
        self._collective_arrive(ctx, node, "single")
        team = ctx.team
        if team is None or team.size == 1:
            flow = yield from self._exec_block(node.body, ctx)
            if flow is not None:
                return flow
            return None
        key = (node.nid, ctx.visit(node.nid))
        state = team.construct_state(key, lambda: SingleState())
        if state.try_claim():
            ctx.serialized_depth += 1
            try:
                flow = yield from self._exec_block(node.body, ctx)
            finally:
                ctx.serialized_depth -= 1
            if flow is not None:
                raise SimAbort(f"return inside omp single at {node.loc}")
        if not node.nowait:
            yield from self._team_barrier(ctx)
        return None

    def _acquire(self, lock, ctx: ThreadCtx, reason: str) -> Gen:
        yield Block(reason, lambda: not lock.held)
        now = lock.acquire(ctx.tid, ctx.clock)
        ctx.advance_to(now)
        ctx.charge(self.cm.lock)
        if self.faults.enabled:
            jitter, spec = self.faults.lock_jitter(ctx.proc.rank)
            if spec is not None:
                ctx.charge(jitter)
                self.faults.record(
                    spec, ctx.proc.rank,
                    f"lock {lock.name!r} acquire jittered by {jitter:.2f}",
                )
        ctx.held_locks.append(lock.name)
        self.emit(LockAcquire, ctx, lock=lock.name)

    def _release(self, lock, ctx: ThreadCtx) -> None:
        lock.release(ctx.tid, ctx.clock)
        ctx.charge(self.cm.lock)
        ctx.held_locks.remove(lock.name)
        self.emit(LockRelease, ctx, lock=lock.name)

    def _exec_critical(self, node: A.OmpCritical, ctx: ThreadCtx) -> Gen:
        lock = ctx.proc.locks.critical(node.name)
        yield from self._acquire(lock, ctx, f"omp critical ({node.name or 'anon'})")
        try:
            flow = yield from self._exec_block(node.body, ctx)
        finally:
            self._release(lock, ctx)
        return flow

    def _exec_atomic(self, node: A.OmpAtomic, ctx: ThreadCtx) -> Gen:
        lock = ctx.proc.locks.atomic()
        yield from self._acquire(lock, ctx, "omp atomic")
        try:
            yield from self._exec_assign(node.stmt, ctx)
        finally:
            self._release(lock, ctx)
        return None

    def _team_barrier(self, ctx: ThreadCtx) -> Gen:
        team = ctx.team
        if team is None or team.size == 1:
            ctx.charge(self.cm.barrier)
            return None
        epoch = team.barrier.arrive(ctx.clock)
        yield Block("omp barrier", lambda: team.barrier.passed(epoch))
        ctx.advance_to(team.barrier.release_time)
        ctx.charge(self.cm.barrier)
        self.emit(BarrierEvent, ctx, team=team.team_id, epoch=epoch)
        return None

    # -- expressions ------------------------------------------------------------

    def _mem_access(
        self, ctx: ThreadCtx, cell: Cell, is_write: bool, callsite: int,
        index: int = -1,
    ) -> None:
        """Record (and charge for) a monitored shared-memory access.

        Array accesses carry their element index so the race analyses are
        address-granular, like a real binary-instrumentation checker.
        """
        if not self.config.monitor_memory:
            return
        if not cell.shared or not ctx.in_parallel:
            return
        monitored = self.config.monitored_vars
        if monitored is not None and cell.name not in monitored:
            return
        ctx.charge(self.charge_cfg.mem_event_cost)
        self.emit(
            MemAccess, ctx,
            is_write=is_write, cell=cell.cid, var=cell.name, callsite=callsite,
            index=index,
        )

    def _eval(self, node: A.Expr, ctx: ThreadCtx) -> Gen:
        if isinstance(node, A.IntLit):
            return node.value
        if isinstance(node, A.FloatLit):
            return node.value
        if isinstance(node, A.BoolLit):
            return node.value
        if isinstance(node, A.StrLit):
            return node.value
        if isinstance(node, A.Name):
            cell = ctx.scope.lookup(node.ident)
            self._mem_access(ctx, cell, is_write=False, callsite=node.nid)
            return cell.value
        if isinstance(node, A.Index):
            arr, cell = yield from self._eval_array(node.base, ctx)
            index = yield from self._eval(node.index, ctx)
            idx = as_int(index, "array index")
            if cell is not None:
                self._mem_access(ctx, cell, is_write=False, callsite=node.nid, index=idx)
            return arr.get(idx)
        if isinstance(node, A.Unary):
            operand = yield from self._eval(node.operand, ctx)
            return BinOps.apply_unary(node.op, operand)
        if isinstance(node, A.Binary):
            left = yield from self._eval(node.left, ctx)
            if node.op == "&&":
                if not truthy(left):
                    return False
                right = yield from self._eval(node.right, ctx)
                return truthy(right)
            if node.op == "||":
                if truthy(left):
                    return True
                right = yield from self._eval(node.right, ctx)
                return truthy(right)
            right = yield from self._eval(node.right, ctx)
            return BinOps.apply(node.op, left, right)
        if isinstance(node, A.CallExpr):
            return (yield from self._eval_call(node, ctx))
        raise SimAbort(f"cannot evaluate expression {type(node).__name__}")

    def _eval_array(self, base: A.Expr, ctx: ThreadCtx) -> Gen:
        """Evaluate an array-valued expression, returning (array, cell|None)."""
        if isinstance(base, A.Name):
            cell = ctx.scope.lookup(base.ident)
            arr = cell.value
            if not isinstance(arr, ArrayValue):
                raise SimAbort(f"{base.ident!r} is not an array")
            return arr, cell
        value = yield from self._eval(base, ctx)
        if not isinstance(value, ArrayValue):
            raise SimAbort("indexed expression is not an array")
        return value, None

    # -- calls --------------------------------------------------------------

    def _eval_call(self, node: A.CallExpr, ctx: ThreadCtx) -> Gen:
        name = node.name
        # HOME's instrumented wrappers and plain MPI builtins.
        if name.startswith("hmpi_") or name.startswith("mpi_"):
            op = name[1:] if name.startswith("hmpi_") else name
            handler = self._mpi_table.get(op)
            if handler is not None:
                args = []
                for arg in node.args:
                    val = yield from self._eval(arg, ctx)
                    args.append(val)
                if op in COLLECTIVE_OPS:
                    # an MPI collective issued from inside a team is a
                    # per-thread collective arrival (PARCOACH matching)
                    self._collective_arrive(ctx, node, "mpi", op=op)
                instrumented = name.startswith("hmpi_")
                return (yield from handler(self, ctx, node, args, instrumented))
        builtin = _SIMPLE_BUILTINS.get(name)
        if builtin is not None:
            args = []
            for arg in node.args:
                val = yield from self._eval(arg, ctx)
                args.append(val)
            return (yield from builtin(self, ctx, node, args))
        fn = self._functions.get(name)
        if fn is not None:
            args = []
            for arg in node.args:
                val = yield from self._eval(arg, ctx)
                args.append(val)
            return (yield from self._call_user(fn, args, ctx))
        raise SimAbort(f"unknown function {name!r} at {node.loc}")

    def _call_user(self, fn: A.FuncDef, args: List[Any], ctx: ThreadCtx) -> Gen:
        if len(args) != len(fn.params):
            raise SimAbort(
                f"{fn.name}() expects {len(fn.params)} argument(s), got {len(args)}"
            )
        ctx.call_depth += 1
        if ctx.call_depth > self.config.max_call_depth:
            ctx.call_depth -= 1
            raise SimAbort(f"call depth exceeded in {fn.name}()")
        saved = ctx.scope
        ctx.scope = Scope(parent=ctx.proc.globals)
        for pname, pval in zip(fn.params, args):
            ctx.scope.declare(pname, pval)
        try:
            flow = yield from self._exec_block(fn.body, ctx, new_scope=False)
        finally:
            ctx.scope = saved
            ctx.call_depth -= 1
        if flow is not None and flow[0] == _RETURN:
            return flow[1]
        return 0


    # -- pthread-style explicit threads ------------------------------------
    #
    # The paper lists "extending HOME to handle ... PThreads" as future
    # work; these builtins implement that model: free-form threads that
    # share the process address space without an OpenMP team.  Fork/join
    # events reuse the team-event vocabulary (a one-child pseudo-team),
    # so the happens-before pass needs no special cases.

    def _spawn_pthread(self, ctx: ThreadCtx, fname: str, arg: Any) -> int:
        fn = self._functions.get(fname)
        if fn is None:
            raise SimAbort(f"thread_spawn: unknown function {fname!r}")
        if len(fn.params) != 1:
            raise SimAbort(
                f"thread_spawn: {fname}() must take exactly one parameter"
            )
        pctx = ctx.proc
        handle = next(pctx._pthread_handle)
        tid = pctx.fresh_tid()
        team_id = next(self._team_id)
        state = {"done": False, "result": 0, "tid": tid,
                 "team": team_id, "clock": 0.0}
        pctx.pthreads[handle] = state
        pctx.live_pthreads += 1
        pctx.ever_pthreads = True
        # Everything visible to the spawner (its locals are not passed,
        # but globals are shared) may now be accessed concurrently.
        for cell in ctx.scope.visible_cells():
            cell.shared = True

        tctx = ThreadCtx(pctx, tid, Scope(parent=pctx.globals))
        tctx.is_pthread = True
        ctx.charge(self.cm.fork_per_thread + self.charge_cfg.per_thread_setup)
        task = self.scheduler.spawn(
            f"p{pctx.rank}.pt{tid}", pctx.rank, tid,
            self._pthread_body(fn, arg, tctx, state, team_id),
            start_clock=ctx.clock,
        )
        tctx.task = task
        self.emit(ThreadFork, ctx, team=team_id, children=(tid,))
        return handle

    def _pthread_body(self, fn: A.FuncDef, arg: Any, tctx: ThreadCtx,
                      state: dict, team_id: int) -> Gen:
        self.emit(ThreadBegin, tctx, team=team_id, parent=0)
        try:
            result = yield from self._call_user(fn, [arg], tctx)
            state["result"] = result
        except SimAbort as err:
            self.note(f"rank {tctx.proc.rank} thread {tctx.tid}: aborted: {err}")
        finally:
            self.emit(ThreadEnd, tctx, team=team_id)
            state["done"] = True
            state["clock"] = tctx.clock
            tctx.proc.live_pthreads -= 1

    def _join_pthread(self, ctx: ThreadCtx, handle: int) -> Gen:
        state = ctx.proc.pthreads.get(handle)
        if state is None:
            raise SimAbort(f"thread_join: unknown thread handle {handle}")
        yield Block(
            f"thread_join({handle})", lambda: state["done"]
        )
        ctx.advance_to(state["clock"])
        ctx.charge(self.cm.fork_per_thread)
        self.emit(ThreadJoin, ctx, team=state["team"], children=(state["tid"],))
        return state["result"]


# ---------------------------------------------------------------------------
# Simple (non-MPI) builtins
# ---------------------------------------------------------------------------


def _bi_compute(interp: Interpreter, ctx: ThreadCtx, node, args) -> Gen:
    units = as_int(args[0], "compute units") if args else 1
    yield Step(max(0, units) * interp.cm.compute_unit)
    return 0


def _bi_thread_num(interp, ctx, node, args) -> Gen:
    return ctx.team_index if ctx.team is not None else 0
    yield  # pragma: no cover


def _bi_num_threads(interp, ctx, node, args) -> Gen:
    return ctx.team.size if ctx.team is not None else 1
    yield  # pragma: no cover


def _bi_set_num_threads(interp, ctx, node, args) -> Gen:
    ctx.proc.default_threads = max(1, as_int(args[0], "num threads"))
    return 0
    yield  # pragma: no cover


def _bi_max_threads(interp, ctx, node, args) -> Gen:
    return ctx.proc.default_threads
    yield  # pragma: no cover


def _lock_name(args) -> str:
    if not args or not isinstance(args[0], str):
        raise SimAbort("lock routines take a lock name string")
    return args[0]


def _bi_init_lock(interp, ctx, node, args) -> Gen:
    ctx.proc.locks.user_lock(_lock_name(args))
    return 0
    yield  # pragma: no cover


def _bi_set_lock(interp: Interpreter, ctx, node, args) -> Gen:
    lock = ctx.proc.locks.user_lock(_lock_name(args))
    yield from interp._acquire(lock, ctx, f"omp_set_lock({lock.name})")
    return 0


def _bi_unset_lock(interp: Interpreter, ctx, node, args) -> Gen:
    lock = ctx.proc.locks.user_lock(_lock_name(args))
    interp._release(lock, ctx)
    return 0
    yield  # pragma: no cover


def _bi_test_lock(interp: Interpreter, ctx, node, args) -> Gen:
    lock = ctx.proc.locks.user_lock(_lock_name(args))
    if lock.held:
        return False
    yield from interp._acquire(lock, ctx, f"omp_test_lock({lock.name})")
    return True


def _bi_array_size(interp, ctx, node, args) -> Gen:
    arr = args[0]
    if not isinstance(arr, ArrayValue):
        raise SimAbort("array_size() requires an array")
    return len(arr)
    yield  # pragma: no cover


def _bi_min(interp, ctx, node, args) -> Gen:
    return min(args)
    yield  # pragma: no cover


def _bi_max(interp, ctx, node, args) -> Gen:
    return max(args)
    yield  # pragma: no cover


def _bi_abs(interp, ctx, node, args) -> Gen:
    return abs(args[0])
    yield  # pragma: no cover


def _bi_thread_spawn(interp: Interpreter, ctx, node, args) -> Gen:
    if len(args) != 2 or not isinstance(args[0], str):
        raise SimAbort('thread_spawn expects ("function_name", arg)')
    yield Step(interp.cm.stmt)
    return interp._spawn_pthread(ctx, args[0], args[1])


def _bi_thread_join(interp: Interpreter, ctx, node, args) -> Gen:
    handle = as_int(args[0], "thread handle")
    return (yield from interp._join_pthread(ctx, handle))


def _bi_monitor_setup(interp, ctx, node, args) -> Gen:
    """MPI_MonitorVariableSetup — cosmetic marker inserted by HOME's
    instrumentation (monitored cells exist implicitly per process)."""
    return 0
    yield  # pragma: no cover


_SIMPLE_BUILTINS = {
    "compute": _bi_compute,
    "omp_get_thread_num": _bi_thread_num,
    "omp_get_num_threads": _bi_num_threads,
    "omp_set_num_threads": _bi_set_num_threads,
    "omp_get_max_threads": _bi_max_threads,
    "omp_init_lock": _bi_init_lock,
    "omp_destroy_lock": _bi_init_lock,
    "omp_set_lock": _bi_set_lock,
    "omp_unset_lock": _bi_unset_lock,
    "omp_test_lock": _bi_test_lock,
    "array_size": _bi_array_size,
    "min": _bi_min,
    "max": _bi_max,
    "abs": _bi_abs,
    "mpi_monitor_setup": _bi_monitor_setup,
    "thread_spawn": _bi_thread_spawn,
    "thread_join": _bi_thread_join,
}
