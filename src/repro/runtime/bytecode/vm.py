"""Bytecode VM: executes closure-compiled programs.

:class:`BytecodeInterpreter` is a drop-in :class:`Interpreter` whose
user-function call path runs compiled code instead of the recursive
tree-walk.  Everything outside the statement/expression hot loop — MPI
builtins, fault injection, lock/barrier/collective bookkeeping, event
emission, the pthread model, run() orchestration — is inherited
unchanged, which is what keeps the two engines byte-identical: they
share one implementation of every scheduling-relevant primitive.

Compilation is memoized per program object (see
:func:`~repro.runtime.bytecode.compiler.compile_program`), so a campaign
cell re-running one program across hundreds of seed/plan cells compiles
it exactly once per worker process.
"""

from __future__ import annotations

from typing import Any, List

from ...errors import SimAbort
from ...minilang import ast_nodes as A
from ..config import RunConfig
from ..interpreter import Interpreter, ThreadCtx
from ..scheduler import Step
from ..values import Scope
from .compiler import compile_program

_RETURN = "return"


class BytecodeInterpreter(Interpreter):
    """Interpreter variant executing compiled closure arrays."""

    def __init__(self, program: A.Program, config: RunConfig) -> None:
        super().__init__(program, config)
        self.compiled = compile_program(program)
        self._codes = self.compiled.codes
        #: interned Step for the per-statement charge (frozen dataclass,
        #: so one instance serves every statement yield)
        self._step_stmt = Step(self.cm.stmt)
        self._monitor = bool(config.monitor_memory)

    def run(self):
        # Pick up config changes made between construction and run();
        # _mem_access re-checks the config, _monitor only gates the call.
        self._monitor = bool(self.config.monitor_memory)
        self._step_stmt = Step(self.cm.stmt)
        return super().run()

    def _call_user(self, fn: A.FuncDef, args: List[Any], ctx: ThreadCtx):
        entry = self._codes.get(fn.name)
        if entry is None or entry.fn is not fn:
            # Defensive: a FuncDef not from self.program (or shadowed by
            # a later duplicate) falls back to the tree-walk.
            return (yield from Interpreter._call_user(self, fn, args, ctx))
        params = fn.params
        if len(args) != len(params):
            raise SimAbort(
                f"{fn.name}() expects {len(params)} argument(s), got {len(args)}"
            )
        ctx.call_depth += 1
        if ctx.call_depth > self.config.max_call_depth:
            ctx.call_depth -= 1
            raise SimAbort(f"call depth exceeded in {fn.name}()")
        saved = ctx.scope
        if entry.needs_frame:
            scope = Scope(parent=ctx.proc.globals)
            declare = scope.declare
            for pname, pval in zip(params, args):
                declare(pname, pval)
            ctx.scope = scope
        else:
            # Frame elided (no params, no top-level declarations):
            # resolution starts at the per-process globals, exactly the
            # chain the tree-walk's empty call scope would delegate to.
            ctx.scope = ctx.proc.globals
        try:
            # Inlined _exec_code: function bodies never carry their own
            # push flag (_compile_body manages scope here), and keeping
            # the statement loop in this frame keeps the call's yield
            # chain one level shallower for every statement executed.
            step = self._step_stmt
            flow = None
            for is_gen, sfn in entry.code[0]:
                yield step
                flow = (
                    (yield from sfn(self, ctx)) if is_gen else sfn(self, ctx)
                )
                if flow is not None:
                    break
        finally:
            ctx.scope = saved
            ctx.call_depth -= 1
        if flow is not None and flow[0] == _RETURN:
            return flow[1]
        return 0
