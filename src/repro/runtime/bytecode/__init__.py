"""Compile-once bytecode/closure-array execution engine.

Public surface:

* :func:`compile_program` — lower a program to closure arrays (memoized
  per program object; shared across campaign cells and serve workers);
* :class:`BytecodeInterpreter` — drop-in interpreter running compiled
  code with byte-identical traces to the tree-walk;
* :func:`clear_compile_cache` — drop memoized compilations (tests).
"""

from .compiler import CompiledProgram, clear_compile_cache, compile_program  # noqa: F401
from .vm import BytecodeInterpreter  # noqa: F401

__all__ = [
    "BytecodeInterpreter",
    "CompiledProgram",
    "clear_compile_cache",
    "compile_program",
]
