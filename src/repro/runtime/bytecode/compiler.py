"""AST -> closure-array compiler for the bytecode execution engine.

The tree-walking interpreter pays for its flexibility on every scheduler
step: each statement re-runs an ``isinstance`` dispatch ladder, each
sub-expression is a suspended generator frame, and each name walks the
scope chain.  This module lowers every function body and OpenMP region
body **once per program** into flat tuples of compiled closures
("instructions") that the VM replays:

* statements compile to ``(is_gen, fn)`` pairs.  ``fn`` is a plain
  closure when the statement cannot reach a scheduling point and a
  generator closure otherwise, so the dispatch loop only builds
  generator frames where a yield can actually occur;
* expression operands, constants and operator dispatch are resolved at
  compile time (literal folding, specialized binary ops, superinstruction
  style fused load/store sequences for the common assignment shapes);
* variable references are resolved to *scope hops* against a compile-time
  model of the lexical scope chain, replacing the per-access name walk
  with ``k`` pointer dereferences plus one dict probe.  Scopes that can
  never receive a declaration are elided entirely.

Byte-identity contract: yield-point placement is computed here so the
compiled program presents the scheduler with *exactly* the same sequence
of :class:`Step`/:class:`Block` yields — same count, same order, same
costs — as ``Interpreter``'s tree-walk, and emits the same events in the
same order.  The scheduler draws one RNG number per step, so any drift
desynchronizes every downstream schedule; the equivalence suite in
``tests/runtime/test_engine_equivalence.py`` pins this down.

The compile-time scope model is conservative: when a name cannot be
resolved statically (conditional declaration, late global), the emitted
closure falls back to the dynamic ``Scope.lookup`` walk, which preserves
tree-walk semantics including the "undefined variable" abort.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from ...errors import SimAbort
from ...events import ThreadBegin, ThreadEnd, ThreadFork, ThreadJoin
from ...events.event import COLLECTIVE_OPS
from ...minilang import ast_nodes as A
from ...mpi import LANGUAGE_CONSTANTS
from ...omp import (
    ForState,
    SectionsState,
    SingleState,
    Team,
    check_iteration_budget,
    static_chunks,
)
from ..interpreter import (
    _REDUCTION_SEMANTICS,
    _SIMPLE_BUILTINS,
    ThreadCtx,
    _bi_compute,
    _lock_name,
)
from ..scheduler import Block, Step
from ..values import ArrayValue, BinOps, Scope, as_int, truthy

#: statement/expression instruction modes
PURE = False  # plain closure, cannot reach a scheduling point
GEN = True  # generator closure, driven with ``yield from``

#: a compiled body: (tuple of (is_gen, fn) statement entries, push-scope flag)
Code = Tuple[Tuple[Tuple[bool, Callable], ...], bool]

_MISSING = object()


# ---------------------------------------------------------------------------
# Dispatch loop
# ---------------------------------------------------------------------------


# The statement-driving loop — one scheduler Step yield per statement
# (the tree-walk's `_exec_stmt` preamble), then the statement closure,
# stopping at the first control-flow signal (("return", v)) — is
# deliberately INLINED at every execution site below rather than hoisted
# into a shared driver generator: each level of `yield from` delegation
# is a frame every later resume must traverse, so a shared driver would
# tax every statement under it on every scheduler step.


def _worker_task(vm, body_code: Code, ret_msg: str, wctx: ThreadCtx,
                 reduction_outers):
    """Compiled analogue of ``Interpreter._worker_body``.

    The region body's statement loop is inlined so a worker's yield
    chain for straight-line region statements is a single generator
    frame deep.
    """
    team = wctx.team
    vm.emit(ThreadBegin, wctx, team=team.team_id, parent=team.master_tid)
    try:
        stmts, push = body_code
        step = vm._step_stmt
        if push:
            saved = wctx.scope
            wctx.scope = Scope(parent=saved)
        try:
            for is_gen, fn in stmts:
                yield step
                flow = (yield from fn(vm, wctx)) if is_gen else fn(vm, wctx)
                if flow is not None:
                    raise SimAbort(ret_msg)
        finally:
            if push:
                wctx.scope = saved
        yield from vm._fold_reductions(wctx, reduction_outers)
        vm._collective_close(wctx)
    except SimAbort as err:
        vm.note(f"rank {wctx.proc.rank} thread {wctx.tid}: aborted: {err}")
    finally:
        vm.emit(ThreadEnd, wctx, team=team.team_id)
        team.worker_done(wctx.team_index, wctx.clock)


# ---------------------------------------------------------------------------
# Compile-time scope model
# ---------------------------------------------------------------------------


class _Frame:
    """Model of one lexical scope during compilation.

    ``materialized`` mirrors whether the runtime pushes a real
    :class:`Scope` for it; only materialized frames count toward hop
    distances.  A frame must be marked before its body is compiled.
    """

    __slots__ = ("parent", "materialized", "names")

    def __init__(self, parent: Optional["_Frame"], materialized: bool) -> None:
        self.parent = parent
        self.materialized = materialized
        self.names: set = set()


def _resolve_hops(frame: Optional[_Frame], ident: str) -> Optional[int]:
    """Number of ``.parent`` hops from ctx.scope to the frame declaring
    *ident*, or None when the model cannot place it."""
    hops = 0
    while frame is not None:
        if frame.materialized:
            if ident in frame.names:
                return hops
            hops += 1
        frame = frame.parent
    return None


def _block_declares(block: A.Block) -> bool:
    return any(isinstance(s, A.VarDecl) for s in block.stmts)


def _make_resolver(frame: _Frame, ident: str) -> Callable[[ThreadCtx], Any]:
    """Build a ``ctx -> Cell`` resolver for *ident*.

    The static hop count is a fast path only: a dict miss after hopping
    (conditional declaration not yet executed) falls back to the dynamic
    walk so semantics — including the undefined-variable abort — match
    the tree-walk exactly.
    """
    hops = _resolve_hops(frame, ident)
    if hops is None:
        def resolve(ctx, _ident=ident):
            return ctx.scope.lookup(_ident)
        return resolve
    if hops == 0:
        def resolve(ctx, _ident=ident):
            scope = ctx.scope
            cell = scope.cells.get(_ident)
            if cell is None:
                return scope.lookup(_ident)
            return cell
        return resolve
    if hops == 1:
        def resolve(ctx, _ident=ident):
            scope = ctx.scope.parent
            cell = scope.cells.get(_ident)
            if cell is None:
                return ctx.scope.lookup(_ident)
            return cell
        return resolve
    if hops == 2:
        def resolve(ctx, _ident=ident):
            scope = ctx.scope.parent.parent
            cell = scope.cells.get(_ident)
            if cell is None:
                return ctx.scope.lookup(_ident)
            return cell
        return resolve
    def resolve(ctx, _ident=ident, _hops=hops):
        scope = ctx.scope
        for _ in range(_hops):
            scope = scope.parent
        cell = scope.cells.get(_ident)
        if cell is None:
            return ctx.scope.lookup(_ident)
        return cell
    return resolve


# ---------------------------------------------------------------------------
# Compiled-program containers
# ---------------------------------------------------------------------------


class FuncCode:
    """One compiled function body."""

    __slots__ = ("fn", "needs_frame", "code")

    def __init__(self, fn: A.FuncDef, needs_frame: bool, code: Code) -> None:
        self.fn = fn
        self.needs_frame = needs_frame
        self.code = code


class CompiledProgram:
    __slots__ = ("program", "codes")

    def __init__(self, program: A.Program, codes: Dict[str, FuncCode]) -> None:
        self.program = program
        self.codes = codes


# ---------------------------------------------------------------------------
# Expression compilation helpers
# ---------------------------------------------------------------------------


def _as_gen(cexpr):
    """Wrap a pure expression closure as a zero-yield generator closure."""
    is_gen, fn = cexpr
    if is_gen:
        return fn

    def gen(vm, ctx, _fn=fn):
        return _fn(vm, ctx)
        yield  # pragma: no cover - marks this function as a generator

    return gen


def _literal_value(node: A.Expr):
    if isinstance(node, (A.IntLit, A.FloatLit, A.BoolLit, A.StrLit)):
        return node.value
    return _MISSING


#: binary operators inlined without the BinOps dispatch ladder
_FOLDABLE_OPS = ("+", "-", "*")


def _make_inline_binop(op: str, lf, rf):
    """Specialized pure closures for the hot arithmetic/comparison ops,
    replicating BinOps.apply's TypeError -> SimAbort translation."""
    if op == "+":
        def fn(vm, ctx):
            a = lf(vm, ctx)
            b = rf(vm, ctx)
            try:
                return a + b
            except TypeError:
                raise SimAbort(
                    f"operator '+' not supported between "
                    f"{type(a).__name__} and {type(b).__name__}"
                ) from None
        return fn
    if op == "-":
        def fn(vm, ctx):
            a = lf(vm, ctx)
            b = rf(vm, ctx)
            try:
                return a - b
            except TypeError:
                raise SimAbort(
                    f"operator '-' not supported between "
                    f"{type(a).__name__} and {type(b).__name__}"
                ) from None
        return fn
    if op == "*":
        def fn(vm, ctx):
            a = lf(vm, ctx)
            b = rf(vm, ctx)
            try:
                return a * b
            except TypeError:
                raise SimAbort(
                    f"operator '*' not supported between "
                    f"{type(a).__name__} and {type(b).__name__}"
                ) from None
        return fn
    if op == "<":
        def fn(vm, ctx):
            a = lf(vm, ctx)
            b = rf(vm, ctx)
            try:
                return a < b
            except TypeError:
                raise SimAbort(
                    f"operator '<' not supported between "
                    f"{type(a).__name__} and {type(b).__name__}"
                ) from None
        return fn
    if op == "<=":
        def fn(vm, ctx):
            a = lf(vm, ctx)
            b = rf(vm, ctx)
            try:
                return a <= b
            except TypeError:
                raise SimAbort(
                    f"operator '<=' not supported between "
                    f"{type(a).__name__} and {type(b).__name__}"
                ) from None
        return fn
    if op == ">":
        def fn(vm, ctx):
            a = lf(vm, ctx)
            b = rf(vm, ctx)
            try:
                return a > b
            except TypeError:
                raise SimAbort(
                    f"operator '>' not supported between "
                    f"{type(a).__name__} and {type(b).__name__}"
                ) from None
        return fn
    if op == ">=":
        def fn(vm, ctx):
            a = lf(vm, ctx)
            b = rf(vm, ctx)
            try:
                return a >= b
            except TypeError:
                raise SimAbort(
                    f"operator '>=' not supported between "
                    f"{type(a).__name__} and {type(b).__name__}"
                ) from None
        return fn
    return None


# Pure specializations of the non-scheduling simple builtins; signatures
# intentionally replicate the tree-walk bodies (including native
# IndexError/ValueError on bad arity, which the tree-walk also raises).


def _pb_thread_num(vm, ctx, args):
    return ctx.team_index if ctx.team is not None else 0


def _pb_num_threads(vm, ctx, args):
    return ctx.team.size if ctx.team is not None else 1


def _pb_set_num_threads(vm, ctx, args):
    ctx.proc.default_threads = max(1, as_int(args[0], "num threads"))
    return 0


def _pb_max_threads(vm, ctx, args):
    return ctx.proc.default_threads


def _pb_init_lock(vm, ctx, args):
    ctx.proc.locks.user_lock(_lock_name(args))
    return 0


def _pb_unset_lock(vm, ctx, args):
    lock = ctx.proc.locks.user_lock(_lock_name(args))
    vm._release(lock, ctx)
    return 0


def _pb_array_size(vm, ctx, args):
    arr = args[0]
    if not isinstance(arr, ArrayValue):
        raise SimAbort("array_size() requires an array")
    return len(arr)


def _pb_min(vm, ctx, args):
    return min(args)


def _pb_max(vm, ctx, args):
    return max(args)


def _pb_abs(vm, ctx, args):
    return abs(args[0])


def _pb_monitor_setup(vm, ctx, args):
    return 0


_PURE_BUILTINS = {
    "omp_get_thread_num": _pb_thread_num,
    "omp_get_num_threads": _pb_num_threads,
    "omp_set_num_threads": _pb_set_num_threads,
    "omp_get_max_threads": _pb_max_threads,
    "omp_init_lock": _pb_init_lock,
    "omp_destroy_lock": _pb_init_lock,
    "omp_unset_lock": _pb_unset_lock,
    "array_size": _pb_array_size,
    "min": _pb_min,
    "max": _pb_max,
    "abs": _pb_abs,
    "mpi_monitor_setup": _pb_monitor_setup,
}


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------


class _Compiler:
    def __init__(self, program: A.Program) -> None:
        self.program = program
        self.functions = {fn.name: fn for fn in program.functions}
        from .. import mpi_builtins  # deferred: import cycle with runtime

        self.mpi_table = mpi_builtins.BUILTINS

    def compile(self) -> CompiledProgram:
        gframe = _Frame(None, True)
        gframe.names.update(LANGUAGE_CONSTANTS)
        for decl in self.program.globals:
            gframe.names.add(decl.name)
        codes: Dict[str, FuncCode] = {}
        for fn in self.program.functions:
            codes[fn.name] = self._compile_func(fn, gframe)
        return CompiledProgram(self.program, codes)

    def _compile_func(self, fn: A.FuncDef, gframe: _Frame) -> FuncCode:
        needs_frame = bool(fn.params) or _block_declares(fn.body)
        frame = _Frame(gframe, needs_frame)
        frame.names.update(fn.params)
        code = self._compile_body(fn.body, frame)
        return FuncCode(fn, needs_frame, code)

    # -- bodies ----------------------------------------------------------

    def _compile_body(self, block: A.Block, frame: _Frame) -> Code:
        """Compile a block whose scope is managed by the caller."""
        stmts = tuple(self._compile_stmt(s, frame) for s in block.stmts)
        return (stmts, False)

    def _compile_block(self, block: A.Block, frame: _Frame) -> Code:
        """Compile a block that owns its scope (elided when empty)."""
        inner = _Frame(frame, _block_declares(block))
        stmts = tuple(self._compile_stmt(s, inner) for s in block.stmts)
        return (stmts, inner.materialized)

    # -- statements ------------------------------------------------------

    def _compile_stmt(self, node: A.Stmt, frame: _Frame):
        if isinstance(node, A.VarDecl):
            return self._compile_vardecl(node, frame)
        if isinstance(node, A.Assign):
            return self._compile_assign(node, frame)
        if isinstance(node, A.ExprStmt):
            return self._compile_expr_stmt(node, frame)
        if isinstance(node, A.If):
            return self._compile_if(node, frame)
        if isinstance(node, A.While):
            return self._compile_while(node, frame)
        if isinstance(node, A.For):
            return self._compile_for(node, frame)
        if isinstance(node, A.Return):
            return self._compile_return(node, frame)
        if isinstance(node, A.Print):
            return self._compile_print(node, frame)
        if isinstance(node, A.AssertStmt):
            return self._compile_assert(node, frame)
        if isinstance(node, A.Block):
            stmts, push = self._compile_block(node, frame)

            def fn(vm, ctx):
                step = vm._step_stmt
                if push:
                    saved = ctx.scope
                    ctx.scope = Scope(parent=saved)
                try:
                    for s_gen, s_fn in stmts:
                        yield step
                        flow = (
                            (yield from s_fn(vm, ctx))
                            if s_gen else s_fn(vm, ctx)
                        )
                        if flow is not None:
                            return flow
                finally:
                    if push:
                        ctx.scope = saved
                return None

            return (GEN, fn)
        if isinstance(node, A.OmpParallel):
            return self._compile_parallel(node, frame)
        if isinstance(node, A.OmpFor):
            return self._compile_omp_for(node, frame)
        if isinstance(node, A.OmpSections):
            return self._compile_omp_sections(node, frame)
        if isinstance(node, A.OmpCritical):
            return self._compile_critical(node, frame)
        if isinstance(node, A.OmpBarrier):
            def fn(vm, ctx, _node=node):
                vm._collective_arrive(ctx, _node, "barrier")
                yield from vm._team_barrier(ctx)
                return None

            return (GEN, fn)
        if isinstance(node, A.OmpSingle):
            return self._compile_single(node, frame)
        if isinstance(node, A.OmpMaster):
            return self._compile_master(node, frame)
        if isinstance(node, A.OmpAtomic):
            return self._compile_atomic(node, frame)
        msg = f"cannot execute statement {type(node).__name__}"

        def fail(vm, ctx, _msg=msg):
            raise SimAbort(_msg)

        return (PURE, fail)

    def _compile_vardecl(self, node: A.VarDecl, frame: _Frame):
        name = node.name
        if node.size is not None:
            sg, sf = self._compile_expr(node.size, frame)
            frame.names.add(name)
            if sg:
                def fn(vm, ctx):
                    size_val = yield from sf(vm, ctx)
                    ctx.scope.declare(name, ArrayValue(as_int(size_val, "array size")))
                    return None

                return (GEN, fn)

            def fn(vm, ctx):
                ctx.scope.declare(name, ArrayValue(as_int(sf(vm, ctx), "array size")))
                return None

            return (PURE, fn)
        if node.init is not None:
            ig, vf = self._compile_expr(node.init, frame)
            frame.names.add(name)
            if ig:
                def fn(vm, ctx):
                    value = yield from vf(vm, ctx)
                    ctx.scope.declare(name, value)
                    return None

                return (GEN, fn)

            def fn(vm, ctx):
                ctx.scope.declare(name, vf(vm, ctx))
                return None

            return (PURE, fn)
        frame.names.add(name)

        def fn(vm, ctx):
            ctx.scope.declare(name, 0)
            return None

        return (PURE, fn)

    def _compile_assign(self, node: A.Assign, frame: _Frame):
        vg, vf = self._compile_expr(node.value, frame)
        target = node.target
        if isinstance(target, A.Name):
            resolve = _make_resolver(frame, target.ident)
            tnid = target.nid
            if not vg:
                # superinstruction: eval + store in one closure
                def fn(vm, ctx):
                    value = vf(vm, ctx)
                    cell = resolve(ctx)
                    if vm._monitor:
                        vm._mem_access(ctx, cell, is_write=True, callsite=tnid)
                    cell.value = value
                    return None

                return (PURE, fn)

            def fn(vm, ctx):
                value = yield from vf(vm, ctx)
                cell = resolve(ctx)
                if vm._monitor:
                    vm._mem_access(ctx, cell, is_write=True, callsite=tnid)
                cell.value = value
                return None

            return (GEN, fn)
        if isinstance(target, A.Index):
            ig, idxf = self._compile_expr(target.index, frame)
            tnid = target.nid
            base = target.base
            if isinstance(base, A.Name):
                resolve = _make_resolver(frame, base.ident)
                not_array = f"{base.ident!r} is not an array"
                if not vg and not ig:
                    def fn(vm, ctx):
                        value = vf(vm, ctx)
                        cell = resolve(ctx)
                        arr = cell.value
                        if not isinstance(arr, ArrayValue):
                            raise SimAbort(not_array)
                        idx = idxf(vm, ctx)
                        if type(idx) is not int:
                            idx = as_int(idx, "array index")
                        if vm._monitor:
                            vm._mem_access(
                                ctx, cell, is_write=True, callsite=tnid, index=idx
                            )
                        arr.set(idx, value)
                        return None

                    return (PURE, fn)
                vgen, igen = _as_gen((vg, vf)), _as_gen((ig, idxf))

                def fn(vm, ctx):
                    value = yield from vgen(vm, ctx)
                    cell = resolve(ctx)
                    arr = cell.value
                    if not isinstance(arr, ArrayValue):
                        raise SimAbort(not_array)
                    idx = as_int((yield from igen(vm, ctx)), "array index")
                    if vm._monitor:
                        vm._mem_access(
                            ctx, cell, is_write=True, callsite=tnid, index=idx
                        )
                    arr.set(idx, value)
                    return None

                return (GEN, fn)
            bg, bf = self._compile_expr(base, frame)
            if not vg and not bg and not ig:
                def fn(vm, ctx):
                    value = vf(vm, ctx)
                    arr = bf(vm, ctx)
                    if not isinstance(arr, ArrayValue):
                        raise SimAbort("indexed expression is not an array")
                    idx = idxf(vm, ctx)
                    if type(idx) is not int:
                        idx = as_int(idx, "array index")
                    arr.set(idx, value)
                    return None

                return (PURE, fn)
            vgen = _as_gen((vg, vf))
            bgen = _as_gen((bg, bf))
            igen = _as_gen((ig, idxf))

            def fn(vm, ctx):
                value = yield from vgen(vm, ctx)
                arr = yield from bgen(vm, ctx)
                if not isinstance(arr, ArrayValue):
                    raise SimAbort("indexed expression is not an array")
                idx = as_int((yield from igen(vm, ctx)), "array index")
                arr.set(idx, value)
                return None

            return (GEN, fn)

        def fail(vm, ctx):
            raise SimAbort("invalid assignment target")

        return (PURE, fail)

    def _compile_expr_stmt(self, node: A.ExprStmt, frame: _Frame):
        if isinstance(node.expr, A.CallExpr):
            entry = self._compile_call_stmt(node.expr, frame)
            if entry is not None:
                return entry
        eg, ef = self._compile_expr(node.expr, frame)
        if not eg:
            def fn(vm, ctx):
                ef(vm, ctx)
                return None

            return (PURE, fn)

        def fn(vm, ctx):
            yield from ef(vm, ctx)
            return None

        return (GEN, fn)

    def _compile_call_stmt(self, node: A.CallExpr, frame: _Frame):
        """Call-as-statement superinstructions.

        A call in statement position discards its value, so the ExprStmt
        wrapper generator can be fused with the call closure — one frame
        instead of two on every resume under it.  Returns None for call
        shapes the generic expression path already handles frame-free
        (pure builtins, unknown names).
        """
        name = node.name
        ag, af = self._compile_args(node.args, frame)
        if name.startswith("hmpi_") or name.startswith("mpi_"):
            op = name[1:] if name.startswith("hmpi_") else name
            handler = self.mpi_table.get(op)
            if handler is not None:
                instrumented = name.startswith("hmpi_")
                is_collective = op in COLLECTIVE_OPS

                def fn(vm, ctx):
                    args = (yield from af(vm, ctx)) if ag else af(vm, ctx)
                    if is_collective:
                        vm._collective_arrive(ctx, node, "mpi", op=op)
                    yield from handler(vm, ctx, node, args, instrumented)
                    return None

                return (GEN, fn)
        if name in _PURE_BUILTINS:
            return None
        builtin = _SIMPLE_BUILTINS.get(name)
        if builtin is _bi_compute:
            # compute(N) is the workloads' virtual-work knob and by far
            # the most common yielding statement: charge the cost from
            # this closure, reusing one Step object per distinct cost.
            steps: Dict[float, Step] = {}

            def fn(vm, ctx):
                args = (yield from af(vm, ctx)) if ag else af(vm, ctx)
                units = as_int(args[0], "compute units") if args else 1
                cost = max(0, units) * vm.cm.compute_unit
                s = steps.get(cost)
                if s is None:
                    s = steps[cost] = Step(cost)
                yield s
                return None

            return (GEN, fn)
        if builtin is not None:
            def fn(vm, ctx):
                args = (yield from af(vm, ctx)) if ag else af(vm, ctx)
                yield from builtin(vm, ctx, node, args)
                return None

            return (GEN, fn)
        user_fn = self.functions.get(name)
        if user_fn is not None:
            def fn(vm, ctx):
                args = (yield from af(vm, ctx)) if ag else af(vm, ctx)
                yield from vm._call_user(user_fn, args, ctx)
                return None

            return (GEN, fn)
        return None

    def _compile_if(self, node: A.If, frame: _Frame):
        cg, cf = self._compile_expr(node.cond, frame)
        then_code = self._compile_block(node.then, frame)
        els_code = None
        if node.els is not None:
            els = node.els if isinstance(node.els, A.Block) else A.Block([node.els])
            els_code = self._compile_block(els, frame)
        if not cg:
            def fn(vm, ctx):
                code = then_code if truthy(cf(vm, ctx)) else els_code
                if code is None:
                    return None
                stmts, push = code
                step = vm._step_stmt
                if push:
                    saved = ctx.scope
                    ctx.scope = Scope(parent=saved)
                try:
                    for s_gen, s_fn in stmts:
                        yield step
                        flow = (
                            (yield from s_fn(vm, ctx))
                            if s_gen else s_fn(vm, ctx)
                        )
                        if flow is not None:
                            return flow
                finally:
                    if push:
                        ctx.scope = saved
                return None

            return (GEN, fn)

        def fn(vm, ctx):
            cond = yield from cf(vm, ctx)
            code = then_code if truthy(cond) else els_code
            if code is None:
                return None
            stmts, push = code
            step = vm._step_stmt
            if push:
                saved = ctx.scope
                ctx.scope = Scope(parent=saved)
            try:
                for s_gen, s_fn in stmts:
                    yield step
                    flow = (
                        (yield from s_fn(vm, ctx))
                        if s_gen else s_fn(vm, ctx)
                    )
                    if flow is not None:
                        return flow
            finally:
                if push:
                    ctx.scope = saved
            return None

        return (GEN, fn)

    def _compile_while(self, node: A.While, frame: _Frame):
        cg, cf = self._compile_expr(node.cond, frame)
        body_stmts, body_push = self._compile_block(node.body, frame)
        if not cg:
            def fn(vm, ctx):
                step = vm._step_stmt
                while True:
                    if not truthy(cf(vm, ctx)):
                        return None
                    if body_push:
                        saved = ctx.scope
                        ctx.scope = Scope(parent=saved)
                    try:
                        for s_gen, s_fn in body_stmts:
                            yield step
                            flow = (
                                (yield from s_fn(vm, ctx))
                                if s_gen else s_fn(vm, ctx)
                            )
                            if flow is not None:
                                return flow
                    finally:
                        if body_push:
                            ctx.scope = saved
                    yield step

            return (GEN, fn)

        def fn(vm, ctx):
            step = vm._step_stmt
            while True:
                cond = yield from cf(vm, ctx)
                if not truthy(cond):
                    return None
                if body_push:
                    saved = ctx.scope
                    ctx.scope = Scope(parent=saved)
                try:
                    for s_gen, s_fn in body_stmts:
                        yield step
                        flow = (
                            (yield from s_fn(vm, ctx))
                            if s_gen else s_fn(vm, ctx)
                        )
                        if flow is not None:
                            return flow
                finally:
                    if body_push:
                        ctx.scope = saved
                yield step

        return (GEN, fn)

    def _compile_for(self, node: A.For, frame: _Frame):
        # The tree-walk always pushes a For scope; it is only observable
        # when the init declares the loop variable, so elide it otherwise.
        push = isinstance(node.init, A.VarDecl)
        inner = _Frame(frame, push)
        init_entry = None
        init_is_decl = False
        if node.init is not None:
            if isinstance(node.init, A.VarDecl):
                init_entry = self._compile_vardecl(node.init, inner)
                init_is_decl = True
            else:
                init_entry = self._compile_stmt(node.init, inner)
        cond_entry = (
            self._compile_expr(node.cond, inner) if node.cond is not None else None
        )
        body_stmts, body_push = self._compile_block(node.body, inner)
        step_entry = (
            self._compile_stmt(node.step, inner) if node.step is not None else None
        )
        # unpack once at compile time; the loop head runs per iteration
        ig, ifn = init_entry if init_entry is not None else (False, None)
        cg, cf = cond_entry if cond_entry is not None else (False, None)
        sg, sf = step_entry if step_entry is not None else (False, None)

        def fn(vm, ctx):
            step_yield = vm._step_stmt
            if push:
                saved = ctx.scope
                ctx.scope = Scope(parent=saved)
            try:
                if ifn is not None:
                    if init_is_decl:
                        if ig:
                            yield from ifn(vm, ctx)
                        else:
                            ifn(vm, ctx)
                    else:
                        yield step_yield
                        flow = (yield from ifn(vm, ctx)) if ig else ifn(vm, ctx)
                        if flow is not None:
                            return flow
                while True:
                    if cf is not None:
                        cond = (yield from cf(vm, ctx)) if cg else cf(vm, ctx)
                        if not truthy(cond):
                            return None
                    if body_push:
                        b_saved = ctx.scope
                        ctx.scope = Scope(parent=b_saved)
                    try:
                        for s_gen, s_fn in body_stmts:
                            yield step_yield
                            flow = (
                                (yield from s_fn(vm, ctx))
                                if s_gen else s_fn(vm, ctx)
                            )
                            if flow is not None:
                                return flow
                    finally:
                        if body_push:
                            ctx.scope = b_saved
                    yield step_yield
                    if sf is not None:
                        flow = (yield from sf(vm, ctx)) if sg else sf(vm, ctx)
                        if flow is not None:
                            return flow
            finally:
                if push:
                    ctx.scope = saved

        return (GEN, fn)

    def _compile_return(self, node: A.Return, frame: _Frame):
        if node.value is None:
            def fn(vm, ctx):
                return (_RETURN_NONE)

            return (PURE, fn)
        vg, vf = self._compile_expr(node.value, frame)
        if not vg:
            def fn(vm, ctx):
                return ("return", vf(vm, ctx))

            return (PURE, fn)

        def fn(vm, ctx):
            value = yield from vf(vm, ctx)
            return ("return", value)

        return (GEN, fn)

    def _compile_print(self, node: A.Print, frame: _Frame):
        parts = [self._compile_expr(a, frame) for a in node.args]
        if all(not g for g, _f in parts):
            fns = tuple(f for _g, f in parts)

            def fn(vm, ctx):
                vm.outputs.append(
                    (ctx.proc.rank, ctx.tid, " ".join(str(f(vm, ctx)) for f in fns))
                )
                return None

            return (PURE, fn)
        gens = tuple(_as_gen(p) for p in parts)

        def fn(vm, ctx):
            out = []
            for g in gens:
                val = yield from g(vm, ctx)
                out.append(str(val))
            vm.outputs.append((ctx.proc.rank, ctx.tid, " ".join(out)))
            return None

        return (GEN, fn)

    def _compile_assert(self, node: A.AssertStmt, frame: _Frame):
        cg, cf = self._compile_expr(node.cond, frame)
        msg = f"assertion failed at {node.loc}"
        if not cg:
            def fn(vm, ctx):
                if not truthy(cf(vm, ctx)):
                    raise SimAbort(msg)
                return None

            return (PURE, fn)

        def fn(vm, ctx):
            cond = yield from cf(vm, ctx)
            if not truthy(cond):
                raise SimAbort(msg)
            return None

        return (GEN, fn)

    # -- OpenMP constructs ----------------------------------------------

    def _compile_parallel(self, node: A.OmpParallel, frame: _Frame):
        nt_entry = (
            self._compile_expr(node.num_threads, frame)
            if node.num_threads is not None
            else None
        )
        private = tuple(node.private)
        firstprivate = tuple(node.firstprivate)
        reductions = tuple(node.reductions)
        red_idents = tuple(
            (op, nm, _REDUCTION_SEMANTICS[op][0]) for op, nm in reductions
        )
        member = _Frame(frame, False)
        member.names.update(private)
        member.names.update(firstprivate)
        member.names.update(nm for _op, nm in reductions)
        member.materialized = bool(member.names) or _block_declares(node.body)
        elide_member = not member.materialized
        body_code = self._compile_body(node.body, member)
        ret_msg = f"return inside omp parallel at {node.loc}"

        def member_scope(ctx):
            if elide_member:
                return ctx.scope
            scope = Scope(parent=ctx.scope)
            for nm in private:
                scope.declare(nm, 0)
            for nm in firstprivate:
                outer = ctx.scope.lookup(nm)
                init = outer.value
                if isinstance(init, ArrayValue):
                    copy = ArrayValue(len(init))
                    copy.load(init.snapshot())
                    init = copy
                scope.declare(nm, init)
            for _op, nm, ident in red_idents:
                scope.declare(nm, ident)
            return scope

        def fn(vm, ctx):
            pctx = ctx.proc
            if nt_entry is not None:
                ng, nf = nt_entry
                nt_val = (yield from nf(vm, ctx)) if ng else nf(vm, ctx)
                nthreads = as_int(nt_val, "num_threads")
            else:
                nthreads = pctx.default_threads
            if nthreads < 1:
                raise SimAbort(f"num_threads must be >= 1, got {nthreads}")

            for cell in ctx.scope.visible_cells():
                cell.shared = True

            team = Team(pctx.rank, nthreads, ctx.tid, ctx.team, next(vm._team_id))
            fork_cost = vm.cm.fork_per_thread * nthreads
            instr_cost = vm.charge_cfg.per_thread_setup * nthreads
            yield Step(fork_cost + instr_cost)

            reduction_outers = [
                (op, nm, ctx.scope.lookup(nm)) for op, nm in reductions
            ]

            worker_tids = []
            for index in range(1, nthreads):
                tid = pctx.fresh_tid()
                team.register_worker(index, tid)
                wctx = ThreadCtx(pctx, tid, member_scope(ctx), team, index)
                task = vm.scheduler.spawn(
                    f"p{pctx.rank}.t{tid}", pctx.rank, tid,
                    _worker_task(vm, body_code, ret_msg, wctx, reduction_outers),
                    start_clock=ctx.clock,
                )
                wctx.task = task
                worker_tids.append(tid)

            vm.emit(ThreadFork, ctx, team=team.team_id, children=tuple(worker_tids))

            saved = (ctx.scope, ctx.team, ctx.team_index, ctx.construct_visits)
            ctx.scope = member_scope(ctx)
            ctx.team, ctx.team_index = team, 0
            ctx.construct_visits = {}
            try:
                stmts, push = body_code
                step = vm._step_stmt
                if push:
                    b_saved = ctx.scope
                    ctx.scope = Scope(parent=b_saved)
                try:
                    for s_gen, s_fn in stmts:
                        yield step
                        flow = (
                            (yield from s_fn(vm, ctx))
                            if s_gen else s_fn(vm, ctx)
                        )
                        if flow is not None:
                            raise SimAbort(ret_msg)
                finally:
                    if push:
                        ctx.scope = b_saved
                yield from vm._fold_reductions(ctx, reduction_outers)
                vm._collective_close(ctx)
            finally:
                team.final_clocks[0] = ctx.clock
                ctx.scope, ctx.team, ctx.team_index, ctx.construct_visits = saved

            yield Block("join omp parallel team", lambda: team.all_workers_done)
            ctx.advance_to(max(team.final_clocks))
            ctx.charge(vm.cm.barrier)
            vm.emit(ThreadJoin, ctx, team=team.team_id, children=tuple(worker_tids))
            if vm.config.monitor_collectives and team.size > 1:
                mismatch = team.collectives.first_mismatch()
                if mismatch is not None:
                    idx, a, b = mismatch
                    vm.note(
                        f"rank {pctx.rank} team {team.team_id}: collective "
                        f"arrival mismatch at position {idx} between members "
                        f"{a} and {b}"
                    )
            return None

        return (GEN, fn)

    def _compile_omp_for(self, node: A.OmpFor, frame: _Frame):
        loop = node.loop
        nid = node.nid
        reductions = tuple(node.reductions)
        red_idents = tuple(
            (op, nm, _REDUCTION_SEMANTICS[op][0]) for op, nm in reductions
        )
        ret_msg = f"return inside omp for at {node.loc}"

        # Header structure is validated at compile time; invalid shapes
        # compile to closures aborting at the same evaluation stage (and
        # hence after the same yields) as the tree-walk's _loop_header.
        bad_init = bad_cond = bad_step = None
        var = None
        start_entry = bound_entry = inc_entry = None
        cond_op = None
        negate = False
        init = loop.init
        if isinstance(init, A.VarDecl) and init.init is not None:
            var = init.name
            start_expr = init.init
        elif isinstance(init, A.Assign) and isinstance(init.target, A.Name):
            var = init.target.ident
            start_expr = init.value
        else:
            bad_init = f"omp for at {loop.loc}: unsupported init form"
        if bad_init is None:
            start_entry = self._compile_expr(start_expr, frame)
            cond = loop.cond
            if not (isinstance(cond, A.Binary) and isinstance(cond.left, A.Name)
                    and cond.left.ident == var
                    and cond.op in ("<", "<=", ">", ">=")):
                bad_cond = (
                    f"omp for at {loop.loc}: condition must test the loop variable"
                )
            else:
                cond_op = cond.op
                bound_entry = self._compile_expr(cond.right, frame)
                step_stmt = loop.step
                step_msg = f"omp for at {loop.loc}: unsupported step form"
                if not (isinstance(step_stmt, A.Assign)
                        and isinstance(step_stmt.target, A.Name)
                        and step_stmt.target.ident == var
                        and isinstance(step_stmt.value, A.Binary)
                        and step_stmt.value.op in ("+", "-")):
                    bad_step = step_msg
                else:
                    sval = step_stmt.value
                    if isinstance(sval.left, A.Name) and sval.left.ident == var:
                        inc_entry = self._compile_expr(sval.right, frame)
                    elif (isinstance(sval.right, A.Name)
                          and sval.right.ident == var and sval.op == "+"):
                        inc_entry = self._compile_expr(sval.left, frame)
                    else:
                        bad_step = step_msg
                    negate = sval.op == "-"
        zero_msg = f"omp for at {loop.loc}: zero loop step"
        is_static = node.schedule == "static"
        chunk_entry = (
            self._compile_expr(node.chunk, frame) if node.chunk is not None else None
        )
        nowait = node.nowait

        outer: _Frame = frame
        if reductions:
            red_frame = _Frame(frame, True)
            red_frame.names.update(nm for _op, nm in reductions)
            outer = red_frame
        iter_frame = _Frame(outer, True)
        if var is not None:
            iter_frame.names.add(var)
        body_stmts, body_push = self._compile_block(loop.body, iter_frame)

        def fn(vm, ctx):
            vm._collective_arrive(ctx, node, "for")
            if bad_init is not None:
                raise SimAbort(bad_init)
            sg, sf = start_entry
            start = (yield from sf(vm, ctx)) if sg else sf(vm, ctx)
            if bad_cond is not None:
                raise SimAbort(bad_cond)
            bg, bf = bound_entry
            bound = (yield from bf(vm, ctx)) if bg else bf(vm, ctx)
            if bad_step is not None:
                raise SimAbort(bad_step)
            ig, inf = inc_entry
            inc = (yield from inf(vm, ctx)) if ig else inf(vm, ctx)
            inc = as_int(inc, "loop step")
            if negate:
                inc = -inc
            if inc == 0:
                raise SimAbort(zero_msg)
            start = as_int(start, "loop start")
            bound = as_int(bound, "loop bound")
            # lazy ranges, as in the ast engine: guard before anything
            # proportional to the (possibly enormous) iteration span
            empty = range(0)
            if cond_op == "<":
                iterations = range(start, bound, inc) if inc > 0 else empty
            elif cond_op == "<=":
                iterations = range(start, bound + 1, inc) if inc > 0 else empty
            elif cond_op == ">":
                iterations = range(start, bound, inc) if inc < 0 else empty
            else:  # >=
                iterations = range(start, bound - 1, inc) if inc < 0 else empty
            check_iteration_budget(
                len(iterations), vm.config.max_steps, node.loc
            )

            team = ctx.team
            chunk = None
            if chunk_entry is not None:
                cg, cf = chunk_entry
                cval = (yield from cf(vm, ctx)) if cg else cf(vm, ctx)
                chunk = max(1, as_int(cval, "chunk"))

            reduction_outers = [
                (op, nm, ctx.scope.lookup(nm)) for op, nm in reductions
            ]
            loop_scope = None
            if reduction_outers:
                loop_scope = Scope(parent=ctx.scope)
                for _op, nm, ident in red_idents:
                    loop_scope.declare(nm, ident)
                ctx.scope = loop_scope
            # Iterations are inlined rather than delegated to a helper
            # generator: one fresh scope binding the loop variable, then
            # the body's statement loop, all in this frame.
            step = vm._step_stmt
            try:
                if team is None or team.size == 1 or is_static:
                    if team is None or team.size == 1:
                        plan = iterations
                    else:
                        ctx.visit(nid)
                        plan = static_chunks(
                            iterations, team.size, ctx.team_index, chunk
                        )
                    for i in plan:
                        saved = ctx.scope
                        iscope = Scope(parent=saved)
                        iscope.declare(var, i)
                        ctx.scope = (
                            Scope(parent=iscope) if body_push else iscope
                        )
                        try:
                            for s_gen, s_fn in body_stmts:
                                yield step
                                flow = (
                                    (yield from s_fn(vm, ctx))
                                    if s_gen else s_fn(vm, ctx)
                                )
                                if flow is not None:
                                    raise SimAbort(ret_msg)
                        finally:
                            ctx.scope = saved
                else:  # dynamic
                    key = (nid, ctx.visit(nid))
                    state = team.construct_state(
                        key, lambda: ForState(iterations)
                    )
                    grab = chunk or 1
                    while True:
                        batch = state.grab(grab)
                        if not batch:
                            break
                        for i in batch:
                            saved = ctx.scope
                            iscope = Scope(parent=saved)
                            iscope.declare(var, i)
                            ctx.scope = (
                                Scope(parent=iscope) if body_push else iscope
                            )
                            try:
                                for s_gen, s_fn in body_stmts:
                                    yield step
                                    flow = (
                                        (yield from s_fn(vm, ctx))
                                        if s_gen else s_fn(vm, ctx)
                                    )
                                    if flow is not None:
                                        raise SimAbort(ret_msg)
                            finally:
                                ctx.scope = saved
                yield from vm._fold_reductions(ctx, reduction_outers)
            finally:
                if loop_scope is not None:
                    ctx.scope = loop_scope.parent
            if not nowait:
                yield from vm._team_barrier(ctx)
            return None

        return (GEN, fn)

    def _compile_omp_sections(self, node: A.OmpSections, frame: _Frame):
        sec_codes = tuple(self._compile_block(sec, frame) for sec in node.sections)
        nsections = len(sec_codes)
        nid = node.nid
        nowait = node.nowait
        ret_msg = f"return inside omp sections at {node.loc}"

        def fn(vm, ctx):
            vm._collective_arrive(ctx, node, "sections")
            team = ctx.team
            step = vm._step_stmt
            if team is None or team.size == 1:
                for stmts, push in sec_codes:
                    if push:
                        saved = ctx.scope
                        ctx.scope = Scope(parent=saved)
                    try:
                        for s_gen, s_fn in stmts:
                            yield step
                            flow = (
                                (yield from s_fn(vm, ctx))
                                if s_gen else s_fn(vm, ctx)
                            )
                            if flow is not None:
                                return flow
                    finally:
                        if push:
                            ctx.scope = saved
                return None
            key = (nid, ctx.visit(nid))
            state = team.construct_state(key, lambda: SectionsState(nsections))
            while True:
                idx = state.grab()
                if idx is None:
                    break
                stmts, push = sec_codes[idx]
                if push:
                    saved = ctx.scope
                    ctx.scope = Scope(parent=saved)
                try:
                    for s_gen, s_fn in stmts:
                        yield step
                        flow = (
                            (yield from s_fn(vm, ctx))
                            if s_gen else s_fn(vm, ctx)
                        )
                        if flow is not None:
                            raise SimAbort(ret_msg)
                finally:
                    if push:
                        ctx.scope = saved
            if not nowait:
                yield from vm._team_barrier(ctx)
            return None

        return (GEN, fn)

    def _compile_single(self, node: A.OmpSingle, frame: _Frame):
        body_stmts, body_push = self._compile_block(node.body, frame)
        nid = node.nid
        nowait = node.nowait
        ret_msg = f"return inside omp single at {node.loc}"

        def fn(vm, ctx):
            vm._collective_arrive(ctx, node, "single")
            team = ctx.team
            step = vm._step_stmt
            if team is None or team.size == 1:
                if body_push:
                    saved = ctx.scope
                    ctx.scope = Scope(parent=saved)
                try:
                    for s_gen, s_fn in body_stmts:
                        yield step
                        flow = (
                            (yield from s_fn(vm, ctx))
                            if s_gen else s_fn(vm, ctx)
                        )
                        if flow is not None:
                            return flow
                finally:
                    if body_push:
                        ctx.scope = saved
                return None
            key = (nid, ctx.visit(nid))
            state = team.construct_state(key, lambda: SingleState())
            if state.try_claim():
                ctx.serialized_depth += 1
                try:
                    if body_push:
                        saved = ctx.scope
                        ctx.scope = Scope(parent=saved)
                    try:
                        for s_gen, s_fn in body_stmts:
                            yield step
                            flow = (
                                (yield from s_fn(vm, ctx))
                                if s_gen else s_fn(vm, ctx)
                            )
                            if flow is not None:
                                raise SimAbort(ret_msg)
                    finally:
                        if body_push:
                            ctx.scope = saved
                finally:
                    ctx.serialized_depth -= 1
            if not nowait:
                yield from vm._team_barrier(ctx)
            return None

        return (GEN, fn)

    def _compile_critical(self, node: A.OmpCritical, frame: _Frame):
        body_stmts, body_push = self._compile_block(node.body, frame)
        name = node.name
        reason = f"omp critical ({name or 'anon'})"

        def fn(vm, ctx):
            lock = ctx.proc.locks.critical(name)
            yield from vm._acquire(lock, ctx, reason)
            flow = None
            step = vm._step_stmt
            try:
                if body_push:
                    saved = ctx.scope
                    ctx.scope = Scope(parent=saved)
                try:
                    for s_gen, s_fn in body_stmts:
                        yield step
                        flow = (
                            (yield from s_fn(vm, ctx))
                            if s_gen else s_fn(vm, ctx)
                        )
                        if flow is not None:
                            break
                finally:
                    if body_push:
                        ctx.scope = saved
            finally:
                vm._release(lock, ctx)
            return flow

        return (GEN, fn)

    def _compile_master(self, node: A.OmpMaster, frame: _Frame):
        body_stmts, body_push = self._compile_block(node.body, frame)

        def fn(vm, ctx):
            if ctx.team is None or ctx.team_index == 0:
                ctx.serialized_depth += 1
                step = vm._step_stmt
                try:
                    if body_push:
                        saved = ctx.scope
                        ctx.scope = Scope(parent=saved)
                    try:
                        for s_gen, s_fn in body_stmts:
                            yield step
                            flow = (
                                (yield from s_fn(vm, ctx))
                                if s_gen else s_fn(vm, ctx)
                            )
                            if flow is not None:
                                return flow
                    finally:
                        if body_push:
                            ctx.scope = saved
                finally:
                    ctx.serialized_depth -= 1
            return None

        return (GEN, fn)

    def _compile_atomic(self, node: A.OmpAtomic, frame: _Frame):
        ag, af = self._compile_assign(node.stmt, frame)

        def fn(vm, ctx):
            lock = ctx.proc.locks.atomic()
            yield from vm._acquire(lock, ctx, "omp atomic")
            try:
                if ag:
                    yield from af(vm, ctx)
                else:
                    af(vm, ctx)
            finally:
                vm._release(lock, ctx)
            return None

        return (GEN, fn)

    # -- expressions -----------------------------------------------------

    def _compile_expr(self, node: A.Expr, frame: _Frame):
        if isinstance(node, (A.IntLit, A.FloatLit, A.BoolLit, A.StrLit)):
            value = node.value

            def fn(vm, ctx):
                return value

            return (PURE, fn)
        if isinstance(node, A.Name):
            resolve = _make_resolver(frame, node.ident)
            nid = node.nid

            def fn(vm, ctx):
                cell = resolve(ctx)
                if vm._monitor:
                    vm._mem_access(ctx, cell, is_write=False, callsite=nid)
                return cell.value

            return (PURE, fn)
        if isinstance(node, A.Index):
            return self._compile_index(node, frame)
        if isinstance(node, A.Unary):
            og, of = self._compile_expr(node.operand, frame)
            op = node.op
            if not og:
                lit = _literal_value(node.operand)
                if lit is not _MISSING and op == "-" and not isinstance(lit, str):
                    folded = -lit

                    def fn(vm, ctx):
                        return folded

                    return (PURE, fn)

                def fn(vm, ctx):
                    return BinOps.apply_unary(op, of(vm, ctx))

                return (PURE, fn)

            def fn(vm, ctx):
                operand = yield from of(vm, ctx)
                return BinOps.apply_unary(op, operand)

            return (GEN, fn)
        if isinstance(node, A.Binary):
            return self._compile_binary(node, frame)
        if isinstance(node, A.CallExpr):
            return self._compile_call(node, frame)
        msg = f"cannot evaluate expression {type(node).__name__}"

        def fail(vm, ctx):
            raise SimAbort(msg)

        return (PURE, fail)

    def _compile_index(self, node: A.Index, frame: _Frame):
        ig, idxf = self._compile_expr(node.index, frame)
        nid = node.nid
        base = node.base
        if isinstance(base, A.Name):
            resolve = _make_resolver(frame, base.ident)
            not_array = f"{base.ident!r} is not an array"
            if not ig:
                def fn(vm, ctx):
                    cell = resolve(ctx)
                    arr = cell.value
                    if not isinstance(arr, ArrayValue):
                        raise SimAbort(not_array)
                    idx = idxf(vm, ctx)
                    if type(idx) is not int:
                        idx = as_int(idx, "array index")
                    if vm._monitor:
                        vm._mem_access(
                            ctx, cell, is_write=False, callsite=nid, index=idx
                        )
                    return arr.get(idx)

                return (PURE, fn)

            def fn(vm, ctx):
                cell = resolve(ctx)
                arr = cell.value
                if not isinstance(arr, ArrayValue):
                    raise SimAbort(not_array)
                idx = as_int((yield from idxf(vm, ctx)), "array index")
                if vm._monitor:
                    vm._mem_access(ctx, cell, is_write=False, callsite=nid, index=idx)
                return arr.get(idx)

            return (GEN, fn)
        bg, bf = self._compile_expr(base, frame)
        if not bg and not ig:
            def fn(vm, ctx):
                arr = bf(vm, ctx)
                if not isinstance(arr, ArrayValue):
                    raise SimAbort("indexed expression is not an array")
                idx = idxf(vm, ctx)
                if type(idx) is not int:
                    idx = as_int(idx, "array index")
                return arr.get(idx)

            return (PURE, fn)
        bgen, igen = _as_gen((bg, bf)), _as_gen((ig, idxf))

        def fn(vm, ctx):
            arr = yield from bgen(vm, ctx)
            if not isinstance(arr, ArrayValue):
                raise SimAbort("indexed expression is not an array")
            idx = as_int((yield from igen(vm, ctx)), "array index")
            return arr.get(idx)

        return (GEN, fn)

    def _compile_binary(self, node: A.Binary, frame: _Frame):
        lg, lf = self._compile_expr(node.left, frame)
        rg, rf = self._compile_expr(node.right, frame)
        op = node.op
        if not lg and not rg:
            lv = _literal_value(node.left)
            rv = _literal_value(node.right)
            if lv is not _MISSING and rv is not _MISSING and op in _FOLDABLE_OPS:
                try:
                    folded = BinOps.apply(op, lv, rv)
                except SimAbort:
                    # a type error between literals (e.g. "s" + 1) must
                    # abort at *execution* time, in the executing
                    # rank's context, exactly like the tree-walk
                    pass
                else:
                    def fn(vm, ctx):
                        return folded

                    return (PURE, fn)
            if op == "&&":
                def fn(vm, ctx):
                    if not truthy(lf(vm, ctx)):
                        return False
                    return truthy(rf(vm, ctx))

                return (PURE, fn)
            if op == "||":
                def fn(vm, ctx):
                    if truthy(lf(vm, ctx)):
                        return True
                    return truthy(rf(vm, ctx))

                return (PURE, fn)
            inlined = _make_inline_binop(op, lf, rf)
            if inlined is not None:
                return (PURE, inlined)

            def fn(vm, ctx):
                return BinOps.apply(op, lf(vm, ctx), rf(vm, ctx))

            return (PURE, fn)
        lgen, rgen = _as_gen((lg, lf)), _as_gen((rg, rf))
        if op == "&&":
            def fn(vm, ctx):
                left = yield from lgen(vm, ctx)
                if not truthy(left):
                    return False
                right = yield from rgen(vm, ctx)
                return truthy(right)

            return (GEN, fn)
        if op == "||":
            def fn(vm, ctx):
                left = yield from lgen(vm, ctx)
                if truthy(left):
                    return True
                right = yield from rgen(vm, ctx)
                return truthy(right)

            return (GEN, fn)

        def fn(vm, ctx):
            left = yield from lgen(vm, ctx)
            right = yield from rgen(vm, ctx)
            return BinOps.apply(op, left, right)

        return (GEN, fn)

    def _compile_args(self, argnodes, frame: _Frame):
        parts = [self._compile_expr(a, frame) for a in argnodes]
        if all(not g for g, _f in parts):
            fns = tuple(f for _g, f in parts)
            if not fns:
                def fn(vm, ctx):
                    return []

                return (PURE, fn)

            def fn(vm, ctx):
                return [f(vm, ctx) for f in fns]

            return (PURE, fn)
        gens = tuple(_as_gen(p) for p in parts)

        def fn(vm, ctx):
            args = []
            for g in gens:
                val = yield from g(vm, ctx)
                args.append(val)
            return args

        return (GEN, fn)

    def _compile_call(self, node: A.CallExpr, frame: _Frame):
        name = node.name
        ag, af = self._compile_args(node.args, frame)
        if name.startswith("hmpi_") or name.startswith("mpi_"):
            op = name[1:] if name.startswith("hmpi_") else name
            handler = self.mpi_table.get(op)
            if handler is not None:
                instrumented = name.startswith("hmpi_")
                is_collective = op in COLLECTIVE_OPS
                if not ag:
                    def fn(vm, ctx):
                        args = af(vm, ctx)
                        if is_collective:
                            vm._collective_arrive(ctx, node, "mpi", op=op)
                        return (yield from handler(vm, ctx, node, args, instrumented))

                    return (GEN, fn)

                def fn(vm, ctx):
                    args = yield from af(vm, ctx)
                    if is_collective:
                        vm._collective_arrive(ctx, node, "mpi", op=op)
                    return (yield from handler(vm, ctx, node, args, instrumented))

                return (GEN, fn)
        pure_builtin = _PURE_BUILTINS.get(name)
        if pure_builtin is not None:
            if not ag:
                def fn(vm, ctx):
                    return pure_builtin(vm, ctx, af(vm, ctx))

                return (PURE, fn)

            def fn(vm, ctx):
                args = yield from af(vm, ctx)
                return pure_builtin(vm, ctx, args)

            return (GEN, fn)
        builtin = _SIMPLE_BUILTINS.get(name)
        if builtin is not None:
            if not ag:
                def fn(vm, ctx):
                    args = af(vm, ctx)
                    return (yield from builtin(vm, ctx, node, args))

                return (GEN, fn)

            def fn(vm, ctx):
                args = yield from af(vm, ctx)
                return (yield from builtin(vm, ctx, node, args))

            return (GEN, fn)
        user_fn = self.functions.get(name)
        if user_fn is not None:
            if not ag:
                def fn(vm, ctx):
                    args = af(vm, ctx)
                    return (yield from vm._call_user(user_fn, args, ctx))

                return (GEN, fn)

            def fn(vm, ctx):
                args = yield from af(vm, ctx)
                return (yield from vm._call_user(user_fn, args, ctx))

            return (GEN, fn)
        # Unknown functions abort before evaluating arguments, like the
        # tree-walk's _eval_call fall-through.
        msg = f"unknown function {name!r} at {node.loc}"

        def fail(vm, ctx):
            raise SimAbort(msg)

        return (PURE, fail)


_RETURN_NONE = ("return", None)


# ---------------------------------------------------------------------------
# Compile cache
# ---------------------------------------------------------------------------

#: program-id -> (program ref, compiled) — the strong ref both keeps the
#: id stable and lets campaign cells / serve workers that re-run the same
#: Program object (varying seeds, plans, monitored vars) compile once.
_COMPILE_CACHE: "OrderedDict[int, Tuple[A.Program, CompiledProgram]]" = OrderedDict()
_COMPILE_CACHE_SIZE = 8


def compile_program(program: A.Program) -> CompiledProgram:
    """Compile *program* (memoized on program identity, LRU-bounded)."""
    key = id(program)
    hit = _COMPILE_CACHE.get(key)
    if hit is not None and hit[0] is program:
        _COMPILE_CACHE.move_to_end(key)
        return hit[1]
    compiled = _Compiler(program).compile()
    _COMPILE_CACHE[key] = (program, compiled)
    _COMPILE_CACHE.move_to_end(key)
    while len(_COMPILE_CACHE) > _COMPILE_CACHE_SIZE:
        _COMPILE_CACHE.popitem(last=False)
    return compiled


def clear_compile_cache() -> None:
    _COMPILE_CACHE.clear()
